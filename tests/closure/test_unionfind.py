"""Unit tests for the UNION-FIND forest."""

from repro.closure.unionfind import UnionFind


class TestUnionFind:
    def test_lazy_add_on_find(self):
        uf = UnionFind()
        assert uf.find("x") == "x"
        assert "x" in uf

    def test_initial_items(self):
        uf = UnionFind([1, 2, 3])
        assert len(uf) == 3
        assert uf.n_sets == 3

    def test_union_merges(self):
        uf = UnionFind()
        uf.union(1, 2)
        assert uf.same_set(1, 2)
        assert uf.n_sets == 1

    def test_union_transitive(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        uf.union(4, 5)
        assert uf.same_set(1, 3)
        assert not uf.same_set(1, 4)
        assert uf.n_sets == 2

    def test_union_idempotent(self):
        uf = UnionFind()
        uf.union(1, 2)
        root = uf.union(1, 2)
        assert root == uf.find(1)
        assert uf.n_sets == 1

    def test_add_existing_is_noop(self):
        uf = UnionFind([1])
        uf.add(1)
        assert len(uf) == 1

    def test_groups(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("c", "d")
        uf.union("b", "c")
        uf.add("lonely")
        groups = uf.groups()
        assert len(groups) == 2
        sizes = sorted(len(members) for members in groups.values())
        assert sizes == [1, 4]

    def test_path_compression_flattens(self):
        uf = UnionFind()
        for i in range(100):
            uf.union(i, i + 1)
        root = uf.find(0)
        # After compression every node points (nearly) directly at root.
        assert uf._parent[0] == root

    def test_chain_of_many(self):
        uf = UnionFind()
        for i in range(0, 1000, 2):
            uf.union(i, i + 1)
        assert uf.n_sets == 500
