"""Unit and property tests for IntervalSet."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.closure.intervals import IntervalSet


class TestConstruction:
    def test_empty(self):
        s = IntervalSet()
        assert not s
        assert len(s) == 0
        assert s.n_intervals == 0

    def test_single(self):
        s = IntervalSet.single(3, 7)
        assert s.intervals() == [(3, 7)]
        assert len(s) == 5

    def test_single_empty_rejected(self):
        with pytest.raises(ValueError):
            IntervalSet.single(5, 4)

    def test_from_values_coalesces(self):
        s = IntervalSet.from_values([5, 1, 2, 3, 9])
        assert s.intervals() == [(1, 3), (5, 5), (9, 9)]

    def test_constructor_intervals(self):
        s = IntervalSet([(1, 2), (4, 6)])
        assert s.intervals() == [(1, 2), (4, 6)]


class TestMutation:
    def test_add_value(self):
        s = IntervalSet()
        s.add(5)
        assert 5 in s

    def test_adjacent_values_coalesce(self):
        s = IntervalSet()
        s.add(1)
        s.add(2)
        s.add(3)
        assert s.n_intervals == 1
        assert s.intervals() == [(1, 3)]

    def test_overlapping_intervals_coalesce(self):
        s = IntervalSet([(1, 5)])
        s.add_interval(3, 9)
        assert s.intervals() == [(1, 9)]

    def test_disjoint_intervals_stay_apart(self):
        s = IntervalSet([(1, 2)])
        s.add_interval(10, 12)
        assert s.n_intervals == 2

    def test_union_update(self):
        a = IntervalSet([(1, 3), (10, 12)])
        b = IntervalSet([(4, 5), (11, 20)])
        a.union_update(b)
        assert a.intervals() == [(1, 5), (10, 20)]

    def test_union_with_empty(self):
        a = IntervalSet([(1, 2)])
        a.union_update(IntervalSet())
        assert a.intervals() == [(1, 2)]
        b = IntervalSet()
        b.union_update(a)
        assert b.intervals() == [(1, 2)]
        # and the copy is independent
        b.add(100)
        assert 100 not in a


class TestQueries:
    def test_contains_binary_search(self):
        s = IntervalSet([(1, 3), (7, 9), (20, 25)])
        for v in (1, 2, 3, 7, 9, 22):
            assert v in s
        for v in (0, 4, 6, 10, 19, 26):
            assert v not in s

    def test_iter_ascending(self):
        s = IntervalSet([(5, 6), (1, 2)])
        assert list(s) == [1, 2, 5, 6]

    def test_len_cardinality(self):
        s = IntervalSet([(1, 3), (10, 10)])
        assert len(s) == 4

    def test_equality(self):
        assert IntervalSet([(1, 2)]) == IntervalSet([(1, 2)])
        assert IntervalSet([(1, 2)]) != IntervalSet([(1, 3)])

    def test_copy_independent(self):
        a = IntervalSet([(1, 2)])
        b = a.copy()
        b.add(50)
        assert 50 not in a

    def test_repr(self):
        assert "1, 2" in repr(IntervalSet([(1, 2)]))


@settings(max_examples=200, deadline=None)
@given(
    st.lists(st.integers(0, 200), max_size=80),
    st.lists(st.integers(0, 200), max_size=80),
)
def test_union_matches_set_semantics(values_a, values_b):
    a = IntervalSet.from_values(values_a)
    b = IntervalSet.from_values(values_b)
    a.union_update(b)
    assert list(a) == sorted(set(values_a) | set(values_b))


@settings(max_examples=200, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 300), st.integers(0, 30))))
def test_interval_invariants(spans):
    """Intervals stay sorted, disjoint and non-adjacent after any adds."""
    s = IntervalSet()
    for start, width in spans:
        s.add_interval(start, start + width)
    intervals = s.intervals()
    for (lo1, hi1), (lo2, hi2) in zip(intervals, intervals[1:]):
        assert hi1 + 1 < lo2  # disjoint and non-adjacent
        assert lo1 <= hi1 and lo2 <= hi2
