"""Unit tests for the component split and symmetric closures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.closure.components import (
    closed_pairs,
    connected_component_edges,
    symmetric_transitive_closure_pairs,
)
from repro.closure.nuutila import transitive_closure


def as_pairs(flat):
    return set(zip(flat[0::2], flat[1::2]))


class TestComponentSplit:
    def test_single_component(self):
        groups = connected_component_edges([(1, 2), (2, 3)])
        assert len(groups) == 1

    def test_two_components(self):
        groups = connected_component_edges([(1, 2), (10, 11), (11, 12)])
        assert sorted(len(g) for g in groups) == [1, 2]

    def test_weakly_connected_merges_directions(self):
        # 1->2 and 3->2 are weakly connected through 2.
        groups = connected_component_edges([(1, 2), (3, 2)])
        assert len(groups) == 1

    def test_empty(self):
        assert connected_component_edges([]) == []


class TestClosedPairs:
    def test_empty(self):
        assert len(closed_pairs([])) == 0

    def test_split_equals_no_split(self):
        edges = [(1, 2), (2, 3), (10, 11), (11, 10), (20, 21)]
        with_split = as_pairs(closed_pairs(edges, split_components=True))
        without = as_pairs(closed_pairs(edges, split_components=False))
        assert with_split == without

    def test_matches_nuutila(self):
        edges = [(1, 2), (2, 3), (3, 1), (5, 6)]
        assert as_pairs(closed_pairs(edges)) == transitive_closure(edges)


class TestSymmetricClosure:
    def test_pair_becomes_clique(self):
        flat = symmetric_transitive_closure_pairs([(1, 2)])
        assert as_pairs(flat) == {(1, 2), (2, 1), (1, 1), (2, 2)}

    def test_chain_becomes_full_clique(self):
        flat = symmetric_transitive_closure_pairs([(1, 2), (2, 3), (3, 4)])
        nodes = {1, 2, 3, 4}
        assert as_pairs(flat) == {(a, b) for a in nodes for b in nodes}

    def test_two_islands(self):
        flat = symmetric_transitive_closure_pairs([(1, 2), (10, 11)])
        pairs = as_pairs(flat)
        assert (1, 10) not in pairs
        assert (10, 11) in pairs and (11, 10) in pairs

    def test_empty(self):
        assert len(symmetric_transitive_closure_pairs([])) == 0


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 12)), max_size=30
    ),
    st.booleans(),
)
def test_split_invariance_property(edges, split):
    """Component splitting never changes the closure."""
    reference = transitive_closure(edges)
    assert as_pairs(closed_pairs(edges, split_components=split)) == reference
