"""Unit and property tests for the Nuutila closure vs networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.closure.nuutila import (
    strongly_connected_components,
    transitive_closure,
    transitive_closure_pairs,
)


def nx_closure(edges):
    """Reference closure: pairs (u, v) with a non-empty path u→v.

    ``reflexive=False`` keeps exactly the cycle-induced self-loops,
    matching the semantics of a transitive property (x p x holds iff x
    lies on a cycle); ``reflexive=None`` would strip even those.
    """
    graph = nx.DiGraph(edges)
    closed = nx.transitive_closure(graph, reflexive=False)
    return {(u, v) for u, v in closed.edges()}


class TestSCC:
    def test_chain_all_singletons(self):
        adjacency = [[1], [2], []]
        comps = strongly_connected_components(adjacency)
        assert sorted(len(c) for c in comps) == [1, 1, 1]

    def test_cycle_single_component(self):
        adjacency = [[1], [2], [0]]
        comps = strongly_connected_components(adjacency)
        assert len(comps) == 1
        assert sorted(comps[0]) == [0, 1, 2]

    def test_emission_is_reverse_topological(self):
        # 0 -> 1 -> 2: sink (2) must be emitted before 1, before 0.
        adjacency = [[1], [2], []]
        comps = strongly_connected_components(adjacency)
        assert comps == [[2], [1], [0]]

    def test_two_cycles_bridge(self):
        # (0<->1) -> (2<->3)
        adjacency = [[1], [0, 2], [3], [2]]
        comps = strongly_connected_components(adjacency)
        assert sorted(sorted(c) for c in comps) == [[0, 1], [2, 3]]
        # the sink cycle {2,3} is emitted first
        assert sorted(comps[0]) == [2, 3]

    def test_disconnected(self):
        adjacency = [[1], [], [3], []]
        comps = strongly_connected_components(adjacency)
        assert len(comps) == 4


class TestClosureSmall:
    def test_empty(self):
        assert transitive_closure([]) == set()

    def test_single_edge(self):
        assert transitive_closure([(1, 2)]) == {(1, 2)}

    def test_chain(self):
        closure = transitive_closure([(1, 2), (2, 3)])
        assert closure == {(1, 2), (2, 3), (1, 3)}

    def test_self_loop(self):
        assert transitive_closure([(1, 1)]) == {(1, 1)}

    def test_cycle_includes_reflexive(self):
        closure = transitive_closure([(1, 2), (2, 1)])
        assert closure == {(1, 2), (2, 1), (1, 1), (2, 2)}

    def test_cycle_with_tail(self):
        closure = transitive_closure([(1, 2), (2, 3), (3, 1), (3, 4)])
        assert (1, 1) in closure
        assert (2, 4) in closure
        assert (4, 4) not in closure
        assert (4, 1) not in closure

    def test_duplicate_edges_ignored(self):
        closure = transitive_closure([(1, 2), (1, 2), (2, 3)])
        assert closure == {(1, 2), (2, 3), (1, 3)}

    def test_sparse_node_ids(self):
        # Node ids far apart (the dense-renumbering path).
        big = 1 << 40
        closure = transitive_closure([(big, big + 7), (big + 7, 3)])
        assert (big, 3) in closure

    def test_diamond(self):
        closure = transitive_closure([(1, 2), (1, 3), (2, 4), (3, 4)])
        assert (1, 4) in closure
        assert len(closure) == 5

    def test_include_input_false_excludes_originals(self):
        flat = transitive_closure_pairs([(1, 2), (2, 3)], include_input=False)
        pairs = set(zip(flat[0::2], flat[1::2]))
        assert pairs == {(1, 3)}


class TestClosureShapes:
    @pytest.mark.parametrize("n", [2, 5, 20, 60])
    def test_chain_size_formula(self, n):
        edges = [(i, i + 1) for i in range(n - 1)]
        flat = transitive_closure_pairs(edges)
        assert len(flat) // 2 == n * (n - 1) // 2

    def test_full_cycle_closure_is_square(self):
        n = 12
        edges = [(i, (i + 1) % n) for i in range(n)]
        flat = transitive_closure_pairs(edges)
        assert len(flat) // 2 == n * n

    def test_binary_tree_toward_root(self):
        edges = [(k, (k - 1) // 2) for k in range(1, 15)]
        closure = transitive_closure(edges)
        assert closure == nx_closure(edges)


@settings(max_examples=120, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 14), st.integers(0, 14)),
        max_size=40,
    )
)
def test_closure_matches_networkx(edges):
    """Random digraphs (with cycles/self-loops) match the oracle."""
    assert transitive_closure(edges) == nx_closure(edges)
