"""Unit tests for the BGP query layer."""

import pytest

from repro.core.engine import InferrayEngine
from repro.query.bgp import Query, TriplePattern, Var, parse_pattern
from repro.rdf.terms import IRI, Triple
from repro.rdf.vocabulary import RDF, RDFS


def ex(name):
    return IRI(f"ex:{name}")


@pytest.fixture(scope="module")
def engine():
    e = InferrayEngine("rdfs-default")
    e.load_triples(
        [
            Triple(ex("prof"), RDFS.subClassOf, ex("person")),
            Triple(ex("student"), RDFS.subClassOf, ex("person")),
            Triple(ex("alice"), RDF.type, ex("prof")),
            Triple(ex("bob"), RDF.type, ex("student")),
            Triple(ex("carol"), RDF.type, ex("student")),
            Triple(ex("bob"), ex("advisor"), ex("alice")),
            Triple(ex("carol"), ex("advisor"), ex("alice")),
        ]
    )
    e.materialize()
    return e


class TestParsePattern:
    def test_question_mark_becomes_var(self):
        pattern = parse_pattern("?s", "ex:p", "?o")
        assert pattern.subject == Var("s")
        assert pattern.predicate == IRI("ex:p")
        assert pattern.object == Var("o")

    def test_terms_pass_through(self):
        pattern = parse_pattern(ex("a"), RDF.type, Var("t"))
        assert pattern.subject == ex("a")
        assert pattern.object == Var("t")

    def test_variables_list(self):
        pattern = parse_pattern("?a", "?p", "ex:x")
        assert pattern.variables() == [Var("a"), Var("p")]


class TestSinglePattern:
    def test_type_query(self, engine):
        query = Query.parse(("?x", RDF.type, ex("student")))
        rows = query.select(engine, "x")
        assert set(rows) == {(ex("bob"),), (ex("carol"),)}

    def test_inferred_triples_visible(self, engine):
        query = Query.parse(("?x", RDF.type, ex("person")))
        rows = {row[0] for row in query.select(engine, "x")}
        assert rows == {ex("alice"), ex("bob"), ex("carol")}

    def test_variable_predicate(self, engine):
        query = Query.parse((ex("bob"), "?p", "?o"))
        predicates = {row[0] for row in query.select(engine, "p")}
        assert RDF.type in predicates
        assert ex("advisor") in predicates

    def test_fully_ground_ask(self, engine):
        assert Query.parse((ex("bob"), RDF.type, ex("person"))).ask(engine)
        assert not Query.parse(
            (ex("alice"), RDF.type, ex("student"))
        ).ask(engine)


class TestJoins:
    def test_two_pattern_join(self, engine):
        # Students advised by a professor.
        query = Query.parse(
            ("?s", ex("advisor"), "?a"),
            ("?a", RDF.type, ex("prof")),
        )
        rows = query.select(engine, "s")
        assert set(rows) == {(ex("bob"),), (ex("carol"),)}

    def test_join_respects_shared_variable(self, engine):
        # Self-advised people: none.
        query = Query.parse(("?x", ex("advisor"), "?x"))
        assert query.select(engine, "x") == []

    def test_three_pattern_join(self, engine):
        query = Query.parse(
            ("?s", RDF.type, ex("student")),
            ("?s", ex("advisor"), "?a"),
            ("?a", RDF.type, "?at"),
        )
        rows = query.select(engine, "s", "a", "at")
        assert (ex("bob"), ex("alice"), ex("prof")) in rows
        assert (ex("bob"), ex("alice"), ex("person")) in rows

    def test_projection_dedup(self, engine):
        query = Query.parse(
            ("?s", ex("advisor"), "?a"),
        )
        assert query.select(engine, "a") == [(ex("alice"),)]

    def test_no_solutions(self, engine):
        query = Query.parse(
            ("?x", RDF.type, ex("prof")),
            ("?x", ex("advisor"), "?y"),
        )
        assert query.select(engine, "x") == []

    def test_execute_yields_bindings(self, engine):
        query = Query.parse(("?x", RDF.type, ex("prof")))
        solutions = list(query.execute(engine))
        assert solutions == [{Var("x"): ex("alice")}]


class TestValidation:
    def test_empty_query_rejected(self):
        with pytest.raises(ValueError):
            Query([])

    def test_pattern_selectivity(self):
        pattern = TriplePattern(Var("s"), RDF.type, ex("c"))
        assert pattern.selectivity({}) == 2
        assert pattern.selectivity({Var("s"): ex("a")}) == 3


class TestParseBGP:
    def test_single_pattern_with_prefix(self):
        from repro.query.bgp import parse_bgp
        from repro.rdf.vocabulary import RDF as RDF_NS

        (pattern,) = parse_bgp("?s rdf:type ex:Person")
        assert pattern.subject == Var("s")
        assert pattern.predicate == RDF_NS.type
        assert pattern.object == IRI("ex:Person")

    def test_a_shorthand_and_angle_iris(self):
        from repro.query.bgp import parse_bgp

        (pattern,) = parse_bgp("<http://ex/s> a <http://ex/C>")
        assert pattern.subject == IRI("http://ex/s")
        assert pattern.predicate == RDF.type
        assert pattern.object == IRI("http://ex/C")

    def test_multiple_statements_dot_and_newline(self):
        from repro.query.bgp import parse_bgp

        by_dot = parse_bgp("?x a ex:C . ?x ex:p ?y")
        by_newline = parse_bgp("?x a ex:C\n?x ex:p ?y")
        trailing = parse_bgp("?x a ex:C.\n?x ex:p ?y .")
        assert by_dot == by_newline == trailing
        assert len(by_dot) == 2

    def test_literals(self):
        from repro.query.bgp import parse_bgp
        from repro.rdf.terms import Literal

        (p1,) = parse_bgp('?x ex:name "Bart"')
        assert p1.object == Literal("Bart")
        (p2,) = parse_bgp(
            '?x ex:age "10"^^<http://www.w3.org/2001/XMLSchema#integer>'
        )
        assert p2.object == Literal(
            "10", "http://www.w3.org/2001/XMLSchema#integer"
        )
        (p3,) = parse_bgp('?x ex:motto "ay\\ncaramba"@es')
        assert p3.object == Literal("ay\ncaramba", None, "es")

    def test_errors(self):
        from repro.query.bgp import BGPSyntaxError, parse_bgp

        with pytest.raises(BGPSyntaxError):
            parse_bgp("?x ex:p")          # 2 terms
        with pytest.raises(BGPSyntaxError):
            parse_bgp("?x ex:p ?y . ?z")  # trailing fragment
        with pytest.raises(BGPSyntaxError):
            parse_bgp("")                 # nothing
        with pytest.raises(BGPSyntaxError):
            parse_bgp("? ex:p ?y")        # unnamed variable

    def test_query_from_parsed_patterns(self, engine):
        from repro.query.bgp import parse_bgp

        query = Query(parse_bgp("?x a ex:person"))
        names = {row[0] for row in query.select(engine, "x")}
        assert names == {ex("alice"), ex("bob"), ex("carol")}
