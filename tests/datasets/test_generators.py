"""Unit tests for the LUBM/BSBM/real-world workload generators."""

import pytest

from repro.datasets.bsbm import bsbm_like
from repro.datasets.lubm import lubm_like, lubm_ontology
from repro.datasets.realworld import wikipedia_like, wordnet_like, yago_like
from repro.rdf.terms import Triple
from repro.rdf.vocabulary import OWL, RDF, RDFS

GENERATORS = [
    ("lubm", lubm_like),
    ("bsbm", bsbm_like),
    ("yago", yago_like),
    ("wikipedia", wikipedia_like),
    ("wordnet", wordnet_like),
]


@pytest.mark.parametrize("name,generator", GENERATORS)
class TestCommonProperties:
    def test_deterministic(self, name, generator):
        assert generator(3) == generator(3)

    def test_seed_changes_output(self, name, generator):
        assert generator(3, seed=1) != generator(3, seed=2)

    def test_scale_grows_output(self, name, generator):
        assert len(generator(6)) > len(generator(2))

    def test_all_triples_valid(self, name, generator):
        for triple in generator(2):
            assert isinstance(triple, Triple)

    def test_bad_scale_rejected(self, name, generator):
        with pytest.raises(ValueError):
            generator(0)


class TestLubmShape:
    def test_ontology_has_rdfs_plus_features(self):
        ontology = lubm_ontology()
        predicates = {t.predicate for t in ontology}
        assert RDFS.subClassOf in predicates
        assert RDFS.subPropertyOf in predicates
        assert RDFS.domain in predicates and RDFS.range in predicates
        assert OWL.inverseOf in predicates
        markers = {t.object for t in ontology if t.predicate == RDF.type}
        assert OWL.TransitiveProperty in markers
        assert OWL.InverseFunctionalProperty in markers

    def test_instance_scale(self):
        data = lubm_like(10)
        # ≈210 triples per department, within a loose band.
        assert 1200 <= len(data) <= 3500

    def test_contains_suborganization_chains(self):
        data = lubm_like(3)
        sub_org = [
            t for t in data
            if t.predicate.value.endswith("subOrganizationOf")
        ]
        assert len(sub_org) >= 6  # dept→univ and group→dept per dept


class TestBsbmShape:
    def test_has_product_type_tree(self):
        data = bsbm_like(200)
        sco = [t for t in data if t.predicate == RDFS.subClassOf]
        assert len(sco) >= 8

    def test_no_owl_constructs(self):
        # BSBM drives the RDFS flavours only.
        data = bsbm_like(100)
        assert not any(
            t.predicate in (OWL.sameAs, OWL.inverseOf) for t in data
        )


class TestRealWorldShapes:
    def test_yago_schema_heavy(self):
        data = yago_like(2)
        schema = [
            t for t in data
            if t.predicate in (RDFS.subClassOf, RDFS.subPropertyOf)
        ]
        assert len(schema) > len(data) * 0.4

    def test_wikipedia_type_heavy(self):
        data = wikipedia_like(2)
        types = [t for t in data if t.predicate == RDF.type]
        assert len(types) > len(data) * 0.4

    def test_wordnet_has_transitive_relation(self):
        data = wordnet_like(2)
        assert any(
            t.predicate == RDF.type and t.object == OWL.TransitiveProperty
            for t in data
        )
