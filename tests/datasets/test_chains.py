"""Unit tests for chain/tree generators and the closure-size formulas."""

import pytest

from repro.core.engine import InferrayEngine
from repro.datasets.chains import (
    chain_closure_size,
    chain_inferred_size,
    sameas_chain,
    subclass_chain,
    subclass_star,
    subclass_tree,
    subproperty_chain,
    transitive_property_chain,
)
from repro.rdf.vocabulary import OWL, RDFS


class TestGenerators:
    def test_chain_edge_count(self):
        assert len(subclass_chain(10)) == 9

    def test_chain_predicate(self):
        assert all(
            t.predicate == RDFS.subClassOf for t in subclass_chain(5)
        )

    def test_subproperty_chain(self):
        assert all(
            t.predicate == RDFS.subPropertyOf for t in subproperty_chain(5)
        )

    def test_transitive_chain_has_marker(self):
        triples = transitive_property_chain(5)
        assert triples[0].object == OWL.TransitiveProperty
        assert len(triples) == 5  # marker + 4 edges

    def test_sameas_chain(self):
        assert all(t.predicate == OWL.sameAs for t in sameas_chain(4))

    def test_star(self):
        triples = subclass_star(7)
        assert len(triples) == 7
        assert len({t.object for t in triples}) == 1

    def test_tree_edge_count(self):
        # depth 3, branching 2: 15 nodes, 14 edges.
        assert len(subclass_tree(3, 2)) == 14

    def test_too_short_rejected(self):
        for generator in (
            subclass_chain,
            subproperty_chain,
            transitive_property_chain,
            sameas_chain,
        ):
            with pytest.raises(ValueError):
                generator(1)
        with pytest.raises(ValueError):
            subclass_tree(0)

    def test_prefix_isolation(self):
        a = subclass_chain(5, prefix="one")
        b = subclass_chain(5, prefix="two")
        assert not {t.subject for t in a} & {t.subject for t in b}


class TestClosureFormulas:
    @pytest.mark.parametrize("n", [2, 3, 10, 100])
    def test_formulas(self, n):
        assert chain_closure_size(n) == n * (n - 1) // 2
        assert chain_inferred_size(n) == chain_closure_size(n) - (n - 1)

    @pytest.mark.parametrize("n", [5, 25, 80])
    def test_engine_matches_formula(self, n):
        """The paper's claim: an n-chain closes to exactly n(n−1)/2."""
        engine = InferrayEngine("rdfs-default")
        engine.load_triples(subclass_chain(n))
        stats = engine.materialize()
        assert stats.n_total == chain_closure_size(n)
        assert stats.n_inferred == chain_inferred_size(n)

    def test_sameas_chain_closes_to_clique(self):
        n = 6
        engine = InferrayEngine("rdfs-plus")
        engine.load_triples(sameas_chain(n))
        stats = engine.materialize()
        assert stats.n_total == n * n
