"""Unit tests for the rule dependency graph and wave stratification."""

import pytest

from repro.rules.depgraph import ANY, RuleDependencyGraph, rule_io
from repro.rules.rulesets import RULESET_NAMES, get_ruleset
from repro.rules.table5 import make_rules


class TestRuleIO:
    def test_alpha_rule_io(self):
        (rule,) = make_rules(["CAX-SCO"])
        io = rule_io(rule)
        assert io.reads == {"subClassOf", "type"}
        assert io.writes == {"type"}

    def test_theta_subclass_io(self):
        (rule,) = make_rules(["SCM-SCO"])
        io = rule_io(rule)
        assert io.reads == {"subClassOf"}
        assert io.writes == {"subClassOf"}

    def test_property_copy_reads_any(self):
        (rule,) = make_rules(["PRP-SPO1"])
        io = rule_io(rule)
        assert "subPropertyOf" in io.reads
        assert ANY in io.reads
        assert io.writes == {ANY}

    def test_domain_rule_writes_type_only(self):
        (rule,) = make_rules(["PRP-DOM"])
        io = rule_io(rule)
        assert io.writes == {"type"}
        assert ANY in io.reads

    def test_functional_rule_writes_sameas(self):
        (rule,) = make_rules(["PRP-FP"])
        assert rule_io(rule).writes == {"sameAs"}

    def test_trivial_expand_writes_head_properties(self):
        (rule,) = make_rules(["RDFS8"])
        io = rule_io(rule)
        assert io.reads == {"type"}
        assert io.writes == {"subClassOf"}

    def test_unknown_rule_class_is_conservative(self):
        from repro.rules.spec import Rule

        class Exotic(Rule):
            def apply(self, ctx):  # pragma: no cover
                pass

        io = rule_io(Exotic("EXOTIC"))
        assert io.reads == {ANY}
        assert io.writes == {ANY}

    def test_wildcard_feeds_everything(self):
        spo1, cax = make_rules(["PRP-SPO1", "CAX-SCO"])
        assert rule_io(spo1).feeds(rule_io(cax))
        assert rule_io(cax).feeds(rule_io(spo1))  # via ANY reads

    def test_disjoint_io_does_not_feed(self):
        cax, scm_sco = make_rules(["CAX-SCO", "SCM-SCO"])
        # CAX-SCO writes type; SCM-SCO reads only subClassOf.
        assert not rule_io(cax).feeds(rule_io(scm_sco))
        assert rule_io(scm_sco).feeds(rule_io(cax))


class TestStratification:
    @pytest.mark.parametrize("ruleset", RULESET_NAMES)
    def test_waves_partition_the_rules(self, ruleset):
        rules = get_ruleset(ruleset)
        graph = RuleDependencyGraph(rules)
        waves = graph.stratify()
        flattened = [i for wave in waves for i in wave]
        assert sorted(flattened) == list(range(len(rules)))
        assert len(set(flattened)) == len(rules)

    @pytest.mark.parametrize("ruleset", RULESET_NAMES)
    def test_cross_component_edges_point_forward(self, ruleset):
        graph = RuleDependencyGraph(get_ruleset(ruleset))
        waves = graph.stratify()
        wave_of = {
            i: number for number, wave in enumerate(waves) for i in wave
        }
        comp_of = {}
        for comp_index, members in enumerate(graph.sccs()):
            for member in members:
                comp_of[member] = comp_index
        for producer, consumer in graph.edges():
            if comp_of[producer] == comp_of[consumer]:
                assert wave_of[producer] == wave_of[consumer]
            else:
                assert wave_of[producer] < wave_of[consumer]

    def test_full_rulesets_are_mutually_recursive(self):
        # RDFS is recursive through the schema vocabulary: the analysis
        # must discover one big component (that recursion is why
        # Algorithm 1 iterates), i.e. a single maximal-parallelism wave.
        graph = RuleDependencyGraph(get_ruleset("rdfs-default"))
        assert len(graph.stratify()) == 1

    def test_custom_rule_list_stratifies(self):
        # SCM-SCO feeds CAX-SCO, but CAX-SCO (writes type) does not
        # feed SCM-SCO (reads subClassOf only): two ordered waves.
        rules = make_rules(["SCM-SCO", "CAX-SCO"])
        graph = RuleDependencyGraph(rules)
        assert graph.waves_by_name() == [["SCM-SCO"], ["CAX-SCO"]]

    def test_three_layer_chain(self):
        # SCM-SPO closes subPropertyOf; SCM-DOM2 consumes subPropertyOf
        # and writes domain; PRP-DOM consumes domain and writes type —
        # but PRP-DOM reads ANY, which SCM-DOM2's 'domain' feeds...
        # and PRP-DOM writes type, which neither earlier rule reads, so
        # the chain is acyclic and must layer into three waves.
        rules = make_rules(["SCM-SPO", "SCM-DOM2", "PRP-DOM"])
        graph = RuleDependencyGraph(rules)
        waves = graph.waves_by_name()
        assert waves == [["SCM-SPO"], ["SCM-DOM2"], ["PRP-DOM"]]

    def test_stratification_is_deterministic(self):
        rules = get_ruleset("rdfs-plus")
        first = RuleDependencyGraph(rules).stratify()
        second = RuleDependencyGraph(rules).stratify()
        assert first == second

    def test_describe_lists_every_rule(self):
        graph = RuleDependencyGraph(get_ruleset("rho-df"))
        text = graph.describe()
        for rule in graph.rules:
            assert rule.name in text
