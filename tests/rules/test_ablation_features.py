"""Tests for the ablation features: iterative θ and the o-s cache flag."""

from repro.core.engine import InferrayEngine
from repro.datasets.chains import chain_closure_size, subclass_chain
from repro.rules.classes import IterativeTransitivityRule
from repro.rules.table5 import make_rules
from repro.store.property_table import PropertyTable


class TestIterativeTransitivity:
    def test_matches_nuutila_closure_on_chain(self):
        n = 25
        data = subclass_chain(n)
        nuutila = InferrayEngine(make_rules(["SCM-SCO"]))
        nuutila.load_triples(data)
        nuutila.materialize()
        iterative = InferrayEngine(
            [IterativeTransitivityRule("SCM-SCO-ITER", "subClassOf")]
        )
        iterative.load_triples(data)
        stats = iterative.materialize()
        assert set(iterative.triples()) == set(nuutila.triples())
        assert iterative.n_triples == chain_closure_size(n)
        # The iterative variant needs ~log2(n) fixed-point rounds.
        assert stats.iterations > 2

    def test_matches_on_cycle(self):
        from repro.rdf.terms import IRI, Triple
        from repro.rdf.vocabulary import RDFS

        data = [
            Triple(IRI("a"), RDFS.subClassOf, IRI("b")),
            Triple(IRI("b"), RDFS.subClassOf, IRI("a")),
        ]
        iterative = InferrayEngine(
            [IterativeTransitivityRule("X", "subClassOf")]
        )
        iterative.load_triples(data)
        iterative.materialize()
        nuutila = InferrayEngine(make_rules(["SCM-SCO"]))
        nuutila.load_triples(data)
        nuutila.materialize()
        assert set(iterative.triples()) == set(nuutila.triples())

    def test_no_prepass_for_iterative_class(self):
        engine = InferrayEngine(
            [IterativeTransitivityRule("X", "subClassOf")]
        )
        engine.load_triples(subclass_chain(10))
        stats = engine.materialize()
        assert stats.closure_pairs == 0  # no θ pre-pass ran


class TestOsCacheFlag:
    def test_uncached_view_still_correct(self):
        from array import array

        table = PropertyTable(
            array("q", [1, 5, 2, 3]), cache_os=False
        )
        view = table.os_pairs()
        assert list(zip(view[0::2], view[1::2])) == [(3, 2), (5, 1)]
        assert not table.has_os_cache

    def test_engine_results_identical_without_cache(self):
        data = subclass_chain(30)
        cached = InferrayEngine("rdfs-default")
        cached.load_triples(data)
        cached.materialize()
        uncached = InferrayEngine("rdfs-default", os_cache=False)
        uncached.load_triples(data)
        uncached.materialize()
        assert set(cached.triples()) == set(uncached.triples())

    def test_stats_report_no_cached_views(self):
        engine = InferrayEngine("rdfs-default", os_cache=False)
        engine.load_triples(subclass_chain(20))
        engine.materialize()
        assert engine.main.stats()["os_caches"] == 0
