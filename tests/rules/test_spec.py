"""Unit tests for the rule-spec layer: Vocab, RuleContext, helpers."""

import pytest

from repro.dictionary.encoding import Dictionary, PROPERTY_BASE
from repro.rules.spec import Rule, RuleContext, Vocab, table_or_none
from repro.store.triple_store import InferredBuffers, TripleStore


class TestVocab:
    def setup_method(self):
        self.dictionary = Dictionary()
        self.vocab = Vocab(self.dictionary)

    def test_schema_properties_in_property_half(self):
        for attr in (
            "type", "subClassOf", "subPropertyOf", "domain", "range",
            "member", "sameAs", "equivalentClass", "equivalentProperty",
            "inverseOf",
        ):
            assert self.vocab[attr] <= PROPERTY_BASE

    def test_markers_in_resource_half(self):
        for attr in (
            "Resource", "rdfsClass", "Literal", "Datatype",
            "TransitiveProperty", "SymmetricProperty",
            "FunctionalProperty", "InverseFunctionalProperty",
            "Thing", "Nothing", "owlClass",
        ):
            assert self.vocab[attr] > PROPERTY_BASE

    def test_attribute_and_item_access_agree(self):
        assert self.vocab.type == self.vocab["type"]

    def test_contains(self):
        assert "sameAs" in self.vocab
        assert "bogus" not in self.vocab

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            _ = self.vocab.nonexistent

    def test_idempotent_against_same_dictionary(self):
        again = Vocab(self.dictionary)
        assert again.type == self.vocab.type
        assert again.Resource == self.vocab.Resource


class TestRuleContext:
    def test_count_accumulates(self):
        ctx = RuleContext(
            main=TripleStore(),
            new=TripleStore(),
            out=InferredBuffers(),
            vocab=Vocab(Dictionary()),
        )
        ctx.count("R", 3)
        ctx.count("R", 2)
        ctx.count("S", 0)  # zero emissions are not recorded
        assert ctx.stats == {"R": 5}


class TestHelpers:
    def test_table_or_none(self):
        store = TripleStore()
        assert table_or_none(store, 123) is None
        assert table_or_none(store, None) is None
        store.add_encoded([(1, 123, 2)])
        assert table_or_none(store, 123) is not None
        # Empty (created but unpopulated) tables read as None.
        store.get_or_create(456)
        assert table_or_none(store, 456) is None

    def test_rule_base_repr_and_abstract(self):
        rule = Rule("TEST")
        assert "TEST" in repr(rule)
        with pytest.raises(NotImplementedError):
            rule.apply(None)
