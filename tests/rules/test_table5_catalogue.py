"""Validate the Table-5 catalogue structure and ruleset composition."""

import pytest

from repro.rules.rulesets import (
    RULESET_NAMES,
    get_ruleset,
    ruleset_rule_names,
)
from repro.rules.spec import Rule
from repro.rules.table5 import BY_NAME, TABLE5, make_rules


class TestCatalogueStructure:
    def test_38_rows(self):
        assert len(TABLE5) == 38

    def test_row_numbers_sequential(self):
        assert [entry.number for entry in TABLE5] == list(range(1, 39))

    def test_names_unique(self):
        names = [entry.name for entry in TABLE5]
        assert len(set(names)) == 38

    def test_by_name_lookup(self):
        assert BY_NAME["CAX-SCO"].number == 3
        assert BY_NAME["PRP-TRP"].paper_class == "theta"

    def test_every_factory_builds_a_rule(self):
        for entry in TABLE5:
            rule = entry.factory()
            assert isinstance(rule, Rule)

    def test_paper_class_labels(self):
        # Spot checks against the paper's class column.
        assert BY_NAME["CAX-EQC1"].paper_class == "alpha"
        assert BY_NAME["SCM-EQC2"].paper_class == "beta"
        assert BY_NAME["PRP-DOM"].paper_class == "gamma"
        assert BY_NAME["PRP-EQP1"].paper_class == "delta"
        assert BY_NAME["EQ-REP-S"].paper_class == "same-as"
        assert BY_NAME["SCM-SCO"].paper_class == "theta"
        assert BY_NAME["RDFS4"].paper_class == "trivial"

    def test_eqrep_rows_share_executor(self):
        rules = make_rules(["EQ-REP-S", "EQ-REP-P", "EQ-REP-O"])
        assert len(rules) == 1
        assert rules[0].name == "EQ-REP"


class TestRulesetComposition:
    def test_rho_df_members(self):
        # ρdf: the 8 filled-circle rows of the ρDF column.
        assert set(ruleset_rule_names("rho-df")) == {
            "CAX-SCO", "PRP-DOM", "PRP-RNG", "PRP-SPO1",
            "SCM-DOM2", "SCM-RNG2", "SCM-SCO", "SCM-SPO",
        }

    def test_rdfs_default_members(self):
        assert set(ruleset_rule_names("rdfs-default")) == {
            "CAX-SCO", "PRP-DOM", "PRP-RNG", "PRP-SPO1",
            "SCM-DOM1", "SCM-DOM2", "SCM-RNG1", "SCM-RNG2",
            "SCM-SCO", "SCM-SPO",
        }

    def test_rdfs_full_adds_halfcircle_rules(self):
        full = set(ruleset_rule_names("rdfs-full"))
        default = set(ruleset_rule_names("rdfs-default"))
        assert full - default == {
            "RDFS4", "RDFS6", "RDFS8", "RDFS10", "RDFS12", "RDFS13",
        }

    def test_rdfs_plus_has_29_rows(self):
        assert len(ruleset_rule_names("rdfs-plus")) == 29

    def test_rdfs_plus_full_adds_scm_cls_dp_op_rdfs4(self):
        plus = set(ruleset_rule_names("rdfs-plus"))
        full = set(ruleset_rule_names("rdfs-plus-full"))
        assert full - plus == {"SCM-CLS", "SCM-DP", "SCM-OP", "RDFS4"}

    def test_rho_df_subset_of_rdfs_default(self):
        assert set(ruleset_rule_names("rho-df")) <= set(
            ruleset_rule_names("rdfs-default")
        )

    def test_all_names_resolvable(self):
        for name in RULESET_NAMES:
            rules = get_ruleset(name)
            assert rules
            assert all(isinstance(rule, Rule) for rule in rules)

    def test_unknown_ruleset_rejected(self):
        with pytest.raises(ValueError):
            ruleset_rule_names("owl-dl")
