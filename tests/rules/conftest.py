"""Shared helpers for rule-level tests."""

import pytest

from repro.core.engine import InferrayEngine
from repro.rdf.terms import IRI, Triple


@pytest.fixture
def run_rules():
    """Materialize ``triples`` under an explicit rule list; returns a set."""

    def _run(triples, rules):
        engine = InferrayEngine(list(rules))
        engine.load_triples(triples)
        engine.materialize()
        return set(engine.triples())

    return _run


@pytest.fixture
def ex():
    """Mint example.org IRIs: ex('a') == IRI('ex:a')."""

    def _mint(name: str) -> IRI:
        return IRI(f"ex:{name}")

    return _mint


def triple(s, p, o) -> Triple:
    return Triple(s, p, o)
