"""Ruleset selection coverage: exact member lists and error paths."""

import pytest

from repro.rules.rulesets import (
    RULESET_NAMES,
    get_ruleset,
    ruleset_rule_names,
)

#: The exact Table-5 rule names of every ruleset, in catalogue order.
EXPECTED_NAMES = {
    "rho-df": [
        "CAX-SCO", "PRP-DOM", "PRP-RNG", "PRP-SPO1",
        "SCM-DOM2", "SCM-RNG2", "SCM-SCO", "SCM-SPO",
    ],
    "rdfs-default": [
        "CAX-SCO", "PRP-DOM", "PRP-RNG", "PRP-SPO1",
        "SCM-DOM1", "SCM-DOM2", "SCM-RNG1", "SCM-RNG2",
        "SCM-SCO", "SCM-SPO",
    ],
    "rdfs-full": [
        "CAX-SCO", "PRP-DOM", "PRP-RNG", "PRP-SPO1",
        "SCM-DOM1", "SCM-DOM2", "SCM-RNG1", "SCM-RNG2",
        "SCM-SCO", "SCM-SPO",
        # Half-circle axiom rules, catalogue order (rows 33-38).
        "RDFS4", "RDFS8", "RDFS12", "RDFS13", "RDFS6", "RDFS10",
    ],
    "rdfs-plus": [
        "CAX-EQC1", "CAX-EQC2", "CAX-SCO",
        "EQ-REP-O", "EQ-REP-P", "EQ-REP-S", "EQ-SYM", "EQ-TRANS",
        "PRP-DOM", "PRP-EQP1", "PRP-EQP2", "PRP-FP", "PRP-IFP",
        "PRP-INV1", "PRP-INV2", "PRP-RNG", "PRP-SPO1", "PRP-SYMP",
        "PRP-TRP",
        "SCM-DOM1", "SCM-DOM2", "SCM-EQC1", "SCM-EQC2", "SCM-EQP1",
        "SCM-EQP2", "SCM-RNG1", "SCM-RNG2", "SCM-SCO", "SCM-SPO",
    ],
}
EXPECTED_NAMES["rdfs-plus-full"] = EXPECTED_NAMES["rdfs-plus"] + [
    "SCM-CLS", "SCM-DP", "SCM-OP", "RDFS4",
]


class TestRuleNameLists:
    def test_every_named_ruleset_is_covered(self):
        assert set(EXPECTED_NAMES) == set(RULESET_NAMES)

    @pytest.mark.parametrize("name", RULESET_NAMES)
    def test_exact_rule_names(self, name):
        assert ruleset_rule_names(name) == EXPECTED_NAMES[name]

    def test_executor_counts_dedup_shared_eq_rep(self):
        # EQ-REP-S/P/O share one executor: 29 names -> 27 executors.
        assert len(get_ruleset("rdfs-plus")) == 27
        assert len(get_ruleset("rdfs-plus-full")) == 31
        assert len(get_ruleset("rdfs-default")) == 10

    @pytest.mark.parametrize("name", RULESET_NAMES)
    def test_executor_names_match_catalogue(self, name):
        executor_names = {rule.name for rule in get_ruleset(name)}
        expected = {
            "EQ-REP" if n.startswith("EQ-REP-") else n
            for n in EXPECTED_NAMES[name]
        }
        assert executor_names == expected


class TestUnknownRulesetErrors:
    @pytest.mark.parametrize(
        "bogus", ("rdfs", "owl-full", "", "RDFS-DEFAULT", "rho_df")
    )
    def test_unknown_name_raises_value_error(self, bogus):
        with pytest.raises(ValueError) as excinfo:
            ruleset_rule_names(bogus)
        message = str(excinfo.value)
        assert repr(bogus) in message
        # The error must teach the valid choices.
        for valid in RULESET_NAMES:
            assert valid in message

    def test_get_ruleset_propagates_the_error(self):
        with pytest.raises(ValueError, match="unknown ruleset"):
            get_ruleset("nope")

    def test_engine_constructor_propagates_the_error(self):
        from repro.core.engine import InferrayEngine

        with pytest.raises(ValueError, match="unknown ruleset"):
            InferrayEngine("nope")
