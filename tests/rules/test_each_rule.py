"""One behavioural test per Table-5 rule (plus edge cases).

Each test loads a minimal antecedent instance, materializes with just
the rule under test (plus its Table-5 companions where the semantics
need them, e.g. sameAs closure for PRP-FP), and asserts the expected
head triples appear.
"""

from repro.rdf.terms import Triple
from repro.rdf.vocabulary import OWL, RDF, RDFS
from repro.rules.table5 import make_rules


def rules(*names):
    return make_rules(list(names))


class TestCaxRules:
    def test_cax_sco(self, run_rules, ex):
        out = run_rules(
            [
                Triple(ex("c1"), RDFS.subClassOf, ex("c2")),
                Triple(ex("x"), RDF.type, ex("c1")),
            ],
            rules("CAX-SCO"),
        )
        assert Triple(ex("x"), RDF.type, ex("c2")) in out

    def test_cax_sco_no_false_direction(self, run_rules, ex):
        out = run_rules(
            [
                Triple(ex("c1"), RDFS.subClassOf, ex("c2")),
                Triple(ex("x"), RDF.type, ex("c2")),
            ],
            rules("CAX-SCO"),
        )
        assert Triple(ex("x"), RDF.type, ex("c1")) not in out

    def test_cax_eqc1(self, run_rules, ex):
        out = run_rules(
            [
                Triple(ex("c1"), OWL.equivalentClass, ex("c2")),
                Triple(ex("x"), RDF.type, ex("c1")),
            ],
            rules("CAX-EQC1"),
        )
        assert Triple(ex("x"), RDF.type, ex("c2")) in out

    def test_cax_eqc2(self, run_rules, ex):
        out = run_rules(
            [
                Triple(ex("c1"), OWL.equivalentClass, ex("c2")),
                Triple(ex("x"), RDF.type, ex("c2")),
            ],
            rules("CAX-EQC2"),
        )
        assert Triple(ex("x"), RDF.type, ex("c1")) in out


class TestEqRules:
    def test_eq_sym(self, run_rules, ex):
        out = run_rules(
            [Triple(ex("a"), OWL.sameAs, ex("b"))], rules("EQ-SYM")
        )
        assert Triple(ex("b"), OWL.sameAs, ex("a")) in out

    def test_eq_trans(self, run_rules, ex):
        out = run_rules(
            [
                Triple(ex("a"), OWL.sameAs, ex("b")),
                Triple(ex("b"), OWL.sameAs, ex("c")),
            ],
            rules("EQ-TRANS"),
        )
        assert Triple(ex("a"), OWL.sameAs, ex("c")) in out

    def test_eq_rep_s(self, run_rules, ex):
        out = run_rules(
            [
                Triple(ex("s1"), OWL.sameAs, ex("s2")),
                Triple(ex("s2"), ex("p"), ex("o")),
            ],
            rules("EQ-REP-S"),
        )
        assert Triple(ex("s1"), ex("p"), ex("o")) in out

    def test_eq_rep_o(self, run_rules, ex):
        out = run_rules(
            [
                Triple(ex("o1"), OWL.sameAs, ex("o2")),
                Triple(ex("s"), ex("p"), ex("o2")),
            ],
            rules("EQ-REP-O"),
        )
        assert Triple(ex("s"), ex("p"), ex("o1")) in out

    def test_eq_rep_p(self, run_rules, ex):
        # p1/p2 must be known properties: p2 is used as a predicate and
        # p1 needs the promotion that owl:sameAs does not grant — the
        # realistic instance has p1 used as a predicate somewhere too.
        out = run_rules(
            [
                Triple(ex("s0"), ex("p1"), ex("o0")),
                Triple(ex("p1"), OWL.sameAs, ex("p2")),
                Triple(ex("s"), ex("p2"), ex("o")),
            ],
            rules("EQ-REP-P"),
        )
        assert Triple(ex("s"), ex("p1"), ex("o")) in out


class TestPrpRules:
    def test_prp_dom(self, run_rules, ex):
        out = run_rules(
            [
                Triple(ex("p"), RDFS.domain, ex("c")),
                Triple(ex("x"), ex("p"), ex("y")),
            ],
            rules("PRP-DOM"),
        )
        assert Triple(ex("x"), RDF.type, ex("c")) in out
        assert Triple(ex("y"), RDF.type, ex("c")) not in out

    def test_prp_rng(self, run_rules, ex):
        out = run_rules(
            [
                Triple(ex("p"), RDFS.range, ex("c")),
                Triple(ex("x"), ex("p"), ex("y")),
            ],
            rules("PRP-RNG"),
        )
        assert Triple(ex("y"), RDF.type, ex("c")) in out
        assert Triple(ex("x"), RDF.type, ex("c")) not in out

    def test_prp_spo1(self, run_rules, ex):
        out = run_rules(
            [
                Triple(ex("p1"), RDFS.subPropertyOf, ex("p2")),
                Triple(ex("x"), ex("p1"), ex("y")),
            ],
            rules("PRP-SPO1"),
        )
        assert Triple(ex("x"), ex("p2"), ex("y")) in out

    def test_prp_symp(self, run_rules, ex):
        out = run_rules(
            [
                Triple(ex("p"), RDF.type, OWL.SymmetricProperty),
                Triple(ex("x"), ex("p"), ex("y")),
            ],
            rules("PRP-SYMP"),
        )
        assert Triple(ex("y"), ex("p"), ex("x")) in out

    def test_prp_trp(self, run_rules, ex):
        out = run_rules(
            [
                Triple(ex("p"), RDF.type, OWL.TransitiveProperty),
                Triple(ex("a"), ex("p"), ex("b")),
                Triple(ex("b"), ex("p"), ex("c")),
                Triple(ex("c"), ex("p"), ex("d")),
            ],
            rules("PRP-TRP"),
        )
        assert Triple(ex("a"), ex("p"), ex("c")) in out
        assert Triple(ex("a"), ex("p"), ex("d")) in out
        assert Triple(ex("b"), ex("p"), ex("d")) in out

    def test_prp_inv1(self, run_rules, ex):
        out = run_rules(
            [
                Triple(ex("p1"), OWL.inverseOf, ex("p2")),
                Triple(ex("x"), ex("p1"), ex("y")),
            ],
            rules("PRP-INV1"),
        )
        assert Triple(ex("y"), ex("p2"), ex("x")) in out

    def test_prp_inv2(self, run_rules, ex):
        out = run_rules(
            [
                Triple(ex("p1"), OWL.inverseOf, ex("p2")),
                Triple(ex("x"), ex("p2"), ex("y")),
            ],
            rules("PRP-INV2"),
        )
        assert Triple(ex("y"), ex("p1"), ex("x")) in out

    def test_prp_eqp1(self, run_rules, ex):
        out = run_rules(
            [
                Triple(ex("p1"), OWL.equivalentProperty, ex("p2")),
                Triple(ex("x"), ex("p1"), ex("y")),
            ],
            rules("PRP-EQP1"),
        )
        assert Triple(ex("x"), ex("p2"), ex("y")) in out

    def test_prp_eqp2(self, run_rules, ex):
        out = run_rules(
            [
                Triple(ex("p1"), OWL.equivalentProperty, ex("p2")),
                Triple(ex("x"), ex("p2"), ex("y")),
            ],
            rules("PRP-EQP2"),
        )
        assert Triple(ex("x"), ex("p1"), ex("y")) in out

    def test_prp_fp(self, run_rules, ex):
        # Full sameAs semantics needs EQ-SYM/EQ-TRANS to complete the
        # clique from the consecutive pairs PRP-FP emits.
        out = run_rules(
            [
                Triple(ex("p"), RDF.type, OWL.FunctionalProperty),
                Triple(ex("x"), ex("p"), ex("y1")),
                Triple(ex("x"), ex("p"), ex("y2")),
                Triple(ex("x"), ex("p"), ex("y3")),
            ],
            rules("PRP-FP", "EQ-SYM", "EQ-TRANS"),
        )
        assert Triple(ex("y1"), OWL.sameAs, ex("y2")) in out
        assert Triple(ex("y2"), OWL.sameAs, ex("y1")) in out
        assert Triple(ex("y1"), OWL.sameAs, ex("y3")) in out

    def test_prp_fp_no_conflict_no_sameas(self, run_rules, ex):
        out = run_rules(
            [
                Triple(ex("p"), RDF.type, OWL.FunctionalProperty),
                Triple(ex("x"), ex("p"), ex("y1")),
                Triple(ex("z"), ex("p"), ex("y2")),
            ],
            rules("PRP-FP", "EQ-SYM", "EQ-TRANS"),
        )
        assert Triple(ex("y1"), OWL.sameAs, ex("y2")) not in out

    def test_prp_ifp(self, run_rules, ex):
        out = run_rules(
            [
                Triple(ex("p"), RDF.type, OWL.InverseFunctionalProperty),
                Triple(ex("x1"), ex("p"), ex("y")),
                Triple(ex("x2"), ex("p"), ex("y")),
            ],
            rules("PRP-IFP", "EQ-SYM", "EQ-TRANS"),
        )
        assert Triple(ex("x1"), OWL.sameAs, ex("x2")) in out


class TestScmRules:
    def test_scm_sco_chain(self, run_rules, ex):
        out = run_rules(
            [
                Triple(ex("c1"), RDFS.subClassOf, ex("c2")),
                Triple(ex("c2"), RDFS.subClassOf, ex("c3")),
            ],
            rules("SCM-SCO"),
        )
        assert Triple(ex("c1"), RDFS.subClassOf, ex("c3")) in out

    def test_scm_spo_chain(self, run_rules, ex):
        out = run_rules(
            [
                Triple(ex("p1"), RDFS.subPropertyOf, ex("p2")),
                Triple(ex("p2"), RDFS.subPropertyOf, ex("p3")),
            ],
            rules("SCM-SPO"),
        )
        assert Triple(ex("p1"), RDFS.subPropertyOf, ex("p3")) in out

    def test_scm_dom1(self, run_rules, ex):
        out = run_rules(
            [
                Triple(ex("p"), RDFS.domain, ex("c1")),
                Triple(ex("c1"), RDFS.subClassOf, ex("c2")),
            ],
            rules("SCM-DOM1"),
        )
        assert Triple(ex("p"), RDFS.domain, ex("c2")) in out

    def test_scm_dom2(self, run_rules, ex):
        out = run_rules(
            [
                Triple(ex("p2"), RDFS.domain, ex("c")),
                Triple(ex("p1"), RDFS.subPropertyOf, ex("p2")),
            ],
            rules("SCM-DOM2"),
        )
        assert Triple(ex("p1"), RDFS.domain, ex("c")) in out

    def test_scm_rng1(self, run_rules, ex):
        out = run_rules(
            [
                Triple(ex("p"), RDFS.range, ex("c1")),
                Triple(ex("c1"), RDFS.subClassOf, ex("c2")),
            ],
            rules("SCM-RNG1"),
        )
        assert Triple(ex("p"), RDFS.range, ex("c2")) in out

    def test_scm_rng2(self, run_rules, ex):
        out = run_rules(
            [
                Triple(ex("p2"), RDFS.range, ex("c")),
                Triple(ex("p1"), RDFS.subPropertyOf, ex("p2")),
            ],
            rules("SCM-RNG2"),
        )
        assert Triple(ex("p1"), RDFS.range, ex("c")) in out

    def test_scm_eqc1(self, run_rules, ex):
        out = run_rules(
            [Triple(ex("c1"), OWL.equivalentClass, ex("c2"))],
            rules("SCM-EQC1"),
        )
        assert Triple(ex("c1"), RDFS.subClassOf, ex("c2")) in out
        assert Triple(ex("c2"), RDFS.subClassOf, ex("c1")) in out

    def test_scm_eqc2(self, run_rules, ex):
        out = run_rules(
            [
                Triple(ex("c1"), RDFS.subClassOf, ex("c2")),
                Triple(ex("c2"), RDFS.subClassOf, ex("c1")),
            ],
            rules("SCM-EQC2"),
        )
        assert Triple(ex("c1"), OWL.equivalentClass, ex("c2")) in out
        assert Triple(ex("c2"), OWL.equivalentClass, ex("c1")) in out

    def test_scm_eqc2_needs_both_directions(self, run_rules, ex):
        out = run_rules(
            [Triple(ex("c1"), RDFS.subClassOf, ex("c2"))],
            rules("SCM-EQC2"),
        )
        assert Triple(ex("c1"), OWL.equivalentClass, ex("c2")) not in out

    def test_scm_eqp1(self, run_rules, ex):
        out = run_rules(
            [Triple(ex("p1"), OWL.equivalentProperty, ex("p2"))],
            rules("SCM-EQP1"),
        )
        assert Triple(ex("p1"), RDFS.subPropertyOf, ex("p2")) in out
        assert Triple(ex("p2"), RDFS.subPropertyOf, ex("p1")) in out

    def test_scm_eqp2(self, run_rules, ex):
        out = run_rules(
            [
                Triple(ex("p1"), RDFS.subPropertyOf, ex("p2")),
                Triple(ex("p2"), RDFS.subPropertyOf, ex("p1")),
            ],
            rules("SCM-EQP2"),
        )
        assert Triple(ex("p1"), OWL.equivalentProperty, ex("p2")) in out

    def test_scm_cls(self, run_rules, ex):
        out = run_rules(
            [Triple(ex("c"), RDF.type, OWL.Class)], rules("SCM-CLS")
        )
        assert Triple(ex("c"), RDFS.subClassOf, ex("c")) in out
        assert Triple(ex("c"), OWL.equivalentClass, ex("c")) in out
        assert Triple(ex("c"), RDFS.subClassOf, OWL.Thing) in out
        assert Triple(OWL.Nothing, RDFS.subClassOf, ex("c")) in out

    def test_scm_dp(self, run_rules, ex):
        out = run_rules(
            [Triple(ex("p"), RDF.type, OWL.DatatypeProperty)],
            rules("SCM-DP"),
        )
        assert Triple(ex("p"), RDFS.subPropertyOf, ex("p")) in out
        assert Triple(ex("p"), OWL.equivalentProperty, ex("p")) in out

    def test_scm_op(self, run_rules, ex):
        out = run_rules(
            [Triple(ex("p"), RDF.type, OWL.ObjectProperty)],
            rules("SCM-OP"),
        )
        assert Triple(ex("p"), RDFS.subPropertyOf, ex("p")) in out


class TestRdfsAxiomRules:
    def test_rdfs4_subjects_and_objects(self, run_rules, ex):
        out = run_rules(
            [Triple(ex("x"), ex("p"), ex("y"))], rules("RDFS4")
        )
        assert Triple(ex("x"), RDF.type, RDFS.Resource) in out
        assert Triple(ex("y"), RDF.type, RDFS.Resource) in out

    def test_rdfs6(self, run_rules, ex):
        out = run_rules(
            [Triple(ex("p"), RDF.type, RDF.Property)], rules("RDFS6")
        )
        assert Triple(ex("p"), RDFS.subPropertyOf, ex("p")) in out

    def test_rdfs8(self, run_rules, ex):
        out = run_rules(
            [Triple(ex("c"), RDF.type, RDFS.Class)], rules("RDFS8")
        )
        assert Triple(ex("c"), RDFS.subClassOf, RDFS.Resource) in out

    def test_rdfs10(self, run_rules, ex):
        out = run_rules(
            [Triple(ex("c"), RDF.type, RDFS.Class)], rules("RDFS10")
        )
        assert Triple(ex("c"), RDFS.subClassOf, ex("c")) in out

    def test_rdfs12(self, run_rules, ex):
        out = run_rules(
            [Triple(ex("m"), RDF.type, RDFS.ContainerMembershipProperty)],
            rules("RDFS12"),
        )
        assert Triple(ex("m"), RDFS.subPropertyOf, RDFS.member) in out

    def test_rdfs13(self, run_rules, ex):
        out = run_rules(
            [Triple(ex("d"), RDF.type, RDFS.Datatype)], rules("RDFS13")
        )
        assert Triple(ex("d"), RDFS.subClassOf, RDFS.Literal) in out
