"""RDFS entailment conformance mini-suite.

Each fixture under ``tests/fixtures/conformance/`` is a pair of
N-Triples files: ``<name>.in.nt`` (the input graph, with a
``# ruleset: <name>`` directive on the first line) and
``<name>.out.nt`` (the *exact* set of entailed triples the engine must
add — no more, no less).  The suite pins:

* subClassOf / subPropertyOf transitivity (incl. cycles),
* domain / range typing and their schema-level closure,
* the ρdf subset boundaries (SCM-DOM1 / SCM-RNG1 absent: fixtures
  07/08/10 assert the *reduced* entailment set under ``rho-df``),
* RDFS-Plus equality/property semantics (sameAs cliques,
  equivalentClass, transitive/symmetric/inverse/functional properties),
* the RDFS-Full axiomatic rules (RDFS4/8/10).

Every fixture runs sequentially *and* under the parallel scheduler
(workers=2), so the conformance answers double as scheduler-correctness
checks.
"""

import glob
import os

import pytest

from repro.core.engine import InferrayEngine
from repro.rdf.ntriples import parse_file
from repro.rules.rulesets import RULESET_NAMES

FIXTURE_DIR = os.path.join(
    os.path.dirname(__file__), "..", "fixtures", "conformance"
)

FIXTURES = sorted(
    os.path.basename(path)[: -len(".in.nt")]
    for path in glob.glob(os.path.join(FIXTURE_DIR, "*.in.nt"))
)


def fixture_paths(name):
    return (
        os.path.join(FIXTURE_DIR, f"{name}.in.nt"),
        os.path.join(FIXTURE_DIR, f"{name}.out.nt"),
    )


def fixture_ruleset(in_path):
    with open(in_path, encoding="utf-8") as handle:
        first = handle.readline()
    assert first.startswith("# ruleset:"), (
        f"{in_path} must open with a '# ruleset: <name>' directive"
    )
    ruleset = first.split(":", 1)[1].strip()
    assert ruleset in RULESET_NAMES, ruleset
    return ruleset


def test_suite_is_populated():
    assert len(FIXTURES) >= 15
    for name in FIXTURES:
        in_path, out_path = fixture_paths(name)
        assert os.path.exists(out_path), f"missing {out_path}"
        assert list(parse_file(out_path)), f"{out_path} is empty"


@pytest.mark.parametrize("workers", (1, 2), ids=("seq", "par"))
@pytest.mark.parametrize("name", FIXTURES)
def test_conformance(name, workers):
    in_path, out_path = fixture_paths(name)
    ruleset = fixture_ruleset(in_path)
    asserted = set(parse_file(in_path))
    expected = set(parse_file(out_path))
    assert expected, "expected entailments must be non-empty"
    assert not (expected & asserted), (
        "expected entailments must not repeat asserted triples"
    )

    engine = InferrayEngine(ruleset, workers=workers)
    engine.load_file(in_path)
    engine.materialize()
    closure = set(engine.triples())

    missing = (asserted | expected) - closure
    extra = closure - (asserted | expected)
    assert closure == asserted | expected, (
        f"{name} ({ruleset}, workers={workers}): "
        f"missing={sorted(t.n3() for t in missing)[:5]} "
        f"extra={sorted(t.n3() for t in extra)[:5]}"
    )
