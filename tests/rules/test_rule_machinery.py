"""Machinery-level tests: merge joins, theta pre-pass, contexts, misc."""

from array import array

import pytest

from repro.core.engine import InferrayEngine
from repro.rdf.terms import Triple
from repro.rdf.vocabulary import OWL, RDF, RDFS
from repro.rules.classes import AlphaRule, ThetaRule, merge_join_groups
from repro.rules.table5 import make_rules


class TestMergeJoinGroups:
    @staticmethod
    def collect(view1, view2):
        hits = []
        merge_join_groups(
            array("q", view1),
            array("q", view2),
            lambda a, b: hits.append((tuple(a), tuple(b))),
        )
        return hits

    def test_no_overlap(self):
        assert self.collect([1, 10], [2, 20]) == []

    def test_single_match(self):
        assert self.collect([1, 10], [1, 20]) == [((10,), (20,))]

    def test_group_cartesian(self):
        hits = self.collect([5, 1, 5, 2], [5, 8, 5, 9])
        assert hits == [((1, 2), (8, 9))]

    def test_multiple_keys(self):
        hits = self.collect([1, 10, 2, 20, 3, 30], [2, 200, 3, 300, 4, 400])
        assert hits == [((20,), (200,)), ((30,), (300,))]

    def test_empty_views(self):
        assert self.collect([], [1, 2]) == []
        assert self.collect([1, 2], []) == []


class TestAlphaRuleValidation:
    def test_bad_position_rejected(self):
        with pytest.raises(ValueError):
            AlphaRule("X", "subClassOf", "x", "type", "o", "type", "r1", "r2")

    def test_bad_head_source_rejected(self):
        with pytest.raises(ValueError):
            AlphaRule(
                "X", "subClassOf", "s", "type", "o", "type", "join", "r1"
            )


class TestThetaRule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ThetaRule("X", "mystery")

    def test_prepass_closes_before_iteration(self, ex):
        engine = InferrayEngine(make_rules(["SCM-SCO"]))
        engine.load_triples(
            [
                Triple(ex("a"), RDFS.subClassOf, ex("b")),
                Triple(ex("b"), RDFS.subClassOf, ex("c")),
                Triple(ex("c"), RDFS.subClassOf, ex("d")),
            ]
        )
        stats = engine.materialize()
        assert stats.closure_pairs > 0
        assert Triple(ex("a"), RDFS.subClassOf, ex("d")) in set(
            engine.triples()
        )
        # The fixed point should settle immediately after the pre-pass.
        assert stats.iterations <= 2

    def test_closure_reruns_when_new_edges_appear(self, ex):
        # EQC1 feeds new subClassOf edges *during* iteration; SCM-SCO
        # must still close them (theta re-fires on non-empty deltas).
        engine = InferrayEngine(make_rules(["SCM-SCO", "SCM-EQC1"]))
        engine.load_triples(
            [
                Triple(ex("a"), OWL.equivalentClass, ex("b")),
                Triple(ex("b"), RDFS.subClassOf, ex("c")),
                Triple(ex("c"), RDFS.subClassOf, ex("d")),
            ]
        )
        engine.materialize()
        assert Triple(ex("a"), RDFS.subClassOf, ex("d")) in set(
            engine.triples()
        )

    def test_newly_marked_transitive_property(self, ex):
        # The transitive marker itself arrives via CAX-SCO during the
        # fixed point; PRP-TRP must pick the property up then.
        engine = InferrayEngine(
            make_rules(["PRP-TRP", "CAX-SCO"])
        )
        engine.load_triples(
            [
                Triple(ex("T"), RDFS.subClassOf, OWL.TransitiveProperty),
                Triple(ex("p"), RDF.type, ex("T")),
                Triple(ex("a"), ex("p"), ex("b")),
                Triple(ex("b"), ex("p"), ex("c")),
            ]
        )
        engine.materialize()
        assert Triple(ex("a"), ex("p"), ex("c")) in set(engine.triples())

    def test_sameas_closure_materialises_clique(self, ex):
        engine = InferrayEngine(make_rules(["EQ-TRANS", "EQ-SYM"]))
        engine.load_triples(
            [
                Triple(ex("a"), OWL.sameAs, ex("b")),
                Triple(ex("b"), OWL.sameAs, ex("c")),
            ]
        )
        engine.materialize()
        out = set(engine.triples())
        for x in ("a", "b", "c"):
            for y in ("a", "b", "c"):
                assert Triple(ex(x), OWL.sameAs, ex(y)) in out


class TestSameAsInteraction:
    def test_sameas_copies_property_tables_both_ways(self, ex):
        engine = InferrayEngine("rdfs-plus")
        engine.load_triples(
            [
                Triple(ex("a"), OWL.sameAs, ex("b")),
                Triple(ex("a"), ex("p"), ex("v")),
                Triple(ex("w"), ex("q"), ex("b")),
            ]
        )
        engine.materialize()
        out = set(engine.triples())
        assert Triple(ex("b"), ex("p"), ex("v")) in out  # EQ-REP-S
        assert Triple(ex("w"), ex("q"), ex("a")) in out  # EQ-REP-O

    def test_sameas_predicate_substitution(self, ex):
        engine = InferrayEngine("rdfs-plus")
        engine.load_triples(
            [
                Triple(ex("s0"), ex("p1"), ex("o0")),
                Triple(ex("s1"), ex("p2"), ex("o1")),
                Triple(ex("p1"), OWL.sameAs, ex("p2")),
            ]
        )
        engine.materialize()
        out = set(engine.triples())
        assert Triple(ex("s1"), ex("p1"), ex("o1")) in out
        assert Triple(ex("s0"), ex("p2"), ex("o0")) in out


class TestRuleStatsTracking:
    def test_per_rule_counters_populate(self, ex):
        engine = InferrayEngine("rdfs-default")
        engine.load_triples(
            [
                Triple(ex("c1"), RDFS.subClassOf, ex("c2")),
                Triple(ex("x"), RDF.type, ex("c1")),
            ]
        )
        stats = engine.materialize()
        assert stats.per_rule.get("CAX-SCO", 0) >= 1
