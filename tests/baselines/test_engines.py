"""Unit tests for the three baseline engines."""

import pytest

from repro.baselines.hashjoin import HashJoinEngine
from repro.baselines.naive import NaiveEngine
from repro.baselines.rete import ReteEngine
from repro.core.engine import MaterializationTimeout
from repro.datasets.chains import subclass_chain
from repro.rdf.terms import IRI, Triple
from repro.rdf.vocabulary import OWL, RDF, RDFS

ENGINES = [NaiveEngine, HashJoinEngine, ReteEngine]


def ex(name):
    return IRI(f"ex:{name}")


DATA = [
    Triple(ex("human"), RDFS.subClassOf, ex("mammal")),
    Triple(ex("mammal"), RDFS.subClassOf, ex("animal")),
    Triple(ex("Bart"), RDF.type, ex("human")),
]


@pytest.mark.parametrize("engine_class", ENGINES)
class TestBaselineBasics:
    def test_materializes_intro(self, engine_class):
        engine = engine_class("rdfs-default")
        engine.load_triples(DATA)
        stats = engine.materialize()
        out = engine.as_decoded_set()
        assert Triple(ex("Bart"), RDF.type, ex("animal")) in out
        assert Triple(ex("human"), RDFS.subClassOf, ex("animal")) in out
        assert stats.n_inferred == 3
        assert stats.n_total == 6

    def test_idempotent(self, engine_class):
        engine = engine_class("rdfs-default")
        engine.load_triples(DATA)
        engine.materialize()
        snapshot = engine.as_decoded_set()
        again = engine.materialize()
        assert again.n_inferred == 0
        assert engine.as_decoded_set() == snapshot

    def test_empty_input(self, engine_class):
        engine = engine_class("rdfs-default")
        stats = engine.materialize()
        assert stats.n_total == 0

    def test_duplicate_input_collapsed(self, engine_class):
        engine = engine_class("rdfs-default")
        engine.load_triples(DATA + DATA)
        assert engine.n_triples == len(DATA)

    def test_timeout(self, engine_class):
        engine = engine_class("rdfs-default")
        engine.load_triples(subclass_chain(120))
        with pytest.raises(MaterializationTimeout):
            engine.materialize(timeout_seconds=-1.0)

    def test_custom_rule_names(self, engine_class):
        engine = engine_class(["CAX-SCO"])
        engine.load_triples(DATA)
        engine.materialize()
        out = engine.as_decoded_set()
        assert Triple(ex("Bart"), RDF.type, ex("mammal")) in out
        assert (
            Triple(ex("human"), RDFS.subClassOf, ex("animal")) not in out
        )


class TestStrategySpecifics:
    def test_naive_counts_duplicates(self):
        engine = NaiveEngine("rdfs-default")
        engine.load_triples(subclass_chain(20))
        stats = engine.materialize()
        # Pass-based re-derivation must produce duplicate work.
        assert stats.duplicates > 0
        assert stats.iterations > 1

    def test_hashjoin_fewer_iterations_than_naive_derives_same(self):
        data = subclass_chain(30)
        naive = NaiveEngine("rdfs-default")
        naive.load_triples(data)
        naive.materialize()
        hashjoin = HashJoinEngine("rdfs-default")
        hashjoin.load_triples(data)
        hashjoin.materialize()
        assert hashjoin.as_decoded_set() == naive.as_decoded_set()

    def test_rete_reports_tokens(self):
        engine = ReteEngine("rdfs-default")
        engine.load_triples(subclass_chain(15))
        stats = engine.materialize()
        assert stats.extra["tokens"] > 0
        assert stats.extra["fires"] >= stats.n_inferred

    def test_rete_event_driven_single_iteration(self):
        engine = ReteEngine("rdfs-default")
        engine.load_triples(DATA)
        stats = engine.materialize()
        assert stats.iterations == 1

    def test_hashjoin_three_atom_rule(self):
        engine = HashJoinEngine("rdfs-plus")
        engine.load_triples(
            [
                Triple(ex("p"), RDF.type, OWL.TransitiveProperty),
                Triple(ex("a"), ex("p"), ex("b")),
                Triple(ex("b"), ex("p"), ex("c")),
            ]
        )
        engine.materialize()
        assert Triple(ex("a"), ex("p"), ex("c")) in engine.as_decoded_set()
