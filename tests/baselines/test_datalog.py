"""Unit tests for the datalog rule forms and unification helpers."""

import pytest

from repro.baselines.datalog import (
    Atom,
    datalog_form,
    datalog_ruleset,
    is_var,
    match_atom,
    substitute,
)
from repro.dictionary.encoding import Dictionary
from repro.rules.spec import Vocab
from repro.rules.table5 import TABLE5


@pytest.fixture(scope="module")
def vocab():
    return Vocab(Dictionary())


class TestForms:
    def test_every_table5_rule_has_a_form(self, vocab):
        for entry in TABLE5:
            rule = datalog_form(entry.name, vocab)
            assert rule.name == entry.name
            assert rule.body and rule.heads

    def test_head_variables_bound_by_body(self, vocab):
        for entry in TABLE5:
            rule = datalog_form(entry.name, vocab)
            body_vars = {
                v for atom in rule.body for v in atom.variables()
            }
            head_vars = {
                v for atom in rule.heads for v in atom.variables()
            }
            assert head_vars <= body_vars, rule.name

    def test_not_equal_vars_in_body(self, vocab):
        for entry in TABLE5:
            rule = datalog_form(entry.name, vocab)
            body_vars = {
                v for atom in rule.body for v in atom.variables()
            }
            for var_a, var_b in rule.not_equal:
                assert {var_a, var_b} <= body_vars

    def test_ruleset_builder(self, vocab):
        rules = datalog_ruleset(["CAX-SCO", "PRP-DOM"], vocab)
        assert [r.name for r in rules] == ["CAX-SCO", "PRP-DOM"]

    def test_fp_has_inequality(self, vocab):
        rule = datalog_form("PRP-FP", vocab)
        assert rule.not_equal == (("?y1", "?y2"),)
        assert len(rule.body) == 3


class TestUnification:
    def test_is_var(self):
        assert is_var("?x")
        assert not is_var(42)

    def test_match_fresh_bindings(self):
        atom = Atom("?s", 100, "?o")
        bindings = match_atom(atom, (1, 100, 2), {})
        assert bindings == {"?s": 1, "?o": 2}

    def test_match_constant_mismatch(self):
        atom = Atom("?s", 100, "?o")
        assert match_atom(atom, (1, 200, 2), {}) is None

    def test_match_existing_binding_consistent(self):
        atom = Atom("?s", 100, "?o")
        assert match_atom(atom, (1, 100, 2), {"?s": 1}) == {"?s": 1, "?o": 2}
        assert match_atom(atom, (1, 100, 2), {"?s": 9}) is None

    def test_match_repeated_variable(self):
        atom = Atom("?x", 100, "?x")
        assert match_atom(atom, (7, 100, 7), {}) == {"?x": 7}
        assert match_atom(atom, (7, 100, 8), {}) is None

    def test_match_does_not_mutate_input(self):
        bindings = {"?s": 1}
        match_atom(Atom("?s", 100, "?o"), (1, 100, 2), bindings)
        assert bindings == {"?s": 1}

    def test_substitute(self):
        atom = Atom("?s", "?p", 5)
        ground = substitute(atom, {"?s": 1, "?p": 2})
        assert ground == Atom(1, 2, 5)

    def test_substitute_partial(self):
        atom = Atom("?s", "?p", "?o")
        assert substitute(atom, {"?s": 1}) == Atom(1, "?p", "?o")
