"""Write-ahead log tests: unit-level framing and server-level durability.

The durability contract: once the server acknowledges a write, that
write survives any crash — because the ack only happens after the WAL
append (and fsync, under the default policy) landed.
"""

import http.client
import os
import struct
import zlib

import pytest

from repro import Store
from repro.rdf import RDF, RDFS, Triple, iri
from repro.serving import ServerThread, WALCorruptionError, WriteAheadLog
from repro.serving.wal import WAL_MAGIC
from repro.faults import inject, reset

EX = "http://example.org/"


@pytest.fixture(autouse=True)
def _clean_registry():
    reset()
    yield
    reset()


def ex(name):
    return iri(EX + name)


def base_triples():
    return [
        Triple(ex("human"), RDFS.subClassOf, ex("mammal")),
        Triple(ex("Bart"), RDF.type, ex("human")),
    ]


def t(name):
    return Triple(ex(name), RDF.type, ex("human"))


class TestAppendReplay:
    def test_append_assigns_increasing_seqs(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "w.wal"))
        assert wal.append("add", [t("a")]) == 1
        assert wal.append("remove", [t("a")]) == 2
        assert wal.last_seq == 2
        assert wal.depth == 2
        wal.close()

    def test_replay_applies_pending_records(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "w.wal"))
        wal.append("add", [t("a"), t("b")])
        wal.append("remove", [t("b")])
        wal.close()
        reopened = WriteAheadLog(str(tmp_path / "w.wal"))
        store = Store(base_triples())
        assert reopened.replay_into(store) == 2
        store.materialize()
        assert t("a") in store
        assert t("b") not in store
        reopened.close()

    def test_reopen_continues_sequence(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "w.wal"))
        wal.append("add", [t("a")])
        wal.close()
        reopened = WriteAheadLog(str(tmp_path / "w.wal"))
        assert reopened.append("add", [t("b")]) == 2
        reopened.close()

    def test_empty_log_replays_nothing(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "w.wal"))
        assert wal.replay_into(Store()) == 0
        wal.close()

    def test_fsync_policy_validated(self, tmp_path):
        with pytest.raises(ValueError, match="unknown fsync policy"):
            WriteAheadLog(str(tmp_path / "w.wal"), fsync_policy="maybe")

    @pytest.mark.parametrize("policy", ["always", "batch", "never"])
    def test_all_policies_append_and_replay(self, tmp_path, policy):
        wal = WriteAheadLog(str(tmp_path / "w.wal"), fsync_policy=policy)
        wal.append("add", [t("a")])
        wal.sync()
        wal.close()
        reopened = WriteAheadLog(str(tmp_path / "w.wal"))
        assert reopened.depth == 1
        reopened.close()


class TestRecovery:
    def test_torn_tail_is_dropped_with_warning(self, tmp_path):
        path = str(tmp_path / "w.wal")
        wal = WriteAheadLog(path)
        wal.append("add", [t("a")])
        wal.append("add", [t("b")])
        wal.close()
        intact_size = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(struct.pack("<QBI", 3, 0, 999))  # torn header+len
            handle.write(b"partial payload that never finished")
        with pytest.warns(RuntimeWarning, match="torn"):
            reopened = WriteAheadLog(path)
        assert reopened.depth == 2
        assert reopened.torn_records_dropped == 1
        assert os.path.getsize(path) == intact_size
        # Appends continue cleanly after the truncation.
        assert reopened.append("add", [t("c")]) == 3
        reopened.close()

    def test_corrupt_crc_truncates_from_there(self, tmp_path):
        path = str(tmp_path / "w.wal")
        wal = WriteAheadLog(path)
        wal.append("add", [t("a")])
        wal.append("add", [t("b")])
        wal.close()
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF  # flip the final CRC byte
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        with pytest.warns(RuntimeWarning, match="torn"):
            reopened = WriteAheadLog(path)
        assert reopened.depth == 1  # only the first record survives
        reopened.close()

    def test_bad_magic_raises(self, tmp_path):
        path = str(tmp_path / "w.wal")
        with open(path, "wb") as handle:
            handle.write(b"definitely not a WAL file\n")
        with pytest.raises(WALCorruptionError, match="bad magic"):
            WriteAheadLog(path)

    def test_checkpoint_compacts_to_tail(self, tmp_path):
        path = str(tmp_path / "w.wal")
        wal = WriteAheadLog(path)
        for name in ("a", "b", "c"):
            wal.append("add", [t(name)])
        wal.checkpoint(2)
        assert wal.depth == 1
        assert wal.checkpoints_total == 1
        assert wal.last_checkpoint_at is not None
        wal.close()
        reopened = WriteAheadLog(path)
        assert reopened.depth == 1
        assert [entry[0] for entry in reopened._pending] == [3]
        # Sequence numbering survives compaction.
        assert reopened.append("add", [t("d")]) == 4
        reopened.close()

    def test_checkpoint_of_everything_leaves_magic_only(self, tmp_path):
        path = str(tmp_path / "w.wal")
        wal = WriteAheadLog(path)
        wal.append("add", [t("a")])
        wal.checkpoint(wal.last_seq)
        wal.close()
        assert open(path, "rb").read() == WAL_MAGIC


class TestServerDurability:
    def _post(self, address, path, body):
        host, port = address
        conn = http.client.HTTPConnection(host, port, timeout=30)
        conn.request("POST", path, body=body)
        response = conn.getresponse()
        status, raw = response.status, response.read()
        conn.close()
        return status, raw

    def test_acked_write_survives_crash_via_replay(self, tmp_path):
        """Ack with a dead flush pipeline, "crash", reboot, replay.

        The flush is broken from the second call on (the boot flush
        succeeds), so the acknowledged write never reaches the store —
        only the WAL holds it.  Abandoning the server without a
        graceful drain plays the part of the crash; a fresh WAL over
        the same file must replay the write into a fresh store.
        """
        wal_path = str(tmp_path / "serve.wal")
        store = Store(base_triples())
        nt = f"<{EX}Lisa> <{RDF.type.value}> <{EX}human> .\n"
        with inject("serving.flush:raise:after=1:times=-1"):
            handle = ServerThread(
                store,
                port=0,
                wal=WriteAheadLog(wal_path),
                flush_retry_seconds=0.01,
                max_drain_failures=2,
            ).start()
            try:
                status, raw = self._post(handle.address, "/add", nt)
                assert status == 202, raw  # acked: durably in the WAL
            finally:
                handle.stop()  # flush still broken: no final checkpoint
        recovered = WriteAheadLog(wal_path)
        assert recovered.depth >= 1
        reborn = Store(base_triples())
        assert recovered.replay_into(reborn) >= 1
        reborn.materialize()
        assert Triple(ex("Lisa"), RDF.type, ex("human")) in reborn
        assert Triple(ex("Lisa"), RDF.type, ex("mammal")) in reborn
        recovered.close()

    def test_wal_append_failure_rejects_with_503(self, tmp_path):
        wal_path = str(tmp_path / "serve.wal")
        store = Store(base_triples())
        nt = f"<{EX}Lisa> <{RDF.type.value}> <{EX}human> .\n"
        with inject("serving.wal:raise:times=-1"):
            with ServerThread(
                store, port=0, wal=WriteAheadLog(wal_path)
            ) as handle:
                status, raw = self._post(handle.address, "/add", nt)
        assert status == 503
        assert b"NOT durable" in raw
        # Nothing hit the log, so a recovery replays nothing.
        recovered = WriteAheadLog(wal_path)
        assert recovered.depth == 0
        recovered.close()

    def test_graceful_shutdown_checkpoints_to_empty_log(self, tmp_path):
        wal_path = str(tmp_path / "serve.wal")
        store = Store(base_triples())
        nt = f"<{EX}Lisa> <{RDF.type.value}> <{EX}human> .\n"
        with ServerThread(
            store, port=0, wal=WriteAheadLog(wal_path)
        ) as handle:
            status, _ = self._post(handle.address, "/add?wait=1", nt)
            assert status == 200
        # Drained shutdown: the checkpoint holds the closure and the
        # log holds nothing, so the next boot replays zero records.
        recovered = WriteAheadLog(wal_path)
        assert recovered.depth == 0
        recovered.close()
        checkpoint = wal_path + ".checkpoint"
        assert os.path.exists(checkpoint)
        with Store.load(checkpoint) as reloaded:
            assert Triple(ex("Lisa"), RDF.type, ex("mammal")) in reloaded

    def test_boot_replay_is_counted(self, tmp_path):
        wal_path = str(tmp_path / "serve.wal")
        seeded = WriteAheadLog(wal_path)
        seeded.append(
            "add", [Triple(ex("Lisa"), RDF.type, ex("human"))]
        )
        seeded.close()
        store = Store(base_triples())
        with ServerThread(
            store, port=0, wal=WriteAheadLog(wal_path)
        ) as handle:
            host, port = handle.address
            conn = http.client.HTTPConnection(host, port, timeout=30)
            conn.request("GET", "/stats")
            import json

            payload = json.loads(conn.getresponse().read())
            conn.close()
        assert payload["wal"]["enabled"] is True
        assert payload["wal"]["replayed_at_boot"] == 1
        # The replayed write is queryable from the published epoch.
        assert Triple(ex("Lisa"), RDF.type, ex("mammal")) in store
