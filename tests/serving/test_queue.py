"""MutationQueue: bounded depth, drain-everything batching, close."""

import asyncio

import pytest

from repro.rdf import RDF, Triple, iri
from repro.serving import Mutation, MutationQueue, QueueClosed, QueueFull


def _mutation(kind="add", n=1):
    triples = [
        Triple(iri(f"ex:s{i}"), RDF.type, iri("ex:T")) for i in range(n)
    ]
    return Mutation(kind=kind, triples=triples)


def test_put_and_drain_preserves_order():
    async def run():
        queue = MutationQueue(max_depth=8)
        first = _mutation("add")
        second = _mutation("remove")
        queue.try_put(first)
        queue.try_put(second)
        assert queue.depth == 2
        batch = queue.drain()
        assert batch == [first, second]
        assert queue.depth == 0

    asyncio.run(run())


def test_bounded_depth_rejects_and_counts():
    async def run():
        queue = MutationQueue(max_depth=2)
        queue.try_put(_mutation())
        queue.try_put(_mutation())
        with pytest.raises(QueueFull):
            queue.try_put(_mutation())
        assert queue.total_rejected == 1
        assert queue.total_enqueued == 2
        # Draining frees capacity again.
        queue.drain()
        queue.try_put(_mutation())
        assert queue.depth == 1

    asyncio.run(run())


def test_get_batch_waits_then_drains_everything():
    async def run():
        queue = MutationQueue(max_depth=8)

        async def producer():
            await asyncio.sleep(0.01)
            queue.try_put(_mutation("add"))
            queue.try_put(_mutation("add"))
            queue.try_put(_mutation("remove"))

        task = asyncio.ensure_future(producer())
        batch = await queue.get_batch()
        await task
        # All three coalesce into the one batch the consumer sees
        # (the producer enqueued them before the waiter woke).
        assert len(batch) >= 1
        batch += queue.drain()
        assert len(batch) == 3

    asyncio.run(run())


def test_close_rejects_writes_and_wakes_consumer():
    async def run():
        queue = MutationQueue(max_depth=8)
        queue.try_put(_mutation())
        queue.close()
        with pytest.raises(QueueClosed):
            queue.try_put(_mutation())
        # The queued item still drains; the next get_batch signals end.
        assert len(await queue.get_batch()) == 1
        assert await queue.get_batch() == []

    asyncio.run(run())


def test_oldest_enqueued_at_tracks_staleness():
    async def run():
        queue = MutationQueue(max_depth=8)
        assert queue.oldest_enqueued_at() is None
        first = _mutation()
        queue.try_put(first)
        queue.try_put(_mutation())
        assert queue.oldest_enqueued_at() == first.enqueued_at
        queue.drain()
        assert queue.oldest_enqueued_at() is None

    asyncio.run(run())


def test_triple_counting():
    async def run():
        queue = MutationQueue(max_depth=8)
        queue.try_put(_mutation(n=3))
        queue.try_put(_mutation(n=2))
        assert queue.total_triples == 5

    asyncio.run(run())


def test_max_depth_validation():
    with pytest.raises(ValueError):
        MutationQueue(max_depth=0)
