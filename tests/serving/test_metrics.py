"""LatencyWindow percentiles and the Prometheus text rendering."""

from repro.serving import LatencyWindow, ServingMetrics


def test_latency_window_empty():
    window = LatencyWindow()
    assert window.percentile(0.5) is None
    assert window.mean is None
    assert window.max_recent is None
    assert window.count == 0


def test_latency_window_percentiles():
    window = LatencyWindow(size=100)
    for value in range(1, 101):  # 1..100
        window.observe(float(value))
    assert window.percentile(0.5) == 50.0
    assert window.percentile(0.99) == 99.0
    assert window.percentile(1.0) == 100.0
    assert window.percentile(0.0) == 1.0
    assert window.count == 100
    assert window.mean == 50.5
    assert window.max_recent == 100.0


def test_latency_window_ring_evicts_old_observations():
    window = LatencyWindow(size=4)
    for value in (100.0, 100.0, 100.0, 100.0, 1.0, 1.0, 1.0, 1.0):
        window.observe(value)
    assert window.percentile(0.99) == 1.0  # the 100s rolled out
    assert window.count == 8  # lifetime count keeps growing
    assert window.total == 404.0


def test_flush_summary_and_batching_stats():
    metrics = ServingMetrics()
    assert metrics.flush_summary()["mean_batch"] is None
    metrics.record_flush(0.1, batch=4, triples=40)
    metrics.record_flush(0.3, batch=2, triples=10)
    summary = metrics.flush_summary()
    assert summary["flushes"] == 2
    assert summary["coalesced_mutations"] == 6
    assert summary["flushed_triples"] == 50
    assert summary["mean_batch"] == 3.0
    assert summary["max_batch"] == 4
    assert summary["p50_seconds"] == 0.1
    assert summary["p99_seconds"] == 0.3


def test_render_prometheus_text():
    metrics = ServingMetrics()
    metrics.count_request("query")
    metrics.count_request("query")
    metrics.count_request("add")
    metrics.rejected_total = 3
    metrics.record_flush(0.25, batch=5, triples=50)
    text = metrics.render({"epoch": 7, "queue_depth": 2, "draining": False})
    lines = dict(
        line.rsplit(" ", 1) for line in text.strip().splitlines()
    )
    assert lines["repro_serving_epoch"] == "7"
    assert lines["repro_serving_queue_depth"] == "2"
    assert lines["repro_serving_draining"] == "0"
    assert lines['repro_serving_requests_total{verb="query"}'] == "2"
    assert lines['repro_serving_requests_total{verb="add"}'] == "1"
    assert lines["repro_serving_rejected_total"] == "3"
    assert lines["repro_serving_flush_total"] == "1"
    assert lines['repro_serving_flush_latency_seconds{quantile="0.5"}'] == "0.25"
    assert lines["repro_serving_flush_latency_seconds_count"] == "1"
    # Windows with no observations render no quantile lines at all.
    assert 'read_latency_seconds{quantile="0.5"}' not in text
