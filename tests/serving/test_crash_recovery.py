"""kill -9 the serving process between ack and flush; prove zero loss.

The full out-of-process durability story: ``python -m repro serve
--wal`` boots in a subprocess with its flush pipeline sabotaged (every
post-boot flush fails), so an acknowledged write exists *only* in the
WAL.  SIGKILL — no atexit, no drain, no checkpoint.  A clean restart
over the same WAL must replay the write and serve it.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import time

EX = "http://example.org/"
BASE_NT = (
    f"<{EX}human> <http://www.w3.org/2000/01/rdf-schema#subClassOf> "
    f"<{EX}mammal> .\n"
    f"<{EX}Bart> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> "
    f"<{EX}human> .\n"
)
LISA_NT = (
    f"<{EX}Lisa> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> "
    f"<{EX}human> .\n"
)
MAMMAL_QUERY = "/query?q=%3Fwho%20a%20%3Chttp%3A%2F%2Fexample.org%2Fmammal%3E"

BOOT_TIMEOUT = 60.0


def _src_path():
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _serve(input_path, wal_path, *, env_extra=(), extra_args=()):
    """Launch ``repro serve`` on an ephemeral port; return (proc, port)."""
    env = {
        **os.environ,
        "PYTHONPATH": _src_path(),
        "PYTHONUNBUFFERED": "1",
    }
    env.pop("REPRO_FAULTS", None)
    env.update(dict(env_extra))
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            input_path,
            "--port",
            "0",
            "--wal",
            wal_path,
            "--workers",
            "1",
            *extra_args,
        ],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )
    port = None
    deadline = time.monotonic() + BOOT_TIMEOUT
    lines = []
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if not line:
            break
        lines.append(line)
        if "serving on http://" in line:
            port = int(line.rsplit(":", 1)[1])
            break
    if port is None:
        proc.kill()
        raise AssertionError(f"server did not announce a port:\n{''.join(lines)}")
    return proc, port


def _request(port, method, path, body=None, timeout=30):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    conn.request(method, path, body=body)
    response = conn.getresponse()
    status, raw = response.status, response.read()
    conn.close()
    return status, raw


def _wait_exit(proc, timeout=30):
    try:
        return proc.wait(timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise


class TestKillNineRecovery:
    def test_acked_write_survives_kill_nine(self, tmp_path):
        data = tmp_path / "base.nt"
        data.write_text(BASE_NT)
        wal_path = str(tmp_path / "serve.wal")

        # Boot with the flush pipeline broken from the second flush on:
        # the boot flush succeeds, so the server comes up, but the
        # write below is acknowledged purely on the strength of the WAL.
        proc, port = _serve(
            str(data),
            wal_path,
            env_extra=[("REPRO_FAULTS", "serving.flush:raise:after=1:times=-1")],
        )
        try:
            status, raw = _request(port, "POST", "/add", LISA_NT)
            assert status == 202, raw
            # The ack happened after the fsynced append — SIGKILL now
            # models a crash at the worst possible moment.
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.stderr.close()
            if proc.poll() is None:
                _wait_exit(proc)
        assert os.path.exists(wal_path)

        # Clean restart over the same WAL: the boot log must admit to
        # the replay, and the inferred closure must contain the write.
        proc, port = _serve(str(data), wal_path)
        try:
            status, raw = _request(port, "GET", MAMMAL_QUERY)
            assert status == 200, raw
            names = {
                s["who"] for s in json.loads(raw)["solutions"]
            }
            assert f"<{EX}Lisa>" in names  # replayed AND inferred
            assert f"<{EX}Bart>" in names
            status, raw = _request(port, "GET", "/stats")
            stats = json.loads(raw)
            assert stats["wal"]["replayed_at_boot"] >= 1
        finally:
            proc.send_signal(signal.SIGTERM)
            code = _wait_exit(proc)
            proc.stderr.close()
        assert code == 0

        # The graceful shutdown checkpointed: a third boot replays
        # nothing but still serves the write (from the checkpoint).
        proc, port = _serve(str(data), wal_path)
        try:
            status, raw = _request(port, "GET", "/stats")
            stats = json.loads(raw)
            assert stats["wal"]["replayed_at_boot"] == 0
            status, raw = _request(port, "GET", MAMMAL_QUERY)
            names = {
                s["who"] for s in json.loads(raw)["solutions"]
            }
            assert f"<{EX}Lisa>" in names
        finally:
            proc.send_signal(signal.SIGTERM)
            _wait_exit(proc)
            proc.stderr.close()
