"""Concurrent snapshot reads vs. batched writes (satellite of the
serving PR): readers pinned to an epoch must never observe a partially
flushed closure, and the final closure must be byte-identical across
sequential, thread-parallel and process-parallel stores.
"""

import threading

import pytest

from repro import Store
from repro.rdf import RDF, RDFS, Triple, iri
from repro.serving import ServerThread

EX = "http://example.org/"

#: Executor configurations the interleaving runs under.  The process
#: leg exercises the shared-memory substrate the serving story leans
#: on for the pure-Python backend.
CONFIGS = [
    {"workers": 1},
    {"workers": 2, "parallel_mode": "thread"},
    {"workers": 2, "parallel_mode": "process"},
]


def ex(name):
    return iri(EX + name)


def base_triples():
    triples = [
        Triple(ex("human"), RDFS.subClassOf, ex("mammal")),
        Triple(ex("mammal"), RDFS.subClassOf, ex("animal")),
        Triple(ex("dog"), RDFS.subClassOf, ex("mammal")),
    ]
    for index in range(20):
        triples.append(Triple(ex(f"p{index}"), RDF.type, ex("human")))
    return triples


def _run_interleaving(config):
    """Pinned snapshot readers race three coalesced write flushes;
    returns the final closure as a sorted encoded-id list."""
    store = Store(base_triples(), **config)
    store.materialize()
    snapshot = store.snapshot()
    expected_len = snapshot.n_triples
    expected_humans = len(snapshot.solutions(f"?x a <{EX}human>"))

    errors = []
    stop = threading.Event()

    def reader():
        while not stop.is_set():
            if snapshot.n_triples != expected_len:
                errors.append(("n_triples tore", snapshot.n_triples))
                return
            humans = snapshot.solutions(f"?x a <{EX}human>")
            if len(humans) != expected_humans:
                errors.append(("solutions tore", len(humans)))
                return

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for thread in threads:
        thread.start()
    try:
        # Three coalesced mutation batches, each flushed once: adds,
        # mixed add+remove (forces the rebuild path), adds again.
        store.add(
            [Triple(ex(f"w1_{i}"), RDF.type, ex("dog")) for i in range(10)]
        )
        store.materialize()
        store.add(
            [Triple(ex(f"w2_{i}"), RDF.type, ex("human")) for i in range(10)]
        )
        store.remove(
            [Triple(ex(f"p{i}"), RDF.type, ex("human")) for i in range(5)]
        )
        store.materialize()
        store.add([Triple(ex("last"), RDF.type, ex("dog"))])
        store.materialize()
    finally:
        stop.set()
        for thread in threads:
            thread.join(30)

    assert not errors, errors[:3]
    # The pinned snapshot still serves its original closure untouched.
    assert snapshot.n_triples == expected_len
    assert len(snapshot.solutions(f"?x a <{EX}human>")) == expected_humans
    # And the live store moved on past it.
    assert store.n_triples != expected_len
    assert store.epoch > snapshot.epoch
    return sorted(store.encoded_triples())


def test_snapshot_isolation_under_concurrent_batched_writes():
    """Every executor substrate yields byte-identical final closures
    while pinned readers race the flushes."""
    closures = {}
    for config in CONFIGS:
        label = f"workers={config.get('workers')},mode={config.get('parallel_mode', 'sequential')}"
        closures[label] = _run_interleaving(config)
    baseline_label, baseline = next(iter(closures.items()))
    for label, closure in closures.items():
        assert closure == baseline, (
            f"{label} diverged from {baseline_label}"
        )


def test_served_readers_vs_server_writes_across_modes():
    """The same isolation property through the HTTP server: a reader
    pinned to epoch 1 answers identically before, during and after
    coalesced server-side flushes, for sequential and thread modes."""
    import http.client
    import json
    import urllib.parse

    q = urllib.parse.quote(f"?x a <{EX}mammal>")
    finals = {}
    for config in ({"workers": 1}, {"workers": 2, "parallel_mode": "thread"}):
        store = Store(base_triples(), **config)
        with ServerThread(store, port=0) as handle:
            host, port = handle.address
            conn = http.client.HTTPConnection(host, port, timeout=30)

            def get(path):
                conn.request("GET", path)
                response = conn.getresponse()
                return response.status, json.loads(response.read())

            def post(path, body):
                conn.request("POST", path, body=body)
                response = conn.getresponse()
                return response.status, json.loads(response.read())

            _, pinned_before = get(f"/query?q={q}&epoch=1")
            nt = "".join(
                f"<{EX}srv{i}> <{RDF.type.value}> <{EX}dog> .\n"
                for i in range(8)
            )
            status, _ = post("/add?wait=1", nt)
            assert status == 200
            _, live = get(f"/query?q={q}")
            _, pinned_after = get(f"/query?q={q}&epoch=1")
            assert pinned_after == pinned_before
            assert live["n"] == pinned_before["n"] + 8
            conn.close()
        finals[config.get("parallel_mode", "sequential")] = sorted(
            store.encoded_triples()
        )
    assert finals["sequential"] == finals["thread"]
