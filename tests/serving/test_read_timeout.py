"""Slowloris regression tests: the per-request read deadline.

A client that trickles a request can no longer park a connection task
forever: once the first byte arrives, the rest of the request must
complete within ``read_timeout`` seconds or the server answers ``408``
and closes the connection.  Idle keep-alive connections (no bytes in
flight) are deliberately exempt.
"""

import http.client
import json
import socket
import time

import pytest

from repro import Store
from repro.rdf import RDF, RDFS, Triple, iri
from repro.serving import ServerThread

EX = "http://example.org/"


def ex(name):
    return iri(EX + name)


def base_triples():
    return [
        Triple(ex("human"), RDFS.subClassOf, ex("mammal")),
        Triple(ex("Bart"), RDF.type, ex("human")),
    ]


@pytest.fixture
def server():
    store = Store(base_triples())
    with ServerThread(store, port=0, read_timeout=0.3) as handle:
        yield handle


class TestReadTimeout:
    def test_half_sent_request_gets_408(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.sendall(b"GET /health HT")  # ...and then go quiet
            sock.settimeout(30)
            raw = b""
            while b"\r\n\r\n" not in raw:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                raw += chunk
        assert b"408" in raw.split(b"\r\n", 1)[0]
        assert b"timed out" in raw
        assert b"Connection: close" in raw

    def test_half_sent_body_gets_408(self, server):
        host, port = server.address
        nt = f"<{EX}Lisa> <{RDF.type.value}> <{EX}human> .\n"
        head = (
            f"POST /add HTTP/1.1\r\nContent-Length: {len(nt) + 50}\r\n"
            "\r\n"
        ).encode() + nt.encode()  # body 50 bytes short, never finished
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.sendall(head)
            sock.settimeout(30)
            raw = b""
            while b"\r\n\r\n" not in raw:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                raw += chunk
        assert b"408" in raw.split(b"\r\n", 1)[0]

    def test_idle_keepalive_connection_is_not_timed_out(self, server):
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=30)
        conn.request("GET", "/health")
        first = conn.getresponse()
        assert first.status == 200
        first.read()
        # Sit idle well past the read deadline; the first byte of the
        # next request is untimed, so the connection must still work.
        time.sleep(0.6)
        conn.request("GET", "/health")
        response = conn.getresponse()
        assert response.status == 200
        assert json.loads(response.read())["status"] == "ok"
        conn.close()

    def test_prompt_requests_unaffected(self, server):
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=30)
        nt = f"<{EX}Lisa> <{RDF.type.value}> <{EX}human> .\n"
        conn.request("POST", "/add?wait=1", body=nt)
        response = conn.getresponse()
        assert response.status == 200
        response.read()
        conn.close()

    def test_timeout_disabled_with_none(self):
        store = Store(base_triples())
        with ServerThread(store, port=0, read_timeout=None) as handle:
            host, port = handle.address
            with socket.create_connection((host, port), timeout=30) as sock:
                sock.sendall(b"GET /heal")  # stall past any deadline
                time.sleep(0.5)
                sock.sendall(b"th HTTP/1.1\r\n\r\n")
                sock.settimeout(30)
                raw = b""
                while b"\r\n\r\n" not in raw:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    raw += chunk
        assert b"200" in raw.split(b"\r\n", 1)[0]
