"""End-to-end reasoning-server tests over real sockets.

Each test boots a :class:`ServerThread` on an ephemeral port and talks
real HTTP/1.1 through ``http.client`` — the same path ``curl`` and the
bench load generator use.
"""

import http.client
import json
import socket
import threading
import time
import urllib.parse

import pytest

from repro import MaterializationTimeout, Store
from repro.rdf import RDF, RDFS, Triple, iri
from repro.serving import ServerThread

EX = "http://example.org/"
MAMMAL_Q = urllib.parse.quote(f"?who a <{EX}mammal>")


def ex(name):
    return iri(EX + name)


def base_triples():
    return [
        Triple(ex("human"), RDFS.subClassOf, ex("mammal")),
        Triple(ex("dog"), RDFS.subClassOf, ex("mammal")),
        Triple(ex("Bart"), RDF.type, ex("human")),
    ]


def nt(subject, type_name="human"):
    return f"<{EX}{subject}> <{RDF.type.value}> <{EX}{type_name}> .\n"


class Client:
    """A tiny keep-alive JSON client over http.client."""

    def __init__(self, address):
        host, port = address
        self.conn = http.client.HTTPConnection(host, port, timeout=30)

    def request(self, method, path, body=None):
        self.conn.request(method, path, body=body)
        response = self.conn.getresponse()
        raw = response.read()
        headers = {k.lower(): v for k, v in response.getheaders()}
        payload = None
        if headers.get("content-type", "").startswith("application/json"):
            payload = json.loads(raw)
        return response.status, headers, payload if payload is not None else raw

    def close(self):
        self.conn.close()


@pytest.fixture()
def served():
    store = Store(base_triples())
    with ServerThread(store, port=0, retained_epochs=4) as handle:
        client = Client(handle.address)
        yield store, handle, client
        client.close()


def _mammals(client, epoch=None):
    path = f"/query?q={MAMMAL_Q}"
    if epoch is not None:
        path += f"&epoch={epoch}"
    status, _, payload = client.request("GET", path)
    return status, payload


def test_health_stats_metrics(served):
    _, _, client = served
    status, _, payload = client.request("GET", "/health")
    assert status == 200
    assert payload["status"] == "ok"
    assert payload["epoch"] == 1
    assert payload["n_triples"] > len(base_triples())  # inference ran

    status, _, payload = client.request("GET", "/stats")
    assert status == 200
    assert payload["ruleset"] == "rdfs-default"
    assert payload["queue"]["capacity"] == 256
    assert payload["flush"]["failures"] == 0

    status, headers, body = client.request("GET", "/metrics")
    assert status == 200
    assert headers["content-type"].startswith("text/plain")
    text = body.decode("utf-8")
    assert "repro_serving_epoch 1" in text
    assert "repro_serving_staleness_seconds 0.0" in text


def test_query_add_remove_round_trip(served):
    _, _, client = served
    status, payload = _mammals(client)
    assert status == 200
    assert payload["epoch"] == 1
    assert payload["n"] == 1

    status, _, payload = client.request("POST", "/add?wait=1", nt("Lisa"))
    assert status == 200
    assert payload == {"flushed": 1, "epoch": 2}

    status, payload = _mammals(client)
    assert payload["epoch"] == 2
    assert {s["who"] for s in payload["solutions"]} == {
        f"<{EX}Bart>",
        f"<{EX}Lisa>",
    }

    status, _, payload = client.request(
        "POST", "/remove?wait=1", nt("Lisa")
    )
    assert status == 200
    assert payload["epoch"] == 3
    status, payload = _mammals(client)
    assert payload["n"] == 1


def test_post_query_with_limit(served):
    _, _, client = served
    client.request("POST", "/add?wait=1", nt("Lisa") + nt("Maggie"))
    body = json.dumps({"query": f"?who a <{EX}mammal>", "limit": 1})
    status, _, payload = client.request("POST", "/query", body)
    assert status == 200
    assert payload["n"] == 3
    assert payload["returned"] == 1


def test_reader_pinned_to_an_epoch_never_sees_newer_writes(served):
    _, _, client = served
    pinned = 1
    status, before = _mammals(client, epoch=pinned)
    assert status == 200
    for name in ("Lisa", "Maggie", "Rex"):
        client.request("POST", "/add?wait=1", nt(name))
    # The live closure moved on...
    _, now = _mammals(client)
    assert now["epoch"] == 4
    assert now["n"] == 4
    # ...but the pinned epoch still answers exactly the old closure.
    status, again = _mammals(client, epoch=pinned)
    assert status == 200
    assert again == before
    assert again["epoch"] == pinned
    assert again["n"] == 1


def test_evicted_epoch_answers_410(served):
    _, _, client = served
    # retained_epochs=4: epochs 1..5 exist after four writes, 1 evicted.
    for index in range(4):
        client.request("POST", "/add?wait=1", nt(f"extra{index}"))
    status, _, payload = client.request("GET", f"/query?q={MAMMAL_Q}&epoch=1")
    assert status == 410
    assert "no longer retained" in payload["error"]
    status, _, _ = client.request("GET", f"/query?q={MAMMAL_Q}&epoch=5")
    assert status == 200


def test_async_write_is_accepted_then_lands(served):
    _, _, client = served
    status, _, payload = client.request("POST", "/add", nt("Lisa"))
    assert status == 202
    assert payload["queued"] == 1
    deadline = time.time() + 30
    while time.time() < deadline:
        _, payload = _mammals(client)
        if payload["n"] == 2:
            break
        time.sleep(0.01)
    assert payload["n"] == 2


def test_write_bursts_coalesce_into_fewer_flushes(served):
    store, handle, client = served
    block = threading.Event()
    original = store.materialize

    def gated():
        block.wait(30)
        return original()

    store.materialize = gated
    try:
        for index in range(6):
            status, _, _ = client.request("POST", "/add", nt(f"bulk{index}"))
            assert status == 202
    finally:
        block.set()
        store.materialize = original
    client.request("POST", "/add?wait=1", nt("final"))
    _, _, stats = client.request("GET", "/stats")
    # 7 mutations landed in at most 3 flushes (first drain + coalesced
    # remainder + the waited write) — not one flush per request.
    assert stats["flush"]["coalesced_mutations"] == 7
    assert 1 <= stats["flush"]["flushes"] <= 3
    _, payload = _mammals(client)
    assert payload["n"] == 8


def test_backpressure_returns_429_with_retry_after():
    store = Store(base_triples())
    with ServerThread(store, port=0, queue_depth=2) as handle:
        client = Client(handle.address)
        block = threading.Event()
        original = store.materialize

        def gated():
            block.wait(30)
            return original()

        store.materialize = gated
        try:
            statuses = []
            for index in range(5):
                status, headers, _ = client.request(
                    "POST", "/add", nt(f"burst{index}")
                )
                statuses.append((status, headers))
        finally:
            block.set()
            store.materialize = original
        rejected = [(s, h) for s, h in statuses if s == 429]
        accepted = [s for s, _ in statuses if s == 202]
        assert rejected, statuses
        assert accepted, statuses
        assert all(int(h["retry-after"]) >= 1 for _, h in rejected)
        # Everything accepted still lands.  The final write may race
        # the writer draining the burst (queue still full → another
        # honest 429), so retry like a well-behaved client would.
        final_rejects = 0
        for _ in range(100):
            status, _, _ = client.request(
                "POST", "/add?wait=1", nt("final")
            )
            if status != 429:
                break
            final_rejects += 1
            time.sleep(0.05)
        assert status == 200, status
        _, _, payload = client.request("GET", f"/query?q={MAMMAL_Q}")
        assert payload["n"] == 1 + len(accepted) + 1
        _, _, metrics = client.request("GET", "/stats")
        assert metrics["queue"]["rejected_total"] == (
            len(rejected) + final_rejects
        )
        client.close()


def test_failed_flush_keeps_the_write_and_retries():
    store = Store(base_triples())
    with ServerThread(store, port=0, flush_retry_seconds=0.05) as handle:
        client = Client(handle.address)
        original = store.materialize
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise MaterializationTimeout("injected flush failure")
            return original()

        store.materialize = flaky
        try:
            status, _, payload = client.request(
                "POST", "/add?wait=1", nt("Lisa")
            )
            # The waited write reports the failure honestly...
            assert status == 503
            assert "queued" in payload["error"]
            # ...but the write was never lost: the writer retries and
            # the triple lands.
            deadline = time.time() + 30
            payload = None
            while time.time() < deadline:
                _, payload = _mammals(client)
                if payload["n"] == 2:
                    break
                time.sleep(0.02)
            assert payload["n"] == 2
        finally:
            store.materialize = original
        _, _, stats = client.request("GET", "/stats")
        assert stats["flush"]["failures"] == 1
        assert "injected" in stats["flush"]["last_error"]
        client.close()


def test_graceful_shutdown_completes_with_idle_keepalive_client():
    """An idle keep-alive connection must not deadlock stop().

    Regression: stop() used to await Server.wait_closed() before
    cancelling connection tasks; on Python >= 3.12.1 wait_closed()
    blocks until every handler returns, and a client parked between
    requests never returns — shutdown hung and the queue never drained.
    """
    store = Store(base_triples())
    handle = ServerThread(store, port=0).start()
    idle = Client(handle.address)
    status, _, _ = idle.request("GET", "/health")
    assert status == 200
    # Queue a write, then stop while the connection sits idle.
    status, _, _ = idle.request("POST", "/add", nt("Lisa"))
    assert status == 202
    handle.stop(timeout=30)
    assert not handle._thread.is_alive()
    assert not store.stale  # the queued write still drained
    assert Triple(ex("Lisa"), RDF.type, ex("mammal")) in store
    idle.close()


def test_http10_defaults_to_connection_close():
    store = Store(base_triples())
    with ServerThread(store, port=0) as handle:
        host, port = handle.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.settimeout(10)
            sock.sendall(b"GET /health HTTP/1.0\r\nHost: x\r\n\r\n")
            data = b""
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break  # server closed, as HTTP/1.0 requires
                data += chunk
        head = data.split(b"\r\n\r\n", 1)[0].decode("latin-1").lower()
        assert "connection: close" in head
        # Opting in with Connection: keep-alive keeps the socket open.
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.settimeout(10)
            request = (
                b"GET /health HTTP/1.0\r\nHost: x\r\n"
                b"Connection: keep-alive\r\n\r\n"
            )
            for _ in range(2):
                sock.sendall(request)
                head = b""
                while b"\r\n\r\n" not in head:
                    head += sock.recv(4096)
                header_block, _, rest = head.partition(b"\r\n\r\n")
                lower = header_block.decode("latin-1").lower()
                assert "connection: keep-alive" in lower
                length = int(
                    [
                        line.split(":", 1)[1]
                        for line in lower.split("\r\n")
                        if line.startswith("content-length:")
                    ][0]
                )
                while len(rest) < length:
                    rest += sock.recv(4096)


def _parse_gauges(text):
    gauges = {}
    for line in text.splitlines():
        name, _, value = line.partition(" ")
        if "{" not in name:
            try:
                gauges[name] = float(value)
            except ValueError:
                pass
    return gauges


def test_staleness_gauge_covers_drained_but_unflushed_writes():
    """A failing flush must not zero the staleness gauge.

    Regression: staleness was computed only from mutations still in
    the queue, so once the writer drained a batch whose flush then
    failed, the gauge read 0.0 exactly when writes were sitting
    unapplied.
    """
    store = Store(base_triples())
    with ServerThread(store, port=0, flush_retry_seconds=0.05) as handle:
        client = Client(handle.address)
        original = store.materialize
        failing = threading.Event()

        def flaky():
            if failing.is_set():
                raise MaterializationTimeout("injected flush failure")
            return original()

        store.materialize = flaky
        failing.set()
        try:
            status, _, _ = client.request("POST", "/add", nt("Lisa"))
            assert status == 202
            deadline = time.time() + 30
            staleness = 0.0
            while time.time() < deadline:
                _, _, body = client.request("GET", "/metrics")
                gauges = _parse_gauges(body.decode("utf-8"))
                if (
                    gauges.get("repro_serving_flush_failures_total", 0) >= 1
                    and gauges.get("repro_serving_queue_depth") == 0
                ):
                    staleness = gauges["repro_serving_staleness_seconds"]
                    break
                time.sleep(0.02)
            assert staleness > 0.0
            failing.clear()
            # Once the retry lands, the gauge returns to zero.
            deadline = time.time() + 30
            while time.time() < deadline:
                _, payload = _mammals(client)
                if payload["n"] == 2:
                    break
                time.sleep(0.02)
            assert payload["n"] == 2
            _, _, body = client.request("GET", "/metrics")
            gauges = _parse_gauges(body.decode("utf-8"))
            assert gauges["repro_serving_staleness_seconds"] == 0.0
        finally:
            failing.clear()
            store.materialize = original
        client.close()


def test_graceful_shutdown_drains_queued_writes():
    store = Store(base_triples())
    handle = ServerThread(store, port=0).start()
    client = Client(handle.address)
    for index in range(5):
        status, _, _ = client.request("POST", "/add", nt(f"drain{index}"))
        assert status == 202
    client.close()
    handle.stop()
    # Every accepted write survived the shutdown flush.
    assert not store.stale
    for index in range(5):
        assert Triple(ex(f"drain{index}"), RDF.type, ex("mammal")) in store


def test_error_shapes(served):
    _, _, client = served
    status, _, payload = client.request("GET", "/nope")
    assert status == 404
    status, headers, _ = client.request("GET", "/add")
    assert status == 405
    assert "POST" in headers["allow"]
    status, _, payload = client.request("GET", "/query")
    assert status == 400
    assert "missing BGP" in payload["error"]
    status, _, payload = client.request("GET", "/query?q=%3Fx%20oops")
    assert status == 400
    assert "bad BGP" in payload["error"]
    status, _, payload = client.request("POST", "/add", "not ntriples")
    assert status == 400
    assert "bad N-Triples" in payload["error"]
    status, _, payload = client.request("POST", "/add", "")
    assert status == 400
    status, _, payload = client.request(
        "GET", f"/query?q={MAMMAL_Q}&epoch=abc"
    )
    assert status == 400
    status, _, payload = client.request("POST", "/query", "{broken")
    assert status == 400


def test_concurrent_readers_and_writers_stay_consistent(served):
    """Interleaved readers and writers: every response is internally
    consistent (epoch N always answers with epoch N's closure)."""
    _, handle, client = served
    counts_by_epoch = {}
    errors = []
    stop = threading.Event()

    def reader():
        local = Client(handle.address)
        try:
            while not stop.is_set():
                status, payload = _mammals(local)
                if status != 200:
                    errors.append(("status", status))
                    return
                seen = counts_by_epoch.setdefault(
                    payload["epoch"], payload["n"]
                )
                if seen != payload["n"]:
                    errors.append(("epoch tear", payload))
                    return
        finally:
            local.close()

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for thread in threads:
        thread.start()
    try:
        writer = Client(handle.address)
        for index in range(10):
            status, _, _ = writer.request(
                "POST", "/add?wait=1", nt(f"load{index}")
            )
            assert status == 200
        writer.close()
    finally:
        stop.set()
        for thread in threads:
            thread.join(30)
    assert not errors, errors[:3]
    # Monotone workload: later epochs can only know more mammals.
    epochs = sorted(counts_by_epoch)
    counts = [counts_by_epoch[e] for e in epochs]
    assert counts == sorted(counts)
