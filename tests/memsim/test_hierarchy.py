"""Unit tests for the cache/TLB/page-fault simulator."""

import pytest

from repro.memsim.hierarchy import (
    CacheSim,
    MemoryHierarchy,
    PageFaultSim,
    SAMPLE_CAP,
    TlbSim,
    replay_trace,
)
from repro.memsim.tracer import RecordingTracer


class TestCacheSim:
    def test_cold_miss_then_hit(self):
        cache = CacheSim(32 * 1024, 8)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(63)  # same line
        assert not cache.access(64)  # next line

    def test_capacity_eviction(self):
        cache = CacheSim(1024, 2, line_size=64)  # 16 lines, 8 sets
        # Fill one set beyond its 2 ways: lines mapping to set 0.
        stride = 8 * 64  # n_sets * line
        cache.access(0)
        cache.access(stride)
        cache.access(2 * stride)  # evicts line 0 (LRU)
        assert not cache.access(0)

    def test_lru_order(self):
        cache = CacheSim(1024, 2, line_size=64)
        stride = 8 * 64
        cache.access(0)
        cache.access(stride)
        cache.access(0)  # refresh line 0
        cache.access(2 * stride)  # should evict `stride`, not 0
        assert cache.access(0)
        assert not cache.access(stride)

    def test_miss_rate(self):
        cache = CacheSim(32 * 1024, 8)
        assert cache.miss_rate == 0.0
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate == 0.5

    def test_weight_scales_counters(self):
        cache = CacheSim(32 * 1024, 8)
        cache.access(0, weight=10.0)
        assert cache.accesses == 10.0
        assert cache.misses == 10.0

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheSim(1000, 3)


class TestTlbSim:
    def test_page_reuse_hits(self):
        tlb = TlbSim(entries=4)
        assert not tlb.access(0)
        assert tlb.access(8)       # same 4K page
        assert not tlb.access(4096)

    def test_capacity(self):
        tlb = TlbSim(entries=2)
        tlb.access(0)
        tlb.access(4096)
        tlb.access(8192)  # evicts page 0
        assert not tlb.access(0)


class TestPageFaults:
    def test_first_touch_only(self):
        pages = PageFaultSim()
        pages.access(0)
        pages.access(100)
        pages.access(5000)
        assert pages.faults == 2


class TestReplay:
    def test_sequential_scan_miss_rate(self):
        tracer = RecordingTracer()
        tracer.sequential_scan("arr", 1 << 20)
        counters = replay_trace(tracer.ops)
        # One miss per 64-byte line, one logical access per 8 bytes.
        assert abs(counters.l1_miss_rate - 0.125) < 0.01

    def test_repeated_small_scan_stays_cached(self):
        tracer = RecordingTracer()
        for _ in range(10):
            tracer.sequential_scan("small", 8 * 1024)  # fits in L1
        counters = replay_trace(tracer.ops)
        assert counters.l1_misses == 8 * 1024 // 64  # cold misses only

    def test_random_over_large_region_misses(self):
        tracer = RecordingTracer()
        tracer.alloc("hash", 64 << 20)
        tracer.random_access("hash", 4000)
        counters = replay_trace(tracer.ops)
        assert counters.l1_miss_rate > 0.9
        assert counters.tlb_miss_rate > 0.9

    def test_chase_touches_objects(self):
        tracer = RecordingTracer()
        tracer.alloc("heap", 1 << 20)
        tracer.pointer_chase("heap", 1000)
        counters = replay_trace(tracer.ops)
        assert counters.l1_accesses == 1000

    def test_sampling_preserves_totals(self):
        tracer = RecordingTracer()
        tracer.alloc("big", 64 << 20)
        tracer.random_access("big", SAMPLE_CAP * 10)
        counters = replay_trace(tracer.ops)
        assert counters.l1_accesses == pytest.approx(SAMPLE_CAP * 10)

    def test_deterministic(self):
        tracer = RecordingTracer()
        tracer.alloc("r", 1 << 22)
        tracer.random_access("r", 500)
        tracer.sequential_scan("arr", 1 << 16)
        a = replay_trace(tracer.ops)
        b = replay_trace(tracer.ops)
        assert a.l1_misses == b.l1_misses
        assert a.tlb_misses == b.tlb_misses
        assert a.page_faults == b.page_faults

    def test_counters_per_triple(self):
        tracer = RecordingTracer()
        tracer.sequential_scan("arr", 64 * 100)
        counters = replay_trace(tracer.ops)
        per = counters.per_triple(100)
        assert per["cache_misses_per_triple"] == counters.llc_misses / 100
        assert per["page_faults_per_triple"] == counters.page_faults / 100

    def test_per_triple_zero_guard(self):
        counters = replay_trace([])
        assert counters.per_triple(0)["tlb_misses_per_triple"] == 0.0

    def test_footprint_tracking(self):
        tracer = RecordingTracer()
        tracer.alloc("a", 1000)
        tracer.alloc("a", 1000)
        tracer.alloc("b", 500)
        hierarchy = MemoryHierarchy()
        counters = hierarchy.replay(tracer.ops)
        assert counters.footprint_bytes == 2500
        assert counters.regions["a"] == 2000
