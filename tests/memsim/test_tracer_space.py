"""Unit tests for tracers and the address-space model."""

from repro.memsim.address_space import (
    AddressSpace,
    OBJECT_BYTES,
    REGION_WINDOW,
)
from repro.memsim.tracer import NullTracer, RecordingTracer


class TestRecordingTracer:
    def test_records_kinds(self):
        tracer = RecordingTracer()
        tracer.sequential_scan("a", 100)
        tracer.random_access("b", 5)
        tracer.pointer_chase("c", 3)
        tracer.alloc("d", 64)
        kinds = [op[0] for op in tracer.ops]
        assert kinds == ["seq", "rand", "chase", "alloc"]

    def test_zero_amounts_skipped(self):
        tracer = RecordingTracer()
        tracer.sequential_scan("a", 0)
        tracer.random_access("a", 0)
        tracer.pointer_chase("a", 0)
        tracer.alloc("a", 0)
        assert len(tracer) == 0

    def test_clear(self):
        tracer = RecordingTracer()
        tracer.sequential_scan("a", 8)
        tracer.clear()
        assert len(tracer) == 0


class TestNullTracer:
    def test_all_methods_noop(self):
        tracer = NullTracer()
        tracer.sequential_scan("a", 100)
        tracer.random_access("a", 5)
        tracer.pointer_chase("a", 3)
        tracer.alloc("a", 64)


class TestAddressSpace:
    def test_regions_widely_separated(self):
        space = AddressSpace()
        a = list(space.sequential_addresses("a", 64, 64))[0]
        b = list(space.sequential_addresses("b", 64, 64))[0]
        assert abs(a - b) >= REGION_WINDOW

    def test_sequential_addresses_stride(self):
        space = AddressSpace()
        addrs = list(space.sequential_addresses("x", 256, 64))
        assert len(addrs) == 4
        assert addrs[1] - addrs[0] == 64

    def test_grow_and_footprint(self):
        space = AddressSpace()
        space.grow("h", 100)
        space.grow("h", 50)
        assert space.footprint("h") == 150
        assert space.total_footprint() == 150

    def test_ensure_only_grows(self):
        space = AddressSpace()
        space.ensure("x", 100)
        space.ensure("x", 50)
        assert space.footprint("x") == 100

    def test_random_addresses_within_region(self):
        space = AddressSpace()
        space.grow("r", 4096)
        addrs = list(space.random_addresses("r", 100))
        base = addrs and min(addrs)
        assert all(a >= REGION_WINDOW for a in addrs)
        assert max(addrs) - min(addrs) <= 4096

    def test_chase_object_alignment(self):
        space = AddressSpace()
        space.grow("heap", OBJECT_BYTES * 10)
        addrs = list(space.chase_addresses("heap", 50))
        for addr in addrs:
            assert (addr % OBJECT_BYTES) == (addrs[0] % OBJECT_BYTES)

    def test_deterministic_sequences(self):
        a = AddressSpace(seed=1)
        b = AddressSpace(seed=1)
        a.grow("r", 1 << 16)
        b.grow("r", 1 << 16)
        assert list(a.random_addresses("r", 20)) == list(
            b.random_addresses("r", 20)
        )
