"""Tests for the next-line stride prefetcher model."""

from repro.memsim.hierarchy import CacheSim, MemoryHierarchy
from repro.memsim.tracer import RecordingTracer


class TestInstall:
    def test_install_does_not_count(self):
        cache = CacheSim(32 * 1024, 8)
        cache.install(0)
        assert cache.accesses == 0
        assert cache.misses == 0
        assert cache.access(0)  # already resident

    def test_install_respects_capacity(self):
        cache = CacheSim(1024, 2, line_size=64)
        stride = 8 * 64
        cache.install(0)
        cache.install(stride)
        cache.install(2 * stride)
        assert not cache.access(0)  # evicted by the third install


class TestPrefetcher:
    @staticmethod
    def _seq_trace(n_bytes):
        tracer = RecordingTracer()
        tracer.sequential_scan("arr", n_bytes)
        return tracer.ops

    def test_sequential_scan_misses_vanish(self):
        cold = MemoryHierarchy().replay(self._seq_trace(1 << 20))
        warmed = MemoryHierarchy(prefetch_distance=4).replay(
            self._seq_trace(1 << 20)
        )
        assert warmed.l1_misses < cold.l1_misses / 3

    def test_random_accesses_unaffected(self):
        tracer = RecordingTracer()
        tracer.alloc("hash", 64 << 20)
        tracer.random_access("hash", 3000)
        cold = MemoryHierarchy().replay(tracer.ops)
        warmed = MemoryHierarchy(prefetch_distance=4).replay(tracer.ops)
        # Prefetching needs a stride; uniform probes present none.
        assert warmed.l1_misses >= cold.l1_misses * 0.95

    def test_page_faults_unchanged(self):
        cold = MemoryHierarchy().replay(self._seq_trace(1 << 18))
        warmed = MemoryHierarchy(prefetch_distance=2).replay(
            self._seq_trace(1 << 18)
        )
        assert warmed.page_faults == cold.page_faults

    def test_disabled_by_default(self):
        hierarchy = MemoryHierarchy()
        assert hierarchy.prefetch_distance == 0
