"""Tests for the live-Store bytes/triple probe (repro.memsim.probe)."""

import pytest

from repro.core.store_api import Store
from repro.datasets.bsbm import bsbm_like
from repro.kernels import numpy_available
from repro.memsim import StoreMemoryReport, measure_store

BACKENDS = ["python", "compressed"] + (
    ["numpy"] if numpy_available() else []
)


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


def test_measure_store_reports_consistent_totals(backend):
    store = Store(bsbm_like(200), backend=backend)
    report = measure_store(store)
    assert isinstance(report, StoreMemoryReport)
    assert report.backend == backend
    assert report.n_triples == len(store)
    assert report.n_tables == len(report.tables)
    assert report.resident_bytes == sum(
        t.resident_bytes for t in report.tables
    )
    assert report.resident_bytes > 0
    assert report.bytes_per_triple == pytest.approx(
        report.resident_bytes / report.n_triples
    )


def test_flat_bytes_counts_logical_image(backend):
    store = Store(bsbm_like(200), backend=backend)
    report = measure_store(store)
    # flat_bytes is what a raw int64 image (plus materialized ⟨o,s⟩
    # views) would occupy — identical across backends by construction.
    expected = 0
    for table in report.tables:
        expected += 16 * table.n_pairs * (2 if table.has_os_cache else 1)
    assert report.flat_bytes == expected


def test_compressed_backend_shrinks_resident_bytes():
    flat = measure_store(Store(bsbm_like(500), backend="python"))
    packed = measure_store(Store(bsbm_like(500), backend="compressed"))
    assert packed.n_triples == flat.n_triples
    assert packed.resident_bytes < flat.resident_bytes / 4
    assert packed.compression_ratio > 4.0
    assert packed.inner_backend in ("python", "numpy")


def test_probe_accepts_engine_and_snapshot(backend):
    store = Store(bsbm_like(200), backend=backend)
    via_store = measure_store(store)
    via_engine = measure_store(store.engine)
    assert via_engine.resident_bytes == via_store.resident_bytes
    snapshot = store.snapshot()
    via_snapshot = measure_store(snapshot)
    assert via_snapshot.n_triples == via_store.n_triples


def test_snapshot_shares_structure_with_live_store():
    # A snapshot of an unchanged compressed store aliases the same
    # runs; its own probe still reports full residency (fresh ``seen``
    # per call), but the shared-block ids prove the aliasing.
    store = Store(bsbm_like(300), backend="compressed")
    store.materialize()
    snapshot = store.snapshot()
    live = {
        block
        for _, flat in store.engine.main.table_arrays()
        for block in flat.block_ids()
    }
    snap = {
        block
        for _, flat in snapshot._tables.table_arrays()
        for block in flat.block_ids()
    }
    assert snap and snap <= live


def test_as_dict_is_json_ready(backend):
    import json

    report = measure_store(Store(bsbm_like(100), backend=backend))
    payload = report.as_dict()
    round_tripped = json.loads(json.dumps(payload))
    assert round_tripped["backend"] == backend
    assert round_tripped["n_triples"] == report.n_triples
    assert round_tripped["resident_bytes"] == report.resident_bytes
    # as_dict rounds ratios to 3 decimals for report readability
    assert round_tripped["compression_ratio"] == pytest.approx(
        report.compression_ratio, abs=5e-4
    )


def test_probe_flushes_pending_mutations():
    from repro.rdf.terms import IRI, Triple

    store = Store(bsbm_like(100), backend="compressed")
    before = measure_store(store).n_triples
    store.add(Triple(IRI("ex:s"), IRI("ex:p"), IRI("ex:o")))
    after = measure_store(store)
    assert after.n_triples > before
