"""Unit tests for the compressed columnar kernel backend.

Every primitive is differentially checked against the pure-Python
reference backend on randomized pair arrays that cross block
boundaries; the structural properties the backend exists for — block
sharing across merges, deduplicated accounting, the self-describing
serialized stream — are asserted directly.
"""

import pickle
import random
from array import array

import pytest

from repro.kernels import numpy_available
from repro.kernels.compressed_backend import (
    BLOCK_PAIRS,
    CompressedKernels,
    CompressedPairs,
    _MAGIC,
    _NumpyCodec,
    _PythonCodec,
)
from repro.kernels.python_backend import PYTHON_KERNELS

INNERS = ["python"]
if numpy_available():
    INNERS.append("numpy")


def _inner(name):
    if name == "numpy":
        from repro.kernels.numpy_backend import NUMPY_KERNELS

        return NUMPY_KERNELS
    return PYTHON_KERNELS


@pytest.fixture(params=INNERS)
def kernels(request):
    return CompressedKernels(_inner(request.param))


def _random_sorted_pairs(rng, n_pairs, key_range=None, value_range=None):
    """A sorted-unique flat pair array('q'), possibly negative values."""
    key_range = key_range or (0, max(4, n_pairs // 3))
    value_range = value_range or (-(1 << 40), 1 << 40)
    seen = set()
    while len(seen) < n_pairs:
        seen.add(
            (rng.randint(*key_range), rng.randint(*value_range))
        )
    flat = array("q")
    for s, o in sorted(seen):
        flat.append(s)
        flat.append(o)
    return flat


def _as_list(flat):
    return [int(v) for v in flat]


class TestCodecRoundtrip:
    @pytest.mark.parametrize(
        "codec", [_PythonCodec()]
        + ([_NumpyCodec()] if numpy_available() else [])
    )
    @pytest.mark.parametrize(
        "n_pairs", [1, 2, BLOCK_PAIRS - 1, BLOCK_PAIRS, BLOCK_PAIRS + 1,
                    3 * BLOCK_PAIRS + 17]
    )
    def test_roundtrip(self, codec, n_pairs):
        rng = random.Random(n_pairs)
        flat = _random_sorted_pairs(rng, n_pairs)
        pairs = CompressedPairs.from_flat(flat, codec)
        assert len(pairs) == len(flat)
        assert pairs.tolist() == _as_list(flat)

    @pytest.mark.parametrize(
        "codec", [_PythonCodec()]
        + ([_NumpyCodec()] if numpy_available() else [])
    )
    def test_constant_columns_use_width_zero(self, codec):
        # All-equal columns have zero deltas: the block carries only a
        # header (width 0), the extreme of the frame-of-reference win.
        flat = array("q", [7, -3] * 100)
        pairs = CompressedPairs.from_flat(flat, codec)
        assert pairs.tolist() == _as_list(flat)
        assert pairs.nbytes() < 40  # one 36-byte header, no delta bytes

    @pytest.mark.parametrize(
        "codec", [_PythonCodec()]
        + ([_NumpyCodec()] if numpy_available() else [])
    )
    def test_extreme_values_roundtrip(self, codec):
        big = (1 << 62) - 1
        flat = array("q", [-big, big, -1, 1, 0, 0, big, -big])
        flat = PYTHON_KERNELS.sort_pairs(flat, dedup=True)
        pairs = CompressedPairs.from_flat(flat, codec)
        assert pairs.tolist() == _as_list(flat)

    def test_python_and_numpy_codec_streams_interchange(self):
        if not numpy_available():
            pytest.skip("numpy codec unavailable")
        rng = random.Random(5)
        flat = _random_sorted_pairs(rng, 2500)
        py = CompressedPairs.from_flat(flat, _PythonCodec())
        np_ = CompressedPairs.from_flat(
            _inner("numpy").asarray(flat), _NumpyCodec()
        )
        # Same encoding on both codecs, decodable by either.
        assert py.serialize() == np_.serialize()
        crossed = CompressedPairs.deserialize(py.serialize(), _NumpyCodec())
        assert crossed.tolist() == _as_list(flat)


class TestSequenceProtocol:
    def test_indexing_and_slicing(self, kernels):
        rng = random.Random(11)
        flat = _random_sorted_pairs(rng, BLOCK_PAIRS + 333)
        pairs = kernels.asarray(flat)
        reference = _as_list(flat)
        for i in (0, 1, 17, len(flat) - 1, -1, -len(flat)):
            assert pairs[i] == reference[i]
        for lo, hi in ((0, 10), (2046, 2060), (0, len(flat)),
                       (len(flat) - 4, len(flat))):
            assert _as_list(pairs[lo:hi]) == reference[lo:hi]
        with pytest.raises(IndexError):
            pairs[len(flat)]
        with pytest.raises(ValueError):
            pairs[0: len(flat): 4]

    def test_iteration_and_tobytes(self, kernels):
        flat = _random_sorted_pairs(random.Random(3), 100)
        pairs = kernels.asarray(flat)
        assert list(pairs) == _as_list(flat)
        assert pairs.tobytes() == flat.tobytes()

    def test_empty(self, kernels):
        empty = kernels.empty()
        assert len(empty) == 0
        assert empty.tolist() == []
        assert empty.nbytes() == 0


class TestPrimitivesMatchReference:
    @pytest.mark.parametrize("n_pairs", [10, 700, 2 * BLOCK_PAIRS + 50])
    def test_sort_and_views(self, kernels, n_pairs):
        rng = random.Random(n_pairs)
        raw = array(
            "q",
            [rng.randint(-50, 50) for _ in range(2 * n_pairs)],
        )
        expected = PYTHON_KERNELS.sort_pairs(raw, dedup=True)
        got = kernels.sort_pairs(raw, dedup=True)
        assert isinstance(got, CompressedPairs)
        assert got.tolist() == _as_list(expected)
        assert kernels.os_view(got).tolist() == _as_list(
            PYTHON_KERNELS.os_view(expected)
        )

    def test_merge_new_matches_reference(self, kernels):
        rng = random.Random(21)
        main = _random_sorted_pairs(rng, 3000, key_range=(0, 500))
        delta = _random_sorted_pairs(rng, 400, key_range=(0, 500))
        expected_merged, expected_new = PYTHON_KERNELS.merge_new(main, delta)
        merged, new = kernels.merge_new(kernels.asarray(main), delta)
        assert merged.tolist() == _as_list(expected_merged)
        assert _as_list(new) == _as_list(expected_new)

    def test_joins_match_reference(self, kernels):
        rng = random.Random(31)
        v1 = _random_sorted_pairs(rng, 2200, key_range=(0, 300),
                                  value_range=(0, 50))
        v2 = _random_sorted_pairs(rng, 1800, key_range=(100, 400),
                                  value_range=(0, 50))
        c1, c2 = kernels.asarray(v1), kernels.asarray(v2)
        for swap in (False, True):
            assert _as_list(kernels.merge_join(c1, c2, swap=swap)) == \
                _as_list(PYTHON_KERNELS.merge_join(v1, v2, swap=swap))
        assert _as_list(kernels.intersect(c1, c2)) == _as_list(
            PYTHON_KERNELS.intersect(v1, v2)
        )
        assert _as_list(kernels.consecutive_in_group(c1)) == _as_list(
            PYTHON_KERNELS.consecutive_in_group(v1)
        )

    def test_scans_and_bounds_match_reference(self, kernels):
        rng = random.Random(41)
        flat = _random_sorted_pairs(rng, 2 * BLOCK_PAIRS + 99,
                                    key_range=(0, 120))
        pairs = kernels.asarray(flat)
        assert list(kernels.distinct_evens(pairs)) == list(
            PYTHON_KERNELS.distinct_evens(flat)
        )
        for key in (-1, 0, 7, 60, 119, 120, 10_000):
            assert kernels.key_slice(pairs, key) == \
                PYTHON_KERNELS.key_slice(flat, key)
            assert kernels.key_lower_bound(pairs, key) == \
                PYTHON_KERNELS.key_lower_bound(flat, key)


class TestStructureSharing:
    def test_merge_reuses_untouched_blocks(self, kernels):
        rng = random.Random(51)
        main = kernels.sort_pairs(
            _random_sorted_pairs(rng, 10 * BLOCK_PAIRS), dedup=True
        )
        # A delta confined to the key range of the *last* block.
        last_block = kernels._raw(main)[-2 * BLOCK_PAIRS:]
        lo = int(last_block[0])
        delta = array("q", [lo + 1, -999_999_999])
        merged, _ = kernels.merge_new(main, delta)
        shared = set(main.block_ids()) & set(merged.block_ids())
        assert len(shared) >= len(main.block_ids()) - 2

    def test_copy_flat_is_sharing(self, kernels):
        pairs = kernels.asarray(_random_sorted_pairs(random.Random(6), 500))
        assert kernels.copy_flat(pairs) is pairs

    def test_flat_nbytes_deduplicates_shared_blocks(self, kernels):
        pairs = kernels.asarray(
            _random_sorted_pairs(random.Random(7), 3000)
        )
        alias = kernels.copy_flat(pairs)
        seen = set()
        total = kernels.flat_nbytes(pairs, seen)
        assert total == pairs.nbytes()
        assert kernels.flat_nbytes(alias, seen) == 0

    def test_compression_beats_flat_encoding(self, kernels):
        # Dense dictionary ids: the motivating case must beat 4x.
        flat = array("q")
        for i in range(20_000):
            flat.append(i // 4)
            flat.append(i % 4 + i // 8)
        flat = PYTHON_KERNELS.sort_pairs(flat, dedup=True)
        pairs = kernels.asarray(flat)
        assert pairs.nbytes() * 4 <= 8 * len(flat)


class TestSerialization:
    def test_serialize_roundtrip_and_magic(self, kernels):
        flat = _random_sorted_pairs(random.Random(8), 2500)
        pairs = kernels.asarray(flat)
        blob = pairs.serialize()
        assert blob.startswith(_MAGIC)
        assert len(blob) == pairs.serialized_nbytes()
        back = kernels.from_buffer(blob, len(pairs))
        assert isinstance(back, CompressedPairs)
        assert back.tolist() == _as_list(flat)

    def test_from_buffer_sniffs_raw_segments(self, kernels):
        flat = _random_sorted_pairs(random.Random(9), 10)
        view = kernels.from_buffer(flat.tobytes(), len(flat))
        assert not isinstance(view, CompressedPairs)
        assert _as_list(view) == _as_list(flat)

    def test_from_buffer_rejects_truncated_manifest(self, kernels):
        pairs = kernels.asarray(_random_sorted_pairs(random.Random(2), 50))
        with pytest.raises(ValueError):
            kernels.from_buffer(pairs.serialize(), len(pairs) + 2)

    def test_pickle_roundtrip(self, kernels):
        flat = _random_sorted_pairs(random.Random(10), 1500)
        pairs = kernels.asarray(flat)
        clone = pickle.loads(pickle.dumps(pairs))
        assert clone.tolist() == _as_list(flat)


class TestBackendPlumbing:
    def test_name_and_inner(self, kernels):
        assert kernels.name == "compressed"
        assert kernels.inner_name in ("python", "numpy")

    def test_asarray_passthrough(self, kernels):
        pairs = kernels.asarray(array("q", [1, 2, 3, 4]))
        assert kernels.asarray(pairs) is pairs

    def test_odd_length_rejected(self, kernels):
        with pytest.raises(ValueError):
            kernels.asarray(array("q", [1, 2, 3]))
