"""Backend selection policy, env knobs, and end-to-end threading."""

import pytest

from repro.core.engine import InferrayEngine
from repro.kernels import (
    BACKEND_NAMES,
    KernelUnavailableError,
    get_backend,
    numpy_available,
    resolve_backend,
)
from repro.kernels.python_backend import PYTHON_KERNELS

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend not available"
)


class TestResolvePolicy:
    def test_python_always_available(self):
        assert get_backend("python") is PYTHON_KERNELS
        assert resolve_backend("python").name == "python"

    def test_instance_passthrough(self):
        assert resolve_backend(PYTHON_KERNELS) is PYTHON_KERNELS

    def test_unknown_name_rejected(self):
        with pytest.raises(KernelUnavailableError):
            get_backend("cupy")

    def test_forced_scalar_algorithm_pins_python(self):
        # counting/radix/timsort ablations are only observable on the
        # interpreted backend; 'auto' must not route them to numpy.
        assert resolve_backend("auto", algorithm="counting").name == "python"
        assert resolve_backend("auto", algorithm="radix").name == "python"

    @requires_numpy
    def test_auto_prefers_numpy(self, monkeypatch):
        # Default policy: ignore any ambient REPRO_KERNELS override
        # (the compressed CI legs export one).
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        assert resolve_backend("auto").name == "numpy"
        assert resolve_backend(None).name == "numpy"

    @requires_numpy
    def test_env_disable_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        monkeypatch.setenv("REPRO_KERNELS_DISABLE_NUMPY", "1")
        assert not numpy_available()
        assert resolve_backend("auto").name == "python"
        with pytest.raises(KernelUnavailableError):
            get_backend("numpy")

    @requires_numpy
    def test_env_default_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "python")
        assert resolve_backend("auto").name == "python"
        # explicit names beat the env default
        assert resolve_backend("numpy").name == "numpy"

    @requires_numpy
    def test_forced_algorithm_beats_env_numpy_default(self, monkeypatch):
        # The ablation pin must hold even when the environment defaults
        # the kernels to numpy.
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        assert resolve_backend("auto", algorithm="counting").name == "python"

    @requires_numpy
    def test_explicit_numpy_with_forced_algorithm_rejected(self):
        with pytest.raises(ValueError, match="scalar-sort ablation"):
            resolve_backend("numpy", algorithm="counting")
        with pytest.raises(ValueError, match="scalar-sort ablation"):
            InferrayEngine("rho-df", backend="numpy", algorithm="radix")

    def test_backend_names_exported(self):
        assert set(BACKEND_NAMES) == {"auto", "python", "numpy", "compressed"}


class TestEngineThreading:
    def test_engine_exposes_backend(self):
        engine = InferrayEngine("rho-df", backend="python")
        assert engine.kernels.name == "python"
        assert engine.main.kernels is engine.kernels

    @requires_numpy
    def test_engine_numpy_backend_reaches_tables(self):
        from repro.rdf.terms import IRI, Triple
        from repro.rdf.vocabulary import RDF, RDFS

        engine = InferrayEngine("rdfs-default", backend="numpy")
        engine.load_triples(
            [
                Triple(IRI("ex:h"), RDFS.subClassOf, IRI("ex:m")),
                Triple(IRI("ex:b"), RDF.type, IRI("ex:h")),
            ]
        )
        engine.materialize()
        assert engine.kernels.name == "numpy"
        for pid in engine.main.property_ids():
            assert engine.main.table(pid).kernels.name == "numpy"
        assert Triple(IRI("ex:b"), RDF.type, IRI("ex:m")) in set(
            engine.triples()
        )

    def test_cli_accepts_backend_flag(self, tmp_path, capsys):
        from repro.cli import main

        nt = tmp_path / "tiny.nt"
        nt.write_text(
            "<ex:a> <http://www.w3.org/2000/01/rdf-schema#subClassOf> "
            "<ex:b> .\n"
        )
        assert main(["stats", str(nt), "--backend", "python"]) == 0
        out = capsys.readouterr().out
        assert "kernel backend:    python" in out
