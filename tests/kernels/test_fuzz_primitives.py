"""Seeded randomized fuzz tests for the kernel primitives (ISSUE 1).

Every primitive of the NumPy backend is compared against the
pure-Python reference on adversarial pair distributions: duplicates,
empty tables, single-property skew, and max-ID boundary values around
2**32 — the edge of the NumPy backend's packed-uint64 fast path, so
both the packed and the structured-fallback code paths are exercised.

All randomness is seeded (no flaky inputs); each named distribution is
regenerated identically on every run.
"""

import random
import zlib
from array import array

import pytest

from repro.kernels import get_backend, numpy_available
from repro.kernels.python_backend import PYTHON_KERNELS

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend not available"
)

BOUNDARY = 2 ** 32  # packed fast-path limit in the numpy backend
SEED = 0xC0FFEE


def _flat(rng, n_pairs, key_pool, value_pool):
    out = []
    for _ in range(n_pairs):
        out.append(rng.choice(key_pool))
        out.append(rng.choice(value_pool))
    return out


def _distributions():
    rng = random.Random(SEED)
    small = list(range(8))
    dense = list(range(60))
    sparse = [rng.randrange(10 ** 7) for _ in range(40)]
    boundary = [0, 1, BOUNDARY - 2, BOUNDARY - 1, BOUNDARY, BOUNDARY + 1,
                2 ** 40, 2 ** 62]
    yield "empty", []
    yield "single", [3, 7]
    yield "one-pair-repeated", [5, 5] * 50
    yield "single-property-skew", _flat(rng, 300, [42], dense)
    yield "heavy-duplicates", _flat(rng, 250, small, small)
    yield "dense-random", _flat(rng, 400, dense, dense)
    yield "sparse-random", _flat(rng, 200, sparse, sparse)
    yield "boundary-2pow32", _flat(rng, 120, boundary, boundary)
    yield "mixed-boundary", _flat(rng, 150, dense, boundary)
    # The real dictionary layout: property ids just below the 2**32
    # split, resource ids just above it — absolute values exceed 32
    # bits but the spread is tiny, so the rebased packed path fires.
    dict_like = [BOUNDARY - d for d in range(1, 20)] + [
        BOUNDARY + d for d in range(1, 400)
    ]
    yield "dictionary-layout", _flat(rng, 300, dict_like, dict_like)


DISTRIBUTIONS = dict(_distributions())


def as_ints(flat):
    return [int(value) for value in flat]


@pytest.fixture(scope="module")
def np_kernels():
    return get_backend("numpy")


@pytest.fixture(params=sorted(DISTRIBUTIONS))
def dist(request):
    return request.param, list(DISTRIBUTIONS[request.param])


def test_sort_pairs_matches(np_kernels, dist):
    _, flat = dist
    for dedup in (True, False):
        expected = as_ints(PYTHON_KERNELS.sort_pairs(flat, dedup=dedup))
        got = as_ints(np_kernels.sort_pairs(flat, dedup=dedup))
        assert got == expected


def test_swap_and_os_view_match(np_kernels, dist):
    _, flat = dist
    assert as_ints(np_kernels.swap(flat)) == as_ints(PYTHON_KERNELS.swap(flat))
    sorted_flat = PYTHON_KERNELS.sort_pairs(flat, dedup=True)
    assert as_ints(np_kernels.os_view(sorted_flat)) == as_ints(
        PYTHON_KERNELS.os_view(sorted_flat)
    )


def test_merge_new_matches(np_kernels, dist):
    name, flat = dist
    rng = random.Random(SEED ^ zlib.crc32(name.encode()))
    # Split the distribution into main/inferred halves plus an overlap,
    # so duplicates across the two inputs are guaranteed.
    pairs = list(zip(flat[0::2], flat[1::2]))
    rng.shuffle(pairs)
    half = len(pairs) // 2
    main_pairs = pairs[:half] + pairs[: half // 2]
    inferred_pairs = pairs[half:] + pairs[: half // 3]
    main = PYTHON_KERNELS.sort_pairs(
        [v for p in main_pairs for v in p], dedup=True
    )
    inferred = PYTHON_KERNELS.sort_pairs(
        [v for p in inferred_pairs for v in p], dedup=True
    )
    expected_merged, expected_new = PYTHON_KERNELS.merge_new(main, inferred)
    got_merged, got_new = np_kernels.merge_new(main, inferred)
    assert as_ints(got_merged) == as_ints(expected_merged)
    assert as_ints(got_new) == as_ints(expected_new)


def test_merge_join_matches(np_kernels, dist):
    name, flat = dist
    rng = random.Random(SEED ^ zlib.crc32(name.encode()) ^ 1)
    other = list(flat)
    rng.shuffle(other)
    view1 = PYTHON_KERNELS.sort_pairs(flat, dedup=True)
    view2 = PYTHON_KERNELS.sort_pairs(other, dedup=True)
    for swap in (False, True):
        expected = as_ints(PYTHON_KERNELS.merge_join(view1, view2, swap=swap))
        got = as_ints(np_kernels.merge_join(view1, view2, swap=swap))
        assert got == expected


def test_merge_join_self_join_matches(np_kernels, dist):
    _, flat = dist
    sorted_flat = PYTHON_KERNELS.sort_pairs(flat, dedup=True)
    os_view = PYTHON_KERNELS.os_view(sorted_flat)
    expected = as_ints(PYTHON_KERNELS.merge_join(os_view, sorted_flat))
    got = as_ints(np_kernels.merge_join(os_view, sorted_flat))
    assert got == expected


def test_intersect_matches(np_kernels, dist):
    name, flat = dist
    rng = random.Random(SEED ^ zlib.crc32(name.encode()) ^ 2)
    other = list(flat)
    rng.shuffle(other)
    # Overlap guaranteed: second view reuses a pair-aligned prefix.
    other += flat[: 2 * (len(flat) // 4)]
    view1 = PYTHON_KERNELS.sort_pairs(flat, dedup=True)
    view2 = PYTHON_KERNELS.sort_pairs(other, dedup=True)
    assert as_ints(np_kernels.intersect(view1, view2)) == as_ints(
        PYTHON_KERNELS.intersect(view1, view2)
    )


def test_consecutive_in_group_matches(np_kernels, dist):
    _, flat = dist
    sorted_flat = PYTHON_KERNELS.sort_pairs(flat, dedup=True)
    assert as_ints(np_kernels.consecutive_in_group(sorted_flat)) == as_ints(
        PYTHON_KERNELS.consecutive_in_group(sorted_flat)
    )


def test_distinct_and_slices_match(np_kernels, dist):
    _, flat = dist
    sorted_flat = PYTHON_KERNELS.sort_pairs(flat, dedup=True)
    expected_keys = as_ints(PYTHON_KERNELS.distinct_evens(sorted_flat))
    assert as_ints(np_kernels.distinct_evens(sorted_flat)) == expected_keys
    probes = expected_keys[:5] + [-1, 0, BOUNDARY, 2 ** 62 + 1]
    for key in probes:
        expected = PYTHON_KERNELS.key_slice(sorted_flat, key)
        got = np_kernels.key_slice(sorted_flat, key)
        assert tuple(int(x) for x in got) == expected


def test_pair_with_constant_and_concat_match(np_kernels, dist):
    _, flat = dist
    keys = as_ints(
        PYTHON_KERNELS.distinct_evens(
            PYTHON_KERNELS.sort_pairs(flat, dedup=True)
        )
    )
    for const_obj in (True, False):
        expected = as_ints(
            PYTHON_KERNELS.pair_with_constant(
                keys, 99, constant_as_object=const_obj
            )
        )
        got = as_ints(
            np_kernels.pair_with_constant(
                keys, 99, constant_as_object=const_obj
            )
        )
        assert got == expected
    chunks = [array("q", flat), array("q"), list(flat[: len(flat) // 2])]
    assert as_ints(np_kernels.concat(chunks)) == as_ints(
        PYTHON_KERNELS.concat(chunks)
    )


def test_cross_backend_array_adoption(np_kernels):
    """numpy kernels accept array('q') and python kernels accept ndarray."""
    flat = array("q", [4, 1, 2, 9, 2, 9, 0, 0])
    np_sorted = np_kernels.sort_pairs(flat)
    py_sorted = PYTHON_KERNELS.sort_pairs(np_sorted, dedup=False)
    assert as_ints(py_sorted) == as_ints(np_sorted)
    assert as_ints(PYTHON_KERNELS.asarray(np_sorted)) == as_ints(np_sorted)


def test_packed_fast_path_boundary_exactness(np_kernels):
    """Pairs straddling 2**32 must not be conflated by key packing."""
    tricky = [
        BOUNDARY - 1, 0,
        0, BOUNDARY - 1,
        1, 0,
        0, 1,
        BOUNDARY, 0,
        0, BOUNDARY,
    ]
    expected = as_ints(PYTHON_KERNELS.sort_pairs(tricky))
    assert as_ints(np_kernels.sort_pairs(tricky)) == expected


def test_packed_path_fires_on_real_dictionary_ids(np_kernels):
    """Rebased packing must cover the dense split numbering (ids ~2**32)."""
    from numpy import int64, asarray
    from repro.kernels.numpy_backend import _pack

    evens = asarray([BOUNDARY - 5, BOUNDARY + 9, BOUNDARY + 1000], int64)
    odds = asarray([BOUNDARY + 1, BOUNDARY + 2, BOUNDARY - 3], int64)
    assert _pack(evens, odds) is not None
    # but a genuine > 32-bit spread still falls back
    wide = asarray([0, 2 ** 40], int64)
    assert _pack(wide, odds[:2]) is None
