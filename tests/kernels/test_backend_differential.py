"""Cross-backend differential suite (ISSUE 1).

Every ruleset × generated dataset is materialized under every kernel
backend; the closures must be *identical*: same sorted triple list and
same ``MaterializationStats.n_inferred``.  The pure-Python backend is
the reference semantics; the NumPy backend (when importable) and the
compressed backend (always available — it composes over whichever inner
backend is importable) must be indistinguishable from it on every
workload shape we generate (deep chains that stress the θ closure,
LUBM-mini's schema-heavy mix, BSBM-mini's instance-heavy mix).
"""

import pytest

from repro.core.engine import InferrayEngine
from repro.datasets.bsbm import bsbm_like
from repro.datasets.chains import (
    sameas_chain,
    subclass_chain,
    subclass_tree,
    subproperty_chain,
    transitive_property_chain,
)
from repro.datasets.lubm import lubm_like
from repro.kernels import numpy_available
from repro.rules.rulesets import RULESET_NAMES

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend not available"
)

#: name → dataset factory (small enough that the full ruleset × dataset
#: × backend product stays fast, varied enough to hit every rule class).
DATASETS = {
    "chain": lambda: subclass_chain(60),
    "subprop-chain": lambda: subproperty_chain(25),
    "trans-chain": lambda: transitive_property_chain(20),
    "sameas-chain": lambda: sameas_chain(8),
    "tree": lambda: subclass_tree(2, 5),
    "lubm-mini": lambda: lubm_like(1),
    "bsbm-mini": lambda: bsbm_like(120),
}

_data_cache = {}
_reference_cache = {}


def _dataset(name):
    if name not in _data_cache:
        _data_cache[name] = DATASETS[name]()
    return _data_cache[name]


def _materialize(ruleset, dataset_name, backend):
    engine = InferrayEngine(ruleset, backend=backend)
    engine.load_triples(_dataset(dataset_name))
    stats = engine.materialize()
    assert engine.kernels.name == backend
    triples = sorted(triple.n3() for triple in engine.triples())
    return triples, stats.n_inferred


def _reference(ruleset, dataset_name):
    key = (ruleset, dataset_name)
    if key not in _reference_cache:
        _reference_cache[key] = _materialize(ruleset, dataset_name, "python")
    return _reference_cache[key]


@requires_numpy
@pytest.mark.parametrize("dataset_name", sorted(DATASETS))
@pytest.mark.parametrize("ruleset", RULESET_NAMES)
def test_numpy_backend_matches_python(ruleset, dataset_name):
    expected_triples, expected_inferred = _reference(ruleset, dataset_name)
    triples, inferred = _materialize(ruleset, dataset_name, "numpy")
    assert inferred == expected_inferred
    assert triples == expected_triples


@pytest.mark.parametrize("dataset_name", sorted(DATASETS))
@pytest.mark.parametrize("ruleset", RULESET_NAMES)
def test_compressed_backend_matches_python(ruleset, dataset_name):
    # Runs in every environment: with numpy importable the compressed
    # backend composes over the numpy codec/kernels, without it over
    # the pure-Python ones — both compositions must match the reference.
    expected_triples, expected_inferred = _reference(ruleset, dataset_name)
    triples, inferred = _materialize(ruleset, dataset_name, "compressed")
    assert inferred == expected_inferred
    assert triples == expected_triples


def test_differential_covers_nontrivial_closures():
    """Guard: the reference runs actually infer something."""
    _, inferred = _reference("rdfs-default", "chain")
    assert inferred > 1000  # 60-node chain closure is quadratic
    _, inferred = _reference("rdfs-full", "bsbm-mini")
    assert inferred > 0
