"""Chaos tests: crash/fault the persistence path, prove atomicity.

The invariant under test: ``Store.save`` either fully replaces the
target file or leaves the previous bytes untouched — a fault (or a
kill -9) mid-save never yields a half-written store, and never litters
the directory with temp files that the next boot would trip over.
"""

import os
import subprocess
import sys

import pytest

from repro.core.store_api import Store, StoreCorruptionError, is_store_file
from repro.faults import InjectedFault, inject, reset
from repro.faults.registry import ENV_VAR, KILL_EXIT_CODE
from repro.rdf.terms import IRI, Triple
from repro.rdf.vocabulary import RDF, RDFS


@pytest.fixture(autouse=True)
def _clean_registry():
    reset()
    yield
    reset()


def ex(name):
    return IRI(f"ex:{name}")


DATA = [
    Triple(ex("human"), RDFS.subClassOf, ex("mammal")),
    Triple(ex("Bart"), RDF.type, ex("human")),
]

MORE = [Triple(ex("Lisa"), RDF.type, ex("human"))]


def make_store(extra=()):
    store = Store(DATA + list(extra))
    store.materialize()
    return store


def no_temp_litter(directory):
    return [n for n in os.listdir(directory) if ".tmp" in n] == []


class TestFaultedSaveAtomicity:
    @pytest.mark.parametrize("site", ["persist.write", "persist.fsync"])
    def test_fault_mid_save_keeps_previous_file(self, tmp_path, site):
        target = str(tmp_path / "store.bin")
        make_store().save(target)
        golden = open(target, "rb").read()
        with inject(site):
            with pytest.raises(InjectedFault):
                make_store(MORE).save(target)
        assert open(target, "rb").read() == golden
        assert no_temp_litter(tmp_path)
        with Store.load(target) as reloaded:
            assert set(reloaded.triples()) == set(make_store().triples())

    @pytest.mark.parametrize("site", ["persist.write", "persist.fsync"])
    def test_fault_on_fresh_save_leaves_nothing(self, tmp_path, site):
        target = str(tmp_path / "store.bin")
        with inject(site):
            with pytest.raises(InjectedFault):
                make_store().save(target)
        assert not os.path.exists(target)
        assert no_temp_litter(tmp_path)

    def test_save_succeeds_after_fault_exhausted(self, tmp_path):
        target = str(tmp_path / "store.bin")
        with inject("persist.write:raise:times=1"):
            store = make_store()
            with pytest.raises(InjectedFault):
                store.save(target)
            store.save(target)  # the single armed fault was consumed
        with Store.load(target) as reloaded:
            assert reloaded.n_triples == make_store().n_triples


class TestKilledSubprocessMidSave:
    def test_kill_mid_save_preserves_previous_file(self, tmp_path):
        """kill -9 (via os._exit at the seam) mid-save: old file intact."""
        target = str(tmp_path / "store.bin")
        make_store().save(target)
        golden = open(target, "rb").read()
        code = (
            "from repro.core.store_api import Store\n"
            "from repro.rdf.terms import IRI, Triple\n"
            "from repro.rdf.vocabulary import RDF, RDFS\n"
            "ex = lambda n: IRI('ex:' + n)\n"
            "store = Store([\n"
            "    Triple(ex('human'), RDFS.subClassOf, ex('mammal')),\n"
            "    Triple(ex('Bart'), RDF.type, ex('human')),\n"
            "    Triple(ex('Lisa'), RDF.type, ex('human')),\n"
            "])\n"
            "store.materialize()\n"
            f"store.save({target!r})\n"
            "raise SystemExit(1)\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            env={
                **os.environ,
                "PYTHONPATH": _src_path(),
                ENV_VAR: "persist.write:kill",
            },
        )
        assert result.returncode == KILL_EXIT_CODE
        assert open(target, "rb").read() == golden
        assert is_store_file(target)
        with Store.load(target) as reloaded:
            assert set(reloaded.triples()) == set(make_store().triples())
        # The orphaned temp file from the killed process (os._exit runs
        # no cleanup) must not confuse loading, and must be the only
        # residue.
        litter = [n for n in os.listdir(tmp_path) if ".tmp" in n]
        assert len(litter) <= 1


class TestCorruptionDetection:
    def test_every_flipped_byte_is_detected(self, tmp_path):
        """Flip one byte at a stride across the payload: every flip
        either raises a structured corruption error or (for the header
        region) a structured format error — never a silent wrong load
        and never a raw struct/KeyError leak."""
        target = str(tmp_path / "store.bin")
        make_store().save(target)
        golden = open(target, "rb").read()
        baseline = sorted(t.n3() for t in Store.load(target).triples())
        flips = range(0, len(golden), max(1, len(golden) // 64))
        undetected = []
        for position in flips:
            corrupted = bytearray(golden)
            corrupted[position] ^= 0xFF
            with open(target, "wb") as handle:
                handle.write(bytes(corrupted))
            try:
                with Store.load(target) as reloaded:
                    loaded = sorted(t.n3() for t in reloaded.triples())
                if loaded != baseline:
                    undetected.append(position)
            except ValueError:
                # StoreFormatError and every corruption subclass are
                # ValueErrors; anything else (struct.error, KeyError,
                # EOFError...) fails the test by propagating.
                continue
        assert undetected == []

    def test_truncation_at_any_point_is_detected(self, tmp_path):
        target = str(tmp_path / "store.bin")
        make_store().save(target)
        golden = open(target, "rb").read()
        for cut in range(1, len(golden), max(1, len(golden) // 32)):
            with open(target, "wb") as handle:
                handle.write(golden[:cut])
            with pytest.raises(ValueError):
                Store.load(target)

    def test_corruption_error_names_section_and_offset(self, tmp_path):
        target = str(tmp_path / "store.bin")
        make_store().save(target)
        golden = bytearray(open(target, "rb").read())
        golden[-2] ^= 0xFF  # deep in the last section's payload
        with open(target, "wb") as handle:
            handle.write(bytes(golden))
        with pytest.raises(StoreCorruptionError) as excinfo:
            Store.load(target)
        assert excinfo.value.section is not None
        assert excinfo.value.offset is not None
        assert excinfo.value.section in str(excinfo.value)


def _src_path():
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
