"""Unit tests for the seeded fault-injection registry (repro.faults)."""

import os
import subprocess
import sys

import pytest

from repro.faults import (
    FAULT_SITES,
    FaultSpec,
    InjectedFault,
    active_specs,
    fire,
    inject,
    parse_faults,
    reset,
)
from repro.faults.registry import ENV_VAR, KILL_EXIT_CODE


@pytest.fixture(autouse=True)
def _clean_registry():
    reset()
    yield
    reset()


class TestParsing:
    def test_bare_site_defaults(self):
        (spec,) = parse_faults("persist.write")
        assert spec == FaultSpec(site="persist.write")
        assert spec.action == "raise"
        assert spec.after == 0
        assert spec.times == 1
        assert spec.p == 1.0

    def test_full_grammar(self):
        (spec,) = parse_faults(
            "parallel.worker:kill:after=2:times=-1:p=0.5:seed=7"
        )
        assert spec.site == "parallel.worker"
        assert spec.action == "kill"
        assert spec.after == 2
        assert spec.times == -1
        assert spec.p == 0.5
        assert spec.seed == 7

    def test_multiple_semicolon_separated(self):
        specs = parse_faults("persist.write; serving.flush:raise:after=1")
        assert [s.site for s in specs] == ["persist.write", "serving.flush"]

    def test_unknown_site_warns_but_parses(self):
        with pytest.warns(UserWarning, match="unknown fault site"):
            (spec,) = parse_faults("future.site:raise")
        assert spec.site == "future.site"

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            parse_faults("persist.write:explode")

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown fault option"):
            parse_faults("persist.write:raise:bogus=1")

    def test_roundtrip_via_token(self):
        (spec,) = parse_faults("shm.attach:raise:after=1:times=3:seed=9")
        (reparsed,) = parse_faults(spec.to_token())
        assert reparsed == spec

    def test_all_documented_sites_parse(self):
        for site in FAULT_SITES:
            (spec,) = parse_faults(site)
            assert spec.site == site


class TestFiring:
    def test_unarmed_site_is_noop(self):
        fire("persist.write")  # nothing armed: must not raise

    def test_raise_action(self):
        with inject("persist.write"):
            with pytest.raises(InjectedFault, match="persist.write"):
                fire("persist.write")

    def test_detail_lands_in_message(self):
        with inject("persist.write"):
            with pytest.raises(InjectedFault, match="why-not"):
                fire("persist.write", "why-not")

    def test_shm_attach_raises_file_not_found(self):
        # Mirrors the real failure mode of a vanished segment, so the
        # scheduler's healable-error net catches it unchanged.
        with inject("shm.attach"):
            with pytest.raises(FileNotFoundError):
                fire("shm.attach")

    def test_after_skips_hits(self):
        with inject("persist.write:raise:after=2"):
            fire("persist.write")
            fire("persist.write")
            with pytest.raises(InjectedFault):
                fire("persist.write")

    def test_times_bounds_firing(self):
        with inject("persist.write:raise:times=2"):
            with pytest.raises(InjectedFault):
                fire("persist.write")
            with pytest.raises(InjectedFault):
                fire("persist.write")
            fire("persist.write")  # exhausted

    def test_times_unlimited(self):
        with inject("persist.write:raise:times=-1"):
            for _ in range(5):
                with pytest.raises(InjectedFault):
                    fire("persist.write")

    def test_seeded_probability_is_deterministic(self):
        def pattern():
            hits = []
            with inject("persist.write:raise:times=-1:p=0.5:seed=42"):
                for _ in range(32):
                    try:
                        fire("persist.write")
                        hits.append(0)
                    except InjectedFault:
                        hits.append(1)
            return hits

        first, second = pattern(), pattern()
        assert first == second
        assert 0 < sum(first) < 32  # actually probabilistic


class TestInjectContextManager:
    def test_arms_and_disarms(self):
        assert active_specs() == ()
        with inject("persist.write"):
            assert [s.site for s in active_specs()] == ["persist.write"]
        assert active_specs() == ()

    def test_exports_env_and_restores(self):
        previous = os.environ.get(ENV_VAR)
        with inject("persist.write:raise:after=1"):
            assert "persist.write" in os.environ[ENV_VAR]
        assert os.environ.get(ENV_VAR) == previous

    def test_accepts_spec_objects(self):
        with inject(FaultSpec(site="serving.flush", times=2)):
            (spec,) = active_specs()
            assert spec.times == 2

    def test_env_inheritance_across_subprocess(self):
        # A child process re-arms from $REPRO_FAULTS on its first
        # fire(): the mechanism worker processes rely on.
        code = (
            "from repro.faults import fire, InjectedFault\n"
            "try:\n"
            "    fire('persist.write')\n"
            "except InjectedFault:\n"
            "    raise SystemExit(7)\n"
            "raise SystemExit(1)\n"
        )
        with inject("persist.write"):
            result = subprocess.run(
                [sys.executable, "-c", code],
                env={**os.environ, "PYTHONPATH": _src_path()},
            )
        assert result.returncode == 7

    def test_kill_action_exits_with_sentinel_code(self):
        code = (
            "from repro.faults import fire\n"
            "fire('persist.write')\n"
            "raise SystemExit(1)\n"
        )
        with inject("persist.write:kill"):
            result = subprocess.run(
                [sys.executable, "-c", code],
                env={**os.environ, "PYTHONPATH": _src_path()},
            )
        assert result.returncode == KILL_EXIT_CODE


def _src_path():
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
