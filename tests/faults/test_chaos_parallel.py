"""Chaos tests: kill/crash parallel workers mid-wave, prove healing.

The invariant under test: a process-parallel materialization whose
worker pool dies mid-wave self-heals — the wave re-runs on a healthy
substrate, the final closure is byte-identical to a sequential run,
and the degradation is visible on the executor decision and the
scheduler's counter instead of silently vanishing.
"""

import pytest

from repro.core.engine import InferrayEngine
from repro.datasets.bsbm import bsbm_like
from repro.faults import inject, reset


@pytest.fixture(autouse=True)
def _clean_registry():
    reset()
    yield
    reset()


@pytest.fixture(autouse=True)
def _fork_workers(monkeypatch):
    # Pin fork so worker entrypoints resolve however pytest imported us.
    monkeypatch.setenv("REPRO_MP_START_METHOD", "fork")


def sequential_closure(triples, backend="python"):
    with engine_for(triples, backend=backend, workers=1) as engine:
        engine.materialize()
        return sorted(t.n3() for t in engine.triples())


class engine_for:
    """Context manager building an engine over ``triples``."""

    def __init__(self, triples, *, backend="python", workers=1, mode=None):
        self.engine = InferrayEngine(
            "rdfs-default",
            backend=backend,
            workers=workers,
            parallel_mode=mode,
        )
        self.engine.load_triples(triples)

    def __enter__(self):
        return self.engine

    def __exit__(self, *exc_info):
        self.engine.close()


class TestWorkerKillMidWave:
    def test_killed_worker_heals_to_identical_closure(self):
        data = bsbm_like(30)
        golden = sequential_closure(data)
        with engine_for(
            data, workers=2, mode="process"
        ) as engine, inject("parallel.worker:kill:after=2"):
            stats = engine.materialize()
            closure = sorted(t.n3() for t in engine.triples())
        assert closure == golden
        assert stats.parallel_fallback is not None
        assert "mid-wave" in stats.parallel_fallback
        assert engine.scheduler.degraded_total >= 1

    def test_injected_worker_exception_heals_too(self):
        data = bsbm_like(30)
        golden = sequential_closure(data)
        # shm.attach raises FileNotFoundError inside the worker — the
        # vanished-segment failure mode, distinct from a dead process.
        with engine_for(
            data, workers=2, mode="process"
        ) as engine, inject("shm.attach"):
            engine.materialize()
            closure = sorted(t.n3() for t in engine.triples())
        assert closure == golden
        assert engine.scheduler.degraded_total >= 1

    def test_heal_is_not_sticky_across_materializations(self):
        data = bsbm_like(30)
        with engine_for(data, workers=2, mode="process") as engine:
            with inject("parallel.worker:kill:after=1"):
                engine.materialize()
            assert engine.scheduler.degraded_total >= 1
            degraded_before = engine.scheduler.degraded_total
            # A later (fault-free) run gets a fresh decision; healing
            # must not have latched the engine into degraded mode.
            engine.load_triples(bsbm_like(5, seed=11))
            engine.materialize()
            assert engine.scheduler.degraded_total == degraded_before

    def test_thread_mode_unaffected_by_worker_faults(self):
        # The parallel.worker seam lives in the process-worker
        # entrypoint; thread mode never crosses it, so the same spec
        # armed under thread mode is a no-op.
        data = bsbm_like(20)
        golden = sequential_closure(data)
        with engine_for(
            data, workers=2, mode="thread"
        ) as engine, inject("parallel.worker:kill:after=1"):
            engine.materialize()
            closure = sorted(t.n3() for t in engine.triples())
        assert closure == golden
        assert engine.scheduler.degraded_total == 0
