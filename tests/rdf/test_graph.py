"""Unit tests for the decoded-triple Graph container."""

from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal, Triple


def t(s, p, o):
    return Triple(IRI(s), IRI(p), IRI(o))


class TestGraphBasics:
    def test_add_and_contains(self):
        g = Graph()
        assert g.add(t("a", "p", "b"))
        assert t("a", "p", "b") in g
        assert len(g) == 1

    def test_add_duplicate_returns_false(self):
        g = Graph([t("a", "p", "b")])
        assert not g.add(t("a", "p", "b"))
        assert len(g) == 1

    def test_update_counts_new(self):
        g = Graph([t("a", "p", "b")])
        added = g.update([t("a", "p", "b"), t("a", "p", "c")])
        assert added == 1
        assert len(g) == 2

    def test_discard(self):
        g = Graph([t("a", "p", "b")])
        assert g.discard(t("a", "p", "b"))
        assert not g.discard(t("a", "p", "b"))
        assert len(g) == 0

    def test_discard_updates_indexes(self):
        g = Graph([t("a", "p", "b")])
        g.discard(t("a", "p", "b"))
        assert list(g.triples(subject=IRI("a"))) == []

    def test_iteration(self):
        triples = {t("a", "p", "b"), t("c", "p", "d")}
        g = Graph(triples)
        assert set(g) == triples

    def test_equality_with_graph_and_set(self):
        g1 = Graph([t("a", "p", "b")])
        g2 = Graph([t("a", "p", "b")])
        assert g1 == g2
        assert g1 == {t("a", "p", "b")}

    def test_copy_is_independent(self):
        g1 = Graph([t("a", "p", "b")])
        g2 = g1.copy()
        g2.add(t("x", "p", "y"))
        assert len(g1) == 1
        assert len(g2) == 2


class TestGraphPatterns:
    def setup_method(self):
        self.g = Graph(
            [
                t("a", "p", "b"),
                t("a", "q", "c"),
                t("d", "p", "b"),
                Triple(IRI("a"), IRI("p"), Literal("lit")),
            ]
        )

    def test_subject_pattern(self):
        assert len(list(self.g.triples(subject=IRI("a")))) == 3

    def test_predicate_pattern(self):
        assert len(list(self.g.triples(predicate=IRI("p")))) == 3

    def test_object_pattern(self):
        assert len(list(self.g.triples(obj=IRI("b")))) == 2

    def test_combined_pattern(self):
        matches = list(self.g.triples(subject=IRI("a"), predicate=IRI("p")))
        assert len(matches) == 2

    def test_fully_bound_pattern(self):
        matches = list(
            self.g.triples(IRI("a"), IRI("p"), IRI("b"))
        )
        assert matches == [t("a", "p", "b")]

    def test_no_match(self):
        assert list(self.g.triples(subject=IRI("zzz"))) == []

    def test_subjects_helper(self):
        assert set(self.g.subjects(IRI("p"), IRI("b"))) == {IRI("a"), IRI("d")}

    def test_objects_helper(self):
        objects = set(self.g.objects(IRI("a"), IRI("p")))
        assert objects == {IRI("b"), Literal("lit")}
