"""Unit tests for the W3C vocabulary namespaces."""

from repro.rdf.terms import IRI
from repro.rdf.vocabulary import (
    OWL,
    PROPERTY_MARKING_TYPES,
    PROPERTY_POSITION_PREDICATES,
    RDF,
    RDFS,
    XSD,
)


class TestNamespaces:
    def test_rdf_type(self):
        assert RDF.type == IRI(
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
        )

    def test_rdfs_subclassof(self):
        assert RDFS.subClassOf == IRI(
            "http://www.w3.org/2000/01/rdf-schema#subClassOf"
        )

    def test_owl_sameas(self):
        assert OWL.sameAs == IRI("http://www.w3.org/2002/07/owl#sameAs")

    def test_xsd_string(self):
        assert XSD.string == IRI("http://www.w3.org/2001/XMLSchema#string")

    def test_dynamic_minting(self):
        assert RDFS["weirdTerm"] == IRI(
            "http://www.w3.org/2000/01/rdf-schema#weirdTerm"
        )
        assert OWL.term("custom") == IRI(
            "http://www.w3.org/2002/07/owl#custom"
        )

    def test_prefix_exposed(self):
        assert RDFS.prefix.endswith("rdf-schema#")

    def test_known_constants_are_iris(self):
        for term in (
            RDFS.domain, RDFS.range, RDFS.member, RDFS.Resource,
            RDFS.Literal, RDFS.Datatype, RDFS.ContainerMembershipProperty,
            OWL.equivalentClass, OWL.equivalentProperty, OWL.inverseOf,
            OWL.TransitiveProperty, OWL.SymmetricProperty,
            OWL.FunctionalProperty, OWL.InverseFunctionalProperty,
            OWL.Thing, OWL.Nothing, RDF.Property,
        ):
            assert isinstance(term, IRI)


class TestPromotionTables:
    def test_property_position_predicates(self):
        assert PROPERTY_POSITION_PREDICATES[RDFS.subPropertyOf] == (
            "subject",
            "object",
        )
        assert PROPERTY_POSITION_PREDICATES[RDFS.domain] == ("subject",)

    def test_marking_types_include_owl_markers(self):
        assert OWL.TransitiveProperty in PROPERTY_MARKING_TYPES
        assert OWL.FunctionalProperty in PROPERTY_MARKING_TYPES
        assert RDF.Property in PROPERTY_MARKING_TYPES
