"""Unit tests for the Turtle subset parser."""

import pytest

from repro.rdf.terms import BlankNode, IRI, Literal, Triple
from repro.rdf.turtle import TurtleError, parse_turtle, parse_turtle_file
from repro.rdf.vocabulary import RDF, XSD


class TestPrefixes:
    def test_at_prefix(self):
        doc = """
        @prefix ex: <http://example.org/> .
        ex:a ex:p ex:b .
        """
        triples = list(parse_turtle(doc))
        assert triples == [
            Triple(
                IRI("http://example.org/a"),
                IRI("http://example.org/p"),
                IRI("http://example.org/b"),
            )
        ]

    def test_sparql_prefix(self):
        doc = """
        PREFIX ex: <http://example.org/>
        ex:a ex:p ex:b .
        """
        assert len(list(parse_turtle(doc))) == 1

    def test_empty_prefix(self):
        doc = """
        @prefix : <http://example.org/> .
        :a :p :b .
        """
        triples = list(parse_turtle(doc))
        assert triples[0].subject == IRI("http://example.org/a")

    def test_undeclared_prefix_rejected(self):
        with pytest.raises(TurtleError):
            list(parse_turtle("ex:a ex:p ex:b ."))


class TestStatements:
    def setup_method(self):
        self.header = "@prefix ex: <http://ex/> .\n"

    def test_a_keyword(self):
        triples = list(parse_turtle(self.header + "ex:x a ex:C ."))
        assert triples[0].predicate == RDF.type

    def test_predicate_list(self):
        doc = self.header + "ex:x a ex:C ; ex:p ex:y ; ex:q ex:z ."
        triples = list(parse_turtle(doc))
        assert len(triples) == 3
        assert all(t.subject == IRI("http://ex/x") for t in triples)

    def test_object_list(self):
        doc = self.header + "ex:x ex:p ex:a , ex:b , ex:c ."
        triples = list(parse_turtle(doc))
        assert [t.object for t in triples] == [
            IRI("http://ex/a"), IRI("http://ex/b"), IRI("http://ex/c"),
        ]

    def test_trailing_semicolon(self):
        doc = self.header + "ex:x ex:p ex:y ; ."
        assert len(list(parse_turtle(doc))) == 1

    def test_blank_nodes(self):
        doc = self.header + "_:b0 ex:p _:b1 ."
        triples = list(parse_turtle(doc))
        assert triples[0].subject == BlankNode("b0")
        assert triples[0].object == BlankNode("b1")

    def test_full_iris(self):
        doc = "<http://a> <http://p> <http://b> ."
        assert len(list(parse_turtle(doc))) == 1

    def test_comments_ignored(self):
        doc = self.header + "# nothing\nex:x ex:p ex:y . # trailing"
        assert len(list(parse_turtle(doc))) == 1


class TestLiterals:
    HEADER = "@prefix ex: <http://ex/> .\n"

    def test_plain_string(self):
        triples = list(parse_turtle(self.HEADER + 'ex:x ex:p "hello" .'))
        assert triples[0].object == Literal("hello")

    def test_escaped_string(self):
        triples = list(
            parse_turtle(self.HEADER + 'ex:x ex:p "line\\nbreak \\"q\\"" .')
        )
        assert triples[0].object == Literal('line\nbreak "q"')

    def test_language_tag(self):
        triples = list(parse_turtle(self.HEADER + 'ex:x ex:p "bon"@fr .'))
        assert triples[0].object == Literal("bon", language="fr")

    def test_datatyped(self):
        doc = (
            "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"
            + self.HEADER
            + 'ex:x ex:p "5"^^xsd:integer .'
        )
        triples = list(parse_turtle(doc))
        assert triples[0].object == Literal("5", datatype=XSD.integer.value)

    def test_integer_shorthand(self):
        triples = list(parse_turtle(self.HEADER + "ex:x ex:p 42 ."))
        assert triples[0].object == Literal("42", datatype=XSD.integer.value)

    def test_decimal_shorthand(self):
        triples = list(parse_turtle(self.HEADER + "ex:x ex:p 4.25 ."))
        assert triples[0].object == Literal(
            "4.25", datatype=XSD.decimal.value
        )

    def test_boolean_shorthand(self):
        triples = list(parse_turtle(self.HEADER + "ex:x ex:p true ."))
        assert triples[0].object == Literal(
            "true", datatype=XSD.boolean.value
        )


class TestErrors:
    @pytest.mark.parametrize(
        "doc",
        [
            "@prefix ex: <http://ex/> .\nex:a ex:p ex:b",  # missing dot
            '@prefix ex: <http://ex/> .\n"lit" ex:p ex:b .',  # literal subj
            "@prefix ex: <http://ex/> .\nex:a 42 ex:b .",  # number predicate
            "@prefix ex: <http://ex/>\nex:a ex:p ex:b .",  # missing decl dot
            "@prefix ex: <http://ex/> .\nex:a ex:p [ ex:q ex:r ] .",  # anon
        ],
    )
    def test_malformed(self, doc):
        with pytest.raises(TurtleError):
            list(parse_turtle(doc))


class TestOntologyDocument:
    def test_realistic_schema(self):
        doc = """
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        @prefix owl:  <http://www.w3.org/2002/07/owl#> .
        @prefix ex:   <http://example.org/zoo#> .

        ex:Lion  rdfs:subClassOf ex:Felid .
        ex:Felid rdfs:subClassOf ex:Mammal ;
                 rdfs:label "felid"@en .
        ex:eats  a owl:TransitiveProperty ;
                 rdfs:domain ex:Animal ;
                 rdfs:range  ex:Animal .
        """
        triples = list(parse_turtle(doc))
        assert len(triples) == 6

    def test_feeds_the_engine(self):
        from repro.core.engine import InferrayEngine

        doc = """
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        @prefix ex: <http://ex/> .
        ex:Cat rdfs:subClassOf ex:Animal .
        ex:tom a ex:Cat .
        """
        engine = InferrayEngine("rdfs-default")
        engine.load_triples(parse_turtle(doc))
        engine.materialize()
        assert engine.contains(
            Triple(IRI("http://ex/tom"), RDF.type, IRI("http://ex/Animal"))
        )

    def test_file_loading(self, tmp_path):
        path = tmp_path / "schema.ttl"
        path.write_text(
            "@prefix ex: <http://ex/> .\nex:a ex:p ex:b .",
            encoding="utf-8",
        )
        assert len(list(parse_turtle_file(str(path)))) == 1
