"""Unit and property-based tests for the N-Triples parser/serializer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf.ntriples import (
    NTriplesError,
    parse,
    parse_file,
    parse_line,
    serialize,
    write_file,
)
from repro.rdf.terms import BlankNode, IRI, Literal, Triple


class TestParseBasics:
    def test_simple_triple(self):
        t = parse_line("<http://a> <http://p> <http://b> .")
        assert t == Triple(IRI("http://a"), IRI("http://p"), IRI("http://b"))

    def test_blank_line_returns_none(self):
        assert parse_line("   \n") is None

    def test_comment_returns_none(self):
        assert parse_line("# a comment") is None

    def test_trailing_comment_allowed(self):
        t = parse_line("<a> <p> <b> . # trailing")
        assert t.object == IRI("b")

    def test_bnode_subject_and_object(self):
        t = parse_line("_:x <http://p> _:y .")
        assert t.subject == BlankNode("x")
        assert t.object == BlankNode("y")

    def test_plain_literal(self):
        t = parse_line('<a> <p> "hello" .')
        assert t.object == Literal("hello")

    def test_language_literal(self):
        t = parse_line('<a> <p> "bonjour"@fr .')
        assert t.object == Literal("bonjour", language="fr")

    def test_subtagged_language(self):
        t = parse_line('<a> <p> "hi"@en-GB .')
        assert t.object == Literal("hi", language="en-GB")

    def test_datatyped_literal(self):
        t = parse_line('<a> <p> "5"^^<http://dt> .')
        assert t.object == Literal("5", datatype="http://dt")

    def test_escaped_quote_in_literal(self):
        t = parse_line('<a> <p> "say \\"hi\\"" .')
        assert t.object == Literal('say "hi"')

    def test_escaped_backslash_before_quote(self):
        t = parse_line('<a> <p> "back\\\\" .')
        assert t.object == Literal("back\\")

    def test_newline_tab_escapes(self):
        t = parse_line('<a> <p> "l1\\nl2\\t!" .')
        assert t.object == Literal("l1\nl2\t!")

    def test_unicode_escapes(self):
        t = parse_line('<a> <p> "\\u00e9\\U0001F600" .')
        assert t.object == Literal("é😀")


class TestParseErrors:
    @pytest.mark.parametrize(
        "line",
        [
            "<a> <p> <b>",  # missing dot
            "<a> <p> .",  # missing object
            '"lit" <p> <b> .',  # literal subject
            "<a> _:p <b> .",  # bnode predicate
            "<a> <p> <b> . extra",  # trailing garbage
            "<a <p> <b> .",  # unterminated IRI
            '<a> <p> "open .',  # unterminated literal
            '<a> <p> "x"@ .',  # empty language
            '<a> <p> "x"^^dt .',  # non-IRI datatype
        ],
    )
    def test_malformed(self, line):
        with pytest.raises(NTriplesError):
            parse_line(line)

    def test_error_carries_line_number(self):
        doc = "<a> <p> <b> .\nbroken line\n"
        with pytest.raises(NTriplesError) as excinfo:
            list(parse(doc))
        assert excinfo.value.line_no == 2


class TestGrammarConformance:
    """Regression tests for N-Triples grammar violations (ISSUE 9).

    Three parser bugs: blank-node labels swallowing the statement
    terminator, ``\\uXXXX``/``\\UXXXXXXXX`` escapes decoding from
    truncated or non-HEX slices, and language tags accepting non-ASCII
    or digit-leading primary subtags.
    """

    def test_bnode_label_does_not_swallow_terminator(self):
        # BLANK_NODE_LABEL may contain '.' but never end with one:
        # `_:b1.` is the label `b1` followed by the '.' terminator.
        t = parse_line("<http://a> <http://p> _:b1.")
        assert t.object == BlankNode("b1")

    def test_bnode_trailing_dot_parses_from_stream(self):
        # Stream lines keep their '\n'; the label scan must stop there
        # or the trailing '.' never reaches the terminator give-back.
        triples = list(parse("<http://a> <http://p> _:b1.\n"))
        assert triples[0].object == BlankNode("b1")

    def test_bnode_label_keeps_interior_dots(self):
        t = parse_line("<http://a> <http://p> _:b1.x .")
        assert t.object == BlankNode("b1.x")

    def test_bnode_label_multiple_trailing_dots(self):
        # `_:b...` → label `b`, then the terminator; the extra dots are
        # trailing garbage, not part of the label.
        with pytest.raises(NTriplesError):
            parse_line("<http://a> <http://p> _:b... .")

    def test_bnode_subject_trailing_dot_is_syntax_error(self):
        # In subject position the returned '.' lands where a predicate
        # is required — the old parser silently made it part of the
        # label; now it is a proper syntax error.
        with pytest.raises(NTriplesError):
            parse_line("_:s. <http://p> <http://b> .")

    @pytest.mark.parametrize(
        "line",
        [
            '<a> <p> "\\u00e" .',  # 3 of 4 hex digits
            '<a> <p> "\\u00" .',  # truncated mid-escape
            '<a> <p> "\\U0001F60" .',  # 7 of 8 hex digits
            '<a> <p> "x\\u12zz" .',  # non-hex characters
            '<a> <p> "x\\u+123" .',  # int(x, 16) laxness: sign
            '<a> <p> "x\\u12_3" .',  # int(x, 16) laxness: underscore
            '<a> <p> "\\UFFFFFFFF" .',  # beyond U+10FFFF
            '<a> <p> "tail\\" .',  # dangling backslash
        ],
    )
    def test_bad_numeric_escapes_rejected(self, line):
        with pytest.raises(NTriplesError):
            parse_line(line)

    def test_supplementary_plane_escape_roundtrips(self):
        t = parse_line('<http://a> <http://p> "\\U0001F600" .')
        assert t.object == Literal("😀")
        assert list(parse(serialize([t]))) == [t]

    def test_uppercase_hex_digits_accepted(self):
        t = parse_line('<a> <p> "\\u00E9\\U0001F600" .')
        assert t.object == Literal("é😀")

    def test_escape_in_iri(self):
        t = parse_line("<http://x/\\u00e9> <http://p> <http://b> .")
        assert t.subject == IRI("http://x/é")

    def test_dangling_escape_at_end_of_iri(self):
        with pytest.raises(NTriplesError):
            parse_line("<http://a\\> <http://p> <http://b> .")

    @pytest.mark.parametrize(
        "line",
        [
            '<a> <p> "x"@été .',  # non-ASCII primary subtag
            '<a> <p> "x"@1fr .',  # digit-leading primary subtag
            '<a> <p> "x"@en- .',  # empty subtag
            '<a> <p> "x"@-en .',  # leading hyphen
        ],
    )
    def test_malformed_language_tags_rejected(self, line):
        with pytest.raises(NTriplesError):
            parse_line(line)

    def test_language_tag_digit_subtags_allowed(self):
        # Digits are fine in *secondary* subtags ('-' [a-zA-Z0-9]+).
        t = parse_line('<a> <p> "x"@en-us-2020 .')
        assert t.object == Literal("x", language="en-us-2020")

    def test_comment_after_dot_without_space(self):
        t = parse_line("<http://a> <http://p> <http://b> .# comment")
        assert t.object == IRI("http://b")


class TestDocuments:
    def test_multi_line_document(self):
        doc = """
        # header comment
        <http://a> <http://p> <http://b> .
        <http://a> <http://p> "lit"@en .
        """
        triples = list(parse(doc))
        assert len(triples) == 2

    def test_serialize_roundtrip(self):
        triples = [
            Triple(IRI("http://a"), IRI("http://p"), IRI("http://b")),
            Triple(BlankNode("n0"), IRI("http://p"), Literal("x\ny")),
            Triple(IRI("http://a"), IRI("http://q"),
                   Literal("v", language="en")),
            Triple(IRI("http://a"), IRI("http://q"),
                   Literal("5", datatype="http://dt")),
        ]
        assert list(parse(serialize(triples))) == triples

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "data.nt")
        triples = [
            Triple(IRI("http://a"), IRI("http://p"), IRI("http://b")),
            Triple(IRI("http://c"), IRI("http://p"), Literal("lit")),
        ]
        count = write_file(triples, path)
        assert count == 2
        assert list(parse_file(path)) == triples


_iri_strategy = st.builds(
    IRI,
    st.text(
        alphabet=st.characters(
            blacklist_characters="<>\"{}|^`\\\x00\n\r\t ",
            min_codepoint=33,
            max_codepoint=126,
        ),
        min_size=1,
        max_size=30,
    ).map(lambda s: "http://x/" + s),
)

_literal_strategy = st.builds(
    Literal,
    st.text(max_size=40),
    st.one_of(st.none(), st.just("http://dt/a")),
    st.one_of(st.none(), st.just("en"), st.just("en-GB")),
).filter(lambda lit: not (lit.datatype and lit.language))

_bnode_strategy = st.builds(
    BlankNode,
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789",
            min_size=1, max_size=10),
)


@settings(max_examples=150, deadline=None)
@given(
    st.lists(
        st.builds(
            Triple,
            st.one_of(_iri_strategy, _bnode_strategy),
            _iri_strategy,
            st.one_of(_iri_strategy, _bnode_strategy, _literal_strategy),
        ),
        max_size=10,
    )
)
def test_roundtrip_property(triples):
    """serialize → parse is the identity for arbitrary term content."""
    assert list(parse(serialize(triples))) == triples
