"""Unit and property-based tests for the N-Triples parser/serializer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf.ntriples import (
    NTriplesError,
    parse,
    parse_file,
    parse_line,
    serialize,
    write_file,
)
from repro.rdf.terms import BlankNode, IRI, Literal, Triple


class TestParseBasics:
    def test_simple_triple(self):
        t = parse_line("<http://a> <http://p> <http://b> .")
        assert t == Triple(IRI("http://a"), IRI("http://p"), IRI("http://b"))

    def test_blank_line_returns_none(self):
        assert parse_line("   \n") is None

    def test_comment_returns_none(self):
        assert parse_line("# a comment") is None

    def test_trailing_comment_allowed(self):
        t = parse_line("<a> <p> <b> . # trailing")
        assert t.object == IRI("b")

    def test_bnode_subject_and_object(self):
        t = parse_line("_:x <http://p> _:y .")
        assert t.subject == BlankNode("x")
        assert t.object == BlankNode("y")

    def test_plain_literal(self):
        t = parse_line('<a> <p> "hello" .')
        assert t.object == Literal("hello")

    def test_language_literal(self):
        t = parse_line('<a> <p> "bonjour"@fr .')
        assert t.object == Literal("bonjour", language="fr")

    def test_subtagged_language(self):
        t = parse_line('<a> <p> "hi"@en-GB .')
        assert t.object == Literal("hi", language="en-GB")

    def test_datatyped_literal(self):
        t = parse_line('<a> <p> "5"^^<http://dt> .')
        assert t.object == Literal("5", datatype="http://dt")

    def test_escaped_quote_in_literal(self):
        t = parse_line('<a> <p> "say \\"hi\\"" .')
        assert t.object == Literal('say "hi"')

    def test_escaped_backslash_before_quote(self):
        t = parse_line('<a> <p> "back\\\\" .')
        assert t.object == Literal("back\\")

    def test_newline_tab_escapes(self):
        t = parse_line('<a> <p> "l1\\nl2\\t!" .')
        assert t.object == Literal("l1\nl2\t!")

    def test_unicode_escapes(self):
        t = parse_line('<a> <p> "\\u00e9\\U0001F600" .')
        assert t.object == Literal("é😀")


class TestParseErrors:
    @pytest.mark.parametrize(
        "line",
        [
            "<a> <p> <b>",  # missing dot
            "<a> <p> .",  # missing object
            '"lit" <p> <b> .',  # literal subject
            "<a> _:p <b> .",  # bnode predicate
            "<a> <p> <b> . extra",  # trailing garbage
            "<a <p> <b> .",  # unterminated IRI
            '<a> <p> "open .',  # unterminated literal
            '<a> <p> "x"@ .',  # empty language
            '<a> <p> "x"^^dt .',  # non-IRI datatype
        ],
    )
    def test_malformed(self, line):
        with pytest.raises(NTriplesError):
            parse_line(line)

    def test_error_carries_line_number(self):
        doc = "<a> <p> <b> .\nbroken line\n"
        with pytest.raises(NTriplesError) as excinfo:
            list(parse(doc))
        assert excinfo.value.line_no == 2


class TestDocuments:
    def test_multi_line_document(self):
        doc = """
        # header comment
        <http://a> <http://p> <http://b> .
        <http://a> <http://p> "lit"@en .
        """
        triples = list(parse(doc))
        assert len(triples) == 2

    def test_serialize_roundtrip(self):
        triples = [
            Triple(IRI("http://a"), IRI("http://p"), IRI("http://b")),
            Triple(BlankNode("n0"), IRI("http://p"), Literal("x\ny")),
            Triple(IRI("http://a"), IRI("http://q"),
                   Literal("v", language="en")),
            Triple(IRI("http://a"), IRI("http://q"),
                   Literal("5", datatype="http://dt")),
        ]
        assert list(parse(serialize(triples))) == triples

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "data.nt")
        triples = [
            Triple(IRI("http://a"), IRI("http://p"), IRI("http://b")),
            Triple(IRI("http://c"), IRI("http://p"), Literal("lit")),
        ]
        count = write_file(triples, path)
        assert count == 2
        assert list(parse_file(path)) == triples


_iri_strategy = st.builds(
    IRI,
    st.text(
        alphabet=st.characters(
            blacklist_characters="<>\"{}|^`\\\x00\n\r\t ",
            min_codepoint=33,
            max_codepoint=126,
        ),
        min_size=1,
        max_size=30,
    ).map(lambda s: "http://x/" + s),
)

_literal_strategy = st.builds(
    Literal,
    st.text(max_size=40),
    st.one_of(st.none(), st.just("http://dt/a")),
    st.one_of(st.none(), st.just("en"), st.just("en-GB")),
).filter(lambda lit: not (lit.datatype and lit.language))

_bnode_strategy = st.builds(
    BlankNode,
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789",
            min_size=1, max_size=10),
)


@settings(max_examples=150, deadline=None)
@given(
    st.lists(
        st.builds(
            Triple,
            st.one_of(_iri_strategy, _bnode_strategy),
            _iri_strategy,
            st.one_of(_iri_strategy, _bnode_strategy, _literal_strategy),
        ),
        max_size=10,
    )
)
def test_roundtrip_property(triples):
    """serialize → parse is the identity for arbitrary term content."""
    assert list(parse(serialize(triples))) == triples
