"""Unit tests for the RDF term model."""

import pytest

from repro.rdf.terms import (
    BlankNode,
    IRI,
    Literal,
    TermError,
    Triple,
    iri,
    make_triple,
)


class TestIRI:
    def test_n3_rendering(self):
        assert IRI("http://example.org/a").n3() == "<http://example.org/a>"

    def test_str(self):
        assert str(IRI("http://x")) == "http://x"

    def test_equality_by_value(self):
        assert IRI("http://x") == IRI("http://x")
        assert IRI("http://x") != IRI("http://y")

    def test_hashable(self):
        assert len({IRI("a"), IRI("a"), IRI("b")}) == 2

    def test_iri_shorthand(self):
        assert iri("http://x") == IRI("http://x")


class TestBlankNode:
    def test_n3_rendering(self):
        assert BlankNode("b0").n3() == "_:b0"

    def test_str(self):
        assert str(BlankNode("x")) == "_:x"

    def test_distinct_from_iri(self):
        assert BlankNode("a") != IRI("a")


class TestLiteral:
    def test_plain_n3(self):
        assert Literal("hi").n3() == '"hi"'

    def test_language_tagged_n3(self):
        assert Literal("hi", language="en").n3() == '"hi"@en'

    def test_datatyped_n3(self):
        lit = Literal("5", datatype="http://www.w3.org/2001/XMLSchema#integer")
        assert lit.n3() == '"5"^^<http://www.w3.org/2001/XMLSchema#integer>'

    def test_xsd_string_datatype_suppressed(self):
        lit = Literal("x", datatype="http://www.w3.org/2001/XMLSchema#string")
        assert lit.n3() == '"x"'

    def test_escaping(self):
        lit = Literal('say "hi"\nplease\t\\now')
        assert lit.n3() == '"say \\"hi\\"\\nplease\\t\\\\now"'

    def test_equality_structural(self):
        assert Literal("a") == Literal("a")
        assert Literal("a") != Literal("a", language="en")
        assert Literal("a", datatype="dt") != Literal("a")


class TestTriple:
    def test_n3_statement(self):
        t = Triple(IRI("s"), IRI("p"), Literal("o"))
        assert t.n3() == '<s> <p> "o" .'

    def test_make_triple_valid(self):
        t = make_triple(IRI("s"), IRI("p"), IRI("o"))
        assert t == Triple(IRI("s"), IRI("p"), IRI("o"))

    def test_make_triple_bnode_subject(self):
        t = make_triple(BlankNode("b"), IRI("p"), IRI("o"))
        assert t.subject == BlankNode("b")

    def test_literal_subject_rejected(self):
        with pytest.raises(TermError):
            make_triple(Literal("x"), IRI("p"), IRI("o"))

    def test_non_iri_predicate_rejected(self):
        with pytest.raises(TermError):
            make_triple(IRI("s"), BlankNode("p"), IRI("o"))
        with pytest.raises(TermError):
            make_triple(IRI("s"), Literal("p"), IRI("o"))

    def test_bad_object_rejected(self):
        with pytest.raises(TermError):
            make_triple(IRI("s"), IRI("p"), "not-a-term")

    def test_triples_hashable(self):
        a = Triple(IRI("s"), IRI("p"), IRI("o"))
        b = Triple(IRI("s"), IRI("p"), IRI("o"))
        assert len({a, b}) == 1
