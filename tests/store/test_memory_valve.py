"""Tests for the memory valve (§4.2: the droppable o-s cache) and
configurable memsim geometry."""

from repro.core.engine import InferrayEngine
from repro.datasets.lubm import lubm_like
from repro.memsim.hierarchy import MemoryHierarchy
from repro.memsim.tracer import RecordingTracer


class TestCacheValveEndToEnd:
    def test_drop_after_materialization_frees_memory(self):
        engine = InferrayEngine("rdfs-plus")
        engine.load_triples(lubm_like(3))
        engine.materialize()
        with_caches = engine.memory_bytes()
        dropped = engine.main.drop_os_caches()
        assert dropped > 0
        assert engine.memory_bytes() < with_caches

    def test_queries_still_work_after_drop(self):
        engine = InferrayEngine("rdfs-plus")
        engine.load_triples(lubm_like(2))
        engine.materialize()
        engine.main.drop_os_caches()
        # Object-keyed queries recompute the view transparently.
        some = next(engine.encoded_triples())
        hits = list(engine.main.query(None, some[1], some[2]))
        assert some in hits

    def test_rematerialization_after_drop_is_stable(self):
        engine = InferrayEngine("rdfs-plus")
        engine.load_triples(lubm_like(2))
        engine.materialize()
        before = set(engine.triples())
        engine.main.drop_os_caches()
        stats = engine.materialize()
        assert stats.n_inferred == 0
        assert set(engine.triples()) == before


class TestCustomHierarchyGeometry:
    def test_smaller_l1_misses_more(self):
        tracer = RecordingTracer()
        # Two passes over a 16 KiB array: fits a 32K L1, not a 8K one.
        tracer.sequential_scan("arr", 16 * 1024)
        tracer.sequential_scan("arr", 16 * 1024)
        big = MemoryHierarchy(l1_size=32 * 1024).replay(tracer.ops)
        small = MemoryHierarchy(l1_size=8 * 1024).replay(tracer.ops)
        assert small.l1_misses > big.l1_misses

    def test_larger_tlb_misses_less(self):
        tracer = RecordingTracer()
        tracer.alloc("r", 2 << 20)
        tracer.random_access("r", 2000)
        tracer.random_access("r", 2000)
        small = MemoryHierarchy(tlb_entries=16).replay(tracer.ops)
        large = MemoryHierarchy(tlb_entries=1024).replay(tracer.ops)
        assert large.tlb_misses < small.tlb_misses
