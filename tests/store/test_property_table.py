"""Unit tests for PropertyTable (vertical partitioning unit)."""

from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import numpy_available
from repro.store.property_table import PropertyTable, pairs_as_tuples
from repro.store.triple_store import TripleStore

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])


def flat(pairs):
    out = array("q")
    for s, o in pairs:
        out.append(s)
        out.append(o)
    return out


class TestCommitInvariant:
    def test_empty_table(self):
        t = PropertyTable()
        assert not t
        assert t.n_pairs == 0

    def test_unsorted_input_committed_sorted_unique(self):
        t = PropertyTable(flat([(3, 1), (1, 2), (3, 1), (2, 9)]))
        assert list(t.iter_pairs()) == [(1, 2), (2, 9), (3, 1)]

    def test_len_and_bool(self):
        t = PropertyTable(flat([(1, 1)]))
        assert len(t) == 1
        assert bool(t)


class TestOsCache:
    def test_lazy(self):
        t = PropertyTable(flat([(1, 5), (2, 3)]))
        assert not t.has_os_cache
        view = t.os_pairs()
        assert t.has_os_cache
        assert pairs_as_tuples(view) == [(3, 2), (5, 1)]

    def test_cache_is_permutation(self):
        pairs = [(i % 10, (i * 7) % 30) for i in range(100)]
        t = PropertyTable(flat(pairs))
        so = set(t.iter_pairs())
        os_view = pairs_as_tuples(t.os_pairs())
        assert {(s, o) for o, s in os_view} == so
        assert os_view == sorted(os_view)

    def test_drop(self):
        t = PropertyTable(flat([(1, 2)]))
        t.os_pairs()
        t.drop_os_cache()
        assert not t.has_os_cache

    def test_invalidated_by_merge_with_new(self):
        t = PropertyTable(flat([(1, 2)]))
        t.os_pairs()
        t.merge(flat([(5, 5)]))
        assert not t.has_os_cache

    def test_not_invalidated_by_duplicate_merge(self):
        t = PropertyTable(flat([(1, 2)]))
        t.os_pairs()
        new = t.merge(flat([(1, 2)]))
        assert len(new) == 0
        assert t.has_os_cache


class TestLookups:
    def setup_method(self):
        self.t = PropertyTable(
            flat([(1, 10), (1, 20), (2, 10), (5, 1), (5, 2), (5, 3)])
        )

    def test_contains(self):
        assert self.t.contains(1, 10)
        assert self.t.contains(5, 3)
        assert not self.t.contains(1, 11)
        assert not self.t.contains(99, 1)

    def test_subject_slice(self):
        start, end = self.t.subject_slice(5)
        assert end - start == 3
        assert self.t.subject_slice(99) == (6, 6)

    def test_objects_of(self):
        assert self.t.objects_of(1) == [10, 20]
        assert self.t.objects_of(42) == []

    def test_subjects_of(self):
        assert self.t.subjects_of(10) == [1, 2]
        assert self.t.subjects_of(42) == []

    def test_distinct_subjects(self):
        assert self.t.distinct_subjects() == [1, 2, 5]

    def test_distinct_objects(self):
        assert self.t.distinct_objects() == [1, 2, 3, 10, 20]

    def test_as_set(self):
        assert (1, 10) in self.t.as_set()


class TestFigureFiveMerge:
    def test_merge_into_empty(self):
        t = PropertyTable()
        new = t.merge(flat([(1, 1), (2, 2)]))
        assert pairs_as_tuples(new) == [(1, 1), (2, 2)]
        assert list(t.iter_pairs()) == [(1, 1), (2, 2)]

    def test_merge_empty_inferred(self):
        t = PropertyTable(flat([(1, 1)]))
        assert len(t.merge(array("q"))) == 0

    def test_new_is_inferred_minus_main(self):
        t = PropertyTable(flat([(1, 1), (3, 3)]))
        new = t.merge(flat([(1, 1), (2, 2), (4, 4)]))
        assert pairs_as_tuples(new) == [(2, 2), (4, 4)]
        assert list(t.iter_pairs()) == [(1, 1), (2, 2), (3, 3), (4, 4)]

    def test_paper_figure5_example(self):
        # Main: (1,1)(1,8)(4,3)(7,7)... simplified shape: interleaved keys.
        main = [(1, 1), (1, 8), (4, 3), (7, 7)]
        inferred = [(1, 2), (1, 8), (9, 7)]
        t = PropertyTable(flat(main))
        new = t.merge(flat(inferred))
        assert pairs_as_tuples(new) == [(1, 2), (9, 7)]
        assert list(t.iter_pairs()) == sorted(set(main) | set(inferred))

    def test_merge_all_duplicates(self):
        t = PropertyTable(flat([(1, 1), (2, 2)]))
        new = t.merge(flat([(1, 1), (2, 2)]))
        assert len(new) == 0
        assert t.n_pairs == 2


@pytest.mark.parametrize("backend", BACKENDS)
class TestOsCacheInvalidationRegression:
    """Regression: a stale ⟨o, s⟩ cache must never be served (ISSUE 1).

    The cache is built lazily; every path that grows the table after
    the cache exists (direct Figure-5 merge, store-level bulk adds,
    merges into previously-empty tables) has to either invalidate or
    rebuild it — the assertions check the *content* of the served
    view, not just the ``has_os_cache`` flag.
    """

    def test_direct_merge_refreshes_view(self, backend):
        t = PropertyTable(flat([(1, 2), (3, 4)]), backend=backend)
        assert pairs_as_tuples(t.os_pairs()) == [(2, 1), (4, 3)]
        t.merge(flat([(5, 6)]))
        assert pairs_as_tuples(t.os_pairs()) == [(2, 1), (4, 3), (6, 5)]

    def test_merge_into_empty_table_after_cached_empty_view(self, backend):
        t = PropertyTable(backend=backend)
        assert pairs_as_tuples(t.os_pairs()) == []
        t.merge(flat([(7, 8)]))
        assert pairs_as_tuples(t.os_pairs()) == [(8, 7)]

    def test_duplicate_only_merge_keeps_valid_cache(self, backend):
        t = PropertyTable(flat([(1, 2)]), backend=backend)
        cached = t.os_pairs()
        new = t.merge(flat([(1, 2)]))
        assert len(new) == 0
        assert t.os_pairs() is cached  # unchanged table: cache still valid
        assert pairs_as_tuples(t.os_pairs()) == [(2, 1)]

    def test_store_add_pairs_refreshes_subjects_of(self, backend):
        store = TripleStore(backend=backend)
        store.add_pairs(100, flat([(1, 9), (2, 9)]))
        table = store.table(100)
        assert table.subjects_of(9) == [1, 2]  # builds the o-s cache
        assert table.has_os_cache
        store.add_pairs(100, flat([(3, 9)]))
        assert table.subjects_of(9) == [1, 2, 3]

    def test_uncached_mode_always_fresh(self, backend):
        t = PropertyTable(
            flat([(1, 2)]), backend=backend, cache_os=False
        )
        t.os_pairs()
        t.merge(flat([(0, 5)]))
        assert pairs_as_tuples(t.os_pairs()) == [(2, 1), (5, 0)]
        assert not t.has_os_cache


@settings(max_examples=150, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 40), st.integers(0, 40)), max_size=60),
    st.lists(st.tuples(st.integers(0, 40), st.integers(0, 40)), max_size=60),
)
def test_merge_set_semantics(main_pairs, inferred_pairs):
    """merge == set union; returned delta == inferred − main."""
    from repro.sorting.dispatch import sort_pairs

    t = PropertyTable(flat(main_pairs))
    sorted_inferred, _ = sort_pairs(flat(inferred_pairs), dedup=True)
    new = t.merge(sorted_inferred)
    assert set(t.iter_pairs()) == set(main_pairs) | set(inferred_pairs)
    assert list(t.iter_pairs()) == sorted(set(main_pairs) | set(inferred_pairs))
    assert set(pairs_as_tuples(new)) == set(inferred_pairs) - set(main_pairs)
