"""Unit tests for TripleStore and InferredBuffers."""

from array import array

from repro.store.triple_store import InferredBuffers, TripleStore


def flat(pairs):
    out = array("q")
    for s, o in pairs:
        out.append(s)
        out.append(o)
    return out


class TestInferredBuffers:
    def test_emit_accumulates(self):
        buffers = InferredBuffers()
        buffers.emit(10, 1, 2)
        buffers.emit(10, 3, 4)
        buffers.emit(20, 5, 6)
        assert len(buffers) == 3
        assert bool(buffers)

    def test_extend(self):
        buffers = InferredBuffers()
        buffers.extend(10, flat([(1, 2), (3, 4)]))
        buffers.extend(10, array("q"))
        assert len(buffers) == 2

    def test_empty(self):
        buffers = InferredBuffers()
        assert not buffers
        assert len(buffers) == 0

    def test_extend_keeps_chunk_reference(self):
        buffers = InferredBuffers()
        chunk = flat([(1, 2), (3, 4)])
        buffers.extend(10, chunk)
        [(pid, chunks)] = list(buffers.chunk_items())
        assert pid == 10
        assert chunks[0] is chunk  # zero-copy

    def test_items_concatenates_emits_and_chunks(self):
        buffers = InferredBuffers()
        buffers.emit(10, 1, 2)
        buffers.extend(10, flat([(3, 4)]))
        buffers.extend(20, [5, 6])
        flattened = dict(buffers.items())
        assert sorted(
            zip(flattened[10][0::2], flattened[10][1::2])
        ) == [(1, 2), (3, 4)]
        assert list(flattened[20]) == [5, 6]
        assert len(buffers) == 3


class TestTripleStoreLoading:
    def test_add_encoded_partitions_by_property(self):
        store = TripleStore()
        store.add_encoded([(1, 100, 2), (3, 100, 4), (5, 200, 6)])
        assert store.n_triples == 3
        assert store.table(100).n_pairs == 2
        assert store.table(200).n_pairs == 1
        assert store.table(300) is None

    def test_add_encoded_dedups(self):
        store = TripleStore()
        store.add_encoded([(1, 100, 2)] * 5)
        assert store.n_triples == 1

    def test_incremental_add_merges(self):
        store = TripleStore()
        store.add_encoded([(1, 100, 2)])
        store.add_encoded([(1, 100, 2), (9, 100, 9)])
        assert store.table(100).n_pairs == 2

    def test_add_pairs(self):
        store = TripleStore()
        store.add_pairs(100, flat([(2, 2), (1, 1)]))
        assert list(store.table(100).iter_pairs()) == [(1, 1), (2, 2)]

    def test_contains(self):
        store = TripleStore()
        store.add_encoded([(1, 100, 2)])
        assert (1, 100, 2) in store
        assert (1, 100, 3) not in store
        assert (1, 999, 2) not in store


class TestMergeInferred:
    def test_returns_delta_store(self):
        store = TripleStore()
        store.add_encoded([(1, 100, 2)])
        buffers = InferredBuffers()
        buffers.emit(100, 1, 2)  # duplicate
        buffers.emit(100, 7, 8)  # new
        buffers.emit(200, 5, 5)  # new property
        new = store.merge_inferred(buffers)
        assert new.n_triples == 2
        assert (7, 100, 8) in new
        assert (5, 200, 5) in new
        assert (1, 100, 2) not in new
        assert store.n_triples == 3

    def test_empty_buffers_empty_delta(self):
        store = TripleStore()
        store.add_encoded([(1, 100, 2)])
        new = store.merge_inferred(InferredBuffers())
        assert new.n_triples == 0
        assert not new

    def test_raw_duplicates_collapsed(self):
        store = TripleStore()
        buffers = InferredBuffers()
        for _ in range(10):
            buffers.emit(100, 1, 2)
        new = store.merge_inferred(buffers)
        assert new.n_triples == 1


class TestQueries:
    def setup_method(self):
        self.store = TripleStore()
        self.store.add_encoded(
            [(1, 100, 2), (1, 100, 3), (4, 100, 2), (1, 200, 9)]
        )

    def test_fully_bound(self):
        assert list(self.store.query(1, 100, 2)) == [(1, 100, 2)]
        assert list(self.store.query(1, 100, 99)) == []

    def test_subject_property(self):
        assert set(self.store.query(1, 100, None)) == {
            (1, 100, 2),
            (1, 100, 3),
        }

    def test_object_property(self):
        assert set(self.store.query(None, 100, 2)) == {
            (1, 100, 2),
            (4, 100, 2),
        }

    def test_property_only(self):
        assert len(list(self.store.query(None, 100, None))) == 3

    def test_subject_across_properties(self):
        assert len(list(self.store.query(1, None, None))) == 3

    def test_full_scan(self):
        assert len(list(self.store.query())) == 4

    def test_triples_iteration(self):
        assert set(self.store.triples()) == self.store.as_set()

    def test_missing_property(self):
        assert list(self.store.query(None, 999, None)) == []


class TestMisc:
    def test_copy_independent(self):
        store = TripleStore()
        store.add_encoded([(1, 100, 2)])
        clone = store.copy()
        clone.add_encoded([(9, 100, 9)])
        assert store.n_triples == 1
        assert clone.n_triples == 2

    def test_stats(self):
        store = TripleStore()
        store.add_encoded([(1, 100, 2), (1, 200, 3), (2, 200, 4)])
        stats = store.stats()
        assert stats["n_properties"] == 2
        assert stats["n_triples"] == 3
        assert stats["largest_table"] == 2

    def test_property_ids_skips_empty(self):
        store = TripleStore()
        store.get_or_create(123)
        store.add_encoded([(1, 100, 2)])
        assert store.property_ids() == [100]
