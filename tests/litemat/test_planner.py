"""Exact absorption decisions of the hybrid planner, per ruleset.

The absorbed set is a correctness contract, not a heuristic: absorbing
a rule the encoding cannot answer loses entailments; absorbing a rule
that feeds (or is fed by) a still-materialized rule breaks the flush.
These tests pin the planner's output for every built-in ruleset and
check the executor-shape validation that protects custom catalogues.
"""

import pytest

from repro.litemat.planner import (
    ABSORBABLE_RULES,
    HIERARCHY_AWARE_RULES,
    plan_hybrid,
)
from repro.rules.rulesets import RULESET_NAMES, get_ruleset

#: Expected absorbed set per built-in ruleset (sorted tuples).
EXPECTED = {
    # Full RDFS-default absorption: both θ closures, the α expansions
    # of type/domain/range and the sub-property data copy.
    "rdfs-default": (
        "CAX-SCO",
        "PRP-SPO1",
        "SCM-DOM1",
        "SCM-DOM2",
        "SCM-RNG1",
        "SCM-RNG2",
        "SCM-SCO",
        "SCM-SPO",
    ),
    # ρdf has PRP-DOM/PRP-RNG materialized without CAX-SCO's α
    # SCM-DOM1/SCM-RNG1 companions present... it lacks those two rules
    # entirely, so the remaining six absorb.
    "rho-df": (
        "CAX-SCO",
        "PRP-SPO1",
        "SCM-DOM2",
        "SCM-RNG2",
        "SCM-SCO",
        "SCM-SPO",
    ),
    # RDFS4 (ResourceRule) reads every triple, so any absorbed rule
    # would starve it; nothing absorbs.
    "rdfs-full": (),
    # The sameAs/equivalence rules read and write arbitrary
    # properties; the ejection fixed point clears the absorbed set.
    "rdfs-plus": (),
    "rdfs-plus-full": (),
}


@pytest.mark.parametrize("ruleset", sorted(RULESET_NAMES))
def test_absorbed_sets_are_exact(ruleset):
    plan = plan_hybrid(get_ruleset(ruleset), ruleset)
    assert plan.absorbed == EXPECTED[ruleset]
    # absorbed + materialized partition the catalogue.
    names = {rule.name for rule in get_ruleset(ruleset)}
    assert set(plan.absorbed) | set(plan.materialized) == names
    assert not set(plan.absorbed) & set(plan.materialized)
    assert [r.name for r in plan.reduced_rules] == list(plan.materialized)


def test_absorbed_rules_are_declared_absorbable():
    for ruleset in RULESET_NAMES:
        plan = plan_hybrid(get_ruleset(ruleset), ruleset)
        assert set(plan.absorbed) <= set(ABSORBABLE_RULES)


def test_plan_flags_follow_absorption():
    plan = plan_hybrid(get_ruleset("rdfs-default"), "rdfs-default")
    assert plan.expand_type
    assert plan.copy_data
    assert plan.close_subclass
    assert plan.close_subproperty
    assert plan.expand_domain_classes
    assert plan.expand_range_properties
    empty = plan_hybrid(get_ruleset("rdfs-full"), "rdfs-full")
    assert not empty.expand_type
    assert not empty.copy_data


def test_name_collision_with_wrong_executor_is_not_absorbed():
    # A custom catalogue may reuse an absorbable *name* on a different
    # executor; the planner must validate the shape, not the label.
    rules = get_ruleset("rdfs-default")
    impostor = next(r for r in rules if r.name == "PRP-DOM")
    impostor.name = "CAX-SCO"
    victims = [r for r in rules if r is impostor or r.name != "CAX-SCO"]
    plan = plan_hybrid(victims, "custom")
    assert "CAX-SCO" not in plan.absorbed


def test_hierarchy_aware_rules_stay_materialized():
    for ruleset in RULESET_NAMES:
        plan = plan_hybrid(get_ruleset(ruleset), ruleset)
        for name in HIERARCHY_AWARE_RULES:
            assert name not in plan.absorbed
