"""Property tests for the LiteMat-style interval hierarchy encoder.

The encoder's contract is exact reachability: ``is_subclass(c1, c2)``
iff the subClassOf graph has a non-empty path c1 → c2.  networkx's
transitive closure is the oracle, over random DAGs *and* arbitrary
digraphs (multi-parent diamonds, cycles) — the documented non-tree
fallback (multiple intervals per node, SCC-shared reach sets) must stay
exact, never approximate.
"""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.litemat.encoder import (
    ENCODING_PAYLOAD_VERSION,
    HierarchyEncoding,
    encode_hierarchies,
)


def nx_reach(edges):
    """Oracle: pairs (u, v) with a non-empty path u → v."""
    graph = nx.DiGraph(edges)
    closed = nx.transitive_closure(graph, reflexive=False)
    return {(u, v) for u, v in closed.edges()}


edge_lists = st.lists(
    st.tuples(st.integers(0, 14), st.integers(0, 14)),
    min_size=0,
    max_size=40,
)

dag_edge_lists = st.lists(
    # (u, v) with u < v is acyclic by construction.
    st.tuples(st.integers(0, 13), st.integers(1, 14)).map(
        lambda p: (min(p), max(p[0] + 1, p[1]))
    ),
    min_size=0,
    max_size=40,
)


class TestSubclassPredicate:
    @settings(max_examples=120, deadline=None)
    @given(dag_edge_lists)
    def test_random_dags_match_oracle(self, edges):
        encoding = encode_hierarchies(edges, [])
        expected = nx_reach(edges)
        nodes = {n for edge in edges for n in edge}
        for a in nodes:
            for b in nodes:
                assert encoding.is_subclass(a, b) == ((a, b) in expected)

    @settings(max_examples=120, deadline=None)
    @given(edge_lists)
    def test_arbitrary_digraphs_match_oracle(self, edges):
        # Cycles included: equivalent classes must see each other (and
        # themselves) as sub/superclasses.
        encoding = encode_hierarchies(edges, [])
        expected = nx_reach(edges)
        nodes = {n for edge in edges for n in edge}
        for a in nodes:
            for b in nodes:
                assert encoding.is_subclass(a, b) == ((a, b) in expected)

    @settings(max_examples=80, deadline=None)
    @given(edge_lists)
    def test_property_graph_is_independent(self, edges):
        encoding = encode_hierarchies([], edges)
        expected = nx_reach(edges)
        nodes = {n for edge in edges for n in edge}
        for a in nodes:
            for b in nodes:
                assert encoding.is_subproperty(a, b) == ((a, b) in expected)
                assert not encoding.is_subclass(a, b)


class TestEnumerations:
    @settings(max_examples=80, deadline=None)
    @given(edge_lists)
    def test_sets_are_inclusive_and_match_predicate(self, edges):
        encoding = encode_hierarchies(edges, [])
        expected = nx_reach(edges)
        nodes = {n for edge in edges for n in edge}
        for c in nodes:
            ups = encoding.superclass_set(c)
            assert c in ups  # inclusive
            assert ups - {c} >= {b for (a, b) in expected if a == c} - {c}
            assert ups == {c} | {b for (a, b) in expected if a == c}
            downs = encoding.subclass_set(c)
            assert downs == {c} | {a for (a, b) in expected if b == c}

    def test_diamond_multi_parent(self):
        # A ⊑ B, A ⊑ C, B ⊑ D, C ⊑ D: the classic non-tree lattice.
        edges = [("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")]
        ids = {name: i for i, name in enumerate("ABCD")}
        encoding = encode_hierarchies(
            [(ids[a], ids[b]) for a, b in edges], []
        )
        assert encoding.is_subclass(ids["A"], ids["D"])
        assert encoding.is_subclass(ids["A"], ids["B"])
        assert encoding.is_subclass(ids["A"], ids["C"])
        assert not encoding.is_subclass(ids["B"], ids["C"])
        assert not encoding.is_subclass(ids["D"], ids["A"])
        assert encoding.superclass_set(ids["A"]) == set(ids.values())

    def test_cycle_collapses_to_equivalence(self):
        # A ⊑ B ⊑ A: both classes reach each other and themselves.
        encoding = encode_hierarchies([(0, 1), (1, 0)], [])
        for a in (0, 1):
            for b in (0, 1):
                assert encoding.is_subclass(a, b)
        assert encoding.superclass_set(0) == {0, 1}

    def test_strict_enumerations_exclude_self_on_dags(self):
        encoding = encode_hierarchies([(0, 1), (1, 2)], [])
        assert set(encoding.superclasses(0)) == {1, 2}
        assert set(encoding.subclasses(2)) == {0, 1}
        assert set(encoding.superclasses(2)) == set()


class TestPayload:
    @settings(max_examples=40, deadline=None)
    @given(edge_lists, edge_lists)
    def test_round_trip_preserves_answers(self, class_edges, prop_edges):
        encoding = encode_hierarchies(class_edges, prop_edges)
        restored = HierarchyEncoding.from_payload(encoding.to_payload())
        nodes = {n for e in class_edges for n in e}
        for a in nodes:
            for b in nodes:
                assert restored.is_subclass(a, b) == encoding.is_subclass(
                    a, b
                )
        pnodes = {n for e in prop_edges for n in e}
        for a in pnodes:
            for b in pnodes:
                assert restored.is_subproperty(
                    a, b
                ) == encoding.is_subproperty(a, b)

    def test_version_mismatch_rejected(self):
        payload = encode_hierarchies([(0, 1)], []).to_payload()
        payload["version"] = ENCODING_PAYLOAD_VERSION + 1
        with pytest.raises(ValueError):
            HierarchyEncoding.from_payload(payload)

    def test_stats_counts(self):
        encoding = encode_hierarchies([(0, 1), (1, 2)], [(5, 6)])
        stats = encoding.stats()
        assert stats["n_classes"] == 3
        assert stats["n_class_edges"] == 2
        assert stats["n_class_closure_pairs"] == 3  # 0→1, 0→2, 1→2
        assert stats["n_properties"] == 2
        assert stats["n_property_closure_pairs"] == 1
