"""Differential proof for hybrid mode: answers identical to full mode.

The correctness bar for ``Store(materialize="hybrid")`` is byte-equal
*query answers* — not equal stored closures; the stored closure is
exactly what the mode shrinks.  Coverage: the conformance fixture
corpus (every ruleset directive), the differential datasets × kernel
backends × worker counts, BGP solutions, snapshots, incremental adds,
removals, the schema-of-schema guard fallback, and the
``$REPRO_MATERIALIZE`` environment default.
"""

import os

import pytest

from repro.core.store_api import Store, StoreConfig
from repro.datasets.bsbm import bsbm_like
from repro.datasets.chains import (
    subclass_chain,
    subclass_tree,
    subproperty_chain,
)
from repro.datasets.lubm import lubm_like
from repro.kernels import numpy_available
from repro.rdf.ntriples import parse_file
from repro.rdf.terms import IRI, Triple
from repro.rdf.vocabulary import RDF, RDFS

FIXTURE_DIR = os.path.join(
    os.path.dirname(__file__), "..", "fixtures", "conformance"
)

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])

DATASETS = {
    "bsbm": bsbm_like(40),
    "lubm": lubm_like(1),
    "hierarchy": (
        subclass_tree(4)
        + subclass_chain(8)
        + subproperty_chain(6)
        + [
            Triple(
                IRI(f"http://example.org/inst/i{i}"),
                RDF.type,
                IRI(f"http://example.org/tree/n{7 + i}"),
            )
            for i in range(8)
        ]
        + [
            Triple(
                IRI(f"http://example.org/fact/s{i}"),
                IRI("http://example.org/pchain/n0"),
                IRI(f"http://example.org/fact/o{i}"),
            )
            for i in range(5)
        ]
        + [
            Triple(
                IRI("http://example.org/pchain/n5"),
                RDFS.domain,
                IRI("http://example.org/tree/n0"),
            )
        ]
    ),
}


def fixture_names():
    return sorted(
        name[: -len(".in.nt")]
        for name in os.listdir(FIXTURE_DIR)
        if name.endswith(".in.nt")
    )


def fixture_ruleset(in_path):
    with open(in_path, encoding="utf-8") as handle:
        first = handle.readline()
    if first.startswith("#") and "ruleset:" in first:
        return first.split("ruleset:")[1].strip()
    return "rdfs-default"


def answer_set(store):
    return sorted(triple.n3() for triple in store.triples())


@pytest.mark.parametrize("name", fixture_names())
def test_conformance_fixtures_hybrid_equals_full(name):
    in_path = os.path.join(FIXTURE_DIR, f"{name}.in.nt")
    ruleset = fixture_ruleset(in_path)
    full = Store.from_file(in_path, ruleset=ruleset, materialize="full")
    hybrid = Store.from_file(in_path, ruleset=ruleset, materialize="hybrid")
    assert answer_set(hybrid) == answer_set(full)
    assert hybrid.n_triples == full.n_triples


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("workers", (1, 2))
@pytest.mark.parametrize("ruleset", ("rdfs-default", "rho-df"))
@pytest.mark.parametrize("dataset", sorted(DATASETS))
def test_differential_datasets(dataset, ruleset, workers, backend):
    data = DATASETS[dataset]
    kwargs = dict(ruleset=ruleset, backend=backend, workers=workers)
    full = Store(data, materialize="full", **kwargs)
    hybrid = Store(data, materialize="hybrid", **kwargs)
    assert answer_set(hybrid) == answer_set(full)
    # Point queries agree triple by triple.
    for triple in full.triples():
        assert triple in hybrid
    # Hierarchy-heavy data must actually shrink the stored closure.
    if dataset == "hierarchy" and not hybrid.hybrid_fallback:
        assert hybrid.engine.main.n_triples < full.engine.main.n_triples


def test_bgp_solutions_identical():
    data = DATASETS["hierarchy"]
    full = Store(data, materialize="full")
    hybrid = Store(data, materialize="hybrid")
    for bgp in (
        "?s rdf:type ?c",
        "?a rdfs:subClassOf ?b",
        "?s <http://example.org/pchain/n5> ?o",
        "?s rdf:type <http://example.org/tree/n0>",
    ):
        full_solutions = sorted(
            tuple(sorted((k, v.n3()) for k, v in s.items()))
            for s in full.solutions(bgp)
        )
        hybrid_solutions = sorted(
            tuple(sorted((k, v.n3()) for k, v in s.items()))
            for s in hybrid.solutions(bgp)
        )
        assert hybrid_solutions == full_solutions, bgp


def test_snapshot_serves_hybrid_answers():
    data = DATASETS["hierarchy"]
    hybrid = Store(data, materialize="hybrid")
    full = Store(data, materialize="full")
    snap = hybrid.snapshot()
    reference = answer_set(full)
    assert sorted(t.n3() for t in snap.triples()) == reference
    # The snapshot must survive later writes unchanged.
    hybrid.add(
        Triple(
            IRI("http://example.org/inst/late"),
            RDF.type,
            IRI("http://example.org/tree/n3"),
        )
    )
    hybrid.materialize()
    assert sorted(t.n3() for t in snap.triples()) == reference
    assert hybrid.n_triples > snap.n_triples


def test_incremental_adds_match_batch():
    base = DATASETS["hierarchy"]
    extra_schema = Triple(
        IRI("http://example.org/chain/n7"),
        RDFS.subClassOf,
        IRI("http://example.org/tree/n0"),
    )
    extra_instance = Triple(
        IRI("http://example.org/inst/new"),
        RDF.type,
        IRI("http://example.org/chain/n0"),
    )
    incremental = Store(base, materialize="hybrid")
    incremental.materialize()
    incremental.add(extra_schema)
    incremental.materialize()
    incremental.add(extra_instance)
    batch = Store(
        list(base) + [extra_schema, extra_instance], materialize="full"
    )
    assert answer_set(incremental) == answer_set(batch)


def test_removal_rebuilds_correctly():
    data = DATASETS["hierarchy"]
    target = data[0]
    hybrid = Store(data, materialize="hybrid")
    hybrid.materialize()
    hybrid.remove(target)
    full = Store([t for t in data if t != target], materialize="full")
    assert answer_set(hybrid) == answer_set(full)


def test_schema_of_schema_guard_falls_back():
    tricky = list(DATASETS["hierarchy"]) + [
        Triple(
            IRI("http://example.org/myRel"),
            RDFS.subPropertyOf,
            RDFS.subClassOf,
        ),
        Triple(
            IRI("http://example.org/X"),
            IRI("http://example.org/myRel"),
            IRI("http://example.org/Y"),
        ),
        Triple(
            IRI("http://example.org/thing"),
            RDF.type,
            IRI("http://example.org/X"),
        ),
    ]
    hybrid = Store(tricky, materialize="hybrid")
    full = Store(tricky, materialize="full")
    assert answer_set(hybrid) == answer_set(full)
    assert hybrid.hybrid_fallback is not None
    assert hybrid.absorbed_rules == ()


def test_no_absorbable_ruleset_falls_back():
    data = DATASETS["hierarchy"]
    hybrid = Store(data, ruleset="rdfs-full", materialize="hybrid")
    full = Store(data, ruleset="rdfs-full", materialize="full")
    assert answer_set(hybrid) == answer_set(full)
    assert "no absorbable rules" in (hybrid.hybrid_fallback or "")


def test_env_variable_sets_default_mode(monkeypatch):
    monkeypatch.setenv("REPRO_MATERIALIZE", "hybrid")
    store = Store(DATASETS["hierarchy"])
    assert store.materialize_mode == "hybrid"
    store.materialize()
    assert len(store.absorbed_rules) == 8
    # An explicit option always beats the environment.
    explicit = Store(DATASETS["hierarchy"], materialize="full")
    assert explicit.materialize_mode == "full"
    monkeypatch.setenv("REPRO_MATERIALIZE", "bogus")
    with pytest.raises(ValueError):
        Store(materialize=None).materialize_mode  # resolved in make_engine


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        Store(materialize="partial")
    with pytest.raises(ValueError):
        StoreConfig(materialize="partial").resolved_materialize
