"""Header versioning and optional sections of the store file format.

Version 2 added the ``materialize`` key and the named-section tail;
these tests pin the compatibility contract: v1 (pre-hybrid) files load
as full-mode stores, unknown optional sections are skipped with a
warning instead of failing, and the litemat section round-trips a
hybrid store in O(read) (``engine.stats is None`` proves no inference
re-ran on load).
"""

import json
import struct

import pytest

from repro.core.store_api import (
    STORE_FORMAT_VERSION,
    STORE_MAGIC,
    Store,
    StoreFormatError,
)
from repro.datasets.chains import subclass_tree, subproperty_chain
from repro.rdf.terms import IRI, Triple
from repro.rdf.vocabulary import RDF

DATA = (
    subclass_tree(3)
    + subproperty_chain(4)
    + [
        Triple(
            IRI(f"http://example.org/inst/i{i}"),
            RDF.type,
            IRI(f"http://example.org/tree/n{3 + i}"),
        )
        for i in range(4)
    ]
    + [
        Triple(
            IRI("http://example.org/fact/s0"),
            IRI("http://example.org/pchain/n0"),
            IRI("http://example.org/fact/o0"),
        )
    ]
)


def answer_set(store):
    return sorted(triple.n3() for triple in store.triples())


def rewrite_header(path, mutate):
    """Apply ``mutate(header_dict) -> extra_tail_bytes`` to a file."""
    with open(path, "rb") as handle:
        blob = handle.read()
    offset = len(STORE_MAGIC)
    (header_len,) = struct.unpack("<I", blob[offset : offset + 4])
    body_start = offset + 4 + header_len
    header = json.loads(blob[offset + 4 : body_start].decode("utf-8"))
    extra = mutate(header) or b""
    payload = json.dumps(header, separators=(",", ":")).encode("utf-8")
    with open(path, "wb") as handle:
        handle.write(STORE_MAGIC)
        handle.write(struct.pack("<I", len(payload)))
        handle.write(payload)
        handle.write(blob[body_start:])
        handle.write(extra)


def test_v1_pre_hybrid_file_loads_as_full(tmp_path):
    path = str(tmp_path / "v1.store")
    store = Store(DATA, materialize="full")
    store.save(path)
    reference = answer_set(store)

    def downgrade(header):
        assert header["version"] == STORE_FORMAT_VERSION
        header["version"] = 1
        del header["materialize"]
        del header["sections"]

    rewrite_header(path, downgrade)
    loaded = Store.load(path)
    assert loaded.materialize_mode == "full"
    assert loaded.engine.stats is None  # O(read): no inference re-ran
    assert answer_set(loaded) == reference


def test_unknown_optional_section_skipped_with_warning(tmp_path):
    path = str(tmp_path / "future.store")
    store = Store(DATA, materialize="full")
    store.save(path)
    reference = answer_set(store)
    tail = b"\x00" * 24

    def add_future_section(header):
        header["sections"].append(
            {"name": "frobnicator", "n_bytes": len(tail)}
        )
        return tail

    rewrite_header(path, add_future_section)
    with pytest.warns(UserWarning, match="frobnicator"):
        loaded = Store.load(path)
    assert answer_set(loaded) == reference


def test_truncated_section_fails_loudly(tmp_path):
    path = str(tmp_path / "cut.store")
    Store(DATA, materialize="full").save(path)

    def lie_about_length(header):
        header["sections"].append({"name": "frobnicator", "n_bytes": 64})
        return b"\x00" * 8  # shorter than declared

    rewrite_header(path, lie_about_length)
    with pytest.raises(StoreFormatError, match="truncated"):
        Store.load(path)


def test_unsupported_version_still_rejected(tmp_path):
    path = str(tmp_path / "vfuture.store")
    Store(DATA, materialize="full").save(path)

    from repro.core.store_api import _SUPPORTED_VERSIONS

    def bump(header):
        # Past every known version (v3 = compressed tables exists now).
        header["version"] = max(_SUPPORTED_VERSIONS) + 1

    rewrite_header(path, bump)
    with pytest.raises(StoreFormatError, match="version"):
        Store.load(path)


def test_hybrid_round_trip_is_o_read(tmp_path):
    path = str(tmp_path / "hybrid.store")
    hybrid = Store(DATA, materialize="hybrid")
    hybrid.materialize()
    reference = answer_set(hybrid)
    stored_before = hybrid.engine.main.n_triples
    hybrid.save(path)

    loaded = Store.load(path)
    assert loaded.materialize_mode == "hybrid"
    assert loaded.engine.stats is None  # adopted, not re-materialized
    assert loaded.engine.main.n_triples == stored_before
    assert len(loaded.absorbed_rules) == 8
    assert answer_set(loaded) == reference


def test_hybrid_file_loaded_as_full_rematerializes(tmp_path):
    path = str(tmp_path / "hybrid.store")
    hybrid = Store(DATA, materialize="hybrid")
    hybrid.materialize()
    reference = answer_set(hybrid)
    hybrid.save(path)

    loaded = Store.load(path, materialize="full")
    assert loaded.materialize_mode == "full"
    # The reduced stored closure must be completed before serving.
    assert answer_set(loaded) == reference
    assert loaded.engine.main.n_triples > hybrid.engine.main.n_triples


def test_full_file_loaded_as_hybrid_serves_complete_closure(tmp_path):
    path = str(tmp_path / "full.store")
    full = Store(DATA, materialize="full")
    full.materialize()
    reference = answer_set(full)
    full.save(path)

    loaded = Store.load(path, materialize="hybrid")
    assert loaded.materialize_mode == "hybrid"
    assert loaded.engine.stats is None  # still O(read)
    assert loaded.hybrid_fallback is not None
    assert answer_set(loaded) == reference
    # The next flush re-fires in hybrid mode and starts absorbing.
    loaded.add(
        Triple(
            IRI("http://example.org/inst/late"),
            RDF.type,
            IRI("http://example.org/tree/n1"),
        )
    )
    loaded.materialize()
    assert len(loaded.absorbed_rules) == 8
