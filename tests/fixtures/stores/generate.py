"""Regenerate the golden store-format fixtures in this directory.

Run from the repository root::

    PYTHONPATH=src python tests/fixtures/stores/generate.py

Produces one file per historical format version — ``v1.store`` (raw
tables, pre-hybrid header), ``v2.store`` (raw tables + hybrid
``materialize``/``sections`` fields), ``v3.store`` (compressed ``crp1``
tables) — plus ``golden.nt``, the closure every fixture must load to.
Each fixture is written by the current (v4) ``Store.save`` and then
header-downgraded exactly the way the corresponding older writer laid
the file out: version pinned, checksum/total-length fields stripped,
and (for v1) the hybrid fields removed.  The body bytes are untouched,
which is what makes the committed fixtures byte-stable regression
anchors for the v4 reader's backward-compatibility paths.

The fixtures are committed; regenerate only when the *dictionary* or
*term* encoding changes (which is itself a format break and needs a
version bump).
"""

import json
import os
import struct
import sys

sys.path.insert(
    0,
    os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "..", "..", "src"
    ),
)

from repro.core.store_api import STORE_MAGIC, Store  # noqa: E402
from repro.rdf.terms import IRI, Literal, Triple  # noqa: E402
from repro.rdf.vocabulary import RDF, RDFS  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))


def ex(name):
    return IRI(f"http://example.org/{name}")


DATA = [
    Triple(ex("human"), RDFS.subClassOf, ex("mammal")),
    Triple(ex("mammal"), RDFS.subClassOf, ex("animal")),
    Triple(ex("hasPet"), RDFS.domain, ex("human")),
    Triple(ex("hasPet"), RDFS.range, ex("animal")),
    Triple(ex("Bart"), RDF.type, ex("human")),
    Triple(ex("Bart"), ex("hasPet"), ex("SantasLittleHelper")),
    Triple(ex("Lisa"), RDFS.label, Literal("Lisa")),
]

CHECKSUM_KEYS = ("asserted_crc32", "payload_bytes")
TABLE_CHECKSUM_KEYS = ("crc32",)


def downgrade(path, version, *, pre_hybrid=False):
    """Rewrite ``path``'s header the way the ``version`` writer did."""
    with open(path, "rb") as handle:
        blob = handle.read()
    offset = len(STORE_MAGIC)
    (header_len,) = struct.unpack("<I", blob[offset : offset + 4])
    body_start = offset + 4 + header_len
    header = json.loads(blob[offset + 4 : body_start].decode("utf-8"))
    header["version"] = version
    for key in CHECKSUM_KEYS:
        header.pop(key, None)
    for entry in header["tables"]:
        for key in TABLE_CHECKSUM_KEYS:
            entry.pop(key, None)
    for entry in header.get("sections", ()):
        entry.pop("crc32", None)
    if pre_hybrid:
        header.pop("materialize", None)
        header.pop("sections", None)
    payload = json.dumps(header, separators=(",", ":")).encode("utf-8")
    with open(path, "wb") as handle:
        handle.write(STORE_MAGIC)
        handle.write(struct.pack("<I", len(payload)))
        handle.write(payload)
        handle.write(blob[body_start:])


def main():
    golden = Store(DATA, backend="python")
    golden.materialize()
    lines = sorted(t.n3() for t in golden.triples())
    with open(os.path.join(HERE, "golden.nt"), "w") as handle:
        handle.write("\n".join(lines) + "\n")

    v1 = os.path.join(HERE, "v1.store")
    store = Store(DATA, backend="python")
    store.materialize()
    store.save(v1)
    downgrade(v1, 1, pre_hybrid=True)

    v2 = os.path.join(HERE, "v2.store")
    store = Store(DATA, backend="python")
    store.materialize()
    store.save(v2)
    downgrade(v2, 2)

    v3 = os.path.join(HERE, "v3.store")
    store = Store(DATA, backend="compressed")
    store.materialize()
    store.save(v3)
    downgrade(v3, 3)

    for name in ("golden.nt", "v1.store", "v2.store", "v3.store"):
        path = os.path.join(HERE, name)
        print(f"{name}: {os.path.getsize(path)} bytes")


if __name__ == "__main__":
    main()
