"""Unit and property tests for the LSD radix variant (§5.3 discussion)."""

from array import array

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sorting.radix import lsd_radix_sort_pairs, msd_radix_sort_pairs


def flat(pairs):
    out = array("q")
    for s, o in pairs:
        out.append(s)
        out.append(o)
    return out


def unflat(arr):
    return list(zip(arr[0::2], arr[1::2]))


class TestLsdRadix:
    def test_empty(self):
        assert len(lsd_radix_sort_pairs(array("q"))) == 0

    def test_single(self):
        assert unflat(lsd_radix_sort_pairs(flat([(4, 2)]))) == [(4, 2)]

    def test_sorted_output(self):
        pairs = [((i * 37) % 300, (i * 91) % 300) for i in range(400)]
        assert unflat(lsd_radix_sort_pairs(flat(pairs))) == sorted(pairs)

    def test_stability_gives_object_order_within_subject(self):
        pairs = [(5, 9), (5, 1), (5, 5), (2, 7)]
        assert unflat(lsd_radix_sort_pairs(flat(pairs))) == sorted(pairs)

    def test_adaptive_equals_nonadaptive(self):
        pairs = [((i * 13) % 2000, (i * 7) % 2000) for i in range(300)]
        assert lsd_radix_sort_pairs(
            flat(pairs), adaptive=True
        ) == lsd_radix_sort_pairs(flat(pairs), adaptive=False)

    def test_matches_msd(self):
        pairs = [((i * 13) % 997, (i * 7) % 997) for i in range(500)]
        assert lsd_radix_sort_pairs(flat(pairs)) == msd_radix_sort_pairs(
            flat(pairs)
        )

    def test_dedup(self):
        pairs = [(1, 1), (1, 1), (2, 3)] * 10
        assert unflat(
            lsd_radix_sort_pairs(flat(pairs), dedup=True)
        ) == sorted(set(pairs))

    def test_dense_window(self):
        base = 1 << 32
        pairs = [(base + (i * 7) % 40, base - i % 11) for i in range(150)]
        assert unflat(lsd_radix_sort_pairs(flat(pairs))) == sorted(pairs)


@settings(max_examples=120, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 1 << 20), st.integers(0, 1 << 20)),
        max_size=120,
    )
)
def test_lsd_matches_sorted(pairs):
    assert unflat(lsd_radix_sort_pairs(flat(pairs))) == sorted(pairs)
