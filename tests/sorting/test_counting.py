"""Unit and property tests for the pair counting sort (Algorithm 2)."""

from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sorting.counting import (
    SortingError,
    counting_sort_pairs,
    counting_sort_values,
)


def flat(pairs):
    out = array("q")
    for s, o in pairs:
        out.append(s)
        out.append(o)
    return out


def unflat(arr):
    return list(zip(arr[0::2], arr[1::2]))


class TestCountingSortPairs:
    def test_empty(self):
        assert len(counting_sort_pairs(array("q"))) == 0

    def test_single_pair(self):
        assert unflat(counting_sort_pairs(flat([(3, 7)]))) == [(3, 7)]

    def test_sorts_by_subject_then_object(self):
        pairs = [(4, 1), (2, 3), (1, 2), (5, 3), (4, 4)]
        assert unflat(counting_sort_pairs(flat(pairs), dedup=False)) == sorted(
            pairs
        )

    def test_paper_trace_example(self):
        # The exact Figure-6 input: (4,1) (2,3) (1,2) (5,3) (4,4).
        result = counting_sort_pairs(
            flat([(4, 1), (2, 3), (1, 2), (5, 3), (4, 4)])
        )
        assert unflat(result) == [(1, 2), (2, 3), (4, 1), (4, 4), (5, 3)]

    def test_dedup_removes_duplicates(self):
        pairs = [(1, 1), (1, 1), (2, 2), (1, 1), (2, 2)]
        assert unflat(counting_sort_pairs(flat(pairs), dedup=True)) == [
            (1, 1),
            (2, 2),
        ]

    def test_dedup_false_keeps_duplicates(self):
        pairs = [(1, 1), (1, 1)]
        assert unflat(counting_sort_pairs(flat(pairs), dedup=False)) == [
            (1, 1),
            (1, 1),
        ]

    def test_dedup_resets_between_subjects(self):
        # Same object under different subjects must both survive.
        pairs = [(1, 5), (2, 5)]
        assert unflat(counting_sort_pairs(flat(pairs))) == [(1, 5), (2, 5)]

    def test_all_equal_subjects(self):
        pairs = [(7, o) for o in (5, 3, 9, 3, 1)]
        assert unflat(counting_sort_pairs(flat(pairs))) == [
            (7, 1),
            (7, 3),
            (7, 5),
            (7, 9),
        ]

    def test_large_object_subarray_uses_counting(self):
        # > _SMALL_SUBARRAY objects under one subject, narrow range.
        objects = [(i * 7) % 50 for i in range(100)]
        pairs = [(1, o) for o in objects]
        assert unflat(counting_sort_pairs(flat(pairs), dedup=False)) == sorted(
            pairs
        )

    def test_wide_object_range_falls_back(self):
        objects = [i * 1_000_003 for i in range(60, 0, -1)]
        pairs = [(1, o) for o in objects]
        assert unflat(counting_sort_pairs(flat(pairs), dedup=False)) == sorted(
            pairs
        )

    def test_dense_numbering_window(self):
        # Values around 2**32, the realistic regime.
        base = 1 << 32
        pairs = [(base + 5, base + 1), (base + 2, base + 9),
                 (base + 5, base + 1)]
        assert unflat(counting_sort_pairs(flat(pairs))) == [
            (base + 2, base + 9),
            (base + 5, base + 1),
        ]

    def test_negative_values_supported(self):
        pairs = [(-5, 2), (-10, 1), (-5, -7)]
        assert unflat(counting_sort_pairs(flat(pairs))) == sorted(set(pairs))

    def test_odd_length_rejected(self):
        with pytest.raises(SortingError):
            counting_sort_pairs(array("q", [1, 2, 3]))

    def test_input_not_mutated(self):
        data = flat([(3, 1), (1, 2)])
        snapshot = array("q", data)
        counting_sort_pairs(data)
        assert data == snapshot

    def test_returns_trimmed_array(self):
        result = counting_sort_pairs(flat([(1, 1)] * 10))
        assert len(result) == 2


class TestCountingSortValues:
    def test_empty(self):
        assert counting_sort_values([]) == []

    def test_sorts(self):
        assert counting_sort_values([5, 1, 4, 1]) == [1, 1, 4, 5]


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 500), st.integers(0, 500)), max_size=200
    )
)
def test_counting_matches_sorted_with_dedup(pairs):
    result = unflat(counting_sort_pairs(flat(pairs), dedup=True))
    assert result == sorted(set(pairs))


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 100), st.integers(0, 100)), max_size=200
    )
)
def test_counting_matches_sorted_without_dedup(pairs):
    result = unflat(counting_sort_pairs(flat(pairs), dedup=False))
    assert result == sorted(pairs)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers((1 << 32) - 50, (1 << 32) + 50),
            st.integers((1 << 32) - 50, (1 << 32) + 50),
        ),
        max_size=100,
    )
)
def test_counting_dense_window_property(pairs):
    """The realistic dense-numbering window around 2**32."""
    result = unflat(counting_sort_pairs(flat(pairs), dedup=True))
    assert result == sorted(set(pairs))
