"""Unit tests for the generic sorting baselines (Table-1 comparison set)."""

from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sorting.generic import (
    mergesort_pairs,
    numpy_sort_pairs,
    quicksort_pairs,
)


def flat(pairs):
    out = array("q")
    for s, o in pairs:
        out.append(s)
        out.append(o)
    return out


def unflat(arr):
    return list(zip(arr[0::2], arr[1::2]))


SAMPLE = [((i * 37) % 211, (i * 91) % 173) for i in range(500)]


class TestMergesort:
    def test_empty(self):
        assert len(mergesort_pairs(array("q"))) == 0

    def test_sorted_output(self):
        assert unflat(mergesort_pairs(flat(SAMPLE))) == sorted(SAMPLE)

    def test_stability_irrelevant_but_total(self):
        pairs = [(1, 2), (1, 1), (0, 9)]
        assert unflat(mergesort_pairs(flat(pairs))) == sorted(pairs)


class TestQuicksort:
    def test_empty(self):
        assert len(quicksort_pairs(array("q"))) == 0

    def test_sorted_output(self):
        assert unflat(quicksort_pairs(flat(SAMPLE))) == sorted(SAMPLE)

    def test_adversarial_sorted_input(self):
        pairs = [(i, i) for i in range(300)]
        assert unflat(quicksort_pairs(flat(pairs))) == pairs

    def test_adversarial_reverse_input(self):
        pairs = [(i, i) for i in range(300, 0, -1)]
        assert unflat(quicksort_pairs(flat(pairs))) == sorted(pairs)

    def test_all_equal(self):
        pairs = [(5, 5)] * 200
        assert unflat(quicksort_pairs(flat(pairs))) == pairs


class TestNumpySort:
    def test_sorted_output(self):
        assert unflat(numpy_sort_pairs(flat(SAMPLE))) == sorted(SAMPLE)

    def test_mergesort_kind(self):
        result = numpy_sort_pairs(flat(SAMPLE), kind="stable")
        assert unflat(result) == sorted(SAMPLE)

    def test_dense_window(self):
        base = 1 << 32
        pairs = [(base + (i * 7) % 100, base - (i % 50)) for i in range(200)]
        assert unflat(numpy_sort_pairs(flat(pairs))) == sorted(pairs)

    def test_unpackable_range_rejected(self):
        pairs = [(0, 0), (1 << 40, 5)]
        with pytest.raises(ValueError):
            numpy_sort_pairs(flat(pairs))

    def test_empty(self):
        assert len(numpy_sort_pairs(array("q"))) == 0


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 5_000), st.integers(0, 5_000)),
        max_size=200,
    )
)
def test_generic_sorts_agree(pairs):
    """All baselines produce the identical total order."""
    expected = sorted(pairs)
    data = flat(pairs)
    assert unflat(mergesort_pairs(data)) == expected
    assert unflat(quicksort_pairs(data)) == expected
    assert unflat(numpy_sort_pairs(data)) == expected if pairs else True
