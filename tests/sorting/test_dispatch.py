"""Unit tests for the operating-range dispatcher (paper §5.4)."""

from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sorting.counting import SortingError
from repro.sorting.dispatch import (
    MAX_COUNTING_RANGE,
    SMALL_COLLECTION,
    choose_algorithm,
    entropy_bits,
    sort_pairs,
    subject_range,
    timsort_pairs,
)


def flat(pairs):
    out = array("q")
    for s, o in pairs:
        out.append(s)
        out.append(o)
    return out


def unflat(arr):
    return list(zip(arr[0::2], arr[1::2]))


class TestChooseAlgorithm:
    def test_tiny_collections_use_timsort(self):
        assert choose_algorithm(SMALL_COLLECTION, 10) == "timsort"

    def test_counting_when_size_at_least_range(self):
        # The paper's rule of thumb: counting wins when n >= range.
        assert choose_algorithm(1000, 1000) == "counting"
        assert choose_algorithm(25_000_000 // 100, 100) == "counting"

    def test_radix_when_range_exceeds_size(self):
        assert choose_algorithm(1000, 1001) == "radix"
        assert choose_algorithm(500, 50_000) == "radix"

    def test_huge_range_forces_radix(self):
        assert choose_algorithm(MAX_COUNTING_RANGE * 2,
                                MAX_COUNTING_RANGE + 1) == "radix"


class TestSubjectRangeAndEntropy:
    def test_subject_range(self):
        assert subject_range(flat([(5, 0), (15, 0), (10, 0)])) == 11

    def test_subject_range_empty(self):
        assert subject_range(array("q")) == 0

    def test_entropy_paper_values(self):
        # Table 1's entropy column: log2(range).
        assert abs(entropy_bits(500_000) - 18.9) < 0.05
        assert abs(entropy_bits(1_000_000) - 19.9) < 0.05
        assert abs(entropy_bits(10_000_000) - 23.26) < 0.05
        assert abs(entropy_bits(50_000_000) - 25.58) < 0.05

    def test_entropy_degenerate(self):
        assert entropy_bits(0) == 0.0
        assert entropy_bits(-5) == 0.0


class TestSortPairsDispatch:
    def test_empty(self):
        out, used = sort_pairs(array("q"))
        assert len(out) == 0
        assert used == "none"

    def test_small_input_uses_timsort(self):
        pairs = [(3, 1), (1, 2)]
        out, used = sort_pairs(flat(pairs))
        assert used == "timsort"
        assert unflat(out) == sorted(pairs)

    def test_dense_input_uses_counting(self):
        pairs = [(i % 50, i) for i in range(500)]
        out, used = sort_pairs(flat(pairs))
        assert used == "counting"
        assert unflat(out) == sorted(set(pairs))

    def test_sparse_input_uses_radix(self):
        pairs = [(i * 1_000_003, i) for i in range(200)]
        out, used = sort_pairs(flat(pairs))
        assert used == "radix"
        assert unflat(out) == sorted(set(pairs))

    def test_forced_backends_agree(self):
        pairs = [((i * 7) % 90, (i * 13) % 90) for i in range(300)]
        expected = sorted(set(pairs))
        for algorithm in ("counting", "radix", "timsort"):
            out, used = sort_pairs(flat(pairs), algorithm=algorithm)
            assert used == algorithm
            assert unflat(out) == expected

    def test_dedup_flag(self):
        pairs = [(1, 1)] * 100
        out, _ = sort_pairs(flat(pairs), dedup=False, algorithm="counting")
        assert len(out) // 2 == 100
        out, _ = sort_pairs(flat(pairs), dedup=True, algorithm="counting")
        assert len(out) // 2 == 1

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SortingError):
            sort_pairs(flat([(1, 2)]), algorithm="bogosort")


class TestTimsortPairs:
    def test_dedup(self):
        pairs = [(2, 2), (1, 1), (2, 2)]
        assert unflat(timsort_pairs(flat(pairs), dedup=True)) == [
            (1, 1),
            (2, 2),
        ]

    def test_empty(self):
        assert len(timsort_pairs(array("q"))) == 0


@settings(max_examples=150, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 10_000), st.integers(0, 10_000)),
        max_size=300,
    ),
    st.booleans(),
)
def test_dispatch_always_correct(pairs, dedup):
    """Whatever the dispatcher picks, the result is right."""
    out, _ = sort_pairs(flat(pairs), dedup=dedup)
    expected = sorted(set(pairs)) if dedup else sorted(pairs)
    assert unflat(out) == expected
