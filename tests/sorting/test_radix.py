"""Unit and property tests for the MSD / MSDA radix pair sort."""

from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sorting.counting import SortingError
from repro.sorting.radix import (
    msd_radix_sort_pairs,
    msda_radix_sort_pairs,
    significant_bytes,
)


def flat(pairs):
    out = array("q")
    for s, o in pairs:
        out.append(s)
        out.append(o)
    return out


def unflat(arr):
    return list(zip(arr[0::2], arr[1::2]))


class TestSignificantBytes:
    def test_zero(self):
        assert significant_bytes(0) == 1

    def test_one_byte(self):
        assert significant_bytes(255) == 1

    def test_two_bytes(self):
        assert significant_bytes(256) == 2

    def test_paper_example_10m_range(self):
        # "For a range of 10 million with an 8-bit radix, significant
        # values start at the sixth byte out of eight" — i.e. 3 bytes.
        assert significant_bytes(10_000_000) == 3

    def test_full_64_bits(self):
        assert significant_bytes((1 << 64) - 1) == 8

    def test_negative_rejected(self):
        with pytest.raises(SortingError):
            significant_bytes(-1)


class TestRadixSort:
    def test_empty(self):
        assert len(msd_radix_sort_pairs(array("q"))) == 0

    def test_single(self):
        assert unflat(msd_radix_sort_pairs(flat([(9, 2)]))) == [(9, 2)]

    def test_small_block_fallback(self):
        pairs = [(3, 1), (1, 5), (2, 2)]
        assert unflat(msd_radix_sort_pairs(flat(pairs))) == sorted(pairs)

    def test_large_sorts_by_subject_then_object(self):
        pairs = [((i * 37) % 500, (i * 91) % 500) for i in range(400)]
        assert unflat(msd_radix_sort_pairs(flat(pairs))) == sorted(pairs)

    def test_equal_subjects_recurse_on_objects(self):
        pairs = [(7, (i * 13) % 300) for i in range(200)]
        assert unflat(msd_radix_sort_pairs(flat(pairs))) == sorted(pairs)

    def test_adaptive_equals_standard(self):
        pairs = [((i * 37) % 1000, (i * 91) % 1000) for i in range(300)]
        adaptive = msd_radix_sort_pairs(flat(pairs), adaptive=True)
        standard = msd_radix_sort_pairs(flat(pairs), adaptive=False)
        assert adaptive == standard

    def test_dense_window_values(self):
        base = 1 << 32
        pairs = [(base - i % 7, base + (i * 11) % 90) for i in range(150)]
        assert unflat(msda_radix_sort_pairs(flat(pairs))) == sorted(pairs)

    def test_dedup(self):
        pairs = [(1, 1), (1, 1), (2, 5), (2, 5), (1, 3)] * 20
        result = unflat(msd_radix_sort_pairs(flat(pairs), dedup=True))
        assert result == sorted(set(pairs))

    def test_no_dedup_keeps_multiplicity(self):
        pairs = [(1, 1)] * 100
        result = unflat(msd_radix_sort_pairs(flat(pairs), dedup=False))
        assert result == pairs

    def test_input_not_mutated(self):
        data = flat([(3, 1), (1, 2)] * 40)
        snapshot = array("q", data)
        msd_radix_sort_pairs(data)
        assert data == snapshot

    def test_odd_length_rejected(self):
        with pytest.raises(SortingError):
            msd_radix_sort_pairs(array("q", [1]))


@settings(max_examples=150, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, (1 << 40)), st.integers(0, (1 << 40))
        ),
        max_size=150,
    )
)
def test_radix_matches_sorted(pairs):
    result = unflat(msd_radix_sort_pairs(flat(pairs)))
    assert result == sorted(pairs)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 300), st.integers(0, 300)), max_size=150
    ),
    st.booleans(),
)
def test_radix_dedup_property(pairs, adaptive):
    result = unflat(
        msd_radix_sort_pairs(flat(pairs), dedup=True, adaptive=adaptive)
    )
    assert result == sorted(set(pairs))
