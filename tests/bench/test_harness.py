"""Unit tests for the benchmark harness and reporting helpers."""

from repro.bench.harness import (
    ENGINE_FACTORIES,
    RunResult,
    format_table,
    measure,
    run_engine,
)
from repro.bench.reporting import (
    markdown_table,
    results_matrix,
    speedup_summary,
)
from repro.core.engine import MaterializationTimeout
from repro.datasets.chains import subclass_chain


class TestRunResult:
    def test_cell_formats_ms(self):
        result = RunResult("e", "d", "r", seconds=1.2345)
        assert result.cell() == "1,234"

    def test_cell_timeout_dash(self):
        result = RunResult("e", "d", "r", seconds=None)
        assert result.cell() == "–"
        assert result.milliseconds is None
        assert result.throughput is None

    def test_throughput(self):
        result = RunResult("e", "d", "r", seconds=2.0, n_inferred=100)
        assert result.throughput == 50.0


class TestMeasure:
    def test_mean_of_runs(self):
        calls = []

        def once():
            calls.append(1)
            return {"x": 1}

        mean, info, runs = measure(once, warmup=1, runs=3)
        assert len(calls) == 4
        assert info == {"x": 1}
        assert len(runs) == 3
        assert mean is not None

    def test_timeout_yields_none(self):
        def once():
            raise MaterializationTimeout("boom")

        mean, _, runs = measure(once)
        assert mean is None
        assert runs == []


class TestRunEngine:
    def test_all_engines_registered(self):
        assert set(ENGINE_FACTORIES) == {
            "inferray",
            "hashjoin",
            "rete",
            "naive",
        }

    def test_inferray_run(self):
        result = run_engine(
            "inferray",
            "rdfs-default",
            subclass_chain(20),
            dataset_name="chain20",
            warmup=0,
            runs=1,
        )
        assert result.seconds is not None
        assert result.n_inferred == 20 * 19 // 2 - 19
        assert result.dataset == "chain20"

    def test_baseline_run(self):
        result = run_engine(
            "hashjoin", "rdfs-default", subclass_chain(10), warmup=0, runs=1
        )
        assert result.seconds is not None
        assert result.n_total == 10 * 9 // 2

    def test_timeout_marks_dash(self):
        result = run_engine(
            "naive",
            "rdfs-default",
            subclass_chain(60),
            timeout_seconds=-1.0,
            warmup=0,
            runs=1,
        )
        assert result.seconds is None
        assert result.cell() == "–"


class TestFormatting:
    def test_format_table_aligns(self):
        text = format_table(
            ["name", "ms"], [["a", "1"], ["longer", "22"]]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")

    def test_results_matrix_pivots(self):
        results = [
            RunResult("inferray", "d1", "r", 0.5),
            RunResult("rete", "d1", "r", None),
        ]
        text = results_matrix(results)
        assert "500" in text
        assert "–" in text

    def test_speedup_summary(self):
        results = [
            RunResult("inferray", "d", "r", 1.0),
            RunResult("rete", "d", "r", 10.0),
            RunResult("naive", "d", "r", None),
        ]
        lines = speedup_summary(results)
        assert any("10.0x" in line for line in lines)
        assert any("timed out" in line for line in lines)

    def test_markdown_table(self):
        text = markdown_table(["a", "b"], [["1", "2"]])
        assert text.splitlines()[1] == "|---|---|"
