"""Unit tests for the ASCII figure renderer."""

from repro.bench.figures import counters_to_bars, render_bars


class TestRenderBars:
    def test_bars_scale_to_maximum(self):
        text = render_bars(
            "t",
            [("g1", "a", 10.0), ("g1", "b", 5.0)],
        )
        lines = text.splitlines()
        assert lines[0] == "t"
        assert lines[1].count("█") == 2 * lines[2].count("█")

    def test_none_renders_dash(self):
        text = render_bars("t", [("g", "a", None)])
        assert "–" in text

    def test_zero_value(self):
        text = render_bars("t", [("g", "a", 0.0), ("g", "b", 4.0)])
        assert "0.000" in text

    def test_groups_separated_by_blank_line(self):
        text = render_bars(
            "t",
            [("g1", "a", 1.0), ("g2", "a", 1.0)],
        )
        assert "" in text.splitlines()

    def test_empty(self):
        assert render_bars("t", []) == "t"

    def test_unit_suffix(self):
        text = render_bars("t", [("g", "a", 2.0)], unit="ms")
        assert "2.000ms" in text


class TestCountersToBars:
    def test_projection(self):
        rows = [
            ("g", "e1", {"x": 1.0, "y": 2.0}),
            ("g", "e2", None),
        ]
        bars = counters_to_bars(rows, "y")
        assert bars == [("g", "e1", 2.0), ("g", "e2", None)]

    def test_missing_metric_defaults_zero(self):
        bars = counters_to_bars([("g", "e", {})], "nope")
        assert bars == [("g", "e", 0.0)]
