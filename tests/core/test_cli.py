"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.rdf.ntriples import parse_file, write_file
from repro.rdf.terms import IRI, Triple
from repro.rdf.vocabulary import RDF, RDFS


@pytest.fixture
def sample_file(tmp_path):
    path = str(tmp_path / "in.nt")
    write_file(
        [
            Triple(IRI("http://ex/h"), RDFS.subClassOf, IRI("http://ex/m")),
            Triple(IRI("http://ex/b"), RDF.type, IRI("http://ex/h")),
        ],
        path,
    )
    return path


class TestInferCommand:
    def test_stdout_closure(self, sample_file, capsys):
        assert main(["infer", sample_file]) == 0
        out = capsys.readouterr().out
        assert out.count(" .") == 3
        assert "<http://ex/b>" in out

    def test_output_file(self, sample_file, tmp_path, capsys):
        out_path = str(tmp_path / "out.nt")
        assert main(["infer", sample_file, "-o", out_path]) == 0
        triples = list(parse_file(out_path))
        assert len(triples) == 3

    def test_inferred_only(self, sample_file, capsys):
        assert main(["infer", sample_file, "--inferred-only"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 1
        assert "<http://ex/m>" in out[0]

    def test_ruleset_flag(self, sample_file, capsys):
        assert main(["infer", sample_file, "--ruleset", "rdfs-full"]) == 0
        out = capsys.readouterr().out
        assert "Resource" in out  # RDFS4 fired

    def test_forced_algorithm(self, sample_file, capsys):
        assert main(["infer", sample_file, "--algorithm", "counting"]) == 0
        assert capsys.readouterr().out.count(" .") == 3

    def test_bad_ruleset_rejected(self, sample_file):
        with pytest.raises(SystemExit):
            main(["infer", sample_file, "--ruleset", "owl-dl"])


class TestStatsCommand:
    def test_prints_stats(self, sample_file, capsys):
        assert main(["stats", sample_file]) == 0
        out = capsys.readouterr().out
        assert "input triples:     2" in out
        assert "inferred triples:  1" in out
        assert "CAX-SCO" in out


class TestRulesCommand:
    def test_lists_rules(self, capsys):
        assert main(["rules", "--ruleset", "rho-df"]) == 0
        out = capsys.readouterr().out
        assert "rho-df: 8 rules" in out
        assert "CAX-SCO" in out
        assert "class=theta" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
