"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.rdf.ntriples import parse_file, write_file
from repro.rdf.terms import IRI, Triple
from repro.rdf.vocabulary import RDF, RDFS


@pytest.fixture
def sample_file(tmp_path):
    path = str(tmp_path / "in.nt")
    write_file(
        [
            Triple(IRI("http://ex/h"), RDFS.subClassOf, IRI("http://ex/m")),
            Triple(IRI("http://ex/b"), RDF.type, IRI("http://ex/h")),
        ],
        path,
    )
    return path


class TestInferCommand:
    def test_stdout_closure(self, sample_file, capsys):
        assert main(["infer", sample_file]) == 0
        out = capsys.readouterr().out
        assert out.count(" .") == 3
        assert "<http://ex/b>" in out

    def test_output_file(self, sample_file, tmp_path, capsys):
        out_path = str(tmp_path / "out.nt")
        assert main(["infer", sample_file, "-o", out_path]) == 0
        triples = list(parse_file(out_path))
        assert len(triples) == 3

    def test_inferred_only(self, sample_file, capsys):
        assert main(["infer", sample_file, "--inferred-only"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 1
        assert "<http://ex/m>" in out[0]

    def test_ruleset_flag(self, sample_file, capsys):
        assert main(["infer", sample_file, "--ruleset", "rdfs-full"]) == 0
        out = capsys.readouterr().out
        assert "Resource" in out  # RDFS4 fired

    def test_forced_algorithm(self, sample_file, capsys):
        assert main(["infer", sample_file, "--algorithm", "counting"]) == 0
        assert capsys.readouterr().out.count(" .") == 3

    def test_bad_ruleset_rejected(self, sample_file):
        with pytest.raises(SystemExit):
            main(["infer", sample_file, "--ruleset", "owl-dl"])


class TestStatsCommand:
    def test_prints_stats(self, sample_file, capsys):
        assert main(["stats", sample_file]) == 0
        out = capsys.readouterr().out
        assert "input triples:     2" in out
        assert "inferred triples:  1" in out
        assert "CAX-SCO" in out


class TestRulesCommand:
    def test_lists_rules(self, capsys):
        assert main(["rules", "--ruleset", "rho-df"]) == 0
        out = capsys.readouterr().out
        assert "rho-df: 8 rules" in out
        assert "CAX-SCO" in out
        assert "class=theta" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestStoreCommands:
    def test_save_load_round_trip(self, sample_file, tmp_path, capsys):
        store_path = str(tmp_path / "c.store")
        assert main(["save", sample_file, "-o", store_path]) == 0
        assert "inferred" in capsys.readouterr().err

        out_path = str(tmp_path / "out.nt")
        assert main(["load", store_path, "-o", out_path]) == 0
        capsys.readouterr()
        assert len(list(parse_file(out_path))) == 3

    def test_load_summary(self, sample_file, tmp_path, capsys):
        store_path = str(tmp_path / "c.store")
        main(["save", sample_file, "-o", store_path])
        capsys.readouterr()
        assert main(["load", store_path]) == 0
        out = capsys.readouterr().out
        assert "total triples:     3" in out
        assert "materialized:      True" in out

    def test_query_store_file(self, sample_file, tmp_path, capsys):
        store_path = str(tmp_path / "c.store")
        main(["save", sample_file, "-o", store_path])
        capsys.readouterr()
        assert main(["query", store_path, "?s rdf:type ?t"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out[0] == "?s\t?t"
        assert len(out) == 3  # header + b->h, b->m

    def test_query_raw_dataset_and_ask(self, sample_file, capsys):
        assert main(
            ["query", sample_file,
             "<http://ex/b> rdf:type <http://ex/m>"]
        ) == 0
        assert capsys.readouterr().out.strip() == "true"

    def test_query_limit(self, sample_file, capsys):
        assert main(
            ["query", sample_file, "?s ?p ?o", "--limit", "1"]
        ) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 2  # header + 1 row

    def test_query_bad_pattern_exits_2(self, sample_file, capsys):
        assert main(["query", sample_file, "?s ?p"]) == 2
        assert "repro:" in capsys.readouterr().err

    def test_load_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["load", str(tmp_path / "nope.store")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_query_missing_file_exits_2(self, tmp_path, capsys):
        assert main(
            ["query", str(tmp_path / "nope.nt"), "?s ?p ?o"]
        ) == 2
        assert "no such file" in capsys.readouterr().err

    def test_corrupt_store_exits_2(self, sample_file, tmp_path, capsys):
        store_path = str(tmp_path / "c.store")
        main(["save", sample_file, "-o", store_path])
        capsys.readouterr()
        with open(store_path, "rb") as handle:
            blob = handle.read()
        with open(store_path, "wb") as handle:
            handle.write(blob[:14])  # magic + header-length cut off
        assert main(["query", store_path, "?s ?p ?o"]) == 2
        assert "repro:" in capsys.readouterr().err

    def test_load_on_plain_nt_exits_2(self, sample_file, capsys):
        assert main(["load", sample_file]) == 2
        assert "not a serialized store" in capsys.readouterr().err


class TestWorkersFlag:
    def test_infer_with_workers(self, sample_file, capsys):
        assert main(["infer", sample_file, "--workers", "2"]) == 0
        assert capsys.readouterr().out.count(" .") == 3

    def test_infer_workers_zero_means_all_cores(self, sample_file, capsys):
        assert main(["infer", sample_file, "--workers", "0"]) == 0
        assert capsys.readouterr().out.count(" .") == 3

    def test_stats_reports_workers_and_waves(self, sample_file, capsys):
        assert main(["stats", sample_file, "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "workers:           2" in out
        assert "scheduler wave(s)" in out
        assert "rule-firing speedup:" in out

    def test_stats_sequential_omits_speedup_line(self, sample_file, capsys):
        assert main(["stats", sample_file]) == 0
        out = capsys.readouterr().out
        assert "workers:           1" in out
        assert "rule-firing speedup:" not in out

    def test_save_and_query_accept_workers(
        self, sample_file, tmp_path, capsys
    ):
        store_path = str(tmp_path / "c.store")
        assert main(
            ["save", sample_file, "-o", store_path, "--workers", "2"]
        ) == 0
        assert main(
            ["query", store_path, "?s rdf:type ?t", "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "<http://ex/b>" in out
