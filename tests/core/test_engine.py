"""Unit tests for InferrayEngine (Algorithm 1)."""

import pytest

from repro.core.engine import (
    FixedPointError,
    InferrayEngine,
    MaterializationTimeout,
)
from repro.datasets.chains import subclass_chain
from repro.rdf.ntriples import write_file
from repro.rdf.terms import IRI, Triple
from repro.rdf.vocabulary import RDF, RDFS


def ex(name):
    return IRI(f"ex:{name}")


INTRO = [
    Triple(ex("human"), RDFS.subClassOf, ex("mammal")),
    Triple(ex("mammal"), RDFS.subClassOf, ex("animal")),
    Triple(ex("Bart"), RDF.type, ex("human")),
    Triple(ex("Lisa"), RDF.type, ex("human")),
]


class TestMaterialize:
    def test_paper_intro_example(self):
        engine = InferrayEngine("rdfs-default")
        engine.load_triples(INTRO)
        stats = engine.materialize()
        out = set(engine.triples())
        assert Triple(ex("human"), RDFS.subClassOf, ex("animal")) in out
        assert Triple(ex("Bart"), RDF.type, ex("mammal")) in out
        assert Triple(ex("Bart"), RDF.type, ex("animal")) in out
        assert Triple(ex("Lisa"), RDF.type, ex("animal")) in out
        assert stats.n_input == 4
        assert stats.n_inferred == 5
        assert stats.n_total == 9

    def test_empty_input(self):
        engine = InferrayEngine()
        stats = engine.materialize()
        assert stats.n_total == 0
        assert stats.iterations == 0

    def test_idempotent(self):
        engine = InferrayEngine("rdfs-default")
        engine.load_triples(INTRO)
        engine.materialize()
        first = set(engine.triples())
        again = engine.materialize()
        assert again.n_inferred == 0
        assert set(engine.triples()) == first

    def test_incremental_load_then_rematerialize(self):
        engine = InferrayEngine("rdfs-default")
        engine.load_triples(INTRO)
        engine.materialize()
        engine.load_triples([Triple(ex("Maggie"), RDF.type, ex("human"))])
        engine.materialize()
        assert engine.contains(
            Triple(ex("Maggie"), RDF.type, ex("animal"))
        )

    def test_stats_timings_populated(self):
        engine = InferrayEngine("rdfs-default")
        engine.load_triples(subclass_chain(50))
        stats = engine.materialize()
        assert stats.total_seconds > 0
        assert stats.closure_pairs == 50 * 49 // 2
        assert stats.triples_per_second > 0

    def test_max_iterations_guard(self):
        engine = InferrayEngine("rdfs-default", max_iterations=0)
        engine.load_triples(INTRO)
        with pytest.raises(FixedPointError):
            engine.materialize()

    def test_timeout_raises(self):
        engine = InferrayEngine("rdfs-default")
        engine.load_triples(subclass_chain(200))
        with pytest.raises(MaterializationTimeout):
            engine.materialize(timeout_seconds=-1.0)

    def test_custom_rule_list(self):
        from repro.rules.table5 import make_rules

        engine = InferrayEngine(make_rules(["CAX-SCO"]))
        assert engine.ruleset_name == "custom"
        engine.load_triples(INTRO)
        engine.materialize()
        assert engine.contains(Triple(ex("Bart"), RDF.type, ex("mammal")))
        # SCM-SCO absent: no schema closure.
        assert not engine.contains(
            Triple(ex("human"), RDFS.subClassOf, ex("animal"))
        )

    def test_forced_sort_backends_agree(self):
        results = []
        for algorithm in ("auto", "counting", "radix", "timsort"):
            engine = InferrayEngine("rdfs-default", algorithm=algorithm)
            engine.load_triples(INTRO + subclass_chain(30))
            engine.materialize()
            results.append(set(engine.triples()))
        assert all(r == results[0] for r in results)


class TestQueriesAndViews:
    def setup_method(self):
        self.engine = InferrayEngine("rdfs-default")
        self.engine.load_triples(INTRO)
        self.engine.materialize()

    def test_len(self):
        assert len(self.engine) == 9

    def test_contains(self):
        assert self.engine.contains(Triple(ex("Bart"), RDF.type, ex("animal")))
        assert not self.engine.contains(
            Triple(ex("animal"), RDF.type, ex("Bart"))
        )
        assert not self.engine.contains(
            Triple(ex("unknown"), RDF.type, ex("human"))
        )

    def test_query_wildcards(self):
        types_of_bart = set(self.engine.query(ex("Bart"), RDF.type, None))
        assert len(types_of_bart) == 3

    def test_query_unknown_term_empty(self):
        assert list(self.engine.query(ex("nope"), None, None)) == []

    def test_encoded_triples_consistent(self):
        assert len(list(self.engine.encoded_triples())) == 9


class TestFileLoading:
    def test_load_file(self, tmp_path):
        path = str(tmp_path / "intro.nt")
        triples = [
            Triple(IRI("http://ex/human"), RDFS.subClassOf,
                   IRI("http://ex/mammal")),
            Triple(IRI("http://ex/Bart"), RDF.type, IRI("http://ex/human")),
        ]
        write_file(triples, path)
        engine = InferrayEngine("rdfs-default")
        assert engine.load_file(path) == 2
        engine.materialize()
        assert engine.contains(
            Triple(IRI("http://ex/Bart"), RDF.type, IRI("http://ex/mammal"))
        )
