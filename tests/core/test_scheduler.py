"""Unit tests for the parallel rule scheduler and worker resolution."""

import pytest

from repro.core.engine import (
    FixedPointError,
    InferrayEngine,
    MaterializationTimeout,
)
from repro.core.scheduler import ParallelRuleScheduler, resolve_workers
from repro.core.store_api import Store, StoreConfig
from repro.datasets.chains import subclass_chain
from repro.rdf.terms import IRI, Triple
from repro.rdf.vocabulary import RDF, RDFS
from repro.rules.rulesets import get_ruleset
from repro.rules.table5 import make_rules


def ex(name):
    return IRI(f"ex:{name}")


INTRO = [
    Triple(ex("human"), RDFS.subClassOf, ex("mammal")),
    Triple(ex("mammal"), RDFS.subClassOf, ex("animal")),
    Triple(ex("Bart"), RDF.type, ex("human")),
]


class TestResolveWorkers:
    def test_default_is_sequential(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(2) == 2

    def test_zero_means_all_cores(self):
        import os

        assert resolve_workers(0) == (os.cpu_count() or 1)
        assert resolve_workers(-1) == (os.cpu_count() or 1)

    def test_env_zero_means_all_cores(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert resolve_workers(None) == (os.cpu_count() or 1)

    # A stray shell export must never crash or oversubscribe an engine:
    # env values are sanitized with a warning, explicit API values are
    # trusted (test matrices pin exact counts).
    def test_bad_env_value_warns_and_runs_sequentially(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.warns(RuntimeWarning, match="REPRO_WORKERS"):
            assert resolve_workers(None) == 1

    def test_negative_env_value_warns_and_uses_all_cores(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_WORKERS", "-3")
        with pytest.warns(RuntimeWarning, match="negative"):
            assert resolve_workers(None) == (os.cpu_count() or 1)

    def test_oversubscribing_env_value_warns_and_clamps(self, monkeypatch):
        import os

        cores = os.cpu_count() or 1
        monkeypatch.setenv("REPRO_WORKERS", str(cores * 4 + 1))
        with pytest.warns(RuntimeWarning, match="oversubscribe"):
            assert resolve_workers(None) == cores * 4

    def test_env_value_at_the_ceiling_passes_unclamped(self, monkeypatch):
        import os
        import warnings

        cores = os.cpu_count() or 1
        monkeypatch.setenv("REPRO_WORKERS", str(cores * 4))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_workers(None) == cores * 4

    def test_absurd_env_value_still_materializes(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_WORKERS", str((os.cpu_count() or 1) * 100))
        with pytest.warns(RuntimeWarning, match="clamping"):
            engine = InferrayEngine("rdfs-default")
        engine.load_triples(INTRO)
        engine.materialize()
        assert engine.contains(Triple(ex("Bart"), RDF.type, ex("animal")))


class TestSchedulerStructure:
    def test_waves_cover_all_rules(self):
        scheduler = ParallelRuleScheduler(get_ruleset("rdfs-plus"))
        indexes = sorted(i for wave in scheduler.waves for i in wave)
        assert indexes == list(range(len(scheduler.rules)))

    def test_wave_names(self):
        scheduler = ParallelRuleScheduler(
            make_rules(["SCM-SCO", "CAX-SCO"])
        )
        assert scheduler.wave_names() == [["SCM-SCO"], ["CAX-SCO"]]

    def test_session_sequential_yields_no_executor(self):
        scheduler = ParallelRuleScheduler(get_ruleset("rho-df"), workers=1)
        with scheduler.session() as executor:
            assert executor is None
        assert scheduler.effective_mode == "sequential"

    def test_session_parallel_yields_executor(self):
        scheduler = ParallelRuleScheduler(
            get_ruleset("rho-df"), workers=3, mode="thread"
        )
        assert scheduler.effective_mode == "thread"
        with scheduler.session() as executor:
            assert executor is not None
            assert executor.submit(lambda: 41 + 1).result() == 42

    def test_standalone_process_scheduler_falls_back_to_threads(self):
        # Built without vocab= (the engine provides it), a cost-model
        # process pick degrades to threads instead of failing the
        # materialization — and the fallback is sticky: the next
        # decision stops proposing the broken substrate.
        from repro.kernels import get_backend

        scheduler = ParallelRuleScheduler(
            get_ruleset("rho-df"),
            workers=2,
            mode=None,
            kernels=get_backend("python"),
            cores=4,
            process_crossover=0,
        )
        decision = scheduler.decide()
        assert decision.mode == "process"
        with pytest.warns(RuntimeWarning, match="falling back to threads"):
            with scheduler.session(decision) as executor:
                assert executor is not None
        assert decision.mode == "thread"
        assert decision.fallback and "vocab" in decision.fallback
        assert scheduler.effective_mode == "thread"
        assert scheduler.decide().mode == "thread"  # sticky
        scheduler.close()

    def test_forced_process_without_vocab_raises(self):
        from repro.core.parallel import ProcessModeUnavailable

        scheduler = ParallelRuleScheduler(
            get_ruleset("rho-df"), workers=2, mode="process"
        )
        with pytest.raises(ProcessModeUnavailable, match="vocab"):
            with scheduler.session():
                pass  # pragma: no cover


class TestEngineIntegration:
    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_closure_and_stats(self, workers):
        engine = InferrayEngine("rdfs-default", workers=workers)
        engine.load_triples(INTRO)
        stats = engine.materialize()
        assert engine.contains(Triple(ex("Bart"), RDF.type, ex("animal")))
        assert stats.workers == workers
        assert stats.n_waves == 1  # rdfs-default is one recursive wave
        assert stats.per_rule_seconds  # per-rule timings populated
        assert stats.rule_busy_seconds > 0
        assert stats.parallel_speedup > 0
        assert len(stats.per_wave_seconds) == stats.n_waves

    def test_byte_identical_tables_across_worker_counts(self):
        reference = None
        for workers in (1, 2, 4):
            engine = InferrayEngine("rdfs-plus", workers=workers)
            engine.load_triples(subclass_chain(20))
            engine.materialize()
            tables = [
                (pid, bytes(flat.tobytes()))
                for pid, flat in engine.main.table_arrays()
            ]
            if reference is None:
                reference = tables
            else:
                assert tables == reference

    def test_idempotent_noop_keeps_worker_fields(self):
        engine = InferrayEngine("rdfs-default", workers=2)
        engine.load_triples(INTRO)
        engine.materialize()
        again = engine.materialize()
        assert again.iterations == 0
        assert again.workers == 2
        assert again.n_waves == 1

    def test_repeated_materializations_reuse_scheduler(self):
        engine = InferrayEngine("rdfs-default", workers=2)
        engine.load_triples(INTRO[:1])
        engine.materialize()
        engine.load_triples(INTRO[1:])
        engine.materialize()
        engine.materialize_incremental(
            [Triple(ex("Maggie"), RDF.type, ex("human"))]
        )
        assert engine.contains(
            Triple(ex("Maggie"), RDF.type, ex("animal"))
        )

    def test_tracer_forces_sequential(self):
        from repro.memsim.tracer import NullTracer

        engine = InferrayEngine(
            "rdfs-default", tracer=NullTracer(), workers=4
        )
        assert engine.workers == 1

    def test_engine_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        engine = InferrayEngine("rdfs-default")
        assert engine.workers == 2


class TestErrorMessagesCarryWorkerCount:
    @pytest.mark.parametrize("workers", (1, 3))
    def test_fixed_point_error(self, workers):
        engine = InferrayEngine(
            "rdfs-default", max_iterations=0, workers=workers
        )
        engine.load_triples(INTRO)
        with pytest.raises(FixedPointError, match=f"workers={workers}"):
            engine.materialize()

    @pytest.mark.parametrize("workers", (1, 3))
    def test_timeout_error(self, workers):
        engine = InferrayEngine("rdfs-default", workers=workers)
        engine.load_triples(subclass_chain(50))
        with pytest.raises(
            MaterializationTimeout, match=f"workers={workers}"
        ):
            engine.materialize(timeout_seconds=-1.0)

    def test_incremental_timeout_error(self):
        engine = InferrayEngine("rdfs-default", workers=2)
        engine.load_triples(INTRO)
        engine.materialize()
        with pytest.raises(MaterializationTimeout, match="workers=2"):
            engine.materialize_incremental(
                subclass_chain(50), timeout_seconds=-1.0
            )


class TestParallelModeSelection:
    def test_sequential_reports_sequential(self):
        engine = InferrayEngine("rdfs-default", workers=1)
        assert engine.parallel_mode == "sequential"

    @pytest.mark.parametrize("mode", ("thread", "process"))
    def test_explicit_mode_is_honoured(self, mode):
        engine = InferrayEngine(
            "rdfs-default", backend="python", workers=2, parallel_mode=mode
        )
        assert engine.parallel_mode == mode
        engine.load_triples(INTRO)
        stats = engine.materialize()
        assert stats.parallel_mode == mode
        assert engine.contains(Triple(ex("Bart"), RDF.type, ex("animal")))

    def test_auto_is_undecided_before_the_first_run(self):
        engine = InferrayEngine(
            "rdfs-default", backend="python", workers=2, parallel_mode="auto"
        )
        assert engine.parallel_mode == "auto"

    def test_auto_picks_sequential_below_the_crossover(self, monkeypatch):
        # INTRO is tiny: no substrate can amortize its overhead, so
        # auto must refuse parallelism even with cores available.
        monkeypatch.setenv("REPRO_PARALLEL_CORES", "4")
        engine = InferrayEngine(
            "rdfs-default", backend="python", workers=2, parallel_mode="auto"
        )
        engine.load_triples(INTRO)
        stats = engine.materialize()
        assert stats.parallel_mode == "sequential"
        assert stats.parallel_decision["requested"] == "auto"
        assert stats.parallel_decision["estimated_pairs"] is not None
        assert "crossover" in stats.parallel_decision["reason"]

    def test_auto_picks_sequential_on_one_core(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_CORES", "1")
        monkeypatch.setenv("REPRO_PROCESS_CROSSOVER", "0")
        engine = InferrayEngine(
            "rdfs-default", backend="python", workers=4, parallel_mode="auto"
        )
        engine.load_triples(INTRO)
        stats = engine.materialize()
        assert stats.parallel_mode == "sequential"
        assert "core" in stats.parallel_decision["reason"]

    def test_auto_picks_process_for_python_backend_above_crossover(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_PARALLEL_CORES", "4")
        monkeypatch.setenv("REPRO_PROCESS_CROSSOVER", "0")
        engine = InferrayEngine(
            "rdfs-default", backend="python", workers=2, parallel_mode="auto"
        )
        engine.load_triples(INTRO)
        stats = engine.materialize()
        assert stats.parallel_mode == "process"
        assert stats.parallel_fallback is None
        engine.close()

    def test_auto_picks_thread_for_numpy_backend_above_crossover(
        self, monkeypatch
    ):
        from repro.kernels import numpy_available

        if not numpy_available():
            pytest.skip("numpy backend unavailable")
        monkeypatch.setenv("REPRO_PARALLEL_CORES", "4")
        monkeypatch.setenv("REPRO_THREAD_CROSSOVER", "0")
        engine = InferrayEngine(
            "rdfs-default", backend="numpy", workers=2, parallel_mode="auto"
        )
        engine.load_triples(INTRO)
        stats = engine.materialize()
        assert stats.parallel_mode == "thread"
        engine.close()

    def test_auto_never_picks_threads_for_the_python_backend(
        self, monkeypatch
    ):
        # Threads cannot beat sequential under the GIL: below the
        # process crossover the python backend runs sequentially even
        # when the thread crossover is cleared.
        monkeypatch.setenv("REPRO_PARALLEL_CORES", "4")
        monkeypatch.setenv("REPRO_THREAD_CROSSOVER", "0")
        engine = InferrayEngine(
            "rdfs-default", backend="python", workers=2, parallel_mode="auto"
        )
        engine.load_triples(INTRO)
        stats = engine.materialize()
        assert stats.parallel_mode == "sequential"

    def test_auto_doubles_crossovers_for_compressed_backend(
        self, monkeypatch
    ):
        # Block decode makes each pair roughly twice as expensive to
        # touch, so the compressed backend stays sequential up to twice
        # the configured crossover — the reason string says so.
        monkeypatch.setenv("REPRO_PARALLEL_CORES", "4")
        engine = InferrayEngine(
            "rdfs-default",
            backend="compressed",
            workers=2,
            parallel_mode="auto",
        )
        engine.load_triples(INTRO)
        stats = engine.materialize()
        assert stats.parallel_mode == "sequential"
        assert "doubled for compressed-block decode cost" in (
            stats.parallel_decision["reason"]
        )

    def test_auto_compressed_over_numpy_picks_threads(self, monkeypatch):
        from repro.kernels import numpy_available

        if not numpy_available():
            pytest.skip("numpy inner backend unavailable")
        monkeypatch.setenv("REPRO_PARALLEL_CORES", "4")
        monkeypatch.setenv("REPRO_THREAD_CROSSOVER", "0")
        engine = InferrayEngine(
            "rdfs-default",
            backend="compressed",
            workers=2,
            parallel_mode="auto",
        )
        engine.load_triples(INTRO)
        stats = engine.materialize()
        # Decode windows run on the GIL-releasing numpy inner backend,
        # so threads are viable just like for plain numpy.
        assert stats.parallel_mode == "thread"
        assert "decompressed windows run on 'numpy'" in (
            stats.parallel_decision["reason"]
        )
        engine.close()

    def test_auto_compressed_over_python_picks_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_CORES", "4")
        monkeypatch.setenv("REPRO_KERNELS_DISABLE_NUMPY", "1")
        monkeypatch.setenv("REPRO_THREAD_CROSSOVER", "0")
        monkeypatch.setenv("REPRO_PROCESS_CROSSOVER", "0")
        engine = InferrayEngine(
            "rdfs-default",
            backend="compressed",
            workers=2,
            parallel_mode="auto",
        )
        assert engine.kernels.inner_name == "python"
        engine.load_triples(INTRO)
        stats = engine.materialize()
        # Pure-python decode serializes under the GIL: thread mode is
        # never an option, the process pool is.
        assert stats.parallel_mode == "process"
        engine.close()

    def test_env_mode_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_MODE", "thread")
        engine = InferrayEngine("rdfs-default", backend="python", workers=2)
        assert engine.parallel_mode == "thread"

    def test_explicit_mode_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_MODE", "thread")
        engine = InferrayEngine(
            "rdfs-default",
            backend="python",
            workers=2,
            parallel_mode="process",
        )
        assert engine.parallel_mode == "process"

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="parallel mode"):
            InferrayEngine(
                "rdfs-default", workers=2, parallel_mode="fibers"
            )

    def test_unpicklable_custom_rules_fall_back_in_auto(self, monkeypatch):
        from repro.rules.spec import Rule, RuleContext

        class LocalRule(Rule):  # unpicklable: defined in a function
            def apply(self, ctx: RuleContext) -> None:
                pass

        monkeypatch.setenv("REPRO_PARALLEL_CORES", "4")
        monkeypatch.setenv("REPRO_PROCESS_CROSSOVER", "0")
        engine = InferrayEngine(
            [LocalRule("LOCAL")],
            backend="python",
            workers=2,
            parallel_mode="auto",
        )
        engine.load_triples(INTRO)
        with pytest.warns(RuntimeWarning, match="falling back to threads"):
            stats = engine.materialize()  # degrades, does not raise
        assert stats.parallel_mode == "thread"
        assert stats.parallel_fallback and "picklable" in stats.parallel_fallback
        assert engine.parallel_mode == "thread"
        engine.close()

    def test_unpicklable_custom_rules_raise_when_forced(self):
        from repro.core.parallel import ProcessModeUnavailable
        from repro.rules.spec import Rule, RuleContext

        class LocalRule(Rule):
            def apply(self, ctx: RuleContext) -> None:
                pass

        engine = InferrayEngine(
            [LocalRule("LOCAL")],
            backend="python",
            workers=2,
            parallel_mode="process",
        )
        engine.load_triples(INTRO)
        with pytest.raises(ProcessModeUnavailable, match="picklable"):
            engine.materialize()

    def test_tracer_pins_sequential_even_with_process_mode(self):
        from repro.memsim.tracer import NullTracer

        engine = InferrayEngine(
            "rdfs-default",
            tracer=NullTracer(),
            workers=4,
            parallel_mode="process",
        )
        assert engine.workers == 1
        assert engine.parallel_mode == "sequential"


class TestIntraRuleSplitting:
    def test_forced_split_records_shards_and_matches_reference(self):
        reference = InferrayEngine("rdfs-default", workers=1)
        reference.load_triples(INTRO)
        reference.materialize()
        ref_tables = [
            (pid, bytes(flat.tobytes()))
            for pid, flat in reference.main.table_arrays()
        ]

        engine = InferrayEngine(
            "rdfs-default",
            workers=2,
            parallel_mode="thread",
            split_threshold=2,
        )
        engine.load_triples(INTRO)
        stats = engine.materialize()
        assert stats.rule_shards, "tiny threshold must split a join rule"
        assert all(n >= 2 for n in stats.rule_shards.values())
        tables = [
            (pid, bytes(flat.tobytes()))
            for pid, flat in engine.main.table_arrays()
        ]
        assert tables == ref_tables

    def test_sequential_run_never_splits(self):
        engine = InferrayEngine(
            "rdfs-default", workers=1, split_threshold=2
        )
        engine.load_triples(INTRO)
        stats = engine.materialize()
        assert stats.rule_shards == {}

    def test_zero_threshold_disables_splitting(self):
        engine = InferrayEngine(
            "rdfs-default",
            workers=2,
            parallel_mode="thread",
            split_threshold=0,
        )
        engine.load_triples(INTRO)
        stats = engine.materialize()
        assert stats.rule_shards == {}

    def test_split_threshold_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPLIT_THRESHOLD", "7")
        engine = InferrayEngine("rdfs-default", workers=2)
        assert engine.scheduler.split_threshold == 7

    def test_bad_split_threshold_env_warns(self, monkeypatch):
        from repro.core.parallel import (
            DEFAULT_SPLIT_THRESHOLD,
            resolve_split_threshold,
        )

        monkeypatch.setenv("REPRO_SPLIT_THRESHOLD", "lots")
        with pytest.warns(RuntimeWarning, match="REPRO_SPLIT_THRESHOLD"):
            assert (
                resolve_split_threshold(None) == DEFAULT_SPLIT_THRESHOLD
            )


class TestStoreIntegration:
    def test_store_config_threads_workers(self):
        store = Store(INTRO, config=StoreConfig(workers=2))
        assert Triple(ex("Bart"), RDF.type, ex("animal")) in store
        assert store.engine.workers == 2
        assert store.stats.workers == 2

    def test_store_kwarg_threads_workers(self):
        store = Store(INTRO, workers=3)
        assert store.engine.workers == 3
        assert len(store) > len(INTRO)

    def test_parallel_store_roundtrips_persistence(self, tmp_path):
        path = str(tmp_path / "closure.store")
        store = Store(INTRO, workers=2)
        store.save(path)
        reloaded = Store.load(path, workers=4)
        assert reloaded.engine.workers == 4
        assert set(reloaded.triples()) == set(store.triples())

    def test_store_threads_parallel_mode_and_split_threshold(self):
        store = Store(
            INTRO,
            config=StoreConfig(
                backend="python",
                workers=2,
                parallel_mode="process",
                split_threshold=5,
            ),
        )
        assert store.engine.parallel_mode == "process"
        assert store.engine.scheduler.split_threshold == 5
        assert Triple(ex("Bart"), RDF.type, ex("animal")) in store
        assert store.stats.parallel_mode == "process"

    def test_store_kwarg_threads_parallel_mode(self):
        store = Store(INTRO, workers=2, parallel_mode="thread")
        assert store.engine.parallel_mode == "thread"
        assert len(store) > len(INTRO)


class TestCostModelKnobResolution:
    """Sanitization of the cost model's environment knobs.

    Mirrors the $REPRO_WORKERS contract: explicit parameters are
    trusted, environment values warn and fall back instead of
    crashing the engine.
    """

    def test_cores_env_overrides_detection(self, monkeypatch):
        from repro.core.scheduler import resolve_parallel_cores

        monkeypatch.setenv("REPRO_PARALLEL_CORES", "8")
        assert resolve_parallel_cores() == 8

    def test_explicit_cores_beat_env(self, monkeypatch):
        from repro.core.scheduler import resolve_parallel_cores

        monkeypatch.setenv("REPRO_PARALLEL_CORES", "8")
        assert resolve_parallel_cores(3) == 3

    def test_bad_cores_env_warns_and_detects(self, monkeypatch):
        import os

        from repro.core.scheduler import resolve_parallel_cores

        monkeypatch.setenv("REPRO_PARALLEL_CORES", "many")
        with pytest.warns(RuntimeWarning, match="REPRO_PARALLEL_CORES"):
            assert resolve_parallel_cores() == (os.cpu_count() or 1)

    def test_nonpositive_cores_env_warns_and_detects(self, monkeypatch):
        import os

        from repro.core.scheduler import resolve_parallel_cores

        monkeypatch.setenv("REPRO_PARALLEL_CORES", "0")
        with pytest.warns(RuntimeWarning, match="REPRO_PARALLEL_CORES"):
            assert resolve_parallel_cores() == (os.cpu_count() or 1)

    def test_crossover_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREAD_CROSSOVER", "123")
        monkeypatch.setenv("REPRO_PROCESS_CROSSOVER", "456")
        scheduler = ParallelRuleScheduler(
            get_ruleset("rdfs-default"), workers=2
        )
        assert scheduler.thread_crossover == 123
        assert scheduler.process_crossover == 456

    def test_bad_crossover_env_warns_and_defaults(self, monkeypatch):
        from repro.core.scheduler import (
            PROCESS_CROSSOVER_ENV,
            resolve_crossover,
        )

        monkeypatch.setenv(PROCESS_CROSSOVER_ENV, "huge")
        with pytest.warns(RuntimeWarning, match="REPRO_PROCESS_CROSSOVER"):
            assert (
                resolve_crossover(
                    None, env=PROCESS_CROSSOVER_ENV, default=42
                )
                == 42
            )

    def test_negative_crossover_env_warns_and_defaults(self, monkeypatch):
        from repro.core.scheduler import (
            THREAD_CROSSOVER_ENV,
            resolve_crossover,
        )

        monkeypatch.setenv(THREAD_CROSSOVER_ENV, "-1")
        with pytest.warns(RuntimeWarning, match="REPRO_THREAD_CROSSOVER"):
            assert (
                resolve_crossover(
                    None, env=THREAD_CROSSOVER_ENV, default=42
                )
                == 42
            )

    def test_explicit_crossover_trusted_and_clamped(self, monkeypatch):
        from repro.core.scheduler import (
            THREAD_CROSSOVER_ENV,
            resolve_crossover,
        )

        monkeypatch.setenv(THREAD_CROSSOVER_ENV, "999")  # ignored
        assert (
            resolve_crossover(-7, env=THREAD_CROSSOVER_ENV, default=42)
            == 0
        )
