"""Unit tests for the parallel rule scheduler and worker resolution."""

import pytest

from repro.core.engine import (
    FixedPointError,
    InferrayEngine,
    MaterializationTimeout,
)
from repro.core.scheduler import ParallelRuleScheduler, resolve_workers
from repro.core.store_api import Store, StoreConfig
from repro.datasets.chains import subclass_chain
from repro.rdf.terms import IRI, Triple
from repro.rdf.vocabulary import RDF, RDFS
from repro.rules.rulesets import get_ruleset
from repro.rules.table5 import make_rules


def ex(name):
    return IRI(f"ex:{name}")


INTRO = [
    Triple(ex("human"), RDFS.subClassOf, ex("mammal")),
    Triple(ex("mammal"), RDFS.subClassOf, ex("animal")),
    Triple(ex("Bart"), RDF.type, ex("human")),
]


class TestResolveWorkers:
    def test_default_is_sequential(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(2) == 2

    def test_zero_means_all_cores(self):
        import os

        assert resolve_workers(0) == (os.cpu_count() or 1)
        assert resolve_workers(-1) == (os.cpu_count() or 1)

    def test_bad_env_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers(None)


class TestSchedulerStructure:
    def test_waves_cover_all_rules(self):
        scheduler = ParallelRuleScheduler(get_ruleset("rdfs-plus"))
        indexes = sorted(i for wave in scheduler.waves for i in wave)
        assert indexes == list(range(len(scheduler.rules)))

    def test_wave_names(self):
        scheduler = ParallelRuleScheduler(
            make_rules(["SCM-SCO", "CAX-SCO"])
        )
        assert scheduler.wave_names() == [["SCM-SCO"], ["CAX-SCO"]]

    def test_session_sequential_yields_no_executor(self):
        scheduler = ParallelRuleScheduler(get_ruleset("rho-df"), workers=1)
        with scheduler.session() as executor:
            assert executor is None

    def test_session_parallel_yields_executor(self):
        scheduler = ParallelRuleScheduler(get_ruleset("rho-df"), workers=3)
        with scheduler.session() as executor:
            assert executor is not None
            assert executor.submit(lambda: 41 + 1).result() == 42


class TestEngineIntegration:
    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_closure_and_stats(self, workers):
        engine = InferrayEngine("rdfs-default", workers=workers)
        engine.load_triples(INTRO)
        stats = engine.materialize()
        assert engine.contains(Triple(ex("Bart"), RDF.type, ex("animal")))
        assert stats.workers == workers
        assert stats.n_waves == 1  # rdfs-default is one recursive wave
        assert stats.per_rule_seconds  # per-rule timings populated
        assert stats.rule_busy_seconds > 0
        assert stats.parallel_speedup > 0
        assert len(stats.per_wave_seconds) == stats.n_waves

    def test_byte_identical_tables_across_worker_counts(self):
        reference = None
        for workers in (1, 2, 4):
            engine = InferrayEngine("rdfs-plus", workers=workers)
            engine.load_triples(subclass_chain(20))
            engine.materialize()
            tables = [
                (pid, bytes(flat.tobytes()))
                for pid, flat in engine.main.table_arrays()
            ]
            if reference is None:
                reference = tables
            else:
                assert tables == reference

    def test_idempotent_noop_keeps_worker_fields(self):
        engine = InferrayEngine("rdfs-default", workers=2)
        engine.load_triples(INTRO)
        engine.materialize()
        again = engine.materialize()
        assert again.iterations == 0
        assert again.workers == 2
        assert again.n_waves == 1

    def test_repeated_materializations_reuse_scheduler(self):
        engine = InferrayEngine("rdfs-default", workers=2)
        engine.load_triples(INTRO[:1])
        engine.materialize()
        engine.load_triples(INTRO[1:])
        engine.materialize()
        engine.materialize_incremental(
            [Triple(ex("Maggie"), RDF.type, ex("human"))]
        )
        assert engine.contains(
            Triple(ex("Maggie"), RDF.type, ex("animal"))
        )

    def test_tracer_forces_sequential(self):
        from repro.memsim.tracer import NullTracer

        engine = InferrayEngine(
            "rdfs-default", tracer=NullTracer(), workers=4
        )
        assert engine.workers == 1

    def test_engine_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        engine = InferrayEngine("rdfs-default")
        assert engine.workers == 2


class TestErrorMessagesCarryWorkerCount:
    @pytest.mark.parametrize("workers", (1, 3))
    def test_fixed_point_error(self, workers):
        engine = InferrayEngine(
            "rdfs-default", max_iterations=0, workers=workers
        )
        engine.load_triples(INTRO)
        with pytest.raises(FixedPointError, match=f"workers={workers}"):
            engine.materialize()

    @pytest.mark.parametrize("workers", (1, 3))
    def test_timeout_error(self, workers):
        engine = InferrayEngine("rdfs-default", workers=workers)
        engine.load_triples(subclass_chain(50))
        with pytest.raises(
            MaterializationTimeout, match=f"workers={workers}"
        ):
            engine.materialize(timeout_seconds=-1.0)

    def test_incremental_timeout_error(self):
        engine = InferrayEngine("rdfs-default", workers=2)
        engine.load_triples(INTRO)
        engine.materialize()
        with pytest.raises(MaterializationTimeout, match="workers=2"):
            engine.materialize_incremental(
                subclass_chain(50), timeout_seconds=-1.0
            )


class TestStoreIntegration:
    def test_store_config_threads_workers(self):
        store = Store(INTRO, config=StoreConfig(workers=2))
        assert Triple(ex("Bart"), RDF.type, ex("animal")) in store
        assert store.engine.workers == 2
        assert store.stats.workers == 2

    def test_store_kwarg_threads_workers(self):
        store = Store(INTRO, workers=3)
        assert store.engine.workers == 3
        assert len(store) > len(INTRO)

    def test_parallel_store_roundtrips_persistence(self, tmp_path):
        path = str(tmp_path / "closure.store")
        store = Store(INTRO, workers=2)
        store.save(path)
        reloaded = Store.load(path, workers=4)
        assert reloaded.engine.workers == 4
        assert set(reloaded.triples()) == set(store.triples())
