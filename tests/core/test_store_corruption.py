"""Regression tests: every corruption class raises its structured error.

One test per damage class — bad magic, truncation (header, table,
asserted, section, whole-payload), checksum mismatch per blob kind,
unsupported version, malformed/hostile headers — each asserting the
specific :class:`StoreCorruptionError` subclass, the named section,
and the byte offset.  Raw ``struct.error`` / ``json.JSONDecodeError``
/ ``KeyError`` escaping the loader is itself a bug these tests pin.
"""

import json
import struct
import zlib

import pytest

from repro.core.store_api import (
    STORE_MAGIC,
    Store,
    StoreChecksumError,
    StoreCorruptionError,
    StoreFormatError,
    StoreMagicError,
    StoreTruncationError,
    StoreVersionError,
)
from repro.rdf.terms import IRI, Triple
from repro.rdf.vocabulary import RDF, RDFS


def ex(name):
    return IRI(f"ex:{name}")


DATA = [
    Triple(ex("human"), RDFS.subClassOf, ex("mammal")),
    Triple(ex("mammal"), RDFS.subClassOf, ex("animal")),
    Triple(ex("Bart"), RDF.type, ex("human")),
]


@pytest.fixture
def saved(tmp_path):
    path = str(tmp_path / "store.bin")
    store = Store(DATA)
    store.materialize()
    store.save(path)
    return path


def read_file(path):
    with open(path, "rb") as handle:
        return handle.read()


def write_file(path, blob):
    with open(path, "wb") as handle:
        handle.write(blob)


def split_file(path):
    """(header dict, header byte span, body bytes) of a store file."""
    blob = read_file(path)
    offset = len(STORE_MAGIC)
    (header_len,) = struct.unpack("<I", blob[offset : offset + 4])
    body_start = offset + 4 + header_len
    header = json.loads(blob[offset + 4 : body_start].decode("utf-8"))
    return header, (offset + 4, body_start), blob


def reassemble(path, header, body):
    payload = json.dumps(header, separators=(",", ":")).encode("utf-8")
    write_file(
        path,
        STORE_MAGIC + struct.pack("<I", len(payload)) + payload + body,
    )


class TestMagic:
    def test_wrong_magic(self, saved):
        blob = read_file(saved)
        write_file(saved, b"NOT-A-STORE!" + blob[len(STORE_MAGIC) :])
        with pytest.raises(StoreMagicError) as excinfo:
            Store.load(saved)
        assert excinfo.value.section == "magic"
        assert excinfo.value.offset == 0

    def test_empty_file(self, saved):
        write_file(saved, b"")
        with pytest.raises(StoreMagicError):
            Store.load(saved)


class TestTruncation:
    def test_cut_inside_header_length(self, saved):
        write_file(saved, read_file(saved)[: len(STORE_MAGIC) + 2])
        with pytest.raises(StoreTruncationError) as excinfo:
            Store.load(saved)
        assert excinfo.value.section == "header length"
        assert excinfo.value.offset == len(STORE_MAGIC)

    def test_cut_inside_header(self, saved):
        write_file(saved, read_file(saved)[: len(STORE_MAGIC) + 4 + 10])
        with pytest.raises(StoreTruncationError) as excinfo:
            Store.load(saved)
        assert excinfo.value.section == "header"

    def test_cut_inside_body_is_located(self, saved):
        header, (_, body_start), blob = split_file(saved)
        write_file(saved, blob[: body_start + 4])
        with pytest.raises(StoreTruncationError) as excinfo:
            Store.load(saved)
        # The v4 whole-payload check fires first and names the spot.
        assert excinfo.value.section == "payload"
        assert excinfo.value.offset == body_start

    def test_cut_body_without_payload_decl_names_section(self, saved):
        # Strip the v4 total-length field: the per-section reads must
        # still locate the damage precisely (the pre-v4 path).
        header, (_, body_start), blob = split_file(saved)
        del header["payload_bytes"]
        reassemble(saved, header, blob[body_start : body_start + 4])
        with pytest.raises(StoreTruncationError) as excinfo:
            Store.load(saved)
        assert excinfo.value.section.startswith("table pid=")
        assert excinfo.value.offset is not None

    def test_missing_asserted_tail(self, saved):
        header, (_, body_start), blob = split_file(saved)
        del header["payload_bytes"]
        table_bytes = sum(
            int(e.get("n_bytes", int(e.get("n_values", 0)) * 8))
            for e in header["tables"]
        )
        reassemble(
            saved, header, blob[body_start : body_start + table_bytes]
        )
        with pytest.raises(StoreTruncationError) as excinfo:
            Store.load(saved)
        assert excinfo.value.section == "asserted"


class TestChecksums:
    def corrupt_body_byte(self, saved, index):
        _, (_, body_start), blob = split_file(saved)
        corrupted = bytearray(blob)
        corrupted[body_start + index] ^= 0xFF
        write_file(saved, bytes(corrupted))

    def test_flipped_table_byte(self, saved):
        self.corrupt_body_byte(saved, 0)
        with pytest.raises(StoreChecksumError) as excinfo:
            Store.load(saved)
        assert excinfo.value.section.startswith("table pid=")
        assert "crc32" in str(excinfo.value)

    def test_flipped_asserted_byte(self, saved):
        header, (_, body_start), blob = split_file(saved)
        table_bytes = sum(
            int(e.get("n_bytes", int(e.get("n_values", 0)) * 8))
            for e in header["tables"]
        )
        self.corrupt_body_byte(saved, table_bytes)
        with pytest.raises(StoreChecksumError) as excinfo:
            Store.load(saved)
        assert excinfo.value.section == "asserted"

    def test_flipped_section_byte(self, tmp_path):
        # A hybrid store carries a litemat section; flip its tail.
        path = str(tmp_path / "hybrid.bin")
        store = Store(DATA, materialize="hybrid")
        store.materialize()
        store.save(path)
        blob = bytearray(read_file(path))
        blob[-1] ^= 0xFF
        write_file(path, bytes(blob))
        with pytest.raises(StoreChecksumError) as excinfo:
            Store.load(path)
        assert excinfo.value.section == "section 'litemat'"

    def test_lying_checksum_in_header(self, saved):
        header, (_, body_start), blob = split_file(saved)
        header["tables"][0]["crc32"] = (
            header["tables"][0]["crc32"] ^ 0xDEADBEEF
        ) & 0xFFFFFFFF
        reassemble(saved, header, blob[body_start:])
        with pytest.raises(StoreChecksumError):
            Store.load(saved)


class TestVersionAndHeader:
    def test_future_version(self, saved):
        header, (_, body_start), blob = split_file(saved)
        header["version"] = 99
        reassemble(saved, header, blob[body_start:])
        with pytest.raises(StoreVersionError) as excinfo:
            Store.load(saved)
        assert "99" in str(excinfo.value)

    def test_header_not_json(self, saved):
        _, (header_start, body_start), blob = split_file(saved)
        garbage = b"\xff" * (body_start - header_start)
        write_file(
            saved, blob[:header_start] + garbage + blob[body_start:]
        )
        with pytest.raises(StoreCorruptionError) as excinfo:
            Store.load(saved)
        assert excinfo.value.section == "header"

    def test_header_not_an_object(self, saved):
        _, (_, body_start), blob = split_file(saved)
        reassemble_raw = json.dumps([1, 2, 3]).encode("utf-8")
        write_file(
            saved,
            STORE_MAGIC
            + struct.pack("<I", len(reassemble_raw))
            + reassemble_raw
            + blob[body_start:],
        )
        with pytest.raises(StoreCorruptionError, match="JSON object"):
            Store.load(saved)

    def test_missing_required_key(self, saved):
        header, (_, body_start), blob = split_file(saved)
        del header["tables"]
        reassemble(saved, header, blob[body_start:])
        with pytest.raises(StoreCorruptionError, match="'tables'"):
            Store.load(saved)

    def test_negative_n_asserted(self, saved):
        header, (_, body_start), blob = split_file(saved)
        header["n_asserted"] = -1
        del header["payload_bytes"]
        del header["asserted_crc32"]
        reassemble(saved, header, blob[body_start:])
        with pytest.raises(StoreCorruptionError) as excinfo:
            Store.load(saved)
        assert excinfo.value.section == "asserted"

    def test_hostile_header_field_types(self, saved):
        # A header field of the wrong type must surface as corruption,
        # not a raw TypeError from deep inside the loader.
        header, (_, body_start), blob = split_file(saved)
        header["tables"] = "not-a-list"
        reassemble(saved, header, blob[body_start:])
        with pytest.raises(StoreCorruptionError):
            Store.load(saved)

    def test_corrupt_term_records(self, saved):
        header, (_, body_start), blob = split_file(saved)
        header["resource_terms"][0] = ["bogus-term-kind"]
        reassemble(saved, header, blob[body_start:])
        with pytest.raises(StoreCorruptionError) as excinfo:
            Store.load(saved)
        assert excinfo.value.section == "header"

    def test_unknown_table_encoding_still_format_error(self, saved):
        header, (_, body_start), blob = split_file(saved)
        header["tables"][0]["encoding"] = "zstd-9000"
        reassemble(saved, header, blob[body_start:])
        with pytest.raises(StoreFormatError, match="encoding"):
            Store.load(saved)


class TestErrorHierarchy:
    def test_all_corruption_errors_are_format_and_value_errors(self):
        for cls in (
            StoreMagicError,
            StoreTruncationError,
            StoreChecksumError,
            StoreVersionError,
        ):
            assert issubclass(cls, StoreCorruptionError)
            assert issubclass(cls, StoreFormatError)
            assert issubclass(cls, ValueError)

    def test_attributes_carried(self):
        error = StoreChecksumError("boom", section="asserted", offset=17)
        assert error.section == "asserted"
        assert error.offset == 17
