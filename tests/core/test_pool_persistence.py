"""Store-lifetime worker pools: reuse across incremental flushes.

The persistent-pool contract: the first parallel flush lazily starts
the executor pool; every later flush of the same engine — incremental
flushes of a long-lived :class:`Store` included — reuses both the pool
object and the exported shared-memory segments (identity-keyed, so
only changed tables re-export).  ``Store.close()`` (or the context
manager) tears everything down deterministically, releasing every
``/dev/shm`` segment.  Closures stay byte-identical to sequential
execution throughout.
"""

import os

import pytest

from repro.core.parallel import process_mode_supported
from repro.core.store_api import Store
from repro.datasets.bsbm import bsbm_like

needs_process_mode = pytest.mark.skipif(
    not process_mode_supported(),
    reason="shared-memory process mode unsupported on this platform",
)


def _live_segments():
    if not os.path.isdir("/dev/shm"):
        pytest.skip("no /dev/shm to observe segment lifetimes")
    return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}


def _base_and_batches(scale=200, batches=3, batch_size=15):
    """One BSBM workload split into a base load plus write batches."""
    data = list(bsbm_like(scale))
    delta = batches * batch_size
    base, tail = data[:-delta], data[-delta:]
    return base, [
        tail[i * batch_size:(i + 1) * batch_size] for i in range(batches)
    ]


@needs_process_mode
@pytest.mark.parametrize("start_method", ("fork", "spawn"))
def test_process_pool_and_segments_persist_across_flushes(
    monkeypatch, start_method
):
    monkeypatch.setenv("REPRO_MP_START_METHOD", start_method)
    base, batch_list = _base_and_batches()
    with Store(
        base, workers=2, parallel_mode="process", backend="python"
    ) as store:
        store.materialize()
        scheduler = store.engine.scheduler
        session = scheduler.process_session
        assert session is not None  # pool started by the first flush
        for batch in batch_list:
            store.add(batch)
            store.materialize()
            # Same pool object on every incremental flush — no
            # spawn-per-flush.
            assert scheduler.process_session is session
        stats = session.export_stats()
        # Identity-keyed export: tables untouched by a delta keep
        # their segments across flushes.
        assert stats["segments_reused"] > 0
        assert stats["segments_created"] > 0


def test_thread_pool_persists_across_flushes():
    base, batch_list = _base_and_batches()
    with Store(base, workers=2, parallel_mode="thread") as store:
        store.materialize()
        scheduler = store.engine.scheduler
        pool = scheduler.thread_pool
        assert pool is not None
        for batch in batch_list:
            store.add(batch)
            store.materialize()
            assert scheduler.thread_pool is pool
    # Context-manager exit closed the store: the pool is gone.
    assert scheduler.thread_pool is None


@needs_process_mode
def test_persistent_pool_closure_matches_sequential(monkeypatch):
    monkeypatch.setenv("REPRO_MP_START_METHOD", "fork")
    base, batch_list = _base_and_batches()

    def closure_bytes(**kwargs):
        with Store(base, backend="python", **kwargs) as store:
            store.materialize()
            for batch in batch_list:
                store.add(batch)
                store.materialize()
            return [
                (pid, bytes(flat.tobytes()))
                for pid, flat in store.engine.main.table_arrays()
            ]

    sequential = closure_bytes(workers=1)
    persistent = closure_bytes(workers=2, parallel_mode="process")
    assert persistent == sequential


@needs_process_mode
def test_store_close_releases_every_segment(monkeypatch):
    monkeypatch.setenv("REPRO_MP_START_METHOD", "fork")
    before = _live_segments()
    base, batch_list = _base_and_batches()
    store = Store(
        base, workers=2, parallel_mode="process", backend="python"
    )
    store.materialize()
    for batch in batch_list:
        store.add(batch)
        store.materialize()
    # The persistent exporter keeps segments alive between flushes...
    assert _live_segments() - before
    store.close()
    # ...and close() releases every one of them (no resource-tracker
    # leak until reboot).  Idempotent.
    assert _live_segments() - before == set()
    store.close()
    assert _live_segments() - before == set()


@needs_process_mode
def test_closed_store_can_flush_again(monkeypatch):
    monkeypatch.setenv("REPRO_MP_START_METHOD", "fork")
    base, batch_list = _base_and_batches()
    store = Store(
        base, workers=2, parallel_mode="process", backend="python"
    )
    store.materialize()
    store.close()
    scheduler = store.engine.scheduler
    assert scheduler.process_session is None
    # close() drops the pools, not the store: the next flush lazily
    # starts a fresh pool.
    store.add(batch_list[0])
    store.materialize()
    assert scheduler.process_session is not None
    store.close()


@needs_process_mode
def test_flush_stats_record_the_decision(monkeypatch):
    monkeypatch.setenv("REPRO_MP_START_METHOD", "fork")
    base, batch_list = _base_and_batches()
    with Store(
        base, workers=2, parallel_mode="process", backend="python"
    ) as store:
        stats = store.materialize()
        assert stats.parallel_mode == "process"
        assert stats.parallel_decision["forced"] is True
        assert stats.parallel_decision["requested"] == "process"
        store.add(batch_list[0])
        incremental = store.materialize()
        # The incremental flush records its own decision too — made
        # against the real (main, delta) shapes.
        assert incremental.parallel_mode == "process"
        assert incremental.parallel_decision["workers"] == 2
