"""Store mutation-queue correctness: flush-failure safety, remove()
semantics, and the closure epoch counter.

Regression coverage for the bugs the serving layer would hammer:
``_refresh()`` used to clear the pending queues *before* running
inference, so a ``MaterializationTimeout`` (or any flush error)
silently lost the writes; ``remove()`` rebuilt the pending-adds list
once per input triple and counted no-op retractions.
"""

import pytest

from repro import MaterializationTimeout, Store
from repro.rdf import RDF, RDFS, Triple, iri

EX = "http://example.org/"


def ex(name):
    return iri(EX + name)


def base_triples():
    return [
        Triple(ex("human"), RDFS.subClassOf, ex("mammal")),
        Triple(ex("Bart"), RDF.type, ex("human")),
    ]


def person(name):
    return Triple(ex(name), RDF.type, ex("human"))


# ----------------------------------------------------------------------
# Flush-failure safety
# ----------------------------------------------------------------------
def test_failed_incremental_flush_keeps_delta_and_stale():
    """An error raised before the engine absorbs the delta restores
    the pending queue; nothing is lost and the store stays stale."""
    store = Store(base_triples())
    store.materialize()
    lisa = person("Lisa")
    store.add(lisa)

    original = store._engine.materialize_incremental

    def boom(*args, **kwargs):
        raise MaterializationTimeout("injected")

    store._engine.materialize_incremental = boom
    with pytest.raises(MaterializationTimeout):
        store.materialize()
    assert store.stale
    assert store._pending_adds == [lisa]

    store._engine.materialize_incremental = original
    store.materialize()
    assert not store.stale
    assert Triple(ex("Lisa"), RDF.type, ex("mammal")) in store


def test_real_timeout_during_incremental_flush_recovers():
    """A genuine MaterializationTimeout mid-flush (delta already
    absorbed by the engine) leaves the store stale, and the next
    flush completes the closure with the delta intact."""
    from dataclasses import replace

    store = Store(base_triples())
    store.materialize()
    store.config = replace(store.config, timeout_seconds=0.0)
    store.add(person("Lisa"))
    with pytest.raises(MaterializationTimeout):
        store.materialize()
    assert store.stale
    store.config = replace(store.config, timeout_seconds=None)
    store.materialize()
    assert not store.stale
    assert Triple(ex("Lisa"), RDF.type, ex("mammal")) in store
    # The recovered closure is identical to a never-failed one.
    clean = Store(base_triples() + [person("Lisa")])
    assert set(store.triples()) == set(clean.triples())


def test_failed_retract_flush_restores_both_queues():
    store = Store(base_triples() + [person("Maggie")])
    store.materialize()
    lisa = person("Lisa")
    maggie = person("Maggie")
    store.add(lisa)
    store.remove(maggie)

    original = store._engine.retract_and_rematerialize

    def boom(*args, **kwargs):
        raise MaterializationTimeout("injected")

    store._engine.retract_and_rematerialize = boom
    with pytest.raises(MaterializationTimeout):
        store.materialize()
    assert store.stale
    assert store._pending_adds == [lisa]
    assert store._pending_removes == [maggie]

    store._engine.retract_and_rematerialize = original
    store.materialize()
    assert Triple(ex("Lisa"), RDF.type, ex("mammal")) in store
    assert maggie not in store
    clean = Store(base_triples() + [lisa])
    assert set(store.triples()) == set(clean.triples())


def test_failed_first_materialization_keeps_initial_load():
    """Even the very first flush (load + materialize) must not lose
    the loaded triples when inference times out."""
    from dataclasses import replace

    store = Store(base_triples(), timeout_seconds=0.0)
    with pytest.raises(MaterializationTimeout):
        store.materialize()
    assert store.stale
    store.config = replace(store.config, timeout_seconds=None)
    store.materialize()
    assert Triple(ex("Bart"), RDF.type, ex("mammal")) in store


def test_reads_after_failed_flush_retry_and_serve_the_delta():
    """A read (not just materialize()) drives the retry path too."""
    store = Store(base_triples())
    store.materialize()
    store.add(person("Lisa"))

    original = store._engine.materialize_incremental
    calls = {"n": 0}

    def flaky(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] == 1:
            raise MaterializationTimeout("injected")
        return original(*args, **kwargs)

    store._engine.materialize_incremental = flaky
    with pytest.raises(MaterializationTimeout):
        len(store)
    assert store.stale
    clean = Store(base_triples() + [person("Lisa")])
    assert len(store) == len(clean)  # retried and flushed on this read
    assert not store.stale
    assert Triple(ex("Lisa"), RDF.type, ex("mammal")) in store


# ----------------------------------------------------------------------
# remove() semantics
# ----------------------------------------------------------------------
def test_remove_unknown_triple_counts_zero():
    store = Store(base_triples())
    store.materialize()
    assert store.remove(person("Nobody")) == 0
    assert store._pending_removes == []
    assert not store.stale


def test_remove_inferred_triple_counts_zero():
    store = Store(base_triples())
    store.materialize()
    inferred = Triple(ex("Bart"), RDF.type, ex("mammal"))
    assert inferred in store
    assert store.remove(inferred) == 0
    assert inferred in store  # retracting inferences is a no-op


def test_remove_dequeues_every_pending_copy_in_one_pass():
    store = Store()
    lisa = person("Lisa")
    store.add([lisa, lisa, person("Maggie"), lisa])
    assert store.remove(lisa) == 1
    assert store._pending_adds == [person("Maggie")]


def test_remove_counts_asserted_and_pending_but_not_unknown():
    store = Store(base_triples())
    store.materialize()
    lisa = person("Lisa")
    store.add(lisa)
    count = store.remove([person("Bart"), lisa, person("Nobody")])
    assert count == 2  # Bart retraction + Lisa dequeue; Nobody no-op
    assert store._pending_adds == []
    assert store._pending_removes == [person("Bart")]


def test_remove_duplicate_inputs_count_once():
    store = Store(base_triples())
    store.materialize()
    bart = person("Bart")
    assert store.remove([bart, bart, bart]) == 1
    assert store._pending_removes == [bart]
    store.materialize()
    assert bart not in store


def test_remove_empty_iterable():
    store = Store(base_triples())
    assert store.remove([]) == 0


def test_remove_then_flush_matches_fresh_store():
    store = Store(base_triples() + [person("Maggie")])
    store.materialize()
    store.remove(person("Maggie"))
    store.materialize()
    clean = Store(base_triples())
    assert set(store.triples()) == set(clean.triples())


# ----------------------------------------------------------------------
# Epochs
# ----------------------------------------------------------------------
def test_epoch_bumps_only_on_successful_flushes():
    store = Store(base_triples())
    assert store.epoch == 0
    store.materialize()
    assert store.epoch == 1
    store.materialize()  # nothing pending: no new epoch
    assert store.epoch == 1
    store.add(person("Lisa"))
    assert store.epoch == 1  # lazy: not flushed yet
    snapshot = store.snapshot()  # flushes
    assert store.epoch == 2
    assert snapshot.epoch == 2

    store.add(person("Maggie"))
    original = store._engine.materialize_incremental

    def boom(*args, **kwargs):
        raise MaterializationTimeout("injected")

    store._engine.materialize_incremental = boom
    with pytest.raises(MaterializationTimeout):
        store.materialize()
    assert store.epoch == 2  # failed flush publishes nothing
    store._engine.materialize_incremental = original
    store.materialize()
    assert store.epoch == 3


def test_snapshots_carry_their_epoch_across_later_writes():
    store = Store(base_triples())
    first = store.snapshot()
    store.add(person("Lisa"))
    second = store.snapshot()
    assert (first.epoch, second.epoch) == (1, 2)
    assert first.n_triples < second.n_triples
