"""Tests for retraction (full re-materialization) and memory accounting."""

from repro.core.engine import InferrayEngine
from repro.datasets.chains import subclass_chain
from repro.rdf.terms import IRI, Triple
from repro.rdf.vocabulary import RDF, RDFS


def ex(name):
    return IRI(f"ex:{name}")


BASE = [
    Triple(ex("human"), RDFS.subClassOf, ex("mammal")),
    Triple(ex("mammal"), RDFS.subClassOf, ex("animal")),
    Triple(ex("Bart"), RDF.type, ex("human")),
]


class TestRetraction:
    def test_retract_removes_consequences(self):
        engine = InferrayEngine("rdfs-default")
        engine.load_triples(BASE)
        engine.materialize()
        assert engine.contains(Triple(ex("Bart"), RDF.type, ex("animal")))
        engine.retract_and_rematerialize(
            [Triple(ex("mammal"), RDFS.subClassOf, ex("animal"))]
        )
        assert not engine.contains(
            Triple(ex("Bart"), RDF.type, ex("animal"))
        )
        assert engine.contains(Triple(ex("Bart"), RDF.type, ex("mammal")))

    def test_retract_inferred_triple_is_noop(self):
        engine = InferrayEngine("rdfs-default")
        engine.load_triples(BASE)
        engine.materialize()
        before = set(engine.triples())
        # (Bart type mammal) is inferred, not asserted: retraction only
        # removes asserted triples, so the closure is unchanged.
        engine.retract_and_rematerialize(
            [Triple(ex("Bart"), RDF.type, ex("mammal"))]
        )
        assert set(engine.triples()) == before

    def test_retract_unknown_triple_is_noop(self):
        engine = InferrayEngine("rdfs-default")
        engine.load_triples(BASE)
        engine.materialize()
        before = set(engine.triples())
        engine.retract_and_rematerialize(
            [Triple(ex("nobody"), RDF.type, ex("nothing"))]
        )
        assert set(engine.triples()) == before

    def test_retract_everything(self):
        engine = InferrayEngine("rdfs-default")
        engine.load_triples(BASE)
        engine.materialize()
        engine.retract_and_rematerialize(BASE)
        assert engine.n_triples == 0
        assert engine.n_asserted == 0

    def test_equivalent_to_fresh_engine(self):
        engine = InferrayEngine("rdfs-default")
        engine.load_triples(BASE)
        engine.materialize()
        engine.retract_and_rematerialize([BASE[0]])

        fresh = InferrayEngine("rdfs-default")
        fresh.load_triples(BASE[1:])
        fresh.materialize()
        assert set(engine.triples()) == set(fresh.triples())


class TestMemoryAccounting:
    def test_memory_grows_with_closure(self):
        engine = InferrayEngine("rho-df")
        engine.load_triples(subclass_chain(50))
        before = engine.memory_bytes()
        engine.materialize()
        after = engine.memory_bytes()
        assert after > before
        # 16 bytes per pair, at least the closure size.
        assert after >= 16 * engine.n_triples

    def test_n_asserted_tracks_loads(self):
        engine = InferrayEngine("rdfs-default")
        engine.load_triples(BASE)
        assert engine.n_asserted == 3
        engine.materialize()
        engine.materialize_incremental(
            [Triple(ex("Lisa"), RDF.type, ex("human"))]
        )
        assert engine.n_asserted == 4
