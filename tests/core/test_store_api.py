"""Tests for the unified Store facade (store_api.py).

Covers the four tentpole capabilities — lazy materialization,
snapshot-isolated reads, the unified query entry point, and
persistence — plus the acceptance round-trip, on every available
kernel backend.
"""

import warnings

import pytest

from repro.core.store_api import (
    Snapshot,
    Store,
    StoreConfig,
    StoreFormatError,
    is_store_file,
)
from repro.kernels import numpy_available
from repro.query.bgp import Query, TriplePattern, Var
from repro.rdf.terms import IRI, Literal, Triple
from repro.rdf.vocabulary import RDF, RDFS

BACKENDS = ["python", "compressed"] + (
    ["numpy"] if numpy_available() else []
)


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


def ex(name):
    return IRI(f"ex:{name}")


DATA = [
    Triple(ex("human"), RDFS.subClassOf, ex("mammal")),
    Triple(ex("mammal"), RDFS.subClassOf, ex("animal")),
    Triple(ex("Bart"), RDF.type, ex("human")),
    Triple(ex("Lisa"), RDF.type, ex("human")),
]


def batch_closure(triples, ruleset="rdfs-default"):
    from repro.core.engine import InferrayEngine

    engine = InferrayEngine(ruleset)
    engine.load_triples(triples)
    engine.materialize()
    return set(engine.triples())


class TestLazyMaterialization:
    def test_constructor_does_not_materialize(self, backend):
        store = Store(DATA, backend=backend)
        assert store.stale
        assert not store.engine.is_materialized

    def test_read_triggers_materialization(self, backend):
        store = Store(DATA, backend=backend)
        assert Triple(ex("Bart"), RDF.type, ex("animal")) in store
        assert not store.stale

    def test_add_marks_stale_and_next_read_is_incremental(self, backend):
        store = Store(DATA, backend=backend)
        store.materialize()
        store.add(Triple(ex("Maggie"), RDF.type, ex("human")))
        assert store.stale
        assert Triple(ex("Maggie"), RDF.type, ex("animal")) in store
        assert set(store.triples()) == batch_closure(
            DATA + [Triple(ex("Maggie"), RDF.type, ex("human"))]
        )

    def test_add_single_or_iterable(self):
        store = Store()
        assert store.add(Triple(ex("a"), RDF.type, ex("b"))) == 1
        assert store.add([Triple(ex("c"), RDF.type, ex("d"))] * 2) == 2
        assert store.n_asserted == 3

    def test_every_read_form_flushes(self, backend):
        reads = [
            lambda s: len(s),
            lambda s: list(s.triples()),
            lambda s: list(s.query(None, RDF.type, None)),
            lambda s: s.query("?x a ex:animal"),
            lambda s: list(s.inferred()),
            lambda s: s.snapshot(),
        ]
        for read in reads:
            store = Store(DATA, backend=backend)
            read(store)
            assert not store.stale

    def test_remove_triggers_rebuild(self, backend):
        store = Store(DATA, backend=backend)
        store.materialize()
        store.remove(Triple(ex("Lisa"), RDF.type, ex("human")))
        assert Triple(ex("Lisa"), RDF.type, ex("animal")) not in store
        assert set(store.triples()) == batch_closure(DATA[:3])

    def test_remove_pending_add_never_materializes_it(self):
        store = Store(DATA)
        extra = Triple(ex("Maggie"), RDF.type, ex("human"))
        store.add(extra)
        store.remove(extra)
        assert Triple(ex("Maggie"), RDF.type, ex("animal")) not in store
        assert set(store.triples()) == batch_closure(DATA)

    def test_remove_beats_redundant_pending_add(self):
        # T is asserted AND re-queued via add(): remove() must drop the
        # queued copy and still retract the asserted one.
        target = Triple(ex("Bart"), RDF.type, ex("human"))
        store = Store(DATA)
        store.materialize()
        store.add(target)  # idempotent re-assert
        store.remove(target)
        assert target not in store
        assert Triple(ex("Bart"), RDF.type, ex("animal")) not in store
        assert set(store.triples()) == batch_closure(
            [t for t in DATA if t != target]
        )

    def test_remove_drops_every_queued_duplicate(self):
        target = Triple(ex("Maggie"), RDF.type, ex("human"))
        store = Store(DATA)
        store.add(target)
        store.add(target)
        store.remove(target)
        assert target not in store
        assert set(store.triples()) == batch_closure(DATA)

    def test_incremental_timeout_leaves_store_stale_and_recovers(self):
        from repro.core.engine import MaterializationTimeout
        from repro.datasets.chains import subclass_chain

        base = subclass_chain(30)
        extra = [
            Triple(
                IRI("http://example.org/chain/n29"),
                RDFS.subClassOf,
                IRI("http://example.org/beyond"),
            )
        ]
        store = Store(base)
        store.materialize()
        with pytest.raises(MaterializationTimeout):
            store.engine.materialize_incremental(
                extra, timeout_seconds=1e-9
            )
        # The aborted delta must not masquerade as a complete closure.
        assert not store.engine.is_materialized
        assert store.stale
        # The next read recovers to the exact batch closure.
        assert set(store.triples()) == batch_closure(base + extra)

    def test_remove_unknown_is_noop(self):
        store = Store(DATA)
        store.remove(Triple(ex("nobody"), RDF.type, ex("nothing")))
        assert set(store.triples()) == batch_closure(DATA)

    def test_interleaved_add_remove_equals_batch(self, backend):
        extra = Triple(ex("Maggie"), RDF.type, ex("human"))
        store = Store(DATA, backend=backend)
        store.materialize()
        store.add(extra)
        store.remove(Triple(ex("Lisa"), RDF.type, ex("human")))
        assert set(store.triples()) == batch_closure(DATA[:3] + [extra])

    def test_materialize_reports_flush_stats(self):
        store = Store(DATA)
        stats = store.materialize()
        if store.materialize_mode == "hybrid":
            # Absorbed entailments are virtual: the stored delta may be
            # empty, but the served closure still grows past the input.
            assert store.n_triples > stats.n_input
        else:
            assert stats.n_inferred > 0
        assert store.stats is stats
        # Idempotent re-entry: no pending work -> zero-work stats.
        again = store.materialize()
        assert again.n_inferred == 0
        assert again.iterations == 0


class TestUnifiedQuery:
    @pytest.fixture()
    def store(self):
        return Store(
            DATA + [Triple(ex("Bart"), ex("sister"), ex("Lisa"))]
        )

    def test_pattern_form(self, store):
        types = {t.object for t in store.query(ex("Bart"), RDF.type, None)}
        assert types == {ex("human"), ex("mammal"), ex("animal")}

    def test_pattern_keywords(self, store):
        subjects = {
            t.subject for t in store.query(predicate=RDF.type, obj=ex("animal"))
        }
        assert subjects == {ex("Bart"), ex("Lisa")}

    def test_unknown_term_matches_nothing(self, store):
        assert list(store.query(ex("nobody"), None, None)) == []

    def test_bgp_string(self, store):
        solutions = store.query("?who a ex:animal")
        assert {s["who"] for s in solutions} == {ex("Bart"), ex("Lisa")}

    def test_bgp_string_join(self, store):
        solutions = store.query("?b ex:sister ?s . ?s a ex:mammal")
        assert solutions == [{"b": ex("Bart"), "s": ex("Lisa")}]

    def test_triple_pattern_objects(self, store):
        pattern = TriplePattern(Var("x"), RDFS.subClassOf, Var("y"))
        assert len(store.query(pattern)) == len(store.query([pattern]))

    def test_query_object_passthrough(self, store):
        query = Query.parse(("?x", RDF.type, "ex:animal"))
        assert len(store.query(query)) == 2

    def test_select_and_ask(self, store):
        rows = store.select("?who a ex:animal", "who")
        assert sorted(str(r[0]) for r in rows) == ["ex:Bart", "ex:Lisa"]
        assert store.ask("ex:Bart a ex:animal")
        assert not store.ask("ex:Lisa a ex:unicorn")

    def test_empty_pattern_list_rejected(self, store):
        with pytest.raises(ValueError):
            store.query([])


class TestInferredAsserted:
    def test_split_matches_definition(self):
        store = Store(DATA)
        asserted = set(store.asserted())
        inferred = set(store.inferred())
        assert asserted == set(DATA)
        assert asserted.isdisjoint(inferred)
        assert asserted | inferred == set(store.triples())

    def test_duplicate_assertions_collapse(self):
        store = Store(DATA + DATA)
        assert len(store.asserted()) == len(DATA)

    def test_asserted_triple_rederived_is_not_inferred(self):
        # subClassOf(human, animal) is derivable AND asserted: the
        # asserted side wins in the split.
        data = DATA + [Triple(ex("human"), RDFS.subClassOf, ex("animal"))]
        store = Store(data)
        assert Triple(ex("human"), RDFS.subClassOf, ex("animal")) not in set(
            store.inferred()
        )


class TestSnapshots:
    def test_snapshot_is_point_in_time(self, backend):
        store = Store(DATA, backend=backend)
        snapshot = store.snapshot()
        before = set(snapshot.triples())
        store.add(Triple(ex("Maggie"), RDF.type, ex("human")))
        assert Triple(ex("Maggie"), RDF.type, ex("animal")) in store
        assert set(snapshot.triples()) == before
        assert Triple(ex("Maggie"), RDF.type, ex("animal")) not in snapshot

    def test_snapshot_survives_deletion_rebuild(self, backend):
        store = Store(DATA, backend=backend)
        snapshot = store.snapshot()
        store.remove(Triple(ex("Lisa"), RDF.type, ex("human")))
        assert Triple(ex("Lisa"), RDF.type, ex("animal")) not in store
        assert Triple(ex("Lisa"), RDF.type, ex("animal")) in snapshot
        assert set(snapshot.triples()) == batch_closure(DATA)

    def test_snapshot_queries(self):
        store = Store(DATA)
        snapshot = store.snapshot()
        assert isinstance(snapshot, Snapshot)
        assert {s["who"] for s in snapshot.query("?who a ex:animal")} == {
            ex("Bart"),
            ex("Lisa"),
        }
        assert len(snapshot) == len(store)
        assert set(snapshot.inferred()) == set(store.inferred())

    def test_snapshot_is_cheap_no_inference(self):
        store = Store(DATA)
        store.materialize()
        stats_before = store.engine.stats
        snapshot = store.snapshot()
        assert store.engine.stats is stats_before
        assert snapshot.n_triples == store.n_triples


class TestPersistence:
    def test_round_trip(self, backend, tmp_path):
        """Acceptance: build -> materialize -> save -> load answers
        identically without re-running inference."""
        path = str(tmp_path / "closure.store")
        store = Store(
            DATA + [Triple(ex("Bart"), ex("sister"), ex("Lisa"))],
            backend=backend,
        )
        store.materialize()
        store.save(path)
        assert is_store_file(path)

        loaded = Store.load(path, backend=backend)
        assert loaded.engine.is_materialized
        assert loaded.engine.stats is None  # nothing ran at load
        assert sorted(t.n3() for t in loaded.triples()) == sorted(
            t.n3() for t in store.triples()
        )
        # Pattern and BGP queries work; still no inference ran.
        assert {
            t.object for t in loaded.query(ex("Bart"), RDF.type, None)
        } == {ex("human"), ex("mammal"), ex("animal")}
        assert loaded.query("?b ex:sister ?s") == [
            {"b": ex("Bart"), "s": ex("Lisa")}
        ]
        assert loaded.engine.stats is None
        assert set(loaded.inferred()) == set(store.inferred())

    def test_cross_backend_round_trip(self, tmp_path):
        if not numpy_available():
            pytest.skip("needs numpy for the cross-backend leg")
        path = str(tmp_path / "closure.store")
        store = Store(DATA, backend="numpy")
        store.save(path)
        loaded = Store.load(path, backend="python")
        assert set(loaded.triples()) == set(store.triples())
        assert loaded.engine.kernels.name == "python"

    def test_literals_and_bnodes_round_trip(self, tmp_path):
        from repro.rdf.terms import BlankNode

        path = str(tmp_path / "b.store")
        data = [
            Triple(BlankNode("b0"), RDF.type, ex("human")),
            Triple(ex("Bart"), ex("name"), Literal("Bart")),
            Triple(
                ex("Bart"),
                ex("age"),
                Literal("10", "http://www.w3.org/2001/XMLSchema#integer"),
            ),
            Triple(ex("Bart"), ex("motto"), Literal("ay caramba", None, "es")),
            Triple(ex("human"), RDFS.subClassOf, ex("mammal")),
        ]
        store = Store(data)
        store.save(path)
        loaded = Store.load(path)
        assert set(loaded.triples()) == set(store.triples())
        assert set(loaded.asserted()) == set(store.asserted())

    def test_loaded_store_accepts_mutations(self, tmp_path):
        path = str(tmp_path / "m.store")
        store = Store(DATA)
        store.save(path)
        loaded = Store.load(path)
        loaded.add(Triple(ex("Maggie"), RDF.type, ex("human")))
        assert Triple(ex("Maggie"), RDF.type, ex("animal")) in loaded
        loaded.remove(Triple(ex("Bart"), RDF.type, ex("human")))
        assert Triple(ex("Bart"), RDF.type, ex("animal")) not in loaded

    def test_save_flushes_pending(self, tmp_path):
        path = str(tmp_path / "p.store")
        store = Store(DATA)
        store.add(Triple(ex("Maggie"), RDF.type, ex("human")))
        store.save(path)
        loaded = Store.load(path)
        assert Triple(ex("Maggie"), RDF.type, ex("animal")) in loaded

    def test_ruleset_and_empty_store_round_trip(self, tmp_path):
        path = str(tmp_path / "e.store")
        store = Store(ruleset="rho-df")
        store.save(path)
        loaded = Store.load(path)
        assert loaded.engine.ruleset_name == "rho-df"
        assert len(loaded) == 0

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.store"
        path.write_bytes(b"definitely not a store")
        assert not is_store_file(str(path))
        with pytest.raises(StoreFormatError):
            Store.load(str(path))

    def test_truncated_file_rejected(self, tmp_path):
        path = str(tmp_path / "t.store")
        store = Store(DATA)
        store.save(path)
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(blob[:-8])
        with pytest.raises(StoreFormatError):
            Store.load(str(path))

    def test_custom_ruleset_needs_override(self, tmp_path):
        from repro.rules.rulesets import get_ruleset

        path = str(tmp_path / "c.store")
        store = Store(DATA, ruleset=get_ruleset("rdfs-default"))
        store.save(path)
        with pytest.raises(StoreFormatError):
            Store.load(path)
        loaded = Store.load(path, ruleset="rdfs-default")
        assert set(loaded.triples()) == set(store.triples())


def _read_header(path):
    import json
    import struct

    from repro.core.store_api import STORE_MAGIC

    with open(path, "rb") as handle:
        assert handle.read(len(STORE_MAGIC)) == STORE_MAGIC
        (n,) = struct.unpack("<I", handle.read(4))
        return json.loads(handle.read(n))


class TestCompressedPersistence:
    """Format version 3: compressed tables stored as block streams."""

    def _saved(self, tmp_path, backend="compressed"):
        path = str(tmp_path / "c.store")
        store = Store(
            DATA + [Triple(ex("Bart"), ex("sister"), ex("Lisa"))],
            backend=backend,
        )
        store.materialize()
        store.save(path)
        return path, store

    def test_compressed_save_writes_v4_crp1(self, tmp_path):
        from repro.core.store_api import STORE_FORMAT_VERSION

        path, _ = self._saved(tmp_path)
        header = _read_header(path)
        assert header["version"] == STORE_FORMAT_VERSION
        assert header["tables"]
        for entry in header["tables"]:
            assert entry["encoding"] == "crp1"
            assert entry["n_bytes"] > 0
            assert isinstance(entry["crc32"], int)

    def test_raw_backend_save_writes_v4_raw_tables(self, tmp_path):
        from repro.core.store_api import STORE_FORMAT_VERSION

        path, _ = self._saved(tmp_path, backend="python")
        header = _read_header(path)
        assert header["version"] == STORE_FORMAT_VERSION
        assert all("encoding" not in e for e in header["tables"])
        assert all(isinstance(e["crc32"], int) for e in header["tables"])
        assert isinstance(header["asserted_crc32"], int)
        assert header["payload_bytes"] > 0

    def test_compressed_reload_keeps_compressed_tables(self, tmp_path):
        from repro.kernels.compressed_backend import CompressedPairs

        path, store = self._saved(tmp_path)
        loaded = Store.load(path, backend="compressed")
        assert loaded.engine.kernels.name == "compressed"
        tables = list(loaded.engine.main.table_arrays())
        assert tables
        # O(read) reload: block streams are adopted verbatim, never
        # decoded to a flat int64 image.
        assert all(isinstance(flat, CompressedPairs) for _, flat in tables)
        assert set(loaded.triples()) == set(store.triples())
        assert set(loaded.inferred()) == set(store.inferred())

    @pytest.mark.parametrize(
        "load_backend",
        ["python"] + (["numpy"] if numpy_available() else []),
    )
    def test_compressed_file_loads_under_raw_backends(
        self, tmp_path, load_backend
    ):
        path, store = self._saved(tmp_path)
        loaded = Store.load(path, backend=load_backend)
        assert loaded.engine.kernels.name == load_backend
        assert set(loaded.triples()) == set(store.triples())

    def test_raw_file_loads_under_compressed_backend(self, tmp_path):
        path, store = self._saved(tmp_path, backend="python")
        loaded = Store.load(path, backend="compressed")
        assert loaded.engine.kernels.name == "compressed"
        assert set(loaded.triples()) == set(store.triples())

    def test_corrupt_compressed_blob_rejected(self, tmp_path):
        import struct

        from repro.core.store_api import STORE_MAGIC

        path, _ = self._saved(tmp_path)
        with open(path, "rb") as handle:
            blob = bytearray(handle.read())
        header_len = struct.unpack_from(
            "<I", blob, len(STORE_MAGIC)
        )[0]
        tables_start = len(STORE_MAGIC) + 4 + header_len
        # Flip a byte inside the first table's block stream, past its
        # 8-byte magic so the failure is a decode error, not a sniff.
        blob[tables_start + 12] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        with pytest.raises(StoreFormatError):
            Store.load(path, backend="compressed")


class TestStoreConfig:
    def test_config_object(self):
        config = StoreConfig(ruleset="rho-df", backend="python")
        store = Store(DATA, config=config)
        assert store.engine.ruleset_name == "rho-df"
        assert store.engine.kernels.name == "python"

    def test_config_with_overrides(self):
        config = StoreConfig(ruleset="rho-df")
        store = Store(DATA, config=config, ruleset="rdfs-full")
        assert store.engine.ruleset_name == "rdfs-full"

    def test_timeout_propagates(self):
        from repro.core.engine import MaterializationTimeout
        from repro.datasets.bsbm import bsbm_like

        store = Store(bsbm_like(500), timeout_seconds=1e-9)
        with pytest.raises(MaterializationTimeout):
            store.materialize()

    def test_timeout_bounds_deletion_rebuild(self):
        from repro.core.engine import InferrayEngine, MaterializationTimeout

        engine = InferrayEngine("rdfs-default")
        engine.load_triples(DATA)
        engine.materialize()
        with pytest.raises(MaterializationTimeout):
            engine.retract_and_rematerialize(
                [DATA[-1]], timeout_seconds=1e-12
            )


class TestDeprecatedShims:
    def test_infer_warns_and_works(self):
        from repro.core.api import infer

        with pytest.warns(DeprecationWarning):
            graph = infer(DATA)
        assert Triple(ex("Bart"), RDF.type, ex("animal")) in graph

    def test_infer_with_stats_warns(self):
        from repro.core.api import infer_with_stats

        with pytest.warns(DeprecationWarning):
            graph, stats = infer_with_stats(DATA)
        if stats.materialize_mode == "hybrid":
            # The graph decodes the *served* closure; stats count the
            # stored (reduced) one.
            assert len(graph) > stats.n_input
        else:
            assert stats.n_inferred > 0
            assert len(graph) == stats.n_total

    def test_inferred_model_warns_and_diffs_encoded(self):
        from repro.core.api import InferredModel

        with pytest.warns(DeprecationWarning):
            model = InferredModel(DATA)
        deductions = model.deductions()
        assert Triple(ex("Bart"), RDF.type, ex("animal")) in deductions
        assert all(t not in set(DATA) for t in deductions)

    def test_load_and_materialize_warns(self, tmp_path):
        from repro.core.api import load_and_materialize
        from repro.rdf.ntriples import write_file

        path = str(tmp_path / "d.nt")
        write_file(
            [
                Triple(IRI("http://h"), RDFS.subClassOf, IRI("http://m")),
                Triple(IRI("http://b"), RDF.type, IRI("http://h")),
            ],
            path,
        )
        with pytest.warns(DeprecationWarning):
            engine = load_and_materialize(path)
        assert engine.contains(
            Triple(IRI("http://b"), RDF.type, IRI("http://m"))
        )

    def test_top_level_imports_still_work(self):
        import repro

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # imports alone must not warn
            assert repro.infer is not None
            assert repro.InferredModel is not None
            assert repro.Store is not None
