"""Unit tests for the high-level API (infer, InferredModel, loaders)."""

from repro.core.api import (
    InferredModel,
    infer,
    infer_with_stats,
    load_and_materialize,
)
from repro.rdf.ntriples import write_file
from repro.rdf.terms import IRI, Triple
from repro.rdf.vocabulary import RDF, RDFS


def ex(name):
    return IRI(f"ex:{name}")


DATA = [
    Triple(ex("human"), RDFS.subClassOf, ex("mammal")),
    Triple(ex("Bart"), RDF.type, ex("human")),
]


class TestInfer:
    def test_returns_closed_graph(self):
        g = infer(DATA)
        assert Triple(ex("Bart"), RDF.type, ex("mammal")) in g
        assert len(g) == 3

    def test_ruleset_selection(self):
        g = infer(DATA, ruleset="rho-df")
        assert Triple(ex("Bart"), RDF.type, ex("mammal")) in g

    def test_with_stats(self):
        g, stats = infer_with_stats(DATA)
        assert stats.n_inferred == 1
        assert len(g) == stats.n_total

    def test_empty(self):
        assert len(infer([])) == 0


class TestLoadAndMaterialize:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "d.nt")
        write_file(
            [
                Triple(IRI("http://h"), RDFS.subClassOf, IRI("http://m")),
                Triple(IRI("http://b"), RDF.type, IRI("http://h")),
            ],
            path,
        )
        engine = load_and_materialize(path)
        assert engine.contains(
            Triple(IRI("http://b"), RDF.type, IRI("http://m"))
        )


class TestInferredModel:
    def test_len_and_contains(self):
        model = InferredModel(DATA)
        assert len(model) == 3
        assert Triple(ex("Bart"), RDF.type, ex("mammal")) in model

    def test_asserted_preserved(self):
        model = InferredModel(DATA)
        assert set(model.asserted) == set(DATA)

    def test_list_statements(self):
        model = InferredModel(DATA)
        statements = list(model.list_statements(ex("Bart"), RDF.type, None))
        assert len(statements) == 2

    def test_deductions_excludes_asserted(self):
        model = InferredModel(DATA)
        deductions = model.deductions()
        assert Triple(ex("Bart"), RDF.type, ex("mammal")) in deductions
        assert Triple(ex("Bart"), RDF.type, ex("human")) not in deductions
        assert len(deductions) == 1
