"""Golden-fixture tests: the v4 reader loads every historical format.

``tests/fixtures/stores/`` commits one file per past format version
(see ``generate.py`` there).  Loading each under the current reader
must produce the closure in ``golden.nt`` *byte-identically* (same
sorted N-Triples serialization) and without re-running inference —
the backward-compatibility contract a version bump must not break.
"""

import json
import os
import struct

import pytest

from repro.core.store_api import (
    STORE_MAGIC,
    STORE_FORMAT_VERSION,
    Store,
    is_store_file,
)

FIXTURES = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "fixtures",
    "stores",
)

VERSIONS = {
    "v1.store": 1,
    "v2.store": 2,
    "v3.store": 3,
}


def fixture(name):
    return os.path.join(FIXTURES, name)


def file_header(path):
    with open(path, "rb") as handle:
        blob = handle.read()
    offset = len(STORE_MAGIC)
    (header_len,) = struct.unpack("<I", blob[offset : offset + 4])
    return json.loads(
        blob[offset + 4 : offset + 4 + header_len].decode("utf-8")
    )


@pytest.fixture(scope="module")
def golden_lines():
    with open(fixture("golden.nt")) as handle:
        return handle.read().splitlines()


class TestGoldenFixtures:
    @pytest.mark.parametrize("name", sorted(VERSIONS))
    def test_fixture_is_pinned_to_its_version(self, name):
        header = file_header(fixture(name))
        assert header["version"] == VERSIONS[name]
        # Pre-v4 headers carry no integrity fields — that absence IS
        # the fixture: it exercises the reader's no-checksum path.
        assert "asserted_crc32" not in header
        assert "payload_bytes" not in header
        assert all("crc32" not in e for e in header["tables"])

    @pytest.mark.parametrize("name", sorted(VERSIONS))
    def test_loads_byte_identical_to_golden(self, name, golden_lines):
        path = fixture(name)
        assert is_store_file(path)
        with Store.load(path) as store:
            loaded = sorted(t.n3() for t in store.triples())
            assert loaded == golden_lines
            # No inference re-ran: the fixture was saved materialized.
            assert store.engine.stats is None

    @pytest.mark.parametrize("name", sorted(VERSIONS))
    def test_loads_on_every_backend(self, name, golden_lines):
        from repro.kernels import numpy_available

        backends = ["python", "compressed"] + (
            ["numpy"] if numpy_available() else []
        )
        for backend in backends:
            with Store.load(fixture(name), backend=backend) as store:
                assert sorted(t.n3() for t in store.triples()) == golden_lines

    def test_v1_is_pre_hybrid_shaped(self):
        header = file_header(fixture("v1.store"))
        assert "materialize" not in header
        assert "sections" not in header

    def test_v3_uses_compressed_tables(self):
        header = file_header(fixture("v3.store"))
        assert any(
            entry.get("encoding") == "crp1" for entry in header["tables"]
        )

    def test_resave_upgrades_to_current_version(self, tmp_path, golden_lines):
        # Load-old / save-new is the upgrade path: the rewritten file
        # must be v4 (checksummed) and still hold the same closure.
        for name in sorted(VERSIONS):
            upgraded = str(tmp_path / f"up-{name}")
            with Store.load(fixture(name)) as store:
                store.save(upgraded)
            header = file_header(upgraded)
            assert header["version"] == STORE_FORMAT_VERSION
            assert "asserted_crc32" in header
            with Store.load(upgraded) as store:
                assert sorted(t.n3() for t in store.triples()) == golden_lines
