"""CLI loading of Turtle inputs (extension dispatch)."""

from repro.cli import main


def test_infer_turtle_file(tmp_path, capsys):
    path = tmp_path / "schema.ttl"
    path.write_text(
        "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n"
        "@prefix ex: <http://ex/> .\n"
        "ex:Cat rdfs:subClassOf ex:Animal .\n"
        "ex:tom a ex:Cat .\n",
        encoding="utf-8",
    )
    assert main(["infer", str(path)]) == 0
    out = capsys.readouterr().out
    assert out.count(" .") == 3
    assert "<http://ex/Animal>" in out


def test_stats_turtle_file(tmp_path, capsys):
    path = tmp_path / "schema.turtle"
    path.write_text(
        "@prefix ex: <http://ex/> .\nex:a ex:p ex:b .\n",
        encoding="utf-8",
    )
    assert main(["stats", str(path)]) == 0
    assert "input triples:     1" in capsys.readouterr().out
