"""Unit tests for the shared-memory process-parallel plumbing.

Covers the export/attach round trip (both kernel backends), the
exporter's identity-based segment reuse, worker output serialization,
the in-process worker entrypoints (init + fire), and the mode /
threshold resolution policies — everything below the scheduler, so
failures localize without spinning an actual pool.
"""

import os
from array import array

import pytest

from repro.core import parallel
from repro.core.engine import InferrayEngine
from repro.datasets.bsbm import bsbm_like
from repro.kernels import get_backend, numpy_available
from repro.rules.spec import Rule
from repro.store.triple_store import InferredBuffers, TripleStore

BACKENDS = ["python", "compressed"] + (
    ["numpy"] if numpy_available() else []
)


def _make_store(backend_name):
    kernels = get_backend(backend_name)
    store = TripleStore(backend=kernels)
    store.add_pairs(7, array("q", [5, 6, 1, 2, 3, 4, 1, 2]))
    store.add_pairs(9, array("q", [10, 20]))
    return store, kernels


class TestFromBuffer:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_round_trip(self, backend):
        kernels = get_backend(backend)
        source = array("q", [1, 2, 3, 4])
        view = kernels.from_buffer(memoryview(source.tobytes()), 4)
        assert list(view) == [1, 2, 3, 4]
        assert len(view) == 4

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_offset_counts_values(self, backend):
        kernels = get_backend(backend)
        source = array("q", [9, 9, 1, 2])
        view = kernels.from_buffer(
            memoryview(source.tobytes()), 2, offset=2
        )
        assert list(view) == [1, 2]

    def test_python_view_supports_the_read_paths(self):
        kernels = get_backend("python")
        source = array("q", [1, 2, 1, 4, 3, 6])
        view = kernels.from_buffer(memoryview(source.tobytes()), 6)
        # The paths PropertyTable and the join kernels exercise.
        assert view.tolist() == [1, 2, 1, 4, 3, 6]
        assert view[2] == 1
        assert list(view[2:4]) == [1, 4]
        assert kernels.key_slice(view, 1) == (0, 2)
        assert kernels.key_lower_bound(view, 3) == 2
        swapped = kernels.swap(view)
        assert list(swapped) == [2, 1, 4, 1, 6, 3]


class TestExportAttach:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_round_trip_preserves_tables(self, backend):
        store, kernels = _make_store(backend)
        exporter = parallel.SharedStoreExporter()
        try:
            manifest = exporter.export(store)
            assert [entry[0] for entry in manifest] == [7, 9]
            attached, segments = parallel.attach_store(
                manifest, kernels=kernels
            )
            try:
                assert attached.table(7).as_set() == store.table(7).as_set()
                assert attached.table(9).as_set() == store.table(9).as_set()
                # The o-s view computes on the zero-copy view too.
                assert attached.table(7).subjects_of(2) == [1]
                assert attached.table(7).subjects_of(6) == [5]
            finally:
                del attached
                for shm in segments:
                    shm.close()
        finally:
            exporter.close()

    def test_segments_reused_while_array_unchanged(self):
        store, _ = _make_store("python")
        exporter = parallel.SharedStoreExporter()
        try:
            first = exporter.export(store)
            second = exporter.export(store)
            assert first == second  # same names: no re-copy
            # A merge replaces the committed array => fresh segment.
            store.add_pairs(7, array("q", [100, 200]))
            third = exporter.export(store)
            by_pid_first = {p: name for p, name, _ in first}
            by_pid_third = {p: name for p, name, _ in third}
            assert by_pid_third[7] != by_pid_first[7]
            assert by_pid_third[9] == by_pid_first[9]
        finally:
            exporter.close()

    def test_dropped_tables_release_their_segments(self):
        store, _ = _make_store("python")
        exporter = parallel.SharedStoreExporter()
        try:
            first = exporter.export(store)
            names = {name for _, name, _ in first}
            assert all(
                os.path.exists(f"/dev/shm/{name}") for name in names
            )
            empty = TripleStore(backend=get_backend("python"))
            assert exporter.export(empty) == []
            assert not any(
                os.path.exists(f"/dev/shm/{name}") for name in names
            )
        finally:
            exporter.close()

    def test_close_unlinks_everything(self):
        store, _ = _make_store("python")
        exporter = parallel.SharedStoreExporter()
        manifest = exporter.export(store)
        exporter.close()
        for _, name, _ in manifest:
            assert not os.path.exists(f"/dev/shm/{name}")


class TestResultSegments:
    def test_round_trip(self):
        buffers = InferredBuffers()
        buffers.emit(3, 10, 20)
        buffers.extend(5, array("q", [1, 2, 3, 4]))
        name, entries = parallel.buffers_to_segment(buffers)
        assert name is not None
        assert entries == [(3, 2), (5, 4)]
        out = InferredBuffers()
        parallel.segment_to_buffers(name, entries, out)
        collected = {pid: list(flat) for pid, flat in out.items()}
        assert collected == {3: [10, 20], 5: [1, 2, 3, 4]}
        assert not os.path.exists(f"/dev/shm/{name}")  # released

    def test_empty_buffers_produce_no_segment(self):
        name, entries = parallel.buffers_to_segment(InferredBuffers())
        assert name is None
        assert entries == []


class TestWorkerEntrypoints:
    """Drive the initializer/task functions in-process (no pool)."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fire_matches_direct_rule_application(self, backend):
        engine = InferrayEngine(
            "rdfs-default", backend=backend, workers=1
        )
        engine.load_triples(bsbm_like(30))
        exporter = parallel.SharedStoreExporter()
        saved_worker = parallel._WORKER
        try:
            manifest = exporter.export(engine.main)
            parallel._worker_init(
                engine.rules, dict(engine.vocab._ids), backend, "auto"
            )
            from repro.rules.spec import RuleContext

            for index, rule in enumerate(engine.rules):
                name, entries, counts, elapsed = parallel._worker_fire(
                    index, None, manifest, None, 1, False
                )
                direct = InferredBuffers()
                rule.apply(
                    RuleContext(
                        main=engine.main,
                        new=engine.main,
                        out=direct,
                        vocab=engine.vocab,
                        iteration=1,
                        theta_prepass_done=False,
                        kernels=engine.kernels,
                    )
                )
                expected = {
                    pid: sorted(flat) for pid, flat in direct.items()
                }
                got = InferredBuffers()
                if name is not None:
                    parallel.segment_to_buffers(name, entries, got)
                assert {
                    pid: sorted(flat) for pid, flat in got.items()
                } == expected, rule.name
                assert elapsed >= 0
        finally:
            parallel._worker_cleanup()
            parallel._WORKER = saved_worker
            exporter.close()

    def test_store_generations_evict(self):
        engine = InferrayEngine("rdfs-default", backend="python", workers=1)
        engine.load_triples(bsbm_like(20))
        exporter = parallel.SharedStoreExporter()
        saved_worker = parallel._WORKER
        try:
            manifest1 = exporter.export(engine.main)
            parallel._worker_init(
                engine.rules, dict(engine.vocab._ids), "python", "auto"
            )
            state = parallel._WORKER
            store1 = state.store_for("main", manifest1)
            # Compare identities via booleans and drop the references
            # before eviction: any holder (including pytest's rewritten
            # assertion temporaries) would keep the zero-copy views
            # alive through the generation's close calls.
            cached_again = state.store_for("main", manifest1)
            was_cached = cached_again is store1
            del store1, cached_again
            assert was_cached
            names1 = {name for _, name, _ in manifest1}
            engine.materialize()
            manifest2 = exporter.export(engine.main)
            store2 = state.store_for("main", manifest2)
            key_matches = state._stores["main"][0] == tuple(manifest2)
            is_current = state._stores["main"][1] is store2
            del store2
            assert key_matches and is_current
            # Changed tables re-exported under fresh segment names.
            names2 = {name for _, name, _ in manifest2}
            assert names2 - names1, "materialize must version some table"
        finally:
            parallel._worker_cleanup()
            parallel._WORKER = saved_worker
            exporter.close()


class ExplodingRule(Rule):
    """Module-level (picklable) rule that fails inside a worker."""

    def apply(self, ctx):
        raise RuntimeError("boom from worker")


class EmittingRule(Rule):
    """Module-level (picklable) rule that emits a batch of triples."""

    def apply(self, ctx):
        for i in range(200):
            ctx.out.emit(ctx.vocab.type, 1_000 + i, 42)


def _live_segments():
    return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}


class TestFailurePaths:
    def test_mid_wave_failure_releases_sibling_output_segments(
        self, monkeypatch
    ):
        # Pin fork so the module-level rule classes resolve in workers
        # regardless of how this test module was imported.
        monkeypatch.setenv("REPRO_MP_START_METHOD", "fork")
        before = _live_segments()
        # BOOM first in catalogue order: its future fails before the
        # emitting sibling's completed result is absorbed, so the
        # drain path (not the normal absorb) must release the segment.
        engine = InferrayEngine(
            [ExplodingRule("BOOM"), EmittingRule("EMIT")],
            backend="python",
            workers=2,
            parallel_mode="process",
        )
        engine.load_triples(bsbm_like(10))
        with pytest.raises(RuntimeError, match="boom from worker"):
            engine.materialize()
        # The emitting sibling's (disowned) output segment must be gone
        # immediately — the drain path releases it even though the
        # engine (and its persistent pool + exporter segments) lives on.
        # Closing the engine must then release every exporter segment —
        # no leak until reboot.
        engine.close()
        assert _live_segments() - before == set()

    def test_forced_mode_detection_is_case_insensitive(self):
        engine = InferrayEngine(
            [ExplodingRule("BOOM", )],
            backend="python",
            workers=2,
            parallel_mode="Process",
        )
        assert engine.parallel_mode == "process"
        # Forced (despite the casing): an unstartable session raises
        # instead of silently degrading to threads.
        engine.scheduler.rules[0].apply = lambda ctx: None  # unpicklable
        engine.load_triples(bsbm_like(5))
        with pytest.raises(parallel.ProcessModeUnavailable):
            engine.materialize()


class TestModeResolution:
    def test_auto_prefers_process_on_python(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL_MODE", raising=False)
        assert (
            parallel.resolve_parallel_mode(None, backend_name="python")
            == "process"
        )

    def test_auto_prefers_thread_on_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL_MODE", raising=False)
        assert (
            parallel.resolve_parallel_mode(None, backend_name="numpy")
            == "thread"
        )

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_MODE", "thread")
        assert (
            parallel.resolve_parallel_mode(None, backend_name="python")
            == "thread"
        )

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_MODE", "thread")
        assert (
            parallel.resolve_parallel_mode(
                "process", backend_name="numpy"
            )
            == "process"
        )

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="parallel mode"):
            parallel.resolve_parallel_mode("greenlet", backend_name="python")

    def test_unknown_env_mode_warns_and_falls_back(self, monkeypatch):
        # A stray shell export must never crash an engine — mirror the
        # forgiving $REPRO_WORKERS parse instead of raising.
        monkeypatch.setenv("REPRO_PARALLEL_MODE", "greenlet")
        with pytest.warns(RuntimeWarning, match="REPRO_PARALLEL_MODE"):
            assert parallel.resolve_parallel_mode(None) == "auto"

    def test_unknown_env_mode_still_dispatches_on_backend(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_PARALLEL_MODE", "greenlet")
        with pytest.warns(RuntimeWarning, match="REPRO_PARALLEL_MODE"):
            resolved = parallel.resolve_parallel_mode(
                None, backend_name="numpy"
            )
        assert resolved == "thread"

    def test_without_backend_auto_stays_unresolved(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL_MODE", raising=False)
        # No backend_name: the caller's cost model decides per
        # materialization, so 'auto' passes through.
        assert parallel.resolve_parallel_mode(None) == "auto"

    def test_negative_split_threshold_env_warns_and_disables(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SPLIT_THRESHOLD", "-5")
        with pytest.warns(RuntimeWarning, match="REPRO_SPLIT_THRESHOLD"):
            assert parallel.resolve_split_threshold(None) == 0

    def test_split_threshold_default_and_floor(self):
        assert (
            parallel.resolve_split_threshold(None)
            == parallel.DEFAULT_SPLIT_THRESHOLD
        )
        assert parallel.resolve_split_threshold(-5) == 0
        assert parallel.resolve_split_threshold(123) == 123
