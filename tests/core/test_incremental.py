"""Tests for incremental materialization (extension feature)."""

import pytest

from repro.core.engine import InferrayEngine
from repro.datasets.chains import subclass_chain
from repro.datasets.lubm import lubm_like
from repro.rdf.terms import IRI, Triple
from repro.rdf.vocabulary import OWL, RDF, RDFS


def ex(name):
    return IRI(f"ex:{name}")


def batch_closure(ruleset, *batches):
    engine = InferrayEngine(ruleset)
    for batch in batches:
        engine.load_triples(batch)
    engine.materialize()
    return set(engine.triples())


class TestIncrementalEquivalence:
    def test_simple_addition(self):
        base = [
            Triple(ex("human"), RDFS.subClassOf, ex("mammal")),
            Triple(ex("Bart"), RDF.type, ex("human")),
        ]
        extra = [Triple(ex("mammal"), RDFS.subClassOf, ex("animal"))]
        engine = InferrayEngine("rdfs-default")
        engine.load_triples(base)
        engine.materialize()
        stats = engine.materialize_incremental(extra)
        assert stats.n_inferred >= 2  # the edge + propagated types
        assert set(engine.triples()) == batch_closure(
            "rdfs-default", base, extra
        )

    def test_theta_delta_reclosure(self):
        # New subclass edge must re-close the hierarchy.
        engine = InferrayEngine("rdfs-default")
        engine.load_triples(subclass_chain(20))
        engine.materialize()
        bridge = [
            Triple(
                IRI("http://example.org/chain/n19"),
                RDFS.subClassOf,
                IRI("http://example.org/other"),
            )
        ]
        engine.materialize_incremental(bridge)
        assert set(engine.triples()) == batch_closure(
            "rdfs-default", subclass_chain(20), bridge
        )
        # Every chain node now reaches the new class.
        assert engine.contains(
            Triple(
                IRI("http://example.org/chain/n0"),
                RDFS.subClassOf,
                IRI("http://example.org/other"),
            )
        )

    def test_rdfs_plus_sameas_addition(self):
        base = [
            Triple(ex("a"), ex("p"), ex("v")),
            Triple(ex("b"), ex("q"), ex("w")),
        ]
        extra = [Triple(ex("a"), OWL.sameAs, ex("b"))]
        engine = InferrayEngine("rdfs-plus")
        engine.load_triples(base)
        engine.materialize()
        engine.materialize_incremental(extra)
        assert set(engine.triples()) == batch_closure(
            "rdfs-plus", base, extra
        )
        assert engine.contains(Triple(ex("b"), ex("p"), ex("v")))

    def test_generated_workload_equivalence(self):
        base = lubm_like(2)
        extra = lubm_like(1, seed=99)
        engine = InferrayEngine("rdfs-plus")
        engine.load_triples(base)
        engine.materialize()
        engine.materialize_incremental(extra)
        assert set(engine.triples()) == batch_closure(
            "rdfs-plus", base, extra
        )

    def test_duplicate_addition_is_noop(self):
        base = subclass_chain(10)
        engine = InferrayEngine("rdfs-default")
        engine.load_triples(base)
        engine.materialize()
        before = engine.n_triples
        stats = engine.materialize_incremental(base)
        assert stats.n_inferred == 0
        assert engine.n_triples == before

    def test_new_transitive_marker_incrementally(self):
        base = [
            Triple(ex("a"), ex("p"), ex("b")),
            Triple(ex("b"), ex("p"), ex("c")),
        ]
        engine = InferrayEngine("rdfs-plus")
        engine.load_triples(base)
        engine.materialize()
        assert not engine.contains(Triple(ex("a"), ex("p"), ex("c")))
        engine.materialize_incremental(
            [Triple(ex("p"), RDF.type, OWL.TransitiveProperty)]
        )
        assert engine.contains(Triple(ex("a"), ex("p"), ex("c")))

    def test_requires_prior_materialization(self):
        engine = InferrayEngine("rdfs-default")
        engine.load_triples(subclass_chain(5))
        with pytest.raises(RuntimeError):
            engine.materialize_incremental([])


class TestIncrementalEdgeCases:
    """materialize_incremental boundary behaviour (Store-facing)."""

    def test_empty_delta(self):
        engine = InferrayEngine("rdfs-default")
        engine.load_triples(subclass_chain(10))
        engine.materialize()
        before = set(engine.triples())
        stats = engine.materialize_incremental([])
        assert stats.n_inferred == 0
        assert stats.iterations == 0
        assert set(engine.triples()) == before

    def test_delta_that_only_rederives_existing(self):
        # Assert a triple the closure already contains as an inference:
        # nothing new may be derived, and the closure must not change.
        base = [
            Triple(ex("human"), RDFS.subClassOf, ex("mammal")),
            Triple(ex("mammal"), RDFS.subClassOf, ex("animal")),
            Triple(ex("Bart"), RDF.type, ex("human")),
        ]
        engine = InferrayEngine("rdfs-default")
        engine.load_triples(base)
        engine.materialize()
        derived = Triple(ex("Bart"), RDF.type, ex("animal"))
        assert engine.contains(derived)
        before = set(engine.triples())
        stats = engine.materialize_incremental([derived])
        assert stats.n_inferred == 0
        assert set(engine.triples()) == before

    def test_store_interleaved_add_remove_equals_batch(self):
        """Equivalence through the Store API: interleaved add/remove
        flushes must land on the batch closure of the survivors."""
        from repro.core.store_api import Store

        base = [
            Triple(ex("human"), RDFS.subClassOf, ex("mammal")),
            Triple(ex("Bart"), RDF.type, ex("human")),
            Triple(ex("Lisa"), RDF.type, ex("human")),
        ]
        store = Store(base)
        store.materialize()                      # full build
        extra1 = Triple(ex("mammal"), RDFS.subClassOf, ex("animal"))
        extra2 = Triple(ex("Maggie"), RDF.type, ex("human"))
        store.add(extra1)
        assert len(store)                        # flush: incremental
        store.remove(Triple(ex("Lisa"), RDF.type, ex("human")))
        store.add(extra2)
        survivors = [base[0], base[1], extra1, extra2]
        assert set(store.triples()) == batch_closure(
            "rdfs-default", survivors
        )
        # And once more purely incrementally on the rebuilt base.
        extra3 = Triple(ex("animal"), RDFS.subClassOf, ex("being"))
        store.add(extra3)
        assert set(store.triples()) == batch_closure(
            "rdfs-default", survivors, [extra3]
        )
