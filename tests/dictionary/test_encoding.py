"""Unit tests for dictionary encoding and the split dense numbering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dictionary.encoding import (
    Dictionary,
    DictionaryError,
    PROPERTY_BASE,
    encode_dataset,
    scan_property_terms,
)
from repro.rdf.terms import IRI, Literal, Triple
from repro.rdf.vocabulary import OWL, RDF, RDFS


class TestDenseNumbering:
    def test_first_property_gets_base(self):
        d = Dictionary()
        assert d.encode_property(IRI("p0")) == PROPERTY_BASE

    def test_properties_descend(self):
        d = Dictionary()
        ids = [d.encode_property(IRI(f"p{i}")) for i in range(5)]
        assert ids == [PROPERTY_BASE - i for i in range(5)]

    def test_resources_ascend_from_base_plus_one(self):
        d = Dictionary()
        ids = [d.encode_resource(IRI(f"r{i}")) for i in range(5)]
        assert ids == [PROPERTY_BASE + 1 + i for i in range(5)]

    def test_halves_are_dense(self):
        d = Dictionary()
        for i in range(10):
            d.encode_property(IRI(f"p{i}"))
            d.encode_resource(IRI(f"r{i}"))
        assert d.n_properties == 10
        assert d.n_resources == 10
        low, high = d.resource_id_range()
        assert high - low + 1 == 10

    def test_same_term_same_id(self):
        d = Dictionary()
        assert d.encode_resource(IRI("x")) == d.encode_resource(IRI("x"))
        assert d.encode_property(IRI("p")) == d.encode_property(IRI("p"))

    def test_property_reused_as_resource_keeps_property_id(self):
        d = Dictionary()
        pid = d.encode_property(IRI("p"))
        assert d.encode_resource(IRI("p")) == pid

    def test_resource_to_property_promotion_rejected(self):
        d = Dictionary()
        d.encode_resource(IRI("x"))
        with pytest.raises(DictionaryError):
            d.encode_property(IRI("x"))


class TestIndexTranslation:
    def test_roundtrip(self):
        for index in (0, 1, 17, 123456):
            pid = Dictionary.property_id_from_index(index)
            assert Dictionary.property_index(pid) == index

    def test_first_property_maps_to_index_zero(self):
        d = Dictionary()
        pid = d.encode_property(IRI("p"))
        assert Dictionary.property_index(pid) == 0

    def test_is_property_id(self):
        d = Dictionary()
        pid = d.encode_property(IRI("p"))
        rid = d.encode_resource(IRI("r"))
        assert d.is_property_id(pid)
        assert not d.is_property_id(rid)
        assert not d.is_property_id(PROPERTY_BASE - 10)  # unallocated


class TestDecode:
    def test_decode_roundtrip(self):
        d = Dictionary()
        terms = [IRI("a"), Literal("x", language="en"), IRI("b")]
        ids = [d.encode_resource(t) for t in terms]
        assert [d.decode(i) for i in ids] == terms

    def test_decode_property(self):
        d = Dictionary()
        pid = d.encode_property(RDF.type)
        assert d.decode(pid) == RDF.type

    def test_decode_unknown_raises(self):
        d = Dictionary()
        with pytest.raises(KeyError):
            d.decode(PROPERTY_BASE + 99)
        with pytest.raises(KeyError):
            d.decode(PROPERTY_BASE - 99)

    def test_decode_triple(self):
        d = Dictionary()
        triple = Triple(IRI("s"), IRI("p"), Literal("o"))
        encoded = d.encode_triple(triple)
        assert d.decode_triple(encoded) == triple

    def test_id_of(self):
        d = Dictionary()
        assert d.id_of(IRI("nope")) is None
        rid = d.encode_resource(IRI("yes"))
        assert d.id_of(IRI("yes")) == rid


class TestPropertyScan:
    def test_predicates_collected(self):
        triples = [Triple(IRI("s"), IRI("p"), IRI("o"))]
        assert scan_property_terms(triples) == [IRI("p")]

    def test_subproperty_positions_promoted(self):
        triples = [Triple(IRI("p1"), RDFS.subPropertyOf, IRI("p2"))]
        found = scan_property_terms(triples)
        assert IRI("p1") in found and IRI("p2") in found

    def test_domain_subject_promoted_object_not(self):
        triples = [Triple(IRI("p1"), RDFS.domain, IRI("c"))]
        found = scan_property_terms(triples)
        assert IRI("p1") in found
        assert IRI("c") not in found

    def test_type_markers_promote_subject(self):
        triples = [Triple(IRI("p"), RDF.type, OWL.TransitiveProperty)]
        assert IRI("p") in scan_property_terms(triples)

    def test_plain_type_does_not_promote(self):
        triples = [Triple(IRI("x"), RDF.type, IRI("SomeClass"))]
        found = scan_property_terms(triples)
        assert IRI("x") not in found

    def test_inverseof_and_equivalentproperty(self):
        triples = [
            Triple(IRI("a"), OWL.inverseOf, IRI("b")),
            Triple(IRI("c"), OWL.equivalentProperty, IRI("d")),
        ]
        found = set(scan_property_terms(triples))
        assert {IRI("a"), IRI("b"), IRI("c"), IRI("d")} <= found


class TestEncodeDataset:
    def test_two_pass_avoids_promotion_error(self):
        # p2 appears first as an object, later as a predicate — one-pass
        # encoding would blow up; the two-pass loader must not.
        triples = [
            Triple(IRI("p1"), RDFS.subPropertyOf, IRI("p2")),
            Triple(IRI("x"), IRI("p2"), IRI("y")),
        ]
        d, encoded = encode_dataset(triples)
        assert len(encoded) == 2
        assert d.is_property_id(encoded[0][0])  # p1
        assert d.is_property_id(encoded[0][2])  # p2

    def test_existing_dictionary_extended(self):
        d = Dictionary()
        d.encode_property(RDF.type)
        d2, encoded = encode_dataset(
            [Triple(IRI("a"), RDF.type, IRI("C"))], d
        )
        assert d2 is d
        assert encoded[0][1] == d.id_of(RDF.type)

    def test_decoded_matches_input(self):
        triples = [
            Triple(IRI("s"), IRI("p"), Literal("5", datatype="http://dt")),
            Triple(IRI("p"), RDFS.domain, IRI("c")),
        ]
        d, encoded = encode_dataset(triples)
        assert [d.decode_triple(e) for e in encoded] == triples


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 30), st.integers(0, 5), st.integers(0, 30)
        ),
        max_size=40,
    )
)
def test_encode_decode_property(raw):
    """encode∘decode is the identity and the split invariant holds."""
    triples = [
        Triple(IRI(f"s{a}"), IRI(f"p{b}"), IRI(f"o{c}")) for a, b, c in raw
    ]
    d, encoded = encode_dataset(triples)
    for original, ids in zip(triples, encoded):
        assert d.decode_triple(ids) == original
        assert ids[1] <= PROPERTY_BASE  # predicates in the property half
