"""The shipped examples must run clean end to end (their asserts fire)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "dataset_integration.py",
    "engine_comparison.py",
    "taxonomy_reasoning.py",
    "query_and_update.py",
    "store_serving.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()


def test_transitive_scaling_trimmed(capsys):
    """Run the scaling example's main over reduced chain lengths."""
    namespace = runpy.run_path(
        str(EXAMPLES_DIR / "transitive_scaling.py"), run_name="as_module"
    )
    namespace["LENGTHS"][:] = [40, 80]  # functions close over this list
    namespace["main"]()
    out = capsys.readouterr().out
    assert "nuutila" in out
    assert "80" in out
