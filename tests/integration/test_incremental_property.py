"""Property tests: incremental materialization ≡ batch materialization,
and the parallel scheduler's lazy incremental flushes through ``Store``
≡ a from-scratch sequential rebuild."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import InferrayEngine
from repro.core.store_api import Store, StoreConfig
from repro.rdf.terms import IRI, Triple
from repro.rdf.vocabulary import OWL, RDF, RDFS


def ex(name):
    return IRI(f"ex:{name}")


_CLASSES = [ex(f"C{i}") for i in range(4)]
_PROPS = [ex(f"p{i}") for i in range(3)]
_INDIVIDUALS = [ex(f"i{i}") for i in range(4)]


@st.composite
def schema_and_data(draw):
    triples = []
    for _ in range(draw(st.integers(2, 14))):
        kind = draw(st.integers(0, 4))
        if kind == 0:
            triples.append(
                Triple(
                    draw(st.sampled_from(_CLASSES)),
                    RDFS.subClassOf,
                    draw(st.sampled_from(_CLASSES)),
                )
            )
        elif kind == 1:
            triples.append(
                Triple(
                    draw(st.sampled_from(_PROPS)),
                    draw(st.sampled_from([RDFS.domain, RDFS.range])),
                    draw(st.sampled_from(_CLASSES)),
                )
            )
        elif kind == 2:
            triples.append(
                Triple(
                    draw(st.sampled_from(_INDIVIDUALS)),
                    RDF.type,
                    draw(st.sampled_from(_CLASSES)),
                )
            )
        elif kind == 3:
            triples.append(
                Triple(
                    draw(st.sampled_from(_INDIVIDUALS)),
                    draw(st.sampled_from(_PROPS)),
                    draw(st.sampled_from(_INDIVIDUALS)),
                )
            )
        else:
            triples.append(
                Triple(
                    draw(st.sampled_from(_INDIVIDUALS)),
                    OWL.sameAs,
                    draw(st.sampled_from(_INDIVIDUALS)),
                )
            )
    return triples


@settings(max_examples=30, deadline=None)
@given(schema_and_data(), schema_and_data(), st.sampled_from(
    ["rdfs-default", "rdfs-plus"]
))
def test_incremental_equals_batch(first, second, ruleset):
    incremental = InferrayEngine(ruleset)
    incremental.load_triples(first)
    incremental.materialize()
    incremental.materialize_incremental(second)

    batch = InferrayEngine(ruleset)
    batch.load_triples(first + second)
    batch.materialize()

    assert set(incremental.triples()) == set(batch.triples())


@settings(max_examples=20, deadline=None)
@given(schema_and_data())
def test_retract_all_of_second_batch_restores_first(batch2):
    first = [
        Triple(ex("C0"), RDFS.subClassOf, ex("C1")),
        Triple(ex("i0"), RDF.type, ex("C0")),
    ]
    engine = InferrayEngine("rdfs-default")
    engine.load_triples(first)
    engine.materialize()
    reference = set(engine.triples())

    engine.materialize_incremental(batch2)
    engine.retract_and_rematerialize(batch2)
    # Retracting the delta restores the original closure unless batch2
    # re-asserted one of the original triples (then it is removed too).
    if not (set(batch2) & set(first)):
        assert set(engine.triples()) == reference


# ----------------------------------------------------------------------
# Parallel-scheduler fuzz: random add/remove interleavings via Store
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(
    schema_and_data(),
    schema_and_data(),
    schema_and_data(),
    st.data(),
    st.sampled_from(["rdfs-default", "rdfs-plus"]),
    st.sampled_from([2, 4]),
)
def test_parallel_interleaved_mutations_match_sequential_rebuild(
    first, second, third, data, ruleset, workers
):
    """Lazy incremental flushes under ``workers>1`` ≡ fresh rebuild.

    Interleaves adds, reads (which flush semi-naively under the
    parallel scheduler) and removes (which rebuild), then compares the
    closure against a from-scratch *sequential* store holding the same
    surviving asserted set.
    """
    removed = data.draw(
        st.lists(st.sampled_from(first), unique=True, max_size=len(first))
        if first
        else st.just([])
    )
    store = Store(config=StoreConfig(ruleset=ruleset, workers=workers))
    store.add(first)
    assert store.n_triples >= 0  # read: flushes the first batch
    store.add(second)
    store.remove(removed)  # wins over pending copies of the same triple
    assert store.n_triples >= 0  # read: rebuild (removes) + delta
    store.add(third)  # may re-assert removed triples

    removed_set = set(removed)
    surviving = (
        [t for t in first if t not in removed_set]
        + [t for t in second if t not in removed_set]
        + list(third)
    )
    rebuild = Store(surviving, config=StoreConfig(ruleset=ruleset, workers=1))
    assert set(store.triples()) == set(rebuild.triples())
    assert store.stats.workers == workers
