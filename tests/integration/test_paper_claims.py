"""Tests pinning the paper's qualitative claims (see EXPERIMENTS.md)."""

from repro.baselines.hashjoin import HashJoinEngine
from repro.baselines.rete import ReteEngine
from repro.core.engine import InferrayEngine
from repro.datasets.chains import chain_closure_size, subclass_chain
from repro.datasets.lubm import lubm_like
from repro.memsim.hierarchy import replay_trace
from repro.memsim.tracer import RecordingTracer
from repro.rdf.terms import IRI, Literal, Triple
from repro.rdf.vocabulary import OWL, RDF, RDFS


def ex(name):
    return IRI(f"ex:{name}")


class TestNoNewTermsInvariant:
    """§5.1: "inference does not produce new subjects, properties or
    objects — only new combinations"."""

    def test_dictionary_size_unchanged_by_materialization(self):
        engine = InferrayEngine("rdfs-plus")
        engine.load_triples(lubm_like(2))
        before = len(engine.dictionary)
        engine.materialize()
        assert len(engine.dictionary) == before

    def test_dense_halves_preserved(self):
        engine = InferrayEngine("rdfs-plus")
        engine.load_triples(lubm_like(2))
        engine.materialize()
        d = engine.dictionary
        low, high = d.resource_id_range()
        assert high - low + 1 == d.n_resources  # still gap-free


class TestDuplicateElimination:
    """§2.1: rule firing produces duplicates that the merge removes."""

    def test_raw_emissions_exceed_unique_inferences(self):
        engine = InferrayEngine("rdfs-default")
        engine.load_triples(subclass_chain(40))
        stats = engine.materialize()
        # The closure pre-pass re-emits the asserted edges (dedup'd by
        # the Figure-5 merge); rule firing adds its own duplicates.
        raw = sum(stats.per_rule.values()) + stats.closure_pairs
        assert raw > stats.n_inferred

    def test_rule_level_duplicates_on_mixed_workload(self):
        engine = InferrayEngine("rdfs-plus")
        engine.load_triples(lubm_like(2))
        stats = engine.materialize()
        raw = sum(stats.per_rule.values()) + stats.closure_pairs
        assert raw > stats.n_inferred

    def test_store_never_contains_duplicates(self):
        engine = InferrayEngine("rdfs-plus")
        engine.load_triples(lubm_like(1))
        engine.materialize()
        triples = list(engine.encoded_triples())
        assert len(triples) == len(set(triples))


class TestClosureScalability:
    """§6.1: closure output is quadratic and the pre-pass handles it."""

    def test_closure_size_exact(self):
        n = 120
        engine = InferrayEngine("rho-df")
        engine.load_triples(subclass_chain(n))
        stats = engine.materialize()
        assert stats.n_total == chain_closure_size(n)
        # A single fixed-point iteration after the pre-pass suffices.
        assert stats.iterations <= 2

    def test_prepass_faster_than_hashjoin_on_chains(self):
        import time

        data = subclass_chain(150)
        engine = InferrayEngine("rho-df")
        engine.load_triples(data)
        started = time.perf_counter()
        engine.materialize()
        inferray_seconds = time.perf_counter() - started

        hashjoin = HashJoinEngine("rho-df")
        hashjoin.load_triples(data)
        started = time.perf_counter()
        hashjoin.materialize()
        hashjoin_seconds = time.perf_counter() - started
        assert inferray_seconds < hashjoin_seconds


class TestMemoryBehaviourShape:
    """Figures 7–8: Inferray's simulated memory profile is the best."""

    def test_counter_ordering_on_closure_workload(self):
        data = subclass_chain(80)
        per_engine = {}
        for name, factory in (
            ("inferray", InferrayEngine),
            ("hashjoin", HashJoinEngine),
            ("rete", ReteEngine),
        ):
            tracer = RecordingTracer()
            engine = factory("rho-df", tracer=tracer)
            engine.load_triples(data)
            engine.materialize()
            counters = replay_trace(tracer.ops)
            per_engine[name] = counters.per_triple(engine.stats.n_inferred)
        assert (
            per_engine["inferray"]["tlb_misses_per_triple"]
            < per_engine["hashjoin"]["tlb_misses_per_triple"]
            < per_engine["rete"]["tlb_misses_per_triple"]
        )
        assert (
            per_engine["inferray"]["page_faults_per_triple"]
            < per_engine["rete"]["page_faults_per_triple"]
        )


class TestRobustnessCorners:
    def test_literal_objects_survive_roundtrip(self):
        engine = InferrayEngine("rdfs-full")
        engine.load_triples(
            [
                Triple(ex("p"), RDFS.domain, ex("C")),
                Triple(ex("x"), ex("p"), Literal("42", language=None)),
            ]
        )
        engine.materialize()
        out = set(engine.triples())
        assert Triple(ex("x"), RDF.type, ex("C")) in out
        # RDFS4 types the literal as a Resource — decodable, if absurd.
        assert Triple(Literal("42"), RDF.type, RDFS.Resource) in out

    def test_blank_nodes_participate(self):
        from repro.rdf.terms import BlankNode

        b = BlankNode("n0")
        engine = InferrayEngine("rdfs-default")
        engine.load_triples(
            [
                Triple(b, RDF.type, ex("C1")),
                Triple(ex("C1"), RDFS.subClassOf, ex("C2")),
            ]
        )
        engine.materialize()
        assert Triple(b, RDF.type, ex("C2")) in set(engine.triples())

    def test_sameas_on_vocabulary_term_is_harmless(self):
        # Pathological but legal: sameAs over a property also used as
        # a predicate — the closure must not corrupt the store.
        engine = InferrayEngine("rdfs-plus")
        engine.load_triples(
            [
                Triple(ex("p"), OWL.sameAs, ex("q")),
                Triple(ex("a"), ex("p"), ex("b")),
                Triple(ex("c"), ex("q"), ex("d")),
            ]
        )
        engine.materialize()
        out = set(engine.triples())
        assert Triple(ex("a"), ex("q"), ex("b")) in out
        assert Triple(ex("c"), ex("p"), ex("d")) in out

    def test_empty_schema_instance_only(self):
        engine = InferrayEngine("rdfs-default")
        engine.load_triples([Triple(ex("a"), ex("p"), ex("b"))])
        stats = engine.materialize()
        assert stats.n_inferred == 0

    def test_self_referential_schema(self):
        engine = InferrayEngine("rdfs-default")
        engine.load_triples(
            [Triple(RDFS.subClassOf, RDFS.subClassOf, RDFS.subClassOf)]
        )
        stats = engine.materialize()  # must terminate
        assert stats.n_total >= 1
