"""Differential proof for the parallel rule scheduler.

For every ruleset × kernel backend × executor mode × worker count, the
materialized closure must be *identical on encoded ids* to the
sequential (``workers=1``) run — not just set-equal after decoding:
the committed pair arrays themselves must match byte for byte, which
is the scheduler's determinism guarantee (sort+dedup makes the commit
a pure function of the emitted set, and the commit order is fixed).
The guarantee covers both executor substrates — threads and
shared-memory worker processes — and intra-rule key-range splitting
(forced here with a tiny threshold so even these small closures
shard).

Datasets: a BSBM-like instance-heavy workload, a LUBM-like ontology
workload, and a θ-heavy chain mix (subClassOf + transitive property +
sameAs) that exercises the closure pre-pass under every scheduler
configuration.  All generators are deterministic (seeded), so encoded
ids are stable across engine builds within one process.
"""

import pytest

from repro.core.engine import InferrayEngine
from repro.datasets.bsbm import bsbm_like
from repro.datasets.chains import (
    sameas_chain,
    subclass_chain,
    transitive_property_chain,
)
from repro.datasets.lubm import lubm_like
from repro.kernels import numpy_available
from repro.rules.rulesets import RULESET_NAMES

WORKER_COUNTS = (1, 2, 4)

MODES = ("thread", "process")

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])

DATASETS = {
    "bsbm": bsbm_like(60),
    "lubm": lubm_like(1),
    "chains": (
        subclass_chain(10)
        + transitive_property_chain(7)
        + sameas_chain(4)
    ),
}

#: (dataset, ruleset, backend) → closure of the workers=1 reference run.
_REFERENCE = {}


def _materialize(
    dataset_key,
    ruleset,
    backend,
    workers,
    *,
    mode="thread",
    split_threshold=None,
):
    engine = InferrayEngine(
        ruleset,
        backend=backend,
        workers=workers,
        parallel_mode=mode,
        split_threshold=split_threshold,
    )
    engine.load_triples(DATASETS[dataset_key])
    stats = engine.materialize()
    encoded = frozenset(engine.encoded_triples())
    table_bytes = tuple(
        (pid, bytes(flat.tobytes()))
        for pid, flat in engine.main.table_arrays()
    )
    return encoded, table_bytes, stats


def _reference(dataset_key, ruleset, backend):
    key = (dataset_key, ruleset, backend)
    if key not in _REFERENCE:
        _REFERENCE[key] = _materialize(dataset_key, ruleset, backend, 1)
    return _REFERENCE[key]


def _assert_matches_reference(dataset_key, ruleset, backend, run):
    ref_encoded, ref_tables, ref_stats = _reference(
        dataset_key, ruleset, backend
    )
    encoded, tables, stats = run
    assert stats.n_waves >= 1
    # Same fixed point, same number of iterations to reach it.
    assert stats.iterations == ref_stats.iterations
    assert encoded == ref_encoded
    # Byte-identical committed pair arrays, property by property.
    assert tables == ref_tables


@pytest.mark.parametrize("dataset_key", sorted(DATASETS))
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("ruleset", RULESET_NAMES)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_closure_equals_sequential(
    dataset_key, ruleset, backend, workers
):
    run = _materialize(dataset_key, ruleset, backend, workers)
    assert run[2].workers == workers
    _assert_matches_reference(dataset_key, ruleset, backend, run)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("ruleset", RULESET_NAMES)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_process_mode_closure_equals_sequential(backend, ruleset, workers):
    """Shared-memory worker processes reach the same committed bytes."""
    run = _materialize(
        "bsbm", ruleset, backend, workers, mode="process"
    )
    stats = run[2]
    assert stats.workers == workers
    if workers > 1:
        assert stats.parallel_mode == "process"
    _assert_matches_reference("bsbm", ruleset, backend, run)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("workers", (2, 4))
def test_forced_intra_rule_split_closure_is_byte_identical(
    backend, mode, workers
):
    """A tiny split threshold shards the join rules; bytes must hold."""
    run = _materialize(
        "bsbm",
        "rdfs-default",
        backend,
        workers,
        mode=mode,
        split_threshold=2,
    )
    stats = run[2]
    assert stats.rule_shards, "threshold=2 must split at least one rule"
    assert max(stats.rule_shards.values()) <= workers
    _assert_matches_reference("bsbm", "rdfs-default", backend, run)


@pytest.mark.parametrize("mode", MODES)
def test_theta_heavy_split_closure_is_byte_identical(mode):
    """Sharding composes with the θ pre-pass machinery."""
    run = _materialize(
        "chains", "rdfs-plus", "python", 2, mode=mode, split_threshold=2
    )
    _assert_matches_reference("chains", "rdfs-plus", "python", run)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("workers", (2, 4))
def test_parallel_incremental_equals_sequential_batch(
    backend, mode, workers
):
    """The incremental path also schedules rules; closures must agree."""
    first = DATASETS["bsbm"][:40]
    second = DATASETS["bsbm"][40:]

    parallel = InferrayEngine(
        "rdfs-default", backend=backend, workers=workers, parallel_mode=mode
    )
    parallel.load_triples(first)
    parallel.materialize()
    parallel.materialize_incremental(second)

    sequential = InferrayEngine("rdfs-default", backend=backend, workers=1)
    sequential.load_triples(list(first) + list(second))
    sequential.materialize()

    assert frozenset(parallel.encoded_triples()) == frozenset(
        sequential.encoded_triples()
    )


@pytest.mark.parametrize("workers", (2, 4))
def test_cross_backend_parallel_closures_decode_identically(workers):
    """python and numpy backends under the same worker count agree."""
    if "numpy" not in BACKENDS:
        pytest.skip("numpy backend unavailable")
    closures = []
    for backend in BACKENDS:
        engine = InferrayEngine(
            "rdfs-plus", backend=backend, workers=workers
        )
        engine.load_triples(DATASETS["chains"])
        engine.materialize()
        closures.append(set(engine.triples()))
    assert closures[0] == closures[1]
