"""Differential proof for the parallel rule scheduler.

For every ruleset × kernel backend × worker count, the materialized
closure must be *identical on encoded ids* to the sequential
(``workers=1``) run — not just set-equal after decoding: the committed
pair arrays themselves must match byte for byte, which is the
scheduler's determinism guarantee (sort+dedup makes the commit a pure
function of the emitted set, and the commit order is fixed).

Datasets: a BSBM-like instance-heavy workload, a LUBM-like ontology
workload, and a θ-heavy chain mix (subClassOf + transitive property +
sameAs) that exercises the closure pre-pass under every scheduler
configuration.  All generators are deterministic (seeded), so encoded
ids are stable across engine builds within one process.
"""

import pytest

from repro.core.engine import InferrayEngine
from repro.datasets.bsbm import bsbm_like
from repro.datasets.chains import (
    sameas_chain,
    subclass_chain,
    transitive_property_chain,
)
from repro.datasets.lubm import lubm_like
from repro.kernels import numpy_available
from repro.rules.rulesets import RULESET_NAMES

WORKER_COUNTS = (1, 2, 4)

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])

DATASETS = {
    "bsbm": bsbm_like(60),
    "lubm": lubm_like(1),
    "chains": (
        subclass_chain(10)
        + transitive_property_chain(7)
        + sameas_chain(4)
    ),
}

#: (dataset, ruleset, backend) → closure of the workers=1 reference run.
_REFERENCE = {}


def _materialize(dataset_key, ruleset, backend, workers):
    engine = InferrayEngine(ruleset, backend=backend, workers=workers)
    engine.load_triples(DATASETS[dataset_key])
    stats = engine.materialize()
    encoded = frozenset(engine.encoded_triples())
    table_bytes = tuple(
        (pid, bytes(flat.tobytes()))
        for pid, flat in engine.main.table_arrays()
    )
    return encoded, table_bytes, stats


def _reference(dataset_key, ruleset, backend):
    key = (dataset_key, ruleset, backend)
    if key not in _REFERENCE:
        _REFERENCE[key] = _materialize(dataset_key, ruleset, backend, 1)
    return _REFERENCE[key]


@pytest.mark.parametrize("dataset_key", sorted(DATASETS))
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("ruleset", RULESET_NAMES)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_closure_equals_sequential(
    dataset_key, ruleset, backend, workers
):
    ref_encoded, ref_tables, ref_stats = _reference(
        dataset_key, ruleset, backend
    )
    encoded, tables, stats = _materialize(
        dataset_key, ruleset, backend, workers
    )
    assert stats.workers == workers
    assert stats.n_waves >= 1
    # Same fixed point, same number of iterations to reach it.
    assert stats.iterations == ref_stats.iterations
    assert encoded == ref_encoded
    # Byte-identical committed pair arrays, property by property.
    assert tables == ref_tables


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("workers", (2, 4))
def test_parallel_incremental_equals_sequential_batch(backend, workers):
    """The incremental path also schedules rules; closures must agree."""
    first = DATASETS["bsbm"][:40]
    second = DATASETS["bsbm"][40:]

    parallel = InferrayEngine(
        "rdfs-default", backend=backend, workers=workers
    )
    parallel.load_triples(first)
    parallel.materialize()
    parallel.materialize_incremental(second)

    sequential = InferrayEngine("rdfs-default", backend=backend, workers=1)
    sequential.load_triples(list(first) + list(second))
    sequential.materialize()

    assert frozenset(parallel.encoded_triples()) == frozenset(
        sequential.encoded_triples()
    )


@pytest.mark.parametrize("workers", (2, 4))
def test_cross_backend_parallel_closures_decode_identically(workers):
    """python and numpy backends under the same worker count agree."""
    if "numpy" not in BACKENDS:
        pytest.skip("numpy backend unavailable")
    closures = []
    for backend in BACKENDS:
        engine = InferrayEngine(
            "rdfs-plus", backend=backend, workers=workers
        )
        engine.load_triples(DATASETS["chains"])
        engine.materialize()
        closures.append(set(engine.triples()))
    assert closures[0] == closures[1]
