"""Differential tests: all four engines must compute identical closures.

This is the repository's strongest correctness guarantee: Inferray's
sort-merge machinery, the naive oracle, the hash-join engine and the
RETE engine are four structurally independent implementations of the
same rulesets — any divergence is a bug in at least one of them.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.hashjoin import HashJoinEngine
from repro.baselines.naive import NaiveEngine
from repro.baselines.rete import ReteEngine
from repro.core.engine import InferrayEngine
from repro.datasets.bsbm import bsbm_like
from repro.datasets.chains import (
    sameas_chain,
    subclass_chain,
    subclass_tree,
    transitive_property_chain,
)
from repro.datasets.lubm import lubm_like
from repro.datasets.realworld import wikipedia_like, wordnet_like, yago_like
from repro.rdf.terms import IRI, Triple
from repro.rdf.vocabulary import OWL, RDF, RDFS

ALL_RULESETS = (
    "rho-df",
    "rdfs-default",
    "rdfs-full",
    "rdfs-plus",
    "rdfs-plus-full",
)


def closure_of(engine_class, ruleset, data):
    engine = engine_class(ruleset)
    engine.load_triples(data)
    engine.materialize()
    if isinstance(engine, InferrayEngine):
        return set(engine.triples())
    return engine.as_decoded_set()


def assert_engines_agree(data, rulesets=ALL_RULESETS, baselines=None):
    if baselines is None:
        baselines = (NaiveEngine, HashJoinEngine, ReteEngine)
    for ruleset in rulesets:
        reference = closure_of(InferrayEngine, ruleset, data)
        for engine_class in baselines:
            other = closure_of(engine_class, ruleset, data)
            missing = reference - other
            extra = other - reference
            assert other == reference, (
                f"{engine_class.__name__}/{ruleset}: "
                f"missing={sorted(t.n3() for t in missing)[:5]} "
                f"extra={sorted(t.n3() for t in extra)[:5]}"
            )


def ex(name):
    return IRI(f"ex:{name}")


class TestHandcraftedWorkloads:
    def test_rdfs_plus_feature_mix(self):
        data = [
            Triple(ex("A"), RDFS.subClassOf, ex("B")),
            Triple(ex("B"), RDFS.subClassOf, ex("C")),
            Triple(ex("C"), RDFS.subClassOf, ex("A")),  # cycle
            Triple(ex("i"), RDF.type, ex("A")),
            Triple(ex("p1"), RDFS.subPropertyOf, ex("p2")),
            Triple(ex("p2"), RDFS.domain, ex("D")),
            Triple(ex("p2"), RDFS.range, ex("R")),
            Triple(ex("x"), ex("p1"), ex("y")),
            Triple(ex("A"), OWL.equivalentClass, ex("E")),
            Triple(ex("p1"), OWL.equivalentProperty, ex("q1")),
            Triple(ex("p3"), OWL.inverseOf, ex("p4")),
            Triple(ex("u"), ex("p3"), ex("v")),
            Triple(ex("near"), RDF.type, OWL.SymmetricProperty),
            Triple(ex("near"), RDF.type, OWL.TransitiveProperty),
            Triple(ex("a"), ex("near"), ex("b")),
            Triple(ex("b"), ex("near"), ex("c")),
            Triple(ex("x"), OWL.sameAs, ex("x2")),
            Triple(ex("mother"), RDF.type, OWL.FunctionalProperty),
            Triple(ex("kid"), ex("mother"), ex("m1")),
            Triple(ex("kid"), ex("mother"), ex("m2")),
            Triple(ex("ssn"), RDF.type, OWL.InverseFunctionalProperty),
            Triple(ex("per1"), ex("ssn"), ex("s1")),
            Triple(ex("per2"), ex("ssn"), ex("s1")),
        ]
        assert_engines_agree(data)

    def test_subclass_chain(self):
        assert_engines_agree(subclass_chain(12))

    def test_subclass_tree(self):
        assert_engines_agree(subclass_tree(3, branching=3))

    def test_transitive_chain(self):
        assert_engines_agree(
            transitive_property_chain(8), rulesets=("rdfs-plus",)
        )

    def test_sameas_chain(self):
        assert_engines_agree(sameas_chain(5), rulesets=("rdfs-plus",))

    def test_schema_only(self):
        data = [
            Triple(ex("p"), RDFS.domain, ex("c1")),
            Triple(ex("c1"), RDFS.subClassOf, ex("c2")),
            Triple(ex("q"), RDFS.range, ex("c1")),
        ]
        assert_engines_agree(data)

    def test_schema_of_schema(self):
        # rdfs vocabulary used as plain data: subClassOf of subClassOf.
        data = [
            Triple(RDFS.subClassOf, RDF.type, RDF.Property),
            Triple(ex("myRel"), RDFS.subPropertyOf, RDFS.subClassOf),
            Triple(ex("a"), ex("myRel"), ex("b")),
            Triple(ex("b"), ex("myRel"), ex("c")),
            Triple(ex("i"), RDF.type, ex("a")),
        ]
        assert_engines_agree(data)

    def test_reflexive_sameas(self):
        data = [
            Triple(ex("a"), OWL.sameAs, ex("a")),
            Triple(ex("a"), ex("p"), ex("b")),
        ]
        assert_engines_agree(data, rulesets=("rdfs-plus",))


class TestGeneratedWorkloads:
    def test_lubm_small(self):
        assert_engines_agree(
            lubm_like(2),
            rulesets=("rdfs-default", "rdfs-plus"),
            baselines=(HashJoinEngine,),
        )

    def test_bsbm_small(self):
        assert_engines_agree(
            bsbm_like(60),
            rulesets=("rho-df", "rdfs-default"),
            baselines=(HashJoinEngine,),
        )

    def test_yago_small(self):
        assert_engines_agree(
            yago_like(1),
            rulesets=("rdfs-default",),
            baselines=(HashJoinEngine,),
        )

    def test_wikipedia_small(self):
        assert_engines_agree(
            wikipedia_like(1),
            rulesets=("rdfs-default",),
            baselines=(HashJoinEngine,),
        )

    def test_wordnet_small(self):
        assert_engines_agree(
            wordnet_like(1),
            rulesets=("rdfs-plus",),
            baselines=(HashJoinEngine,),
        )

    def test_lubm_full_rulesets_vs_naive(self):
        assert_engines_agree(
            lubm_like(1),
            rulesets=("rdfs-full", "rdfs-plus-full"),
            baselines=(NaiveEngine,),
        )


# A small closed world of terms so random triples collide interestingly.
from repro.rdf.terms import BlankNode, Literal  # noqa: E402

_CLASSES = [ex(f"C{i}") for i in range(4)]
_PROPS = [ex(f"p{i}") for i in range(3)]
_INDIVIDUALS = [ex(f"i{i}") for i in range(3)] + [BlankNode("b0")]
_LITERALS = [Literal("v1"), Literal("v2", language="en")]
_SCHEMA_PREDICATES = [
    RDFS.subClassOf,
    RDFS.subPropertyOf,
    RDFS.domain,
    RDFS.range,
    RDF.type,
]


@st.composite
def random_dataset(draw):
    triples = []
    n = draw(st.integers(1, 12))
    for _ in range(n):
        choice = draw(st.integers(0, 5))
        if choice == 0:
            triples.append(
                Triple(
                    draw(st.sampled_from(_CLASSES)),
                    RDFS.subClassOf,
                    draw(st.sampled_from(_CLASSES)),
                )
            )
        elif choice == 1:
            triples.append(
                Triple(
                    draw(st.sampled_from(_PROPS)),
                    draw(st.sampled_from([RDFS.subPropertyOf])),
                    draw(st.sampled_from(_PROPS)),
                )
            )
        elif choice == 2:
            triples.append(
                Triple(
                    draw(st.sampled_from(_PROPS)),
                    draw(st.sampled_from([RDFS.domain, RDFS.range])),
                    draw(st.sampled_from(_CLASSES)),
                )
            )
        elif choice == 3:
            triples.append(
                Triple(
                    draw(st.sampled_from(_INDIVIDUALS)),
                    RDF.type,
                    draw(st.sampled_from(_CLASSES)),
                )
            )
        elif choice == 4:
            triples.append(
                Triple(
                    draw(st.sampled_from(_INDIVIDUALS)),
                    draw(st.sampled_from(_PROPS)),
                    draw(st.sampled_from(_INDIVIDUALS + _LITERALS)),
                )
            )
        else:
            triples.append(
                Triple(
                    draw(st.sampled_from(_INDIVIDUALS)),
                    OWL.sameAs,
                    draw(st.sampled_from(_INDIVIDUALS)),
                )
            )
    return triples


@settings(max_examples=40, deadline=None)
@given(random_dataset())
def test_random_datasets_rdfs_default(data):
    assert_engines_agree(data, rulesets=("rdfs-default",))


@settings(max_examples=25, deadline=None)
@given(random_dataset())
def test_random_datasets_rdfs_plus(data):
    assert_engines_agree(
        data, rulesets=("rdfs-plus",), baselines=(NaiveEngine, HashJoinEngine)
    )


@settings(max_examples=20, deadline=None)
@given(random_dataset())
def test_random_datasets_rdfs_full(data):
    """RDFS-Full adds the axiom rules (RDFS4/6/8/10/12/13) — the heavy
    duplicate generators the paper blames for Inferray's Table-2 gap."""
    assert_engines_agree(
        data, rulesets=("rdfs-full",), baselines=(HashJoinEngine,)
    )
