"""Figure 7 — memory-hierarchy counters for the closure benchmark.

Paper: cache misses, dTLB misses and page faults *per inferred triple*
for chains of 500/1000/2500 nodes, measured with `perf`: Inferray stays
memory-friendly, OWLIM (RETE) struggles with page faults and TLB
misses, RDFox sits between and degrades with size.

Reproduction via :mod:`repro.memsim`: each engine runs instrumented
with a RecordingTracer; the trace replays through the simulated
Xeon-E3-like hierarchy (32K L1d / 8M LLC / 64-entry TLB / 4K pages).
Chains are scaled to 100/200/400 nodes.  Each cell also reports the
resident closure's **bytes per entailed triple**.

The report additionally carries a full-vs-hybrid resident-closure
comparison over a hierarchy-heavy dataset: ``materialize="hybrid"``
(:mod:`repro.litemat`) absorbs the hierarchy rules into the interval
encoding, so it must answer the same closure from fewer stored triples,
fewer resident bytes per entailed triple and a faster flush.

A third section compares the **kernel backends' resident closures** on
BSBM- and LUBM-shaped datasets: the flat backends (python / numpy) sit
at 16 bytes/pair per array, the ``compressed`` backend stores
delta-encoded blocks — the report carries measured bytes/triple, the
compression ratio against the flat baseline, wall-clock and a closure
hash proving the answers are identical (CI gates ratio >= 4x and hash
equality via ``check_bench_schema.py``).

Run:     python benchmarks/bench_fig7_memory_closure.py [--smoke] [--json OUT]
Pytest:  pytest benchmarks/bench_fig7_memory_closure.py --benchmark-only
"""

import argparse
import hashlib
import json
import time

import pytest

from repro.baselines.hashjoin import HashJoinEngine
from repro.baselines.rete import ReteEngine
from repro.bench.figures import counters_to_bars, render_bars
from repro.bench.harness import format_table
from repro.core.engine import InferrayEngine
from repro.datasets.bsbm import bsbm_like
from repro.datasets.chains import subclass_chain, subclass_tree, subproperty_chain
from repro.datasets.lubm import lubm_like
from repro.kernels import numpy_available
from repro.memsim.hierarchy import replay_trace
from repro.memsim.probe import measure_store
from repro.memsim.tracer import RecordingTracer
from repro.rdf.terms import IRI, Triple
from repro.rdf.vocabulary import RDF, RDFS

LENGTHS = [50, 100, 200]

ENGINES = {
    "inferray": InferrayEngine,
    "hashjoin": HashJoinEngine,
    "rete": ReteEngine,
}

#: Longest chain each engine is asked to run (the paper's Figure 7 also
#: stops OWLIM's bars where Table 4 times out).  RETE's join work is
#: O(n³) in the chain length; past this cap a cell prints '–'.
MAX_LENGTH = {"inferray": 10_000, "hashjoin": 1_000, "rete": 100}


def measure_counters(engine_name, data, ruleset="rho-df"):
    """(per-triple counters, inferred count, bytes/triple) for one run.

    ``bytes_per_triple`` is the resident closure (pair arrays + caches)
    divided by the total entailed triples — None for baselines that do
    not expose their resident size.
    """
    tracer = RecordingTracer()
    factory = ENGINES[engine_name]
    engine = factory(ruleset, tracer=tracer)
    engine.load_triples(data)
    engine.materialize()
    inferred = engine.stats.n_inferred
    counters = replay_trace(tracer.ops)
    memory_of = getattr(engine, "memory_bytes", None)
    n_total = engine.stats.n_total
    bytes_per_triple = (
        memory_of() / n_total if memory_of is not None and n_total else None
    )
    return counters.per_triple(inferred), inferred, bytes_per_triple


def run_figure(lengths=None):
    rows = []
    for length in lengths or LENGTHS:
        data = subclass_chain(length)
        for engine_name in ENGINES:
            if length > MAX_LENGTH[engine_name]:
                rows.append((length, engine_name, None, None, None))
                continue
            per_triple, inferred, bytes_per_triple = measure_counters(
                engine_name, data
            )
            rows.append(
                (length, engine_name, inferred, per_triple, bytes_per_triple)
            )
    return rows


# ----------------------------------------------------------------------
# Full-vs-hybrid resident-closure comparison
# ----------------------------------------------------------------------
def hierarchy_dataset(depth=8, instances_per_leaf=2, prop_nodes=16, facts=40):
    """A hierarchy-heavy workload: a complete binary class tree with
    typed instances at the leaves, plus a subPropertyOf chain carrying
    data facts and a domain on its top property.

    Full mode materializes the quadratic tree/chain closures, each
    instance's ancestor types and each fact's super-property copies;
    hybrid mode stores none of that.
    """
    data = list(subclass_tree(depth))
    n_nodes = sum(2**level for level in range(depth + 1))
    first_leaf = n_nodes - 2**depth
    instance = 0
    for leaf in range(first_leaf, n_nodes):
        for _ in range(instances_per_leaf):
            data.append(
                Triple(
                    IRI(f"http://example.org/inst/i{instance}"),
                    RDF.type,
                    IRI(f"http://example.org/tree/n{leaf}"),
                )
            )
            instance += 1
    data.extend(subproperty_chain(prop_nodes))
    bottom = IRI("http://example.org/pchain/n0")
    top = IRI(f"http://example.org/pchain/n{prop_nodes - 1}")
    data.append(Triple(top, RDFS.domain, IRI("http://example.org/tree/n0")))
    for i in range(facts):
        data.append(
            Triple(
                IRI(f"http://example.org/fact/s{i}"),
                bottom,
                IRI(f"http://example.org/fact/o{i}"),
            )
        )
    return data


def run_hybrid_comparison(*, smoke=False, ruleset="rdfs-default"):
    """Flush the hierarchy dataset under both modes; compare residency.

    Returns the ``"hybrid"`` report section: per-mode stored/entailed
    counts, resident bytes, bytes per entailed triple and flush wall
    time, plus the hybrid/full ratios and an answer-equality check over
    the complete entailed closure.
    """
    depth = 5 if smoke else 8
    data = hierarchy_dataset(depth=depth)
    modes = {}
    answers = {}
    for mode in ("full", "hybrid"):
        engine = InferrayEngine(ruleset, materialize_mode=mode)
        engine.load_triples(data)
        started = time.perf_counter()
        stats = engine.materialize()
        flush_seconds = time.perf_counter() - started
        view = engine.read_view
        entailed = view.n_triples
        memory = engine.memory_bytes()
        answers[mode] = sorted(view.triples())
        modes[mode] = {
            "stored_triples": engine.main.n_triples,
            "entailed_triples": entailed,
            "memory_bytes": memory,
            "bytes_per_triple": memory / entailed if entailed else None,
            "flush_seconds": flush_seconds,
            "iterations": stats.iterations,
            "absorbed_rules": len(stats.absorbed_rules),
        }
    full, hybrid = modes["full"], modes["hybrid"]
    return {
        "dataset": {
            "name": "class-tree+prop-chain",
            "tree_depth": depth,
            "n_asserted": len(data),
            "ruleset": ruleset,
        },
        "modes": modes,
        "answers_match": answers["full"] == answers["hybrid"],
        "comparison": {
            "stored_triples_ratio": (
                hybrid["stored_triples"] / full["stored_triples"]
            ),
            "bytes_per_triple_ratio": (
                hybrid["bytes_per_triple"] / full["bytes_per_triple"]
            ),
            "flush_speedup": (
                full["flush_seconds"] / hybrid["flush_seconds"]
                if hybrid["flush_seconds"]
                else None
            ),
        },
    }


# ----------------------------------------------------------------------
# Kernel-backend resident-closure comparison (memory curves)
# ----------------------------------------------------------------------
#: (dataset name, generator, full scale, smoke scale).
BACKEND_DATASETS = [
    ("bsbm", bsbm_like, 10_000, 300),
    ("lubm", lubm_like, 500, 20),
]


def _closure_hash(engine) -> str:
    """SHA-256 over the sorted encoded closure (backend-independent:
    dictionary ids are a pure function of the asserted input order)."""
    digest = hashlib.sha256()
    for triple in sorted(engine.main.triples()):
        digest.update(repr(triple).encode("ascii"))
    return digest.hexdigest()


def measure_backend(backend, data, *, ruleset="rdfs-default"):
    """One backend's closure: residency report + wall clock + hash."""
    engine = InferrayEngine(ruleset, backend=backend)
    engine.load_triples(data)
    started = time.perf_counter()
    engine.materialize()
    wall_seconds = time.perf_counter() - started
    # Touch every ⟨o, s⟩ view so the caches are part of the residency
    # measurement on every backend (the closure scan builds none).
    for property_id in engine.main.property_ids():
        engine.main.table(property_id).os_pairs()
    report = measure_store(engine).as_dict()
    report["wall_seconds"] = wall_seconds
    report["answers_sha256"] = _closure_hash(engine)
    return report


def run_backend_comparison(*, smoke=False, ruleset="rdfs-default"):
    """Materialize each dataset on every backend; compare residency.

    Returns the ``"backends"`` report section: per-dataset, per-backend
    resident bytes/triple curves, wall clock and answer hashes, plus
    the compressed-vs-flat-baseline ratios the CI gate checks
    (``resident_ratio`` >= 4, identical ``answers_sha256``).
    """
    baseline = "numpy" if numpy_available() else "python"
    backends = ["python", "compressed"]
    if baseline == "numpy":
        backends.insert(1, "numpy")
    datasets = []
    for name, generate, full_scale, smoke_scale in BACKEND_DATASETS:
        scale = smoke_scale if smoke else full_scale
        data = generate(scale)
        legs = {}
        for backend in backends:
            legs[backend] = measure_backend(backend, data, ruleset=ruleset)
        flat, compressed = legs[baseline], legs["compressed"]
        datasets.append(
            {
                "dataset": name,
                "scale": scale,
                "n_asserted": len(data),
                "backends": legs,
                "comparison": {
                    "baseline": baseline,
                    "resident_ratio": (
                        flat["resident_bytes"] / compressed["resident_bytes"]
                        if compressed["resident_bytes"]
                        else None
                    ),
                    "wall_ratio": (
                        compressed["wall_seconds"] / flat["wall_seconds"]
                        if flat["wall_seconds"]
                        else None
                    ),
                    "answers_match": (
                        len(
                            {
                                leg["answers_sha256"]
                                for leg in legs.values()
                            }
                        )
                        == 1
                    ),
                },
            }
        )
    return {
        "ruleset": ruleset,
        "baseline_backend": baseline,
        "datasets": datasets,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes for CI (shorter chains, shallower tree)",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="also write the report as JSON"
    )
    args = parser.parse_args(argv)

    lengths = LENGTHS[:1] if args.smoke else LENGTHS
    rows = run_figure(lengths)
    headers = [
        "chain / engine",
        "inferred",
        "LLC miss/t",
        "dTLB miss/t",
        "pagefault/t",
        "L1d rate",
        "bytes/t",
    ]
    table = []
    for length, engine_name, inferred, per, bytes_per_triple in rows:
        if per is None:
            table.append(
                [f"{length} {engine_name}", "–", "–", "–", "–", "–", "–"]
            )
            continue
        table.append(
            [
                f"{length} {engine_name}",
                f"{inferred:,}",
                f"{per['cache_misses_per_triple']:.3f}",
                f"{per['tlb_misses_per_triple']:.3f}",
                f"{per['page_faults_per_triple']:.4f}",
                f"{per['l1_miss_rate']:.3f}",
                f"{bytes_per_triple:.1f}"
                if bytes_per_triple is not None
                else "–",
            ]
        )
    print("Figure 7 — simulated memory counters per inferred triple")
    print("(transitivity closure benchmark)")
    print(format_table(headers, table))

    # Figure-style grouped bars for each panel.
    panel_rows = [
        (f"chain{length}", engine_name, per)
        for length, engine_name, _, per, _ in rows
    ]
    for metric, label in (
        ("cache_misses_per_triple", "Cache (LLC) misses / triple"),
        ("tlb_misses_per_triple", "dTLB misses / triple"),
        ("page_faults_per_triple", "Page faults / triple"),
    ):
        print()
        print(render_bars(label, counters_to_bars(panel_rows, metric)))
    print(
        "\nExpected shape: Inferray lowest & size-stable on TLB misses and"
        "\npage faults; RETE worst by orders of magnitude; hash in between."
    )

    hybrid = run_hybrid_comparison(smoke=args.smoke)
    full_row = hybrid["modes"]["full"]
    hybrid_row = hybrid["modes"]["hybrid"]
    print(
        "\nFull vs hybrid resident closure "
        f"({hybrid['dataset']['name']}, depth "
        f"{hybrid['dataset']['tree_depth']}, "
        f"{hybrid['dataset']['n_asserted']} asserted):"
    )
    print(
        format_table(
            ["mode", "stored", "entailed", "bytes/t", "flush ms", "absorbed"],
            [
                [
                    mode,
                    f"{row['stored_triples']:,}",
                    f"{row['entailed_triples']:,}",
                    f"{row['bytes_per_triple']:.1f}",
                    f"{row['flush_seconds'] * 1000:.1f}",
                    str(row["absorbed_rules"]),
                ]
                for mode, row in (("full", full_row), ("hybrid", hybrid_row))
            ],
        )
    )
    comparison = hybrid["comparison"]
    print(
        f"answers match: {hybrid['answers_match']}; hybrid stores "
        f"{comparison['stored_triples_ratio']:.2f}x the triples at "
        f"{comparison['bytes_per_triple_ratio']:.2f}x the bytes/triple, "
        f"flushing {comparison['flush_speedup']:.2f}x faster"
    )

    backends = run_backend_comparison(smoke=args.smoke)
    print(
        f"\nKernel-backend resident closures "
        f"(baseline: {backends['baseline_backend']}):"
    )
    backend_table = []
    for row in backends["datasets"]:
        for backend, leg in row["backends"].items():
            backend_table.append(
                [
                    f"{row['dataset']}-{row['scale']} {backend}",
                    f"{leg['n_triples']:,}",
                    f"{leg['resident_bytes']:,}",
                    f"{leg['bytes_per_triple']:.2f}",
                    f"{leg['compression_ratio']:.2f}x",
                    f"{leg['wall_seconds']:.3f}",
                ]
            )
    print(
        format_table(
            ["dataset backend", "triples", "resident B", "B/t",
             "vs flat", "wall s"],
            backend_table,
        )
    )
    for row in backends["datasets"]:
        cmp_row = row["comparison"]
        print(
            f"{row['dataset']}-{row['scale']}: compressed closure is "
            f"{cmp_row['resident_ratio']:.2f}x smaller than "
            f"{cmp_row['baseline']} at {cmp_row['wall_ratio']:.2f}x the "
            f"wall clock; answers match: {cmp_row['answers_match']}"
        )

    if args.json:
        report = {
            "table": "hybrid-closure",
            "smoke": args.smoke,
            "memsim": [
                {
                    "chain": length,
                    "engine": engine_name,
                    "inferred": inferred,
                    "counters": per,
                    "bytes_per_triple": bytes_per_triple,
                }
                for length, engine_name, inferred, per, bytes_per_triple in rows
                if per is not None
            ],
            "hybrid": hybrid,
            "backends": backends,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {args.json}")


@pytest.mark.benchmark(group="fig7-memsim")
def test_inferray_memsim_chain100(benchmark):
    data = subclass_chain(100)
    per, _, bytes_per_triple = benchmark(
        lambda: measure_counters("inferray", data)
    )
    assert per["tlb_misses_per_triple"] < 1.0
    assert bytes_per_triple is not None and bytes_per_triple > 0


@pytest.mark.benchmark(group="fig7-memsim")
def test_hashjoin_memsim_chain100(benchmark):
    data = subclass_chain(100)
    per, _, _ = benchmark(lambda: measure_counters("hashjoin", data))
    assert per["tlb_misses_per_triple"] > 0.0


@pytest.mark.benchmark(group="fig7-memsim")
def test_backend_memory_curves_smoke(benchmark):
    section = benchmark(lambda: run_backend_comparison(smoke=True))
    for row in section["datasets"]:
        comparison = row["comparison"]
        assert comparison["answers_match"], row["dataset"]
        assert comparison["resident_ratio"] > 4.0, (
            row["dataset"],
            comparison,
        )


if __name__ == "__main__":
    main()
