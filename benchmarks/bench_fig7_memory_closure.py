"""Figure 7 — memory-hierarchy counters for the closure benchmark.

Paper: cache misses, dTLB misses and page faults *per inferred triple*
for chains of 500/1000/2500 nodes, measured with `perf`: Inferray stays
memory-friendly, OWLIM (RETE) struggles with page faults and TLB
misses, RDFox sits between and degrades with size.

Reproduction via :mod:`repro.memsim`: each engine runs instrumented
with a RecordingTracer; the trace replays through the simulated
Xeon-E3-like hierarchy (32K L1d / 8M LLC / 64-entry TLB / 4K pages).
Chains are scaled to 100/200/400 nodes.

Run:     python benchmarks/bench_fig7_memory_closure.py
Pytest:  pytest benchmarks/bench_fig7_memory_closure.py --benchmark-only
"""

import pytest

from repro.baselines.hashjoin import HashJoinEngine
from repro.baselines.rete import ReteEngine
from repro.bench.figures import counters_to_bars, render_bars
from repro.bench.harness import format_table
from repro.core.engine import InferrayEngine
from repro.datasets.chains import subclass_chain
from repro.memsim.hierarchy import replay_trace
from repro.memsim.tracer import RecordingTracer

LENGTHS = [50, 100, 200]

ENGINES = {
    "inferray": InferrayEngine,
    "hashjoin": HashJoinEngine,
    "rete": ReteEngine,
}

#: Longest chain each engine is asked to run (the paper's Figure 7 also
#: stops OWLIM's bars where Table 4 times out).  RETE's join work is
#: O(n³) in the chain length; past this cap a cell prints '–'.
MAX_LENGTH = {"inferray": 10_000, "hashjoin": 1_000, "rete": 100}


def measure_counters(engine_name, data, ruleset="rho-df"):
    """(per-triple counter dict, inferred count) for one engine run."""
    tracer = RecordingTracer()
    factory = ENGINES[engine_name]
    engine = factory(ruleset, tracer=tracer)
    engine.load_triples(data)
    engine.materialize()
    if engine_name == "inferray":
        inferred = engine.stats.n_inferred
    else:
        inferred = engine.stats.n_inferred
    counters = replay_trace(tracer.ops)
    return counters.per_triple(inferred), inferred


def run_figure(lengths=None):
    rows = []
    for length in lengths or LENGTHS:
        data = subclass_chain(length)
        for engine_name in ENGINES:
            if length > MAX_LENGTH[engine_name]:
                rows.append((length, engine_name, None, None))
                continue
            per_triple, inferred = measure_counters(engine_name, data)
            rows.append((length, engine_name, inferred, per_triple))
    return rows


def main():
    rows = run_figure()
    headers = [
        "chain / engine",
        "inferred",
        "LLC miss/t",
        "dTLB miss/t",
        "pagefault/t",
        "L1d rate",
    ]
    table = []
    for length, engine_name, inferred, per in rows:
        if per is None:
            table.append([f"{length} {engine_name}", "–", "–", "–", "–", "–"])
            continue
        table.append(
            [
                f"{length} {engine_name}",
                f"{inferred:,}",
                f"{per['cache_misses_per_triple']:.3f}",
                f"{per['tlb_misses_per_triple']:.3f}",
                f"{per['page_faults_per_triple']:.4f}",
                f"{per['l1_miss_rate']:.3f}",
            ]
        )
    print("Figure 7 — simulated memory counters per inferred triple")
    print("(transitivity closure benchmark)")
    print(format_table(headers, table))

    # Figure-style grouped bars for each panel.
    panel_rows = [
        (f"chain{length}", engine_name, per)
        for length, engine_name, _, per in rows
    ]
    for metric, label in (
        ("cache_misses_per_triple", "Cache (LLC) misses / triple"),
        ("tlb_misses_per_triple", "dTLB misses / triple"),
        ("page_faults_per_triple", "Page faults / triple"),
    ):
        print()
        print(render_bars(label, counters_to_bars(panel_rows, metric)))
    print(
        "\nExpected shape: Inferray lowest & size-stable on TLB misses and"
        "\npage faults; RETE worst by orders of magnitude; hash in between."
    )


@pytest.mark.benchmark(group="fig7-memsim")
def test_inferray_memsim_chain100(benchmark):
    data = subclass_chain(100)
    per, _ = benchmark(lambda: measure_counters("inferray", data))
    assert per["tlb_misses_per_triple"] < 1.0


@pytest.mark.benchmark(group="fig7-memsim")
def test_hashjoin_memsim_chain100(benchmark):
    data = subclass_chain(100)
    per, _ = benchmark(lambda: measure_counters("hashjoin", data))
    assert per["tlb_misses_per_triple"] > 0.0


if __name__ == "__main__":
    main()
