"""Table 2 — RDFS-flavour inference times (ρdf / RDFS-default / RDFS-Full).

Paper: BSBM 1M–50M plus Wikipedia/Yago/Wordnet, Inferray vs OWLIM vs
RDFox vs WebPIE.  Reproduction: BSBM-like at 1k–10k products plus the
real-world stand-ins; engines inferray / hashjoin (RDFox stand-in) /
rete (OWLIM stand-in); WebPIE (Hadoop) is N/A, as it is for most rows
in the paper.

Expected shape (paper §6.2): the hash-join engine is competitive or
better on RDFS-Full and small datasets; Inferray improves with size
and on the leaner fragments; the RETE engine trails and times out
first as datasets grow.

Run:     python benchmarks/bench_table2_rdfs.py
Backends: python benchmarks/bench_table2_rdfs.py --backend numpy
         runs the Inferray engine under the pure-Python kernels AND the
         requested kernel backend side by side and reports per-cell
         speedups (see repro.kernels).
Parallel: --workers N (default 4) additionally measures the Inferray
         engine sequentially vs under the dependency-aware parallel
         rule scheduler with N workers (rdfs-default fragment) and
         reports per-dataset throughput; --workers 1 skips it.
         --parallel-mode thread|process pins the executor substrate
         (default: the scheduler's cost model), and --modes (implied
         by --json) adds an auto vs thread vs process vs
         sharded-process comparison over the same workloads.
Repeats: every cell is warmed up --warmup times (default 1) and timed
         --runs times (default 3); cells report the median, and the
         max-min spread rides along in the JSON so reports show noise.
Scale:   --scale [smoke|full|xl] measures the executor substrates on
         scale workloads (BSBM-10k up to BSBM-1M, LUBM-500/5000),
         records the cost-model decision per cell, derives measured
         sequential->thread->process crossover points, and measures
         the persistent-pool payoff (pool kept across incremental
         flushes vs torn down per flush).  The crossover defaults in
         repro.core.scheduler are anchored to this section.
JSON:    --json [PATH] additionally writes a machine-readable record
         set (default PATH: BENCH_table2.json) — one entry per cell
         with dataset, engine, backend, ruleset, seconds, n_inferred,
         plus a top-level "parallel" section with the
         sequential-vs-parallel cells and the mean speedup, a
         "parallel_modes" section with the per-mode speedups, and —
         under --scale — a "scale" section with the per-substrate
         scale cells, crossovers and the pool-reuse comparison.
Smoke:   --smoke restricts to one tiny dataset with a single run per
         cell (the CI smoke job uses --smoke --json and validates the
         parallel section; the scale smoke job adds
         --scale smoke --runs 3).
Pytest:  pytest benchmarks/bench_table2_rdfs.py --benchmark-only
"""

import argparse
import json
import statistics
import time

import pytest

from repro.bench.harness import run_engine
from repro.bench.reporting import results_matrix, speedup_summary
from repro.core.engine import InferrayEngine
from repro.datasets.bsbm import bsbm_like
from repro.datasets.lubm import lubm_like
from repro.datasets.realworld import wikipedia_like, wordnet_like, yago_like

FRAGMENTS = ["rho-df", "rdfs-default", "rdfs-full"]
ENGINES = ["inferray", "hashjoin", "rete"]
TIMEOUT = 60.0


def workloads():
    """(name, triples) pairs, mirroring the paper's dataset rows."""
    return [
        ("BSBM-1k", bsbm_like(1_000)),
        ("BSBM-2.5k", bsbm_like(2_500)),
        ("BSBM-5k", bsbm_like(5_000)),
        ("BSBM-10k", bsbm_like(10_000)),
        ("Wikipedia*", wikipedia_like(10)),
        ("Yago*", yago_like(4)),
        ("Wordnet*", wordnet_like(8)),
    ]


def run_table(timeout=TIMEOUT, warmup=1, runs=3, subset=None):
    results = []
    for dataset_name, data in subset or workloads():
        for fragment in FRAGMENTS:
            for engine in ENGINES:
                results.append(
                    run_engine(
                        engine,
                        fragment,
                        data,
                        dataset_name=dataset_name,
                        timeout_seconds=timeout,
                        warmup=warmup,
                        runs=runs,
                    )
                )
    return results


def run_backend_table(backend, timeout=TIMEOUT, warmup=1, runs=3, subset=None):
    """Inferray under the pure-Python kernels vs under ``backend``."""
    backends = ("python",) if backend == "python" else ("python", backend)
    results = []
    for dataset_name, data in subset or workloads():
        for fragment in FRAGMENTS:
            for kernel_backend in backends:
                results.append(
                    run_engine(
                        "inferray",
                        fragment,
                        data,
                        dataset_name=dataset_name,
                        timeout_seconds=timeout,
                        warmup=warmup,
                        runs=runs,
                        engine_kwargs={"backend": kernel_backend},
                        label=kernel_backend,
                    )
                )
    return results


def run_parallel_comparison(
    workers, *, backend="auto", parallel_mode=None,
    fragment="rdfs-default", timeout=TIMEOUT, warmup=1, runs=3,
    subset=None, sequential_out=None
):
    """Inferray under workers=1 vs workers=N on each workload.

    Both legs run on the *same* kernel ``backend`` (the one the rest of
    the invocation measures); ``parallel_mode`` selects the executor
    substrate for the parallel leg (None = the scheduler's cost model
    picks per flush, and the cell records its decision).  Returns the
    JSON-ready section: per-dataset cells with sequential / parallel
    seconds + throughput, and the mean ``speedup`` across the cells
    that completed (the field the CI smoke job asserts on).
    ``sequential_out`` (an empty dict, if given) collects the measured
    sequential :class:`RunResult` per dataset so the modes comparison
    can reuse the baselines instead of re-running them.
    """
    from repro.kernels import resolve_backend

    backend_name = resolve_backend(backend).name
    mode_label = parallel_mode or "auto"
    cells = []
    speedups = []
    for dataset_name, data in subset or workloads():
        seq = run_engine(
            "inferray", fragment, data, dataset_name=dataset_name,
            timeout_seconds=timeout, warmup=warmup, runs=runs,
            engine_kwargs={"workers": 1, "backend": backend},
            label="sequential",
        )
        if sequential_out is not None:
            sequential_out[dataset_name] = seq
        par = run_engine(
            "inferray", fragment, data, dataset_name=dataset_name,
            timeout_seconds=timeout, warmup=warmup, runs=runs,
            engine_kwargs={
                "workers": workers,
                "backend": backend,
                "parallel_mode": parallel_mode,
            },
            label=f"workers-{workers}",
        )
        speedup = None
        if seq.seconds and par.seconds:
            speedup = seq.seconds / par.seconds
            speedups.append(speedup)
        cells.append(
            {
                "dataset": dataset_name,
                "ruleset": fragment,
                "backend": backend_name,
                "workers": workers,
                "parallel_mode": mode_label,
                "parallel_mode_picked": par.parallel_mode,
                "parallel_decision": par.parallel_decision,
                "sequential_seconds": seq.seconds,
                "parallel_seconds": par.seconds,
                "sequential_spread_seconds": seq.spread_seconds,
                "parallel_spread_seconds": par.spread_seconds,
                "sequential_throughput": seq.throughput,
                "parallel_throughput": par.throughput,
                "n_inferred": par.n_inferred,
                "speedup": speedup,
            }
        )
    return {
        "workers": workers,
        "ruleset": fragment,
        "backend": backend_name,
        "parallel_mode": mode_label,
        "speedup": statistics.fmean(speedups) if speedups else None,
        "cells": cells,
    }


#: The executor configurations the mode-comparison section measures:
#: (label, engine kwargs layered on top of workers/backend).
PARALLEL_MODE_LEGS = [
    # The cost model's own pick — the cell records which substrate it
    # chose, so the report shows whether auto beat the forced legs.
    ("auto", {"parallel_mode": "auto"}),
    ("thread", {"parallel_mode": "thread"}),
    ("process", {"parallel_mode": "process"}),
    # Forced intra-rule sharding: a low split threshold makes CAX-SCO
    # and the other join executors fan out across the workers even on
    # bench-sized inputs.
    ("process-sharded", {"parallel_mode": "process", "split_threshold": 512}),
]


def run_parallel_modes_comparison(
    workers, *, backend="auto", fragment="rdfs-default", timeout=TIMEOUT,
    warmup=1, runs=3, subset=None, sequential_cells=None
):
    """Auto vs thread vs process vs sharded-process, vs sequential.

    One sequential baseline per dataset, then every
    :data:`PARALLEL_MODE_LEGS` configuration at ``workers=N`` on the
    same kernel backend.  ``sequential_cells`` (dataset → sequential
    :class:`RunResult`, as measured by :func:`run_parallel_comparison`
    on the same subset/backend) reuses already-measured baselines
    instead of re-running them.  Returns the ``parallel_modes`` JSON
    section: per-dataset cells (seconds + speedup per mode, plus the
    substrate the ``auto`` leg's cost model picked) and per-mode mean
    speedups — the thread-vs-process payoff record for the repo's
    bench trajectory.
    """
    from repro.kernels import resolve_backend

    backend_name = resolve_backend(backend).name
    sequential_cells = sequential_cells or {}
    cells = []
    speedups = {label: [] for label, _ in PARALLEL_MODE_LEGS}
    for dataset_name, data in subset or workloads():
        seq = sequential_cells.get(dataset_name)
        if seq is None:
            seq = run_engine(
                "inferray", fragment, data, dataset_name=dataset_name,
                timeout_seconds=timeout, warmup=warmup, runs=runs,
                engine_kwargs={"workers": 1, "backend": backend},
                label="sequential",
            )
        cell = {
            "dataset": dataset_name,
            "ruleset": fragment,
            "backend": backend_name,
            "workers": workers,
            "sequential_seconds": seq.seconds,
            "n_inferred": seq.n_inferred,
            "modes": {},
        }
        for label, extra in PARALLEL_MODE_LEGS:
            par = run_engine(
                "inferray", fragment, data, dataset_name=dataset_name,
                timeout_seconds=timeout, warmup=warmup, runs=runs,
                engine_kwargs={
                    "workers": workers, "backend": backend, **extra
                },
                label=label,
            )
            speedup = None
            if seq.seconds and par.seconds:
                speedup = seq.seconds / par.seconds
                speedups[label].append(speedup)
            cell["modes"][label] = {
                "seconds": par.seconds,
                "spread_seconds": par.spread_seconds,
                "throughput": par.throughput,
                "speedup": speedup,
                "picked": par.parallel_mode,
            }
        cells.append(cell)
    return {
        "workers": workers,
        "ruleset": fragment,
        "backend": backend_name,
        "modes": [label for label, _ in PARALLEL_MODE_LEGS],
        "speedups": {
            label: (statistics.fmean(values) if values else None)
            for label, values in speedups.items()
        },
        "cells": cells,
    }


def measure_parallel_sections(
    args, *, backend="auto", warmup=1, runs=3, subset=None
):
    """The seq-vs-parallel and executor-mode sections, if enabled.

    Shared by the engine-table and backend-comparison branches of
    ``main``: runs :func:`run_parallel_comparison` (reporting it), then
    — when ``--modes`` or ``--json`` asks for it —
    :func:`run_parallel_modes_comparison` reusing the sequential
    baselines just measured.  Returns ``(parallel, parallel_modes)``
    (either may be ``None``).
    """
    if args.workers <= 1:
        return None, None
    sequential_cells = {}
    parallel = run_parallel_comparison(
        args.workers, backend=backend, parallel_mode=args.parallel_mode,
        timeout=args.timeout, warmup=warmup, runs=runs, subset=subset,
        sequential_out=sequential_cells,
    )
    _report_parallel_comparison(parallel)
    parallel_modes = None
    if args.modes or args.json:
        parallel_modes = run_parallel_modes_comparison(
            args.workers, backend=backend, timeout=args.timeout,
            warmup=warmup, runs=runs, subset=subset,
            sequential_cells=sequential_cells,
        )
        _report_parallel_modes(parallel_modes)
    return parallel, parallel_modes


# ----------------------------------------------------------------------
# Scale section: substrate crossovers + persistent-pool payoff
# ----------------------------------------------------------------------

#: Scale workloads per tier, smallest first (crossover detection walks
#: them in order).  The smoke tier is sized for CI; xl adds the
#: paper-scale BSBM-1M row (minutes of wall time).
SCALE_TIERS = {
    "smoke": ("BSBM-10k",),
    "full": ("BSBM-10k", "LUBM-500", "BSBM-100k", "LUBM-5000"),
    "xl": ("BSBM-10k", "LUBM-500", "BSBM-100k", "LUBM-5000", "BSBM-1M"),
}

SCALE_FACTORIES = {
    "BSBM-10k": lambda: bsbm_like(10_000),
    "LUBM-500": lambda: lubm_like(500),
    "BSBM-100k": lambda: bsbm_like(100_000),
    "LUBM-5000": lambda: lubm_like(5_000),
    "BSBM-1M": lambda: bsbm_like(1_000_000),
}

#: The substrates the scale section measures against sequential.
SCALE_LEGS = [
    ("auto", {"parallel_mode": "auto"}),
    ("thread", {"parallel_mode": "thread"}),
    ("process", {"parallel_mode": "process"}),
]


def _project_multicore_pick(decision, backend_name, cores=4):
    """What the cost model would pick at ``cores`` cores.

    Re-evaluates the recorded estimate against the recorded crossovers
    (the core-count gate is the only input that differs), so a one-core
    bench box can still report the substrate the same workload would
    get on a multicore machine.
    """
    if decision is None:
        return None
    estimated = decision.get("estimated_pairs")
    if estimated is None or cores < 2:
        return None
    if backend_name != "python":
        if estimated < decision["thread_crossover"]:
            return "sequential"
        return "thread"
    if estimated < decision["process_crossover"]:
        return "sequential"
    return "process"


def run_scale_section(
    workers, *, backend="auto", fragment="rdfs-default", tier="full",
    timeout=TIMEOUT, warmup=1, runs=3
):
    """Executor substrates on scale workloads + the pool-reuse payoff.

    For every tier workload: a sequential baseline, then each
    :data:`SCALE_LEGS` substrate at ``workers=N`` — each cell records
    median/spread/speedup and (for ``auto``) the cost model's full
    decision.  From the cells the section derives the measured
    crossover per substrate (the smallest workload where it beat
    sequential; ``null`` until one does, which on a one-core box is
    expected — the report also carries the pick the same estimate
    would get at four cores).  Ends with
    :func:`run_pool_reuse_comparison`, the persistent-pool half of the
    story.
    """
    from repro.core.scheduler import resolve_parallel_cores
    from repro.kernels import resolve_backend

    backend_name = resolve_backend(backend).name
    cores = resolve_parallel_cores()
    datasets = []
    crossovers = {label: None for label, _ in SCALE_LEGS}
    for dataset_name in SCALE_TIERS[tier]:
        data = SCALE_FACTORIES[dataset_name]()
        seq = run_engine(
            "inferray", fragment, data, dataset_name=dataset_name,
            timeout_seconds=timeout, warmup=warmup, runs=runs,
            engine_kwargs={"workers": 1, "backend": backend},
            label="sequential",
        )
        legs = {
            "sequential": {
                "seconds": seq.seconds,
                "spread_seconds": seq.spread_seconds,
                "throughput": seq.throughput,
            }
        }
        for label, extra in SCALE_LEGS:
            par = run_engine(
                "inferray", fragment, data, dataset_name=dataset_name,
                timeout_seconds=timeout, warmup=warmup, runs=runs,
                engine_kwargs={
                    "workers": workers, "backend": backend, **extra
                },
                label=label,
            )
            speedup = None
            if seq.seconds and par.seconds:
                speedup = seq.seconds / par.seconds
            legs[label] = {
                "seconds": par.seconds,
                "spread_seconds": par.spread_seconds,
                "throughput": par.throughput,
                "speedup": speedup,
                "picked": par.parallel_mode,
                "decision": par.parallel_decision,
            }
            if speedup is not None and speedup > 1.0:
                if crossovers.get(label) is None:
                    crossovers[label] = {
                        "dataset": dataset_name,
                        "n_input": seq.n_input,
                    }
        auto_decision = legs["auto"].get("decision")
        datasets.append(
            {
                "dataset": dataset_name,
                "n_input": seq.n_input,
                "n_inferred": seq.n_inferred,
                "legs": legs,
                "projected_pick_at_4_cores": _project_multicore_pick(
                    auto_decision, backend_name
                ),
            }
        )
    pool_reuse = run_pool_reuse_comparison(
        workers, backend=backend, fragment=fragment, timeout=timeout,
        warmup=warmup, runs=runs,
    )
    return {
        "tier": tier,
        "workers": workers,
        "cores": cores,
        "ruleset": fragment,
        "backend": backend_name,
        "warmup": warmup,
        "runs": runs,
        "datasets": datasets,
        "measured_crossovers": crossovers,
        "pool_reuse": pool_reuse,
    }


def run_pool_reuse_comparison(
    workers, *, backend="auto", fragment="rdfs-default", timeout=TIMEOUT,
    warmup=1, runs=3, scale=10_000, batches=6, batch_size=250
):
    """Persistent pool vs pool-per-flush over incremental flushes.

    The Store-lifetime worker pools exist for exactly this pattern: a
    long-lived :class:`~repro.core.store_api.Store` absorbing write
    batches through incremental flushes.  Both legs build the same
    BSBM base store under forced process mode, then time ``batches``
    add+flush rounds; the *cold* leg calls ``engine.close()`` before
    every flush (pool torn down, every shared-memory segment
    re-exported — the pre-persistence lifecycle), the *persistent* leg
    reuses the pool and the identity-keyed segments the way a served
    store does.  ``speedup`` is cold/persistent — the cell the scale
    gate expects to clear 1 even on one core, since pool spawn and
    re-export costs are pure overhead regardless of parallelism.
    """
    from repro.core.parallel import ProcessModeUnavailable, process_mode_supported
    from repro.core.store_api import Store

    if workers <= 1 or not process_mode_supported():
        return None
    data = list(bsbm_like(scale))
    delta = batches * batch_size
    base, tail = data[:-delta], data[-delta:]
    batch_list = [
        tail[i * batch_size:(i + 1) * batch_size] for i in range(batches)
    ]

    def once(cold):
        with Store(
            base, ruleset=fragment, backend=backend, workers=workers,
            parallel_mode="process", timeout_seconds=timeout,
        ) as store:
            store.materialize()  # initial full build (untimed)
            started = time.perf_counter()
            for batch in batch_list:
                if cold:
                    store.engine.close()  # next flush rebuilds the pool
                store.add(batch)
                store.materialize()
            elapsed = time.perf_counter() - started
            session = store.engine.scheduler.process_session
            segments = session.export_stats() if session is not None else {}
        return elapsed, segments

    def leg(cold):
        segments = {}
        for _ in range(warmup):
            once(cold)
        timings = []
        for _ in range(runs):
            elapsed, segments = once(cold)
            timings.append(elapsed)
        return (
            statistics.median(timings),
            max(timings) - min(timings),
            segments,
        )

    try:
        persistent_seconds, persistent_spread, segments = leg(False)
        cold_seconds, cold_spread, _ = leg(True)
    except ProcessModeUnavailable as error:
        print(f"pool-reuse comparison skipped: {error}")
        return None
    return {
        "dataset": f"BSBM-{scale // 1000}k",
        "ruleset": fragment,
        "parallel_mode": "process",
        "workers": workers,
        "batches": batches,
        "batch_size": batch_size,
        "persistent_seconds": persistent_seconds,
        "persistent_spread_seconds": persistent_spread,
        "cold_seconds": cold_seconds,
        "cold_spread_seconds": cold_spread,
        "speedup": cold_seconds / persistent_seconds,
        "segments_created": segments.get("segments_created"),
        "segments_reused": segments.get("segments_reused"),
    }


def _report_scale(section):
    print(
        f"\nScale section ({section['tier']} tier, {section['ruleset']}, "
        f"{section['backend']} kernels, {section['workers']} workers on "
        f"{section['cores']} core(s); median of {section['runs']} run(s))"
    )
    for row in section["datasets"]:
        legs = row["legs"]
        seq = legs["sequential"]["seconds"]
        parts = [
            f"sequential: {seq:.3f}s" if seq is not None
            else "sequential: timeout"
        ]
        for label, _ in SCALE_LEGS:
            leg = legs[label]
            if leg["speedup"] is None:
                parts.append(f"{label}: timeout")
                continue
            text = f"{label}: {leg['speedup']:.2f}x"
            if label == "auto" and leg.get("picked"):
                text += f" (picked {leg['picked']})"
            parts.append(text)
        print(f"  {row['dataset']} ({row['n_input']:,} triples): "
              + ", ".join(parts))
        projected = row.get("projected_pick_at_4_cores")
        if projected and projected != legs["auto"].get("picked"):
            print(f"    at 4 cores the cost model would pick: {projected}")
    for label, hit in section["measured_crossovers"].items():
        where = (
            f"{hit['dataset']} ({hit['n_input']:,} triples)"
            if hit else "not reached"
        )
        print(f"  crossover[{label}]: {where}")
    reuse = section.get("pool_reuse")
    if reuse:
        print(
            f"  pool reuse ({reuse['dataset']}, {reuse['batches']} "
            f"incremental flushes): persistent "
            f"{reuse['persistent_seconds']:.3f}s vs cold "
            f"{reuse['cold_seconds']:.3f}s -> {reuse['speedup']:.2f}x "
            f"(segments reused: {reuse['segments_reused']})"
        )


def _report_parallel_modes(section):
    workers = section["workers"]
    print(
        f"\nParallel executor modes at {workers} workers "
        f"({section['ruleset']}, {section['backend']} kernels; "
        "speedup vs sequential)"
    )
    for cell in section["cells"]:
        parts = []
        for label in section["modes"]:
            mode = cell["modes"][label]
            if mode["speedup"] is None:
                parts.append(f"{label}: timeout")
            else:
                parts.append(f"{label}: {mode['speedup']:.2f}x")
        print(f"  {cell['dataset']}: " + ", ".join(parts))
    means = ", ".join(
        f"{label}: {value:.2f}x" if value is not None else f"{label}: –"
        for label, value in section["speedups"].items()
    )
    print(f"  mean speedups — {means}")


def _report_parallel_comparison(section):
    workers = section["workers"]
    print(
        f"\nParallel rule scheduler — sequential vs {workers} "
        f"{section.get('parallel_mode') or 'auto'} workers "
        f"({section['ruleset']}, inferred triples/s)"
    )
    for cell in section["cells"]:
        seq_tps = cell["sequential_throughput"]
        par_tps = cell["parallel_throughput"]
        if seq_tps is None or par_tps is None:
            print(f"  {cell['dataset']}: timeout")
            continue
        print(
            f"  {cell['dataset']}: {seq_tps:,.0f} -> {par_tps:,.0f} "
            f"triples/s ({cell['speedup']:.2f}x)"
        )
    if section["speedup"] is not None:
        print(f"  mean speedup: {section['speedup']:.2f}x")


def _report_backend_comparison(backend, results, timeout=TIMEOUT):
    print(
        f"Table 2 — Inferray kernel backends (python vs {backend}), "
        f"execution time in ms ('–' = timeout of {timeout:.0f}s)"
    )
    print(results_matrix(results, columns=["python", backend]))
    print()
    by_cell = {}
    for result in results:
        by_cell.setdefault((result.dataset, result.ruleset), {})[
            result.engine
        ] = result
    largest = None
    for (dataset, ruleset), cells in by_cell.items():
        base = cells.get("python")
        fast = cells.get(backend)
        if base is None or fast is None:
            continue
        if fast.seconds is None or fast.seconds <= 0:
            if base.seconds is not None:
                print(
                    f"  {dataset}/{ruleset}: {backend} timed out, "
                    f"python finished in {base.cell()} ms"
                )
            continue
        n_input = fast.n_input
        if base.seconds is None:
            # python hit the timeout: report the provable lower bound
            # instead of silently dropping the cell.
            factor = timeout / fast.seconds
            print(
                f"  {dataset}/{ruleset}: {backend} is >= {factor:.1f}x "
                f"faster than python (python timed out at "
                f"{timeout * 1000:,.0f} ms -> {fast.cell()} ms, "
                f"{fast.n_inferred} inferred)"
            )
        else:
            factor = base.seconds / fast.seconds
            print(
                f"  {dataset}/{ruleset}: {backend} is {factor:.1f}x "
                f"{'faster' if factor >= 1 else 'slower'} than python "
                f"({base.cell()} ms -> {fast.cell()} ms, "
                f"{fast.n_inferred} inferred)"
            )
        if (
            largest is None
            or n_input > largest[0]
            or (n_input == largest[0] and factor > largest[3])
        ):
            largest = (n_input, dataset, ruleset, factor)
    if largest:
        _, dataset, ruleset, factor = largest
        print(
            f"\n  largest dataset ({dataset}, {ruleset}): "
            f"{backend} speedup {factor:.1f}x over the pure-Python backend"
        )


def write_json_report(
    path, results, *, mode, timeout, parallel=None, parallel_modes=None,
    scale=None,
):
    """Write the cell records as machine-readable JSON (CI artifact).

    Each record carries dataset / engine / backend / ruleset /
    seconds (null on timeout) / n_input / n_inferred / n_total.  In
    backend-comparison mode the RunResult's engine column *is* the
    kernel backend label; in engine mode the backend is whatever
    'auto' resolves to in this environment.  ``parallel`` (from
    :func:`run_parallel_comparison`) lands as the top-level
    ``"parallel"`` section — the CI smoke job fails when its
    ``speedup`` field is absent — and ``parallel_modes`` (from
    :func:`run_parallel_modes_comparison`) as the top-level
    ``"parallel_modes"`` section, and ``scale`` (from
    :func:`run_scale_section`) as the top-level ``"scale"`` section —
    all schema-checked against the committed baseline
    ``BENCH_table2.json``.
    """
    from repro.kernels import resolve_backend

    auto_backend = resolve_backend("auto").name
    records = []
    for result in results:
        is_backend_label = mode == "backends"
        records.append(
            {
                "dataset": result.dataset,
                "ruleset": result.ruleset,
                "engine": "inferray" if is_backend_label else result.engine,
                "backend": result.engine if is_backend_label else (
                    auto_backend if result.engine == "inferray" else None
                ),
                "seconds": result.seconds,
                "spread_seconds": result.spread_seconds,
                "timeout": result.seconds is None,
                "n_input": result.n_input,
                "n_inferred": result.n_inferred,
                "n_total": result.n_total,
                "runs": result.runs,
            }
        )
    payload = {
        "table": "table2-rdfs",
        "mode": mode,
        "timeout_seconds": timeout,
        "results": records,
    }
    if parallel is not None:
        payload["parallel"] = parallel
    if parallel_modes is not None:
        payload["parallel_modes"] = parallel_modes
    if scale is not None:
        payload["scale"] = scale
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(records)} cell records to {path}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend",
        choices=("python", "numpy", "auto"),
        default=None,
        help="compare Inferray kernel backends (python vs the given "
        "one) instead of the engine-vs-engine table",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help=f"per-run timeout in seconds (default {TIMEOUT:.0f}; "
        "30 under --smoke unless given)",
    )
    parser.add_argument(
        "--json",
        nargs="?",
        const="BENCH_table2.json",
        default=None,
        metavar="PATH",
        help="also write machine-readable results "
        "(default PATH: BENCH_table2.json)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny single-run configuration for CI smoke checks",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="measure the parallel rule scheduler with N workers "
        "against sequential execution (1 skips the comparison; "
        "default 4)",
    )
    parser.add_argument(
        "--parallel-mode",
        choices=("auto", "thread", "process"),
        default=None,
        help="executor substrate for the seq-vs-parallel comparison "
        "(default: the scheduler's cost model picks per flush)",
    )
    parser.add_argument(
        "--modes",
        action="store_true",
        default=None,
        help="also measure auto vs thread vs process vs "
        "sharded-process at --workers (the parallel_modes report "
        "section; implied by --json)",
    )
    parser.add_argument(
        "--warmup",
        type=int,
        default=None,
        metavar="K",
        help="untimed warm-up runs per cell (default 1; 0 under "
        "--smoke unless given)",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=None,
        metavar="K",
        help="timed runs per cell, reported as the median (default 3; "
        "1 under --smoke unless given)",
    )
    parser.add_argument(
        "--scale",
        nargs="?",
        const="full",
        default=None,
        choices=tuple(SCALE_TIERS),
        metavar="TIER",
        help="also measure the executor substrates on scale workloads "
        "(smoke: BSBM-10k; full: up to LUBM-5000; xl: adds BSBM-1M), "
        "derive the measured crossovers and the persistent-pool "
        "payoff (the 'scale' report section)",
    )
    args = parser.parse_args(argv)

    subset = None
    warmup = args.warmup if args.warmup is not None else (
        0 if args.smoke else 1
    )
    runs = args.runs if args.runs is not None else (1 if args.smoke else 3)
    explicit_timeout = args.timeout is not None
    if not explicit_timeout:
        args.timeout = TIMEOUT
    if args.smoke:
        subset = [("BSBM-300", bsbm_like(300))]
        if not explicit_timeout:
            args.timeout = min(args.timeout, 30.0)

    if args.backend:
        from repro.kernels import KernelUnavailableError, numpy_available

        backend = args.backend
        if backend == "auto":
            backend = "numpy" if numpy_available() else "python"
        try:
            results = run_backend_table(
                backend, timeout=args.timeout, warmup=warmup, runs=runs,
                subset=subset,
            )
        except KernelUnavailableError as error:
            import sys

            print(f"bench_table2_rdfs: {error}", file=sys.stderr)
            raise SystemExit(2)
        if backend == "python":
            print(
                "Table 2 — Inferray on the pure-Python kernel backend, "
                f"execution time in ms ('–' = timeout of {args.timeout:.0f}s)"
            )
            print(results_matrix(results, columns=["python"]))
        else:
            _report_backend_comparison(backend, results, timeout=args.timeout)
        # Seq-vs-parallel on the backend this invocation measured
        # (availability was proven by the table run above).
        parallel, parallel_modes = measure_parallel_sections(
            args, backend=backend, warmup=warmup, runs=runs, subset=subset
        )
        scale = None
        if args.scale:
            scale = run_scale_section(
                args.workers, backend=backend, tier=args.scale,
                timeout=args.timeout, warmup=warmup, runs=runs,
            )
            _report_scale(scale)
        if args.json:
            write_json_report(
                args.json, results, mode="backends", timeout=args.timeout,
                parallel=parallel, parallel_modes=parallel_modes,
                scale=scale,
            )
        return

    results = run_table(
        timeout=args.timeout, warmup=warmup, runs=runs, subset=subset
    )
    print(
        "Table 2 — RDFS flavours, execution time in ms "
        f"('–' = timeout of {args.timeout:.0f}s; * = synthetic stand-in)"
    )
    print(results_matrix(results, columns=ENGINES))
    print()
    for line in speedup_summary(results):
        print(" ", line)
    parallel, parallel_modes = measure_parallel_sections(
        args, warmup=warmup, runs=runs, subset=subset
    )
    scale = None
    if args.scale:
        scale = run_scale_section(
            args.workers, tier=args.scale, timeout=args.timeout,
            warmup=warmup, runs=runs,
        )
        _report_scale(scale)
    if args.json:
        write_json_report(
            args.json, results, mode="engines", timeout=args.timeout,
            parallel=parallel, parallel_modes=parallel_modes, scale=scale,
        )


# ----------------------------------------------------------------------
# pytest-benchmark entry points (single representative cells)
# ----------------------------------------------------------------------
_BSBM = bsbm_like(300)


def _run(engine_name, ruleset):
    from repro.bench.harness import ENGINE_FACTORIES

    engine = ENGINE_FACTORIES[engine_name](ruleset)
    engine.load_triples(_BSBM)
    engine.materialize()
    return engine.n_triples


@pytest.mark.benchmark(group="table2-rdfs")
def test_inferray_bsbm_rdfs_default(benchmark):
    assert benchmark(lambda: _run("inferray", "rdfs-default")) > len(_BSBM)


@pytest.mark.benchmark(group="table2-rdfs")
def test_hashjoin_bsbm_rdfs_default(benchmark):
    assert benchmark(lambda: _run("hashjoin", "rdfs-default")) > len(_BSBM)


@pytest.mark.benchmark(group="table2-rdfs")
def test_rete_bsbm_rdfs_default(benchmark):
    assert benchmark(lambda: _run("rete", "rdfs-default")) > len(_BSBM)


@pytest.mark.benchmark(group="table2-rdfs-full")
def test_inferray_bsbm_rdfs_full(benchmark):
    assert benchmark(lambda: _run("inferray", "rdfs-full")) > len(_BSBM)


@pytest.mark.benchmark(group="table2-rdfs-full")
def test_hashjoin_bsbm_rdfs_full(benchmark):
    assert benchmark(lambda: _run("hashjoin", "rdfs-full")) > len(_BSBM)


if __name__ == "__main__":
    main()
