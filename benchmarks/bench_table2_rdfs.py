"""Table 2 — RDFS-flavour inference times (ρdf / RDFS-default / RDFS-Full).

Paper: BSBM 1M–50M plus Wikipedia/Yago/Wordnet, Inferray vs OWLIM vs
RDFox vs WebPIE.  Reproduction: BSBM-like at 1k–10k products plus the
real-world stand-ins; engines inferray / hashjoin (RDFox stand-in) /
rete (OWLIM stand-in); WebPIE (Hadoop) is N/A, as it is for most rows
in the paper.

Expected shape (paper §6.2): the hash-join engine is competitive or
better on RDFS-Full and small datasets; Inferray improves with size
and on the leaner fragments; the RETE engine trails and times out
first as datasets grow.

Run:     python benchmarks/bench_table2_rdfs.py
Pytest:  pytest benchmarks/bench_table2_rdfs.py --benchmark-only
"""

import pytest

from repro.bench.harness import run_engine
from repro.bench.reporting import results_matrix, speedup_summary
from repro.core.engine import InferrayEngine
from repro.datasets.bsbm import bsbm_like
from repro.datasets.realworld import wikipedia_like, wordnet_like, yago_like

FRAGMENTS = ["rho-df", "rdfs-default", "rdfs-full"]
ENGINES = ["inferray", "hashjoin", "rete"]
TIMEOUT = 60.0


def workloads():
    """(name, triples) pairs, mirroring the paper's dataset rows."""
    return [
        ("BSBM-1k", bsbm_like(1_000)),
        ("BSBM-2.5k", bsbm_like(2_500)),
        ("BSBM-5k", bsbm_like(5_000)),
        ("BSBM-10k", bsbm_like(10_000)),
        ("Wikipedia*", wikipedia_like(10)),
        ("Yago*", yago_like(4)),
        ("Wordnet*", wordnet_like(8)),
    ]


def run_table(timeout=TIMEOUT, runs=1, subset=None):
    results = []
    for dataset_name, data in subset or workloads():
        for fragment in FRAGMENTS:
            for engine in ENGINES:
                results.append(
                    run_engine(
                        engine,
                        fragment,
                        data,
                        dataset_name=dataset_name,
                        timeout_seconds=timeout,
                        warmup=0,
                        runs=runs,
                    )
                )
    return results


def main():
    results = run_table()
    print(
        "Table 2 — RDFS flavours, execution time in ms "
        f"('–' = timeout of {TIMEOUT:.0f}s; * = synthetic stand-in)"
    )
    print(results_matrix(results, columns=ENGINES))
    print()
    for line in speedup_summary(results):
        print(" ", line)


# ----------------------------------------------------------------------
# pytest-benchmark entry points (single representative cells)
# ----------------------------------------------------------------------
_BSBM = bsbm_like(300)


def _run(engine_name, ruleset):
    from repro.bench.harness import ENGINE_FACTORIES

    engine = ENGINE_FACTORIES[engine_name](ruleset)
    engine.load_triples(_BSBM)
    engine.materialize()
    return engine.n_triples


@pytest.mark.benchmark(group="table2-rdfs")
def test_inferray_bsbm_rdfs_default(benchmark):
    assert benchmark(lambda: _run("inferray", "rdfs-default")) > len(_BSBM)


@pytest.mark.benchmark(group="table2-rdfs")
def test_hashjoin_bsbm_rdfs_default(benchmark):
    assert benchmark(lambda: _run("hashjoin", "rdfs-default")) > len(_BSBM)


@pytest.mark.benchmark(group="table2-rdfs")
def test_rete_bsbm_rdfs_default(benchmark):
    assert benchmark(lambda: _run("rete", "rdfs-default")) > len(_BSBM)


@pytest.mark.benchmark(group="table2-rdfs-full")
def test_inferray_bsbm_rdfs_full(benchmark):
    assert benchmark(lambda: _run("inferray", "rdfs-full")) > len(_BSBM)


@pytest.mark.benchmark(group="table2-rdfs-full")
def test_hashjoin_bsbm_rdfs_full(benchmark):
    assert benchmark(lambda: _run("hashjoin", "rdfs-full")) > len(_BSBM)


if __name__ == "__main__":
    main()
