"""Table 2 — RDFS-flavour inference times (ρdf / RDFS-default / RDFS-Full).

Paper: BSBM 1M–50M plus Wikipedia/Yago/Wordnet, Inferray vs OWLIM vs
RDFox vs WebPIE.  Reproduction: BSBM-like at 1k–10k products plus the
real-world stand-ins; engines inferray / hashjoin (RDFox stand-in) /
rete (OWLIM stand-in); WebPIE (Hadoop) is N/A, as it is for most rows
in the paper.

Expected shape (paper §6.2): the hash-join engine is competitive or
better on RDFS-Full and small datasets; Inferray improves with size
and on the leaner fragments; the RETE engine trails and times out
first as datasets grow.

Run:     python benchmarks/bench_table2_rdfs.py
Backends: python benchmarks/bench_table2_rdfs.py --backend numpy
         runs the Inferray engine under the pure-Python kernels AND the
         requested kernel backend side by side and reports per-cell
         speedups (see repro.kernels).
Parallel: --workers N (default 4) additionally measures the Inferray
         engine sequentially vs under the dependency-aware parallel
         rule scheduler with N workers (rdfs-default fragment) and
         reports per-dataset throughput; --workers 1 skips it.
         --parallel-mode thread|process pins the executor substrate
         (default: the engine's auto policy), and --modes (implied by
         --json) adds a thread vs process vs sharded-process
         comparison over the same workloads.
JSON:    --json [PATH] additionally writes a machine-readable record
         set (default PATH: BENCH_table2.json) — one entry per cell
         with dataset, engine, backend, ruleset, seconds, n_inferred,
         plus a top-level "parallel" section with the
         sequential-vs-parallel cells and the mean speedup, and a
         "parallel_modes" section with the per-mode speedups.
Smoke:   --smoke restricts to one tiny dataset with a single run per
         cell (the CI smoke job uses --smoke --json and validates the
         parallel section).
Pytest:  pytest benchmarks/bench_table2_rdfs.py --benchmark-only
"""

import argparse
import json
import statistics

import pytest

from repro.bench.harness import run_engine
from repro.bench.reporting import results_matrix, speedup_summary
from repro.core.engine import InferrayEngine
from repro.datasets.bsbm import bsbm_like
from repro.datasets.realworld import wikipedia_like, wordnet_like, yago_like

FRAGMENTS = ["rho-df", "rdfs-default", "rdfs-full"]
ENGINES = ["inferray", "hashjoin", "rete"]
TIMEOUT = 60.0


def workloads():
    """(name, triples) pairs, mirroring the paper's dataset rows."""
    return [
        ("BSBM-1k", bsbm_like(1_000)),
        ("BSBM-2.5k", bsbm_like(2_500)),
        ("BSBM-5k", bsbm_like(5_000)),
        ("BSBM-10k", bsbm_like(10_000)),
        ("Wikipedia*", wikipedia_like(10)),
        ("Yago*", yago_like(4)),
        ("Wordnet*", wordnet_like(8)),
    ]


def run_table(timeout=TIMEOUT, runs=1, subset=None):
    results = []
    for dataset_name, data in subset or workloads():
        for fragment in FRAGMENTS:
            for engine in ENGINES:
                results.append(
                    run_engine(
                        engine,
                        fragment,
                        data,
                        dataset_name=dataset_name,
                        timeout_seconds=timeout,
                        warmup=0,
                        runs=runs,
                    )
                )
    return results


def run_backend_table(backend, timeout=TIMEOUT, runs=1, subset=None):
    """Inferray under the pure-Python kernels vs under ``backend``."""
    backends = ("python",) if backend == "python" else ("python", backend)
    results = []
    for dataset_name, data in subset or workloads():
        for fragment in FRAGMENTS:
            for kernel_backend in backends:
                results.append(
                    run_engine(
                        "inferray",
                        fragment,
                        data,
                        dataset_name=dataset_name,
                        timeout_seconds=timeout,
                        warmup=0,
                        runs=runs,
                        engine_kwargs={"backend": kernel_backend},
                        label=kernel_backend,
                    )
                )
    return results


def run_parallel_comparison(
    workers, *, backend="auto", parallel_mode=None,
    fragment="rdfs-default", timeout=TIMEOUT, runs=1, subset=None,
    sequential_out=None
):
    """Inferray under workers=1 vs workers=N on each workload.

    Both legs run on the *same* kernel ``backend`` (the one the rest of
    the invocation measures); ``parallel_mode`` selects the executor
    substrate for the parallel leg (None = the engine's 'auto' policy).
    Returns the JSON-ready section: per-dataset cells with sequential /
    parallel seconds + throughput, and the mean ``speedup`` across the
    cells that completed (the field the CI smoke job asserts on).
    ``sequential_out`` (an empty dict, if given) collects the measured
    sequential :class:`RunResult` per dataset so the modes comparison
    can reuse the baselines instead of re-running them.
    """
    from repro.core.parallel import resolve_parallel_mode
    from repro.kernels import resolve_backend

    backend_name = resolve_backend(backend).name
    mode_label = resolve_parallel_mode(
        parallel_mode, backend_name=backend_name
    )
    cells = []
    speedups = []
    for dataset_name, data in subset or workloads():
        seq = run_engine(
            "inferray", fragment, data, dataset_name=dataset_name,
            timeout_seconds=timeout, warmup=0, runs=runs,
            engine_kwargs={"workers": 1, "backend": backend},
            label="sequential",
        )
        if sequential_out is not None:
            sequential_out[dataset_name] = seq
        par = run_engine(
            "inferray", fragment, data, dataset_name=dataset_name,
            timeout_seconds=timeout, warmup=0, runs=runs,
            engine_kwargs={
                "workers": workers,
                "backend": backend,
                "parallel_mode": parallel_mode,
            },
            label=f"workers-{workers}",
        )
        speedup = None
        if seq.seconds and par.seconds:
            speedup = seq.seconds / par.seconds
            speedups.append(speedup)
        cells.append(
            {
                "dataset": dataset_name,
                "ruleset": fragment,
                "backend": backend_name,
                "workers": workers,
                "parallel_mode": mode_label,
                "sequential_seconds": seq.seconds,
                "parallel_seconds": par.seconds,
                "sequential_throughput": seq.throughput,
                "parallel_throughput": par.throughput,
                "n_inferred": par.n_inferred,
                "speedup": speedup,
            }
        )
    return {
        "workers": workers,
        "ruleset": fragment,
        "backend": backend_name,
        "parallel_mode": mode_label,
        "speedup": statistics.fmean(speedups) if speedups else None,
        "cells": cells,
    }


#: The executor configurations the mode-comparison section measures:
#: (label, engine kwargs layered on top of workers/backend).
PARALLEL_MODE_LEGS = [
    ("thread", {"parallel_mode": "thread"}),
    ("process", {"parallel_mode": "process"}),
    # Forced intra-rule sharding: a low split threshold makes CAX-SCO
    # and the other join executors fan out across the workers even on
    # bench-sized inputs.
    ("process-sharded", {"parallel_mode": "process", "split_threshold": 512}),
]


def run_parallel_modes_comparison(
    workers, *, backend="auto", fragment="rdfs-default", timeout=TIMEOUT,
    runs=1, subset=None, sequential_cells=None
):
    """Thread vs process vs sharded-process, against sequential.

    One sequential baseline per dataset, then every
    :data:`PARALLEL_MODE_LEGS` configuration at ``workers=N`` on the
    same kernel backend.  ``sequential_cells`` (dataset → sequential
    :class:`RunResult`, as measured by :func:`run_parallel_comparison`
    on the same subset/backend) reuses already-measured baselines
    instead of re-running them.  Returns the ``parallel_modes`` JSON
    section: per-dataset cells (seconds + speedup per mode) and
    per-mode mean speedups — the thread-vs-process payoff record for
    the repo's bench trajectory.
    """
    from repro.kernels import resolve_backend

    backend_name = resolve_backend(backend).name
    sequential_cells = sequential_cells or {}
    cells = []
    speedups = {label: [] for label, _ in PARALLEL_MODE_LEGS}
    for dataset_name, data in subset or workloads():
        seq = sequential_cells.get(dataset_name)
        if seq is None:
            seq = run_engine(
                "inferray", fragment, data, dataset_name=dataset_name,
                timeout_seconds=timeout, warmup=0, runs=runs,
                engine_kwargs={"workers": 1, "backend": backend},
                label="sequential",
            )
        cell = {
            "dataset": dataset_name,
            "ruleset": fragment,
            "backend": backend_name,
            "workers": workers,
            "sequential_seconds": seq.seconds,
            "n_inferred": seq.n_inferred,
            "modes": {},
        }
        for label, extra in PARALLEL_MODE_LEGS:
            par = run_engine(
                "inferray", fragment, data, dataset_name=dataset_name,
                timeout_seconds=timeout, warmup=0, runs=runs,
                engine_kwargs={
                    "workers": workers, "backend": backend, **extra
                },
                label=label,
            )
            speedup = None
            if seq.seconds and par.seconds:
                speedup = seq.seconds / par.seconds
                speedups[label].append(speedup)
            cell["modes"][label] = {
                "seconds": par.seconds,
                "throughput": par.throughput,
                "speedup": speedup,
            }
        cells.append(cell)
    return {
        "workers": workers,
        "ruleset": fragment,
        "backend": backend_name,
        "modes": [label for label, _ in PARALLEL_MODE_LEGS],
        "speedups": {
            label: (statistics.fmean(values) if values else None)
            for label, values in speedups.items()
        },
        "cells": cells,
    }


def measure_parallel_sections(args, *, backend="auto", runs=1, subset=None):
    """The seq-vs-parallel and executor-mode sections, if enabled.

    Shared by the engine-table and backend-comparison branches of
    ``main``: runs :func:`run_parallel_comparison` (reporting it), then
    — when ``--modes`` or ``--json`` asks for it —
    :func:`run_parallel_modes_comparison` reusing the sequential
    baselines just measured.  Returns ``(parallel, parallel_modes)``
    (either may be ``None``).
    """
    if args.workers <= 1:
        return None, None
    sequential_cells = {}
    parallel = run_parallel_comparison(
        args.workers, backend=backend, parallel_mode=args.parallel_mode,
        timeout=args.timeout, runs=runs, subset=subset,
        sequential_out=sequential_cells,
    )
    _report_parallel_comparison(parallel)
    parallel_modes = None
    if args.modes or args.json:
        parallel_modes = run_parallel_modes_comparison(
            args.workers, backend=backend, timeout=args.timeout,
            runs=runs, subset=subset, sequential_cells=sequential_cells,
        )
        _report_parallel_modes(parallel_modes)
    return parallel, parallel_modes


def _report_parallel_modes(section):
    workers = section["workers"]
    print(
        f"\nParallel executor modes at {workers} workers "
        f"({section['ruleset']}, {section['backend']} kernels; "
        "speedup vs sequential)"
    )
    for cell in section["cells"]:
        parts = []
        for label in section["modes"]:
            mode = cell["modes"][label]
            if mode["speedup"] is None:
                parts.append(f"{label}: timeout")
            else:
                parts.append(f"{label}: {mode['speedup']:.2f}x")
        print(f"  {cell['dataset']}: " + ", ".join(parts))
    means = ", ".join(
        f"{label}: {value:.2f}x" if value is not None else f"{label}: –"
        for label, value in section["speedups"].items()
    )
    print(f"  mean speedups — {means}")


def _report_parallel_comparison(section):
    workers = section["workers"]
    print(
        f"\nParallel rule scheduler — sequential vs {workers} "
        f"{section.get('parallel_mode') or 'auto'} workers "
        f"({section['ruleset']}, inferred triples/s)"
    )
    for cell in section["cells"]:
        seq_tps = cell["sequential_throughput"]
        par_tps = cell["parallel_throughput"]
        if seq_tps is None or par_tps is None:
            print(f"  {cell['dataset']}: timeout")
            continue
        print(
            f"  {cell['dataset']}: {seq_tps:,.0f} -> {par_tps:,.0f} "
            f"triples/s ({cell['speedup']:.2f}x)"
        )
    if section["speedup"] is not None:
        print(f"  mean speedup: {section['speedup']:.2f}x")


def _report_backend_comparison(backend, results, timeout=TIMEOUT):
    print(
        f"Table 2 — Inferray kernel backends (python vs {backend}), "
        f"execution time in ms ('–' = timeout of {timeout:.0f}s)"
    )
    print(results_matrix(results, columns=["python", backend]))
    print()
    by_cell = {}
    for result in results:
        by_cell.setdefault((result.dataset, result.ruleset), {})[
            result.engine
        ] = result
    largest = None
    for (dataset, ruleset), cells in by_cell.items():
        base = cells.get("python")
        fast = cells.get(backend)
        if base is None or fast is None:
            continue
        if fast.seconds is None or fast.seconds <= 0:
            if base.seconds is not None:
                print(
                    f"  {dataset}/{ruleset}: {backend} timed out, "
                    f"python finished in {base.cell()} ms"
                )
            continue
        n_input = fast.n_input
        if base.seconds is None:
            # python hit the timeout: report the provable lower bound
            # instead of silently dropping the cell.
            factor = timeout / fast.seconds
            print(
                f"  {dataset}/{ruleset}: {backend} is >= {factor:.1f}x "
                f"faster than python (python timed out at "
                f"{timeout * 1000:,.0f} ms -> {fast.cell()} ms, "
                f"{fast.n_inferred} inferred)"
            )
        else:
            factor = base.seconds / fast.seconds
            print(
                f"  {dataset}/{ruleset}: {backend} is {factor:.1f}x "
                f"{'faster' if factor >= 1 else 'slower'} than python "
                f"({base.cell()} ms -> {fast.cell()} ms, "
                f"{fast.n_inferred} inferred)"
            )
        if (
            largest is None
            or n_input > largest[0]
            or (n_input == largest[0] and factor > largest[3])
        ):
            largest = (n_input, dataset, ruleset, factor)
    if largest:
        _, dataset, ruleset, factor = largest
        print(
            f"\n  largest dataset ({dataset}, {ruleset}): "
            f"{backend} speedup {factor:.1f}x over the pure-Python backend"
        )


def write_json_report(
    path, results, *, mode, timeout, parallel=None, parallel_modes=None
):
    """Write the cell records as machine-readable JSON (CI artifact).

    Each record carries dataset / engine / backend / ruleset /
    seconds (null on timeout) / n_input / n_inferred / n_total.  In
    backend-comparison mode the RunResult's engine column *is* the
    kernel backend label; in engine mode the backend is whatever
    'auto' resolves to in this environment.  ``parallel`` (from
    :func:`run_parallel_comparison`) lands as the top-level
    ``"parallel"`` section — the CI smoke job fails when its
    ``speedup`` field is absent — and ``parallel_modes`` (from
    :func:`run_parallel_modes_comparison`) as the top-level
    ``"parallel_modes"`` section, schema-checked against the committed
    baseline ``BENCH_table2.json``.
    """
    from repro.kernels import resolve_backend

    auto_backend = resolve_backend("auto").name
    records = []
    for result in results:
        is_backend_label = mode == "backends"
        records.append(
            {
                "dataset": result.dataset,
                "ruleset": result.ruleset,
                "engine": "inferray" if is_backend_label else result.engine,
                "backend": result.engine if is_backend_label else (
                    auto_backend if result.engine == "inferray" else None
                ),
                "seconds": result.seconds,
                "timeout": result.seconds is None,
                "n_input": result.n_input,
                "n_inferred": result.n_inferred,
                "n_total": result.n_total,
                "runs": result.runs,
            }
        )
    payload = {
        "table": "table2-rdfs",
        "mode": mode,
        "timeout_seconds": timeout,
        "results": records,
    }
    if parallel is not None:
        payload["parallel"] = parallel
    if parallel_modes is not None:
        payload["parallel_modes"] = parallel_modes
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(records)} cell records to {path}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend",
        choices=("python", "numpy", "auto"),
        default=None,
        help="compare Inferray kernel backends (python vs the given "
        "one) instead of the engine-vs-engine table",
    )
    parser.add_argument(
        "--timeout", type=float, default=TIMEOUT,
        help=f"per-run timeout in seconds (default {TIMEOUT:.0f})",
    )
    parser.add_argument(
        "--json",
        nargs="?",
        const="BENCH_table2.json",
        default=None,
        metavar="PATH",
        help="also write machine-readable results "
        "(default PATH: BENCH_table2.json)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny single-run configuration for CI smoke checks",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="measure the parallel rule scheduler with N workers "
        "against sequential execution (1 skips the comparison; "
        "default 4)",
    )
    parser.add_argument(
        "--parallel-mode",
        choices=("auto", "thread", "process"),
        default=None,
        help="executor substrate for the seq-vs-parallel comparison "
        "(default: the engine's auto policy — process for python "
        "kernels, threads for numpy)",
    )
    parser.add_argument(
        "--modes",
        action="store_true",
        default=None,
        help="also measure thread vs process vs sharded-process at "
        "--workers (the parallel_modes report section; implied by "
        "--json)",
    )
    args = parser.parse_args(argv)

    subset = None
    runs = 1
    if args.smoke:
        subset = [("BSBM-300", bsbm_like(300))]
        args.timeout = min(args.timeout, 30.0)

    if args.backend:
        from repro.kernels import KernelUnavailableError, numpy_available

        backend = args.backend
        if backend == "auto":
            backend = "numpy" if numpy_available() else "python"
        try:
            results = run_backend_table(
                backend, timeout=args.timeout, runs=runs, subset=subset
            )
        except KernelUnavailableError as error:
            import sys

            print(f"bench_table2_rdfs: {error}", file=sys.stderr)
            raise SystemExit(2)
        if backend == "python":
            print(
                "Table 2 — Inferray on the pure-Python kernel backend, "
                f"execution time in ms ('–' = timeout of {args.timeout:.0f}s)"
            )
            print(results_matrix(results, columns=["python"]))
        else:
            _report_backend_comparison(backend, results, timeout=args.timeout)
        # Seq-vs-parallel on the backend this invocation measured
        # (availability was proven by the table run above).
        parallel, parallel_modes = measure_parallel_sections(
            args, backend=backend, runs=runs, subset=subset
        )
        if args.json:
            write_json_report(
                args.json, results, mode="backends", timeout=args.timeout,
                parallel=parallel, parallel_modes=parallel_modes,
            )
        return

    results = run_table(timeout=args.timeout, runs=runs, subset=subset)
    print(
        "Table 2 — RDFS flavours, execution time in ms "
        f"('–' = timeout of {args.timeout:.0f}s; * = synthetic stand-in)"
    )
    print(results_matrix(results, columns=ENGINES))
    print()
    for line in speedup_summary(results):
        print(" ", line)
    parallel, parallel_modes = measure_parallel_sections(
        args, runs=runs, subset=subset
    )
    if args.json:
        write_json_report(
            args.json, results, mode="engines", timeout=args.timeout,
            parallel=parallel, parallel_modes=parallel_modes,
        )


# ----------------------------------------------------------------------
# pytest-benchmark entry points (single representative cells)
# ----------------------------------------------------------------------
_BSBM = bsbm_like(300)


def _run(engine_name, ruleset):
    from repro.bench.harness import ENGINE_FACTORIES

    engine = ENGINE_FACTORIES[engine_name](ruleset)
    engine.load_triples(_BSBM)
    engine.materialize()
    return engine.n_triples


@pytest.mark.benchmark(group="table2-rdfs")
def test_inferray_bsbm_rdfs_default(benchmark):
    assert benchmark(lambda: _run("inferray", "rdfs-default")) > len(_BSBM)


@pytest.mark.benchmark(group="table2-rdfs")
def test_hashjoin_bsbm_rdfs_default(benchmark):
    assert benchmark(lambda: _run("hashjoin", "rdfs-default")) > len(_BSBM)


@pytest.mark.benchmark(group="table2-rdfs")
def test_rete_bsbm_rdfs_default(benchmark):
    assert benchmark(lambda: _run("rete", "rdfs-default")) > len(_BSBM)


@pytest.mark.benchmark(group="table2-rdfs-full")
def test_inferray_bsbm_rdfs_full(benchmark):
    assert benchmark(lambda: _run("inferray", "rdfs-full")) > len(_BSBM)


@pytest.mark.benchmark(group="table2-rdfs-full")
def test_hashjoin_bsbm_rdfs_full(benchmark):
    assert benchmark(lambda: _run("hashjoin", "rdfs-full")) > len(_BSBM)


if __name__ == "__main__":
    main()
