"""Schema check for the benchmark reports (CI smoke jobs).

Dispatches on the report's ``table`` field — ``table2-rdfs``
(BENCH_table2.json, inference times), ``serving`` (BENCH_serving.json,
server latency/QPS) or ``hybrid-closure`` (BENCH_hybrid.json, memsim
counters plus the full-vs-hybrid resident-closure comparison) — and
validates in two layers:

1. **Structural invariants** — the assertions the smoke job has always
   made (records present, inferray cells infer something, the
   ``parallel`` section carries a usable ``speedup``), extended to the
   ``parallel_modes`` section (every configured executor mode must
   have run on every dataset cell).
2. **Baseline schema diff** — the fresh report's key structure is
   compared against the committed baseline report, so a bench-harness
   refactor that silently drops a section or renames a field fails CI
   instead of rotting the bench trajectory.

Usage:
    python benchmarks/check_bench_schema.py FRESH.json [--baseline BENCH_table2.json]
    python benchmarks/check_bench_schema.py FRESH.json --baseline BENCH_serving.json
"""

import argparse
import json
import sys


def _schema(value, path="$"):
    """The key structure of a JSON value, as a set of typed paths.

    Lists are schema'd through their first element (records in one
    report section are homogeneous); scalars reduce to their type name,
    with int/float unified (a ``speedup`` may serialize as either).
    """
    if isinstance(value, dict):
        paths = {path + "{}"}
        for key, item in value.items():
            paths |= _schema(item, f"{path}.{key}")
        return paths
    if isinstance(value, list):
        paths = {path + "[]"}
        if value:
            paths |= _schema(value[0], path + "[*]")
        return paths
    if isinstance(value, bool):
        return {f"{path}:bool"}
    if isinstance(value, (int, float)):
        return {f"{path}:number"}
    if value is None:
        return {f"{path}:null"}
    return {f"{path}:{type(value).__name__}"}


def _normalize(paths):
    """Drop value-level type suffixes where null/number may alternate
    (timeouts serialize measured fields as null)."""
    out = set()
    for p in paths:
        for suffix in (":null", ":number"):
            if p.endswith(suffix):
                p = p[: -len(suffix)] + ":value"
                break
        out.add(p)
    return out


def _dynamic_key(path):
    """Paths keyed by data-dependent names (mode labels, datasets) or
    whose type legitimately varies between environments (a recorded
    decision is null on timeout, a crossover is null until reached)
    are compared per-section, not literally."""
    return (
        ".modes." in path
        or ".cells[*].modes" in path
        or ".parallel_decision" in path
        or path.startswith("$.scale")
        # Backend legs are keyed by backend name, and the set of
        # measured backends varies with numpy availability.
        or ".backends." in path
    )


def _check_latency_block(block, context):
    for key in ("n", "p50_ms", "p99_ms", "mean_ms", "qps", "errors"):
        assert key in block, (context, key, sorted(block))
    assert block["n"] > 0, (context, "no requests completed")
    assert block["errors"] == 0, (context, block["errors"])
    assert block["p50_ms"] > 0, (context, block)
    assert block["p99_ms"] >= block["p50_ms"], (context, block)
    assert block["qps"] > 0, (context, block)


def check_serving_structure(report):
    assert report["table"] == "serving", report.get("table")
    config = report["config"]
    for key in ("readers", "writers", "queue_depth", "ruleset", "backend"):
        assert key in config, (key, sorted(config))

    phases = report["phases"]
    assert set(phases) >= {"read_only", "mixed"}, sorted(phases)
    _check_latency_block(phases["read_only"]["read"], "read_only.read")
    assert "write" not in phases["read_only"], "read-only phase wrote"
    _check_latency_block(phases["mixed"]["read"], "mixed.read")
    _check_latency_block(phases["mixed"]["write"], "mixed.write")
    assert phases["mixed"]["write"]["rejected_429"] >= 0

    server = report["server"]
    for key in ("epoch_final", "n_triples_final", "flush", "queue"):
        assert key in server, (key, sorted(server))
    flush = server["flush"]
    # The mixed phase wrote, so the writer must have flushed — and
    # coalescing means flushes never exceed mutations.
    assert flush["flushes"] >= 1, flush
    assert flush["failures"] == 0, flush
    assert flush["coalesced_mutations"] >= flush["flushes"], flush
    assert server["epoch_final"] >= 2, server["epoch_final"]
    queue = server["queue"]
    assert queue["depth"] == 0, "queue not drained before sampling"
    assert queue["enqueued_total"] >= flush["coalesced_mutations"], (
        queue,
        flush,
    )
    return phases["read_only"]["read"]["n"] + phases["mixed"]["read"]["n"]


def check_hybrid_structure(report):
    assert report["table"] == "hybrid-closure", report.get("table")
    memsim = report["memsim"]
    assert memsim, "no memsim rows emitted"
    for row in memsim:
        for key in ("chain", "engine", "inferred", "counters"):
            assert key in row, (key, sorted(row))
    inferray = [r for r in memsim if r["engine"] == "inferray"]
    assert inferray, "no inferray memsim rows"
    assert all(
        r["bytes_per_triple"] and r["bytes_per_triple"] > 0 for r in inferray
    ), inferray

    hybrid = report["hybrid"]
    for key in ("dataset", "modes", "answers_match", "comparison"):
        assert key in hybrid, (key, sorted(hybrid))
    assert hybrid["answers_match"] is True, "hybrid answers diverge from full"
    modes = hybrid["modes"]
    assert set(modes) == {"full", "hybrid"}, sorted(modes)
    for mode, row in modes.items():
        for key in (
            "stored_triples",
            "entailed_triples",
            "memory_bytes",
            "bytes_per_triple",
            "flush_seconds",
            "absorbed_rules",
        ):
            assert key in row, (mode, key, sorted(row))
    full, hyb = modes["full"], modes["hybrid"]
    # The point of the mode: same entailed closure from a smaller,
    # cheaper resident store.
    assert hyb["entailed_triples"] == full["entailed_triples"], modes
    assert hyb["stored_triples"] < full["stored_triples"], modes
    assert hyb["bytes_per_triple"] < full["bytes_per_triple"], modes
    assert hyb["flush_seconds"] < full["flush_seconds"], modes
    assert hyb["absorbed_rules"] > 0, modes
    comparison = hybrid["comparison"]
    for key in (
        "stored_triples_ratio",
        "bytes_per_triple_ratio",
        "flush_speedup",
    ):
        assert key in comparison, (key, sorted(comparison))
        assert comparison[key] is not None and comparison[key] > 0, comparison

    check_backends_section(report["backends"])
    return len(memsim)


#: The compressed backend must keep the resident closure at least this
#: much smaller than the flat baseline on every memory-curve dataset.
COMPRESSION_RATIO_FLOOR = 4.0


def check_backends_section(backends):
    """Gates for the kernel-backend memory-curve section.

    The two hard promises of the compressed backend: closures at least
    :data:`COMPRESSION_RATIO_FLOOR` times smaller than the flat
    baseline, and **byte-identical answers** — every backend leg of a
    dataset must report the same closure hash.
    """
    for key in ("ruleset", "baseline_backend", "datasets"):
        assert key in backends, (key, sorted(backends))
    assert backends["datasets"], "no backend memory-curve datasets"
    for row in backends["datasets"]:
        for key in ("dataset", "scale", "n_asserted", "backends",
                    "comparison"):
            assert key in row, (row.get("dataset"), key, sorted(row))
        legs = row["backends"]
        assert "compressed" in legs, (row["dataset"], sorted(legs))
        assert backends["baseline_backend"] in legs, (
            row["dataset"], sorted(legs),
        )
        hashes = set()
        for backend, leg in legs.items():
            for key in (
                "n_triples", "resident_bytes", "bytes_per_triple",
                "compression_ratio", "wall_seconds", "answers_sha256",
            ):
                assert key in leg, (row["dataset"], backend, key)
            assert leg["n_triples"] > 0, (row["dataset"], backend)
            assert leg["resident_bytes"] > 0, (row["dataset"], backend)
            hashes.add(leg["answers_sha256"])
        comparison = row["comparison"]
        assert comparison["answers_match"] is True, (
            f"{row['dataset']}: backend closures diverge"
        )
        assert len(hashes) == 1, (
            f"{row['dataset']}: backend closure hashes diverge: {hashes}"
        )
        assert comparison["resident_ratio"] is not None and (
            comparison["resident_ratio"] >= COMPRESSION_RATIO_FLOOR
        ), (
            f"{row['dataset']}: compressed closure only "
            f"{comparison['resident_ratio']}x smaller than "
            f"{comparison['baseline']} (floor {COMPRESSION_RATIO_FLOOR}x)"
        )


def check_structure(report):
    assert report["table"] == "table2-rdfs", report.get("table")
    results = report["results"]
    assert results, "no benchmark records emitted"
    for record in results:
        for key in ("dataset", "backend", "ruleset", "seconds", "n_inferred"):
            assert key in record, (key, record)
    inferray = [r for r in results if r["engine"] == "inferray"]
    assert inferray, "no inferray cells"
    assert all(
        r["n_inferred"] > 0 for r in inferray if not r["timeout"]
    ), inferray

    # The parallel-scheduler section is mandatory.
    assert "parallel" in report, sorted(report)
    parallel = report["parallel"]
    for key in ("workers", "ruleset", "parallel_mode", "speedup", "cells"):
        assert key in parallel, (key, sorted(parallel))
    assert parallel["workers"] >= 2, parallel["workers"]
    assert parallel["cells"], "no parallel comparison cells"
    assert isinstance(parallel["speedup"], (int, float)), parallel
    assert parallel["speedup"] > 0, parallel["speedup"]
    for cell in parallel["cells"]:
        assert cell["parallel_seconds"] is not None, cell
        assert cell["n_inferred"] > 0, cell

    # The executor-mode comparison is mandatory too.
    assert "parallel_modes" in report, sorted(report)
    modes = report["parallel_modes"]
    for key in ("workers", "ruleset", "backend", "modes", "speedups", "cells"):
        assert key in modes, (key, sorted(modes))
    assert set(modes["modes"]) >= {"auto", "thread", "process"}, (
        modes["modes"]
    )
    assert set(modes["speedups"]) == set(modes["modes"]), modes["speedups"]
    assert modes["cells"], "no parallel_modes cells"
    for cell in modes["cells"]:
        assert set(cell["modes"]) == set(modes["modes"]), cell
        for label, leg in cell["modes"].items():
            for key in ("seconds", "throughput", "speedup"):
                assert key in leg, (label, key, leg)

    if "scale" in report:
        check_scale_structure(report["scale"])
    return len(results)


#: When auto picks a parallel substrate, it must not run more than
#: this much slower than sequential — beyond it the cost model chose
#: a substrate whose overhead it should have predicted (e.g. process
#: at ~0.5x on small inputs).
AUTO_PARITY_TOLERANCE = 1.35

#: When auto picks 'sequential' the auto and sequential legs execute
#: the same code path, so their ratio measures only scheduler overhead
#: plus machine noise (shared CI runners included) — the bound is a
#: loose sanity check, not a mispick detector.
AUTO_NOISE_TOLERANCE = 2.0


def check_scale_structure(scale):
    """Gates for the scale section (crossovers + persistent pools).

    Structural checks are unconditional; the throughput gates are
    conditional on the measured core count, because parallel substrates
    cannot beat sequential on one core — there the gate is that the
    cost model *knew* that (picked sequential, stayed at parity), plus
    the core-independent persistent-pool speedup.
    """
    for key in (
        "tier", "workers", "cores", "ruleset", "backend", "warmup",
        "runs", "datasets", "measured_crossovers", "pool_reuse",
    ):
        assert key in scale, (key, sorted(scale))
    assert scale["workers"] >= 2, scale["workers"]
    assert scale["runs"] >= 3, (
        "scale section needs >= 3 timed runs for a stable median",
        scale["runs"],
    )
    assert scale["datasets"], "no scale datasets measured"

    any_parallel_win = False
    for row in scale["datasets"]:
        for key in ("dataset", "n_input", "legs"):
            assert key in row, (key, sorted(row))
        legs = row["legs"]
        assert set(legs) >= {"sequential", "auto", "thread", "process"}, (
            row["dataset"], sorted(legs),
        )
        seq = legs["sequential"]["seconds"]
        auto = legs["auto"]
        decision = auto["decision"]
        assert decision is not None, (row["dataset"], "auto cell timed out")
        assert decision["mode"] == auto["picked"], (row["dataset"], auto)
        assert decision["requested"] == "auto", decision
        for label in ("auto", "thread", "process"):
            speedup = legs[label].get("speedup")
            if speedup is not None and speedup > 1.0:
                any_parallel_win = True
        if seq is not None and auto["seconds"] is not None:
            ratio = auto["seconds"] / seq
            tolerance = (
                AUTO_NOISE_TOLERANCE
                if auto["picked"] == "sequential"
                else AUTO_PARITY_TOLERANCE
            )
            assert ratio <= tolerance, (
                f"auto picked {auto['picked']!r} on {row['dataset']} and "
                f"ran {ratio:.2f}x slower than sequential — the cost "
                f"model mispicked"
            )
        if scale["cores"] < 2:
            assert auto["picked"] == "sequential", (
                f"auto picked {auto['picked']!r} on {row['dataset']} "
                f"with {scale['cores']} core(s); no substrate can pay "
                f"there"
            )

    reuse = scale["pool_reuse"]
    if reuse is not None:
        for key in (
            "persistent_seconds", "cold_seconds", "speedup",
            "segments_reused", "batches",
        ):
            assert key in reuse, (key, sorted(reuse))
        assert reuse["speedup"] > 1.0, (
            "persistent pool not faster than pool-per-flush",
            reuse,
        )
        assert reuse["segments_reused"], (
            "persistent pool reused no shared-memory segments",
            reuse,
        )
        any_parallel_win = True
    if scale["cores"] >= 2:
        assert any_parallel_win, (
            "multicore box but every parallel scale cell has "
            "speedup <= 1 and no pool-reuse win"
        )


def check_against_baseline(report, baseline):
    fresh = {p for p in _normalize(_schema(report)) if not _dynamic_key(p)}
    base = {p for p in _normalize(_schema(baseline)) if not _dynamic_key(p)}
    missing = base - fresh
    added = fresh - base
    if missing:
        raise AssertionError(
            "report schema lost fields present in the committed "
            f"baseline: {sorted(missing)}"
        )
    return added


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="freshly generated report JSON")
    parser.add_argument(
        "--baseline",
        default="BENCH_table2.json",
        help="committed baseline to schema-diff against "
        "(default: BENCH_table2.json)",
    )
    args = parser.parse_args(argv)
    with open(args.report, encoding="utf-8") as handle:
        report = json.load(handle)
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    assert report.get("table") == baseline.get("table"), (
        "report/baseline table mismatch:",
        report.get("table"),
        baseline.get("table"),
    )

    if report.get("table") == "hybrid-closure":
        n_rows = check_hybrid_structure(report)
        added = check_against_baseline(report, baseline)
        comparison = report["hybrid"]["comparison"]
        print(
            f"OK: {n_rows} memsim rows; hybrid stores "
            f"{comparison['stored_triples_ratio']:.2f}x the triples at "
            f"{comparison['bytes_per_triple_ratio']:.2f}x the "
            f"bytes/triple, flush speedup "
            f"{comparison['flush_speedup']:.2f}x; answers match"
        )
        for row in report["backends"]["datasets"]:
            cmp_row = row["comparison"]
            print(
                f"    {row['dataset']}-{row['scale']}: compressed "
                f"{cmp_row['resident_ratio']:.2f}x smaller than "
                f"{cmp_row['baseline']} at {cmp_row['wall_ratio']:.2f}x "
                f"wall; answer hashes identical"
            )
        if added:
            print(f"note: fields added vs baseline: {sorted(added)}")
        return 0

    if report.get("table") == "serving":
        n_reads = check_serving_structure(report)
        added = check_against_baseline(report, baseline)
        mixed = report["phases"]["mixed"]
        flush = report["server"]["flush"]
        print(
            f"OK: {n_reads} reads; mixed read p50 "
            f"{mixed['read']['p50_ms']:.2f} ms / p99 "
            f"{mixed['read']['p99_ms']:.2f} ms @ "
            f"{mixed['read']['qps']:.0f} q/s; "
            f"{flush['flushes']} flushes coalescing "
            f"{flush['coalesced_mutations']} mutations"
        )
        if added:
            print(f"note: fields added vs baseline: {sorted(added)}")
        return 0

    n_records = check_structure(report)
    added = check_against_baseline(report, baseline)
    speedups = report["parallel_modes"]["speedups"]
    summary = ", ".join(
        f"{label}: {value:.2f}x" if value is not None else f"{label}: -"
        for label, value in sorted(speedups.items())
    )
    print(
        f"OK: {n_records} records; parallel speedup "
        f"{report['parallel']['speedup']:.2f}x @ "
        f"{report['parallel']['workers']} workers "
        f"({report['parallel']['parallel_mode']}); modes — {summary}"
    )
    if "scale" in report:
        scale = report["scale"]
        reuse = scale["pool_reuse"]
        reuse_text = (
            f"pool reuse {reuse['speedup']:.2f}x"
            if reuse is not None else "pool reuse skipped"
        )
        print(
            f"    scale ({scale['tier']}, {len(scale['datasets'])} "
            f"dataset(s) on {scale['cores']} core(s)): auto picks "
            + ", ".join(
                f"{row['dataset']}={row['legs']['auto']['picked']}"
                for row in scale["datasets"]
            )
            + f"; {reuse_text}"
        )
    if added:
        print(f"note: fields added vs baseline: {sorted(added)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
