"""Schema check for the benchmark reports (CI smoke jobs).

Dispatches on the report's ``table`` field — ``table2-rdfs``
(BENCH_table2.json, inference times), ``serving`` (BENCH_serving.json,
server latency/QPS) or ``hybrid-closure`` (BENCH_hybrid.json, memsim
counters plus the full-vs-hybrid resident-closure comparison) — and
validates in two layers:

1. **Structural invariants** — the assertions the smoke job has always
   made (records present, inferray cells infer something, the
   ``parallel`` section carries a usable ``speedup``), extended to the
   ``parallel_modes`` section (every configured executor mode must
   have run on every dataset cell).
2. **Baseline schema diff** — the fresh report's key structure is
   compared against the committed baseline report, so a bench-harness
   refactor that silently drops a section or renames a field fails CI
   instead of rotting the bench trajectory.

Usage:
    python benchmarks/check_bench_schema.py FRESH.json [--baseline BENCH_table2.json]
    python benchmarks/check_bench_schema.py FRESH.json --baseline BENCH_serving.json
"""

import argparse
import json
import sys


def _schema(value, path="$"):
    """The key structure of a JSON value, as a set of typed paths.

    Lists are schema'd through their first element (records in one
    report section are homogeneous); scalars reduce to their type name,
    with int/float unified (a ``speedup`` may serialize as either).
    """
    if isinstance(value, dict):
        paths = {path + "{}"}
        for key, item in value.items():
            paths |= _schema(item, f"{path}.{key}")
        return paths
    if isinstance(value, list):
        paths = {path + "[]"}
        if value:
            paths |= _schema(value[0], path + "[*]")
        return paths
    if isinstance(value, bool):
        return {f"{path}:bool"}
    if isinstance(value, (int, float)):
        return {f"{path}:number"}
    if value is None:
        return {f"{path}:null"}
    return {f"{path}:{type(value).__name__}"}


def _normalize(paths):
    """Drop value-level type suffixes where null/number may alternate
    (timeouts serialize measured fields as null)."""
    out = set()
    for p in paths:
        for suffix in (":null", ":number"):
            if p.endswith(suffix):
                p = p[: -len(suffix)] + ":value"
                break
        out.add(p)
    return out


def _dynamic_key(path):
    """Paths keyed by data-dependent names (mode labels, datasets) are
    compared per-section, not literally."""
    return ".modes." in path or ".cells[*].modes" in path


def _check_latency_block(block, context):
    for key in ("n", "p50_ms", "p99_ms", "mean_ms", "qps", "errors"):
        assert key in block, (context, key, sorted(block))
    assert block["n"] > 0, (context, "no requests completed")
    assert block["errors"] == 0, (context, block["errors"])
    assert block["p50_ms"] > 0, (context, block)
    assert block["p99_ms"] >= block["p50_ms"], (context, block)
    assert block["qps"] > 0, (context, block)


def check_serving_structure(report):
    assert report["table"] == "serving", report.get("table")
    config = report["config"]
    for key in ("readers", "writers", "queue_depth", "ruleset", "backend"):
        assert key in config, (key, sorted(config))

    phases = report["phases"]
    assert set(phases) >= {"read_only", "mixed"}, sorted(phases)
    _check_latency_block(phases["read_only"]["read"], "read_only.read")
    assert "write" not in phases["read_only"], "read-only phase wrote"
    _check_latency_block(phases["mixed"]["read"], "mixed.read")
    _check_latency_block(phases["mixed"]["write"], "mixed.write")
    assert phases["mixed"]["write"]["rejected_429"] >= 0

    server = report["server"]
    for key in ("epoch_final", "n_triples_final", "flush", "queue"):
        assert key in server, (key, sorted(server))
    flush = server["flush"]
    # The mixed phase wrote, so the writer must have flushed — and
    # coalescing means flushes never exceed mutations.
    assert flush["flushes"] >= 1, flush
    assert flush["failures"] == 0, flush
    assert flush["coalesced_mutations"] >= flush["flushes"], flush
    assert server["epoch_final"] >= 2, server["epoch_final"]
    queue = server["queue"]
    assert queue["depth"] == 0, "queue not drained before sampling"
    assert queue["enqueued_total"] >= flush["coalesced_mutations"], (
        queue,
        flush,
    )
    return phases["read_only"]["read"]["n"] + phases["mixed"]["read"]["n"]


def check_hybrid_structure(report):
    assert report["table"] == "hybrid-closure", report.get("table")
    memsim = report["memsim"]
    assert memsim, "no memsim rows emitted"
    for row in memsim:
        for key in ("chain", "engine", "inferred", "counters"):
            assert key in row, (key, sorted(row))
    inferray = [r for r in memsim if r["engine"] == "inferray"]
    assert inferray, "no inferray memsim rows"
    assert all(
        r["bytes_per_triple"] and r["bytes_per_triple"] > 0 for r in inferray
    ), inferray

    hybrid = report["hybrid"]
    for key in ("dataset", "modes", "answers_match", "comparison"):
        assert key in hybrid, (key, sorted(hybrid))
    assert hybrid["answers_match"] is True, "hybrid answers diverge from full"
    modes = hybrid["modes"]
    assert set(modes) == {"full", "hybrid"}, sorted(modes)
    for mode, row in modes.items():
        for key in (
            "stored_triples",
            "entailed_triples",
            "memory_bytes",
            "bytes_per_triple",
            "flush_seconds",
            "absorbed_rules",
        ):
            assert key in row, (mode, key, sorted(row))
    full, hyb = modes["full"], modes["hybrid"]
    # The point of the mode: same entailed closure from a smaller,
    # cheaper resident store.
    assert hyb["entailed_triples"] == full["entailed_triples"], modes
    assert hyb["stored_triples"] < full["stored_triples"], modes
    assert hyb["bytes_per_triple"] < full["bytes_per_triple"], modes
    assert hyb["flush_seconds"] < full["flush_seconds"], modes
    assert hyb["absorbed_rules"] > 0, modes
    comparison = hybrid["comparison"]
    for key in (
        "stored_triples_ratio",
        "bytes_per_triple_ratio",
        "flush_speedup",
    ):
        assert key in comparison, (key, sorted(comparison))
        assert comparison[key] is not None and comparison[key] > 0, comparison
    return len(memsim)


def check_structure(report):
    assert report["table"] == "table2-rdfs", report.get("table")
    results = report["results"]
    assert results, "no benchmark records emitted"
    for record in results:
        for key in ("dataset", "backend", "ruleset", "seconds", "n_inferred"):
            assert key in record, (key, record)
    inferray = [r for r in results if r["engine"] == "inferray"]
    assert inferray, "no inferray cells"
    assert all(
        r["n_inferred"] > 0 for r in inferray if not r["timeout"]
    ), inferray

    # The parallel-scheduler section is mandatory.
    assert "parallel" in report, sorted(report)
    parallel = report["parallel"]
    for key in ("workers", "ruleset", "parallel_mode", "speedup", "cells"):
        assert key in parallel, (key, sorted(parallel))
    assert parallel["workers"] >= 2, parallel["workers"]
    assert parallel["cells"], "no parallel comparison cells"
    assert isinstance(parallel["speedup"], (int, float)), parallel
    assert parallel["speedup"] > 0, parallel["speedup"]
    for cell in parallel["cells"]:
        assert cell["parallel_seconds"] is not None, cell
        assert cell["n_inferred"] > 0, cell

    # The executor-mode comparison is mandatory too.
    assert "parallel_modes" in report, sorted(report)
    modes = report["parallel_modes"]
    for key in ("workers", "ruleset", "backend", "modes", "speedups", "cells"):
        assert key in modes, (key, sorted(modes))
    assert set(modes["modes"]) >= {"thread", "process"}, modes["modes"]
    assert set(modes["speedups"]) == set(modes["modes"]), modes["speedups"]
    assert modes["cells"], "no parallel_modes cells"
    for cell in modes["cells"]:
        assert set(cell["modes"]) == set(modes["modes"]), cell
        for label, leg in cell["modes"].items():
            for key in ("seconds", "throughput", "speedup"):
                assert key in leg, (label, key, leg)
    return len(results)


def check_against_baseline(report, baseline):
    fresh = {p for p in _normalize(_schema(report)) if not _dynamic_key(p)}
    base = {p for p in _normalize(_schema(baseline)) if not _dynamic_key(p)}
    missing = base - fresh
    added = fresh - base
    if missing:
        raise AssertionError(
            "report schema lost fields present in the committed "
            f"baseline: {sorted(missing)}"
        )
    return added


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="freshly generated report JSON")
    parser.add_argument(
        "--baseline",
        default="BENCH_table2.json",
        help="committed baseline to schema-diff against "
        "(default: BENCH_table2.json)",
    )
    args = parser.parse_args(argv)
    with open(args.report, encoding="utf-8") as handle:
        report = json.load(handle)
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    assert report.get("table") == baseline.get("table"), (
        "report/baseline table mismatch:",
        report.get("table"),
        baseline.get("table"),
    )

    if report.get("table") == "hybrid-closure":
        n_rows = check_hybrid_structure(report)
        added = check_against_baseline(report, baseline)
        comparison = report["hybrid"]["comparison"]
        print(
            f"OK: {n_rows} memsim rows; hybrid stores "
            f"{comparison['stored_triples_ratio']:.2f}x the triples at "
            f"{comparison['bytes_per_triple_ratio']:.2f}x the "
            f"bytes/triple, flush speedup "
            f"{comparison['flush_speedup']:.2f}x; answers match"
        )
        if added:
            print(f"note: fields added vs baseline: {sorted(added)}")
        return 0

    if report.get("table") == "serving":
        n_reads = check_serving_structure(report)
        added = check_against_baseline(report, baseline)
        mixed = report["phases"]["mixed"]
        flush = report["server"]["flush"]
        print(
            f"OK: {n_reads} reads; mixed read p50 "
            f"{mixed['read']['p50_ms']:.2f} ms / p99 "
            f"{mixed['read']['p99_ms']:.2f} ms @ "
            f"{mixed['read']['qps']:.0f} q/s; "
            f"{flush['flushes']} flushes coalescing "
            f"{flush['coalesced_mutations']} mutations"
        )
        if added:
            print(f"note: fields added vs baseline: {sorted(added)}")
        return 0

    n_records = check_structure(report)
    added = check_against_baseline(report, baseline)
    speedups = report["parallel_modes"]["speedups"]
    summary = ", ".join(
        f"{label}: {value:.2f}x" if value is not None else f"{label}: -"
        for label, value in sorted(speedups.items())
    )
    print(
        f"OK: {n_records} records; parallel speedup "
        f"{report['parallel']['speedup']:.2f}x @ "
        f"{report['parallel']['workers']} workers "
        f"({report['parallel']['parallel_mode']}); modes — {summary}"
    )
    if added:
        print(f"note: fields added vs baseline: {sorted(added)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
