"""Table 4 — transitivity closure on subClassOf chains.

Paper: chains of 100–25,000 nodes; Inferray's Nuutila pre-pass scales
to 313M closed triples while OWLIM (RETE) dies at 2,500 and RDFox
(hash semi-naive) at 5,000.

Reproduction at ~10× smaller chains (pure-Python factor): Inferray vs
hashjoin (RDFox stand-in), rete (OWLIM stand-in) and the naive oracle,
with a per-run timeout; timed-out cells print '–' exactly as the paper
marks them.  The expected shape: Inferray near-linear in the *output*
size, the iterative engines blowing up combinatorially and timing out
at much shorter chains.

Run:     python benchmarks/bench_table4_closure.py
Parallel: --workers N runs the Inferray engine through the parallel
         rule scheduler (--parallel-mode thread|process picks the
         executor substrate), exercising the θ pre-pass under the
         scheduler at every chain length.
Pytest:  pytest benchmarks/bench_table4_closure.py --benchmark-only
"""

import argparse

import pytest

from repro.bench.harness import RunResult, format_table, run_engine
from repro.core.engine import InferrayEngine
from repro.datasets.chains import chain_closure_size, subclass_chain

#: Chain lengths (nodes); the paper uses 100..25,000.
LENGTHS = [50, 100, 250, 500, 1000, 2000]

#: Per-run engine timeout (seconds) for the standalone table.
TIMEOUT = 30.0

ENGINES = ["inferray", "hashjoin", "rete", "naive"]


def run_table(lengths=None, timeout=TIMEOUT, runs=1, scheduler_kwargs=None):
    results = []
    give_up = set()
    for length in lengths or LENGTHS:
        data = subclass_chain(length)
        for engine in ENGINES:
            if engine in give_up:
                # A shorter chain already timed out; mark without running.
                results.append(
                    RunResult(
                        engine=engine,
                        dataset=f"chain{length}",
                        ruleset="rho-df",
                        seconds=None,
                        n_input=len(data),
                    )
                )
                continue
            result = run_engine(
                engine,
                "rho-df",
                data,
                dataset_name=f"chain{length}",
                timeout_seconds=timeout,
                warmup=0,
                runs=runs,
                engine_kwargs=(
                    scheduler_kwargs if engine == "inferray" else None
                ),
            )
            results.append(result)
            if result.seconds is None:
                give_up.add(engine)  # longer chains will also time out
    return results


def main(argv=None):
    from bench_table3_rdfsplus import (
        add_scheduler_arguments,
        inferray_scheduler_kwargs,
    )

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_scheduler_arguments(parser)
    parser.add_argument(
        "--timeout", type=float, default=TIMEOUT,
        help=f"per-run timeout in seconds (default {TIMEOUT:.0f})",
    )
    args = parser.parse_args(argv)
    scheduler_kwargs = inferray_scheduler_kwargs(args)
    results = run_table(
        timeout=args.timeout, scheduler_kwargs=scheduler_kwargs
    )
    by_length = {}
    for result in results:
        by_length.setdefault(result.dataset, {})[result.engine] = result
    headers = ["chain (nodes)", "closure size"] + ENGINES
    rows = []
    for dataset, cells in by_length.items():
        length = int(dataset.replace("chain", ""))
        rows.append(
            [dataset, f"{chain_closure_size(length):,}"]
            + [cells[e].cell() for e in ENGINES]
        )
    print("Table 4 — transitivity closure wall time (ms; '–' = timeout "
          f"of {args.timeout:.0f}s)")
    if scheduler_kwargs:
        print(
            f"(inferray cells: workers={args.workers}, "
            f"parallel-mode={args.parallel_mode or 'auto'})"
        )
    print(format_table(headers, rows))
    inferray_last = [
        r for r in results if r.engine == "inferray" and r.seconds
    ][-1]
    print(
        f"\nInferray throughput at the largest chain: "
        f"{inferray_last.throughput:,.0f} closed triples/s"
    )


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
_CHAIN = subclass_chain(100)


def _materialize_inferray():
    engine = InferrayEngine("rho-df")
    engine.load_triples(_CHAIN)
    engine.materialize()
    return engine.n_triples


@pytest.mark.benchmark(group="table4-closure")
def test_inferray_chain100(benchmark):
    total = benchmark(_materialize_inferray)
    assert total == chain_closure_size(100)


@pytest.mark.benchmark(group="table4-closure")
def test_hashjoin_chain100(benchmark):
    from repro.baselines.hashjoin import HashJoinEngine

    def run():
        engine = HashJoinEngine("rho-df")
        engine.load_triples(_CHAIN)
        engine.materialize()
        return engine.n_triples

    assert benchmark(run) == chain_closure_size(100)


@pytest.mark.benchmark(group="table4-closure")
def test_rete_chain40(benchmark):
    from repro.baselines.rete import ReteEngine

    chain = subclass_chain(40)

    def run():
        engine = ReteEngine("rho-df")
        engine.load_triples(chain)
        engine.materialize()
        return engine.n_triples

    assert benchmark(run) == chain_closure_size(40)


if __name__ == "__main__":
    main()
