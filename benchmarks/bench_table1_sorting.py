"""Table 1 — pair-sort throughput across the (range × size) grid.

Paper: "Performance in millions of pairs/second for counting, MSD radix
adaptive for ranges and sizes from 500K to 50M", against generic
128-bit sorting algorithms.

Reproduction: the grid is scaled ~100× down (pure-Python constant
factor); the contribution sorts are compared against the *same
substrate* generic sorts (pure-Python mergesort / quicksort — the
apples-to-apples comparison that preserves the shape), with CPython's
C timsort and NumPy's C quicksort reported as accelerated references,
playing the role of the SIMD rows the paper quotes from Satish et al.

Run the full grid:   python benchmarks/bench_table1_sorting.py
Pytest-benchmark:    pytest benchmarks/bench_table1_sorting.py --benchmark-only
"""

import random
import time
from array import array

import pytest

from repro.sorting.counting import counting_sort_pairs
from repro.sorting.dispatch import entropy_bits, timsort_pairs
from repro.sorting.generic import (
    mergesort_pairs,
    numpy_sort_pairs,
    quicksort_pairs,
)
from repro.sorting.radix import msd_radix_sort_pairs

BASE = 1 << 32  # dense-numbering window

#: (range, size) grid — the paper uses 500K–50M; scaled ~100×.
RANGES = [5_000, 10_000, 50_000, 100_000, 250_000]
SIZES = [5_000, 10_000, 50_000, 100_000, 250_000]

ALGORITHMS = {
    "Counting": lambda pairs: counting_sort_pairs(pairs, dedup=False),
    "MSDA Radix": lambda pairs: msd_radix_sort_pairs(pairs, dedup=False),
    "Mergesort (py)": mergesort_pairs,
    "Quicksort (py)": quicksort_pairs,
}

ACCELERATED = {
    "Timsort (C ref)": lambda pairs: timsort_pairs(pairs, dedup=False),
    "NumPy qsort (C ref)": numpy_sort_pairs,
}


def make_pairs(key_range: int, size: int, seed: int = 0) -> array:
    """Uniform random pairs in the dense window around 2**32."""
    rng = random.Random((key_range, size, seed).__hash__())
    flat = array("q", bytes(16 * size))
    for i in range(size):
        flat[2 * i] = BASE + rng.randrange(key_range)
        flat[2 * i + 1] = BASE + rng.randrange(key_range)
    return flat


def throughput_mpairs(sort_fn, pairs: array, repeats: int = 3) -> float:
    """Best-of-N millions of pairs per second."""
    size = len(pairs) // 2
    best = float("inf")
    for _ in range(repeats):
        data = array("q", pairs)
        started = time.perf_counter()
        sort_fn(data)
        best = min(best, time.perf_counter() - started)
    return size / best / 1e6


def run_grid(ranges=None, sizes=None, repeats=3):
    """The Table-1 matrix: rows (range, algorithm), columns sizes."""
    ranges = ranges or RANGES
    sizes = sizes or SIZES
    rows = []
    for key_range in ranges:
        for name, fn in ALGORITHMS.items():
            if name in ("Mergesort (py)", "Quicksort (py)"):
                continue  # generic rows are printed once, below
            cells = [
                throughput_mpairs(fn, make_pairs(key_range, size), repeats)
                for size in sizes
            ]
            rows.append((key_range, name, cells))
    generic_rows = []
    for name in ("Mergesort (py)", "Quicksort (py)"):
        fn = ALGORITHMS[name]
        cells = [
            throughput_mpairs(fn, make_pairs(size, size), repeats)
            for size in sizes
        ]
        generic_rows.append((name, cells))
    for name, fn in ACCELERATED.items():
        cells = [
            throughput_mpairs(fn, make_pairs(size, size), repeats)
            for size in sizes
        ]
        generic_rows.append((name, cells))
    return rows, generic_rows, sizes


def main():
    from repro.bench.harness import format_table

    rows, generic_rows, sizes = run_grid()
    headers = ["Range (entropy) / Algorithm"] + [
        f"{s // 1000}K" for s in sizes
    ]
    table_rows = []
    for key_range, name, cells in rows:
        label = f"{key_range // 1000}K ({entropy_bits(key_range):.1f})  {name}"
        table_rows.append([label] + [f"{c:.3f}" for c in cells])
    for name, cells in generic_rows:
        table_rows.append(
            [f"generic       {name}"] + [f"{c:.3f}" for c in cells]
        )
    print("Table 1 — sorting throughput (millions of pairs / second)")
    print(format_table(headers, table_rows))
    print(
        "\nExpected shape: Counting wins when size ≥ range; MSDA radix is"
        "\nsize-robust and wins on sparse data; both beat same-substrate"
        "\ngeneric sorts. C-reference rows are hardware-accelerated."
    )


# ----------------------------------------------------------------------
# pytest-benchmark entry points (one representative cell per regime)
# ----------------------------------------------------------------------
_DENSE = make_pairs(5_000, 50_000)     # size >> range: counting regime
_SPARSE = make_pairs(250_000, 10_000)  # range >> size: radix regime


@pytest.mark.benchmark(group="table1-dense")
def test_counting_dense(benchmark):
    benchmark(lambda: counting_sort_pairs(array("q", _DENSE), dedup=False))


@pytest.mark.benchmark(group="table1-dense")
def test_radix_dense(benchmark):
    benchmark(
        lambda: msd_radix_sort_pairs(array("q", _DENSE), dedup=False)
    )


@pytest.mark.benchmark(group="table1-dense")
def test_mergesort_dense(benchmark):
    benchmark(lambda: mergesort_pairs(array("q", _DENSE)))


@pytest.mark.benchmark(group="table1-sparse")
def test_counting_sparse(benchmark):
    benchmark(lambda: counting_sort_pairs(array("q", _SPARSE), dedup=False))


@pytest.mark.benchmark(group="table1-sparse")
def test_radix_sparse(benchmark):
    benchmark(
        lambda: msd_radix_sort_pairs(array("q", _SPARSE), dedup=False)
    )


@pytest.mark.benchmark(group="table1-sparse")
def test_quicksort_sparse(benchmark):
    benchmark(lambda: quicksort_pairs(array("q", _SPARSE)))


if __name__ == "__main__":
    main()
