"""Ablation — Nuutila pre-pass vs iterative θ inside the same engine.

The paper's first contribution claim: "it is worth paying the
performance penalty of translating data into Nuutila's algorithm data
layout for a massive speedup".  This ablation isolates exactly that
choice: the identical InferrayEngine runs once with the θ pre-pass
(ThetaRule) and once with transitivity as an iterative sort-merge
self-join (IterativeTransitivityRule) — everything else (store, sorts,
merges) unchanged.

Run:     python benchmarks/bench_ablation_closure.py
Pytest:  pytest benchmarks/bench_ablation_closure.py --benchmark-only
"""

import time

import pytest

from repro.bench.harness import format_table
from repro.core.engine import InferrayEngine, MaterializationTimeout
from repro.datasets.chains import chain_closure_size, subclass_chain
from repro.rules.classes import IterativeTransitivityRule
from repro.rules.table5 import make_rules

LENGTHS = [100, 250, 500, 1000]
TIMEOUT = 30.0


def nuutila_engine():
    return InferrayEngine(make_rules(["SCM-SCO"]))


def iterative_engine():
    return InferrayEngine(
        [IterativeTransitivityRule("SCM-SCO-ITER", "subClassOf")]
    )


def run_ablation(lengths=None, timeout=TIMEOUT):
    rows = []
    for length in lengths or LENGTHS:
        data = subclass_chain(length)
        cells = {}
        for variant, factory in (
            ("nuutila", nuutila_engine),
            ("iterative", iterative_engine),
        ):
            engine = factory()
            engine.load_triples(data)
            started = time.perf_counter()
            try:
                stats = engine.materialize(timeout_seconds=timeout)
            except MaterializationTimeout:
                cells[variant] = (None, None)
                continue
            elapsed = time.perf_counter() - started
            assert engine.n_triples == chain_closure_size(length)
            cells[variant] = (elapsed, stats.iterations)
        rows.append((length, cells))
    return rows


def main():
    rows = run_ablation()
    headers = [
        "chain", "closure", "nuutila (ms)", "iters",
        "iterative (ms)", "iters",
    ]
    table = []
    for length, cells in rows:
        def fmt(cell):
            seconds, iterations = cell
            if seconds is None:
                return "–", "–"
            return f"{seconds * 1000:,.0f}", str(iterations)

        n_ms, n_it = fmt(cells["nuutila"])
        i_ms, i_it = fmt(cells["iterative"])
        table.append(
            [str(length), f"{chain_closure_size(length):,}",
             n_ms, n_it, i_ms, i_it]
        )
    print("Ablation — θ pre-pass (Nuutila) vs iterative self-join θ")
    print(format_table(headers, table))
    print(
        "\nExpected shape: the iterative variant multiplies sort/merge"
        "\nwork across ~log2(n) iterations and re-derives quadratically"
        "\nmany duplicates; the pre-pass closes in one pass."
    )


@pytest.mark.benchmark(group="ablation-closure")
def test_nuutila_prepass_chain200(benchmark):
    data = subclass_chain(200)

    def run():
        engine = nuutila_engine()
        engine.load_triples(data)
        engine.materialize()
        return engine.n_triples

    assert benchmark(run) == chain_closure_size(200)


@pytest.mark.benchmark(group="ablation-closure")
def test_iterative_theta_chain200(benchmark):
    data = subclass_chain(200)

    def run():
        engine = iterative_engine()
        engine.load_triples(data)
        engine.materialize()
        return engine.n_triples

    assert benchmark(run) == chain_closure_size(200)


if __name__ == "__main__":
    main()
