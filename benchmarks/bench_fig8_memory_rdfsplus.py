"""Figure 8 — memory-hierarchy counters for the RDFS-Plus benchmark.

Paper: L1d / LLC / dTLB miss rates and page faults per 1K triples over
LUBM 5M–100M and the real-world datasets; Inferray's cache behaviour
"does not vary with the ruleset" and is size-stable, RDFox's L1d rate
degrades on RDFS-Plus (up to 11% on Wordnet), the RETE engine
(OWLIM) trails on TLB misses and page faults.

Reproduction via :mod:`repro.memsim` on LUBM-like 5–25 departments
plus the stand-ins, under RDFS-Plus.

Run:     python benchmarks/bench_fig8_memory_rdfsplus.py
Pytest:  pytest benchmarks/bench_fig8_memory_rdfsplus.py --benchmark-only
"""

import pytest

from repro.baselines.hashjoin import HashJoinEngine
from repro.baselines.rete import ReteEngine
from repro.bench.figures import counters_to_bars, render_bars
from repro.bench.harness import format_table
from repro.core.engine import InferrayEngine
from repro.datasets.lubm import lubm_like
from repro.datasets.realworld import wikipedia_like, wordnet_like, yago_like
from repro.memsim.hierarchy import replay_trace
from repro.memsim.tracer import RecordingTracer

ENGINES = {
    "inferray": InferrayEngine,
    "hashjoin": HashJoinEngine,
    "rete": ReteEngine,
}


def workloads():
    return [
        ("lubm5", lubm_like(5)),
        ("lubm10", lubm_like(10)),
        ("lubm25", lubm_like(25)),
        ("Wiki*", wikipedia_like(3)),
        ("Yago*", yago_like(2)),
        ("Wordnet*", wordnet_like(3)),
    ]


def measure_counters(engine_name, data, ruleset="rdfs-plus"):
    tracer = RecordingTracer()
    engine = ENGINES[engine_name](ruleset, tracer=tracer)
    engine.load_triples(data)
    engine.materialize()
    inferred = engine.stats.n_inferred
    counters = replay_trace(tracer.ops)
    return counters.per_triple(max(1, inferred)), inferred


def run_figure(subset=None):
    rows = []
    for name, data in subset or workloads():
        for engine_name in ENGINES:
            per, inferred = measure_counters(engine_name, data)
            rows.append((name, engine_name, inferred, per))
    return rows


def main():
    rows = run_figure()
    headers = [
        "dataset / engine",
        "inferred",
        "L1d rate",
        "LLC miss/t",
        "dTLB rate",
        "pf / 1K t",
    ]
    table = []
    for name, engine_name, inferred, per in rows:
        table.append(
            [
                f"{name} {engine_name}",
                f"{inferred:,}",
                f"{per['l1_miss_rate']:.3f}",
                f"{per['cache_misses_per_triple']:.3f}",
                f"{per['tlb_miss_rate']:.3f}",
                f"{per['page_faults_per_triple'] * 1000:.2f}",
            ]
        )
    print("Figure 8 — simulated memory counters (RDFS-Plus benchmark)")
    print(format_table(headers, table))

    panel_rows = [
        (name, engine_name, per) for name, engine_name, _, per in rows
    ]
    for metric, label in (
        ("l1_miss_rate", "L1d miss rate"),
        ("cache_misses_per_triple", "LLC misses / triple"),
        ("tlb_miss_rate", "dTLB load-miss rate"),
        ("page_faults_per_triple", "Page faults / triple"),
    ):
        print()
        print(render_bars(label, counters_to_bars(panel_rows, metric)))
    print(
        "\nExpected shape: Inferray size-stable with the lowest TLB/page"
        "\nrates; the hash engine's rates grow with the ruleset complexity;"
        "\nthe RETE engine worst across the board."
    )


@pytest.mark.benchmark(group="fig8-memsim")
def test_inferray_memsim_lubm(benchmark):
    data = lubm_like(3)
    per, _ = benchmark(lambda: measure_counters("inferray", data))
    assert per["page_faults_per_triple"] < 1.0


@pytest.mark.benchmark(group="fig8-memsim")
def test_rete_memsim_lubm(benchmark):
    data = lubm_like(3)
    per, _ = benchmark(lambda: measure_counters("rete", data))
    assert per["page_faults_per_triple"] > 0.0


if __name__ == "__main__":
    main()
