"""Ablation — the cached ⟨o, s⟩ sorted index (paper §4.2).

"Property tables are stored in dynamic arrays sorted on ⟨s,o⟩, along
with a cached version sorted on ⟨o,s⟩ … computed lazily upon need."
This ablation disables the cache (every object-keyed join re-sorts),
quantifying what the lazily-cached second index buys on join-heavy
rulesets.

Run:     python benchmarks/bench_ablation_oscache.py
Pytest:  pytest benchmarks/bench_ablation_oscache.py --benchmark-only
"""

import time

import pytest

from repro.bench.harness import format_table
from repro.core.engine import InferrayEngine
from repro.datasets.bsbm import bsbm_like
from repro.datasets.lubm import lubm_like


def workloads():
    return [
        ("bsbm-2k / rdfs-default", bsbm_like(2_000), "rdfs-default"),
        ("lubm-25 / rdfs-plus", lubm_like(25), "rdfs-plus"),
        ("lubm-50 / rdfs-plus", lubm_like(50), "rdfs-plus"),
    ]


def run_ablation(subset=None, repeats=2):
    rows = []
    for name, data, ruleset in subset or workloads():
        timings = {}
        totals = set()
        for cached in (True, False):
            best = float("inf")
            for _ in range(repeats):
                engine = InferrayEngine(ruleset, os_cache=cached)
                engine.load_triples(data)
                started = time.perf_counter()
                engine.materialize()
                best = min(best, time.perf_counter() - started)
                totals.add(engine.n_triples)
            timings[cached] = best
        assert len(totals) == 1
        rows.append((name, timings))
    return rows


def main():
    rows = run_ablation()
    headers = ["workload", "cached (ms)", "uncached (ms)", "overhead"]
    table = []
    for name, timings in rows:
        overhead = timings[False] / timings[True]
        table.append(
            [
                name,
                f"{timings[True] * 1000:,.0f}",
                f"{timings[False] * 1000:,.0f}",
                f"{overhead:.2f}x",
            ]
        )
    print("Ablation — cached vs recomputed ⟨o, s⟩ sorted index")
    print(format_table(headers, table))


@pytest.mark.benchmark(group="ablation-oscache")
@pytest.mark.parametrize("cached", [True, False], ids=["cached", "uncached"])
def test_oscache(benchmark, cached):
    data = lubm_like(5)

    def run():
        engine = InferrayEngine("rdfs-plus", os_cache=cached)
        engine.load_triples(data)
        engine.materialize()
        return engine.n_triples

    assert benchmark(run) > len(data)


if __name__ == "__main__":
    main()
