"""Table 3 — RDFS-Plus inference times on LUBM + real-world datasets.

Paper: LUBM 1M–100M plus Wikipedia/Yago/Wordnet under RDFS-Plus;
"Inferray consistently outperforms RDFox, by a factor 2", OWLIM slower
by at least 7×, Inferray scaling linearly with dataset size.

Reproduction: LUBM-like at 10–100 departments (≈2k–21k triples) plus
the stand-ins, under the full RDFS-Plus ruleset (multi-way joins,
property-as-variable rules, sameAs machinery).

Run:     python benchmarks/bench_table3_rdfsplus.py
Pytest:  pytest benchmarks/bench_table3_rdfsplus.py --benchmark-only
"""

import pytest

from repro.bench.harness import run_engine
from repro.bench.reporting import results_matrix, speedup_summary
from repro.datasets.lubm import lubm_like
from repro.datasets.realworld import wikipedia_like, wordnet_like, yago_like

ENGINES = ["inferray", "hashjoin", "rete"]
TIMEOUT = 90.0


def workloads():
    return [
        ("LUBM-10", lubm_like(10)),
        ("LUBM-25", lubm_like(25)),
        ("LUBM-50", lubm_like(50)),
        ("LUBM-75", lubm_like(75)),
        ("LUBM-100", lubm_like(100)),
        ("Wikipedia*", wikipedia_like(8)),
        ("Yago*", yago_like(3)),
        ("Wordnet*", wordnet_like(6)),
    ]


def run_table(timeout=TIMEOUT, runs=1, subset=None):
    results = []
    for dataset_name, data in subset or workloads():
        for engine in ENGINES:
            results.append(
                run_engine(
                    engine,
                    "rdfs-plus",
                    data,
                    dataset_name=dataset_name,
                    timeout_seconds=timeout,
                    warmup=0,
                    runs=runs,
                )
            )
    return results


def main():
    results = run_table()
    print(
        "Table 3 — RDFS-Plus, execution time in ms "
        f"('–' = timeout of {TIMEOUT:.0f}s; * = synthetic stand-in)"
    )
    print(results_matrix(results, columns=ENGINES))
    print()
    for line in speedup_summary(results):
        print(" ", line)


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
_LUBM = lubm_like(5)


def _run(engine_name):
    from repro.bench.harness import ENGINE_FACTORIES

    engine = ENGINE_FACTORIES[engine_name]("rdfs-plus")
    engine.load_triples(_LUBM)
    engine.materialize()
    return engine.n_triples


@pytest.mark.benchmark(group="table3-rdfsplus")
def test_inferray_lubm(benchmark):
    assert benchmark(lambda: _run("inferray")) > len(_LUBM)


@pytest.mark.benchmark(group="table3-rdfsplus")
def test_hashjoin_lubm(benchmark):
    assert benchmark(lambda: _run("hashjoin")) > len(_LUBM)


@pytest.mark.benchmark(group="table3-rdfsplus")
def test_rete_lubm(benchmark):
    assert benchmark(lambda: _run("rete")) > len(_LUBM)


if __name__ == "__main__":
    main()
