"""Table 3 — RDFS-Plus inference times on LUBM + real-world datasets.

Paper: LUBM 1M–100M plus Wikipedia/Yago/Wordnet under RDFS-Plus;
"Inferray consistently outperforms RDFox, by a factor 2", OWLIM slower
by at least 7×, Inferray scaling linearly with dataset size.

Reproduction: LUBM-like at 10–100 departments (≈2k–21k triples) plus
the stand-ins, under the full RDFS-Plus ruleset (multi-way joins,
property-as-variable rules, sameAs machinery).

Run:     python benchmarks/bench_table3_rdfsplus.py
Parallel: --workers N runs the Inferray engine through the parallel
         rule scheduler (--parallel-mode thread|process picks the
         executor; default: the engine's auto policy), so the
         RDFS-Plus closure benchmarks exercise the same scheduler the
         Table-2 harness measures.
Pytest:  pytest benchmarks/bench_table3_rdfsplus.py --benchmark-only
"""

import argparse

import pytest

from repro.bench.harness import run_engine
from repro.bench.reporting import results_matrix, speedup_summary
from repro.datasets.lubm import lubm_like
from repro.datasets.realworld import wikipedia_like, wordnet_like, yago_like

ENGINES = ["inferray", "hashjoin", "rete"]
TIMEOUT = 90.0


def workloads():
    return [
        ("LUBM-10", lubm_like(10)),
        ("LUBM-25", lubm_like(25)),
        ("LUBM-50", lubm_like(50)),
        ("LUBM-75", lubm_like(75)),
        ("LUBM-100", lubm_like(100)),
        ("Wikipedia*", wikipedia_like(8)),
        ("Yago*", yago_like(3)),
        ("Wordnet*", wordnet_like(6)),
    ]


def inferray_scheduler_kwargs(args):
    """Engine kwargs for the Inferray cells (baselines take none)."""
    if args is None or args.workers is None:
        return None
    return {"workers": args.workers, "parallel_mode": args.parallel_mode}


def run_table(timeout=TIMEOUT, runs=1, subset=None, scheduler_kwargs=None):
    results = []
    for dataset_name, data in subset or workloads():
        for engine in ENGINES:
            results.append(
                run_engine(
                    engine,
                    "rdfs-plus",
                    data,
                    dataset_name=dataset_name,
                    timeout_seconds=timeout,
                    warmup=0,
                    runs=runs,
                    engine_kwargs=(
                        scheduler_kwargs if engine == "inferray" else None
                    ),
                )
            )
    return results


def add_scheduler_arguments(parser):
    """--workers / --parallel-mode, shared by the closure benchmarks."""
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="run the Inferray engine under the parallel rule "
        "scheduler with N workers (0 = all cores; default: "
        "$REPRO_WORKERS or sequential)",
    )
    parser.add_argument(
        "--parallel-mode",
        choices=("auto", "thread", "process"),
        default=None,
        help="executor substrate for --workers > 1 (default: the "
        "engine's auto policy)",
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_scheduler_arguments(parser)
    parser.add_argument(
        "--timeout", type=float, default=TIMEOUT,
        help=f"per-run timeout in seconds (default {TIMEOUT:.0f})",
    )
    args = parser.parse_args(argv)
    scheduler_kwargs = inferray_scheduler_kwargs(args)
    results = run_table(
        timeout=args.timeout, scheduler_kwargs=scheduler_kwargs
    )
    print(
        "Table 3 — RDFS-Plus, execution time in ms "
        f"('–' = timeout of {args.timeout:.0f}s; * = synthetic stand-in)"
    )
    if scheduler_kwargs:
        print(
            f"(inferray cells: workers={args.workers}, "
            f"parallel-mode={args.parallel_mode or 'auto'})"
        )
    print(results_matrix(results, columns=ENGINES))
    print()
    for line in speedup_summary(results):
        print(" ", line)


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
_LUBM = lubm_like(5)


def _run(engine_name):
    from repro.bench.harness import ENGINE_FACTORIES

    engine = ENGINE_FACTORIES[engine_name]("rdfs-plus")
    engine.load_triples(_LUBM)
    engine.materialize()
    return engine.n_triples


@pytest.mark.benchmark(group="table3-rdfsplus")
def test_inferray_lubm(benchmark):
    assert benchmark(lambda: _run("inferray")) > len(_LUBM)


@pytest.mark.benchmark(group="table3-rdfsplus")
def test_hashjoin_lubm(benchmark):
    assert benchmark(lambda: _run("hashjoin")) > len(_LUBM)


@pytest.mark.benchmark(group="table3-rdfsplus")
def test_rete_lubm(benchmark):
    assert benchmark(lambda: _run("rete")) > len(_LUBM)


if __name__ == "__main__":
    main()
