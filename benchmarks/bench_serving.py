"""Serving-layer load generator — latency/QPS under mixed traffic.

Boots the asyncio reasoning server (`repro.serving`) in-process on an
ephemeral port over a BSBM-like closure, then drives it with keep-alive
``http.client`` worker threads through two phases:

1. **read-only** — N readers hammer ``GET /query`` with a rotating set
   of BGP patterns for the phase duration.
2. **mixed** — the same readers race M writers POSTing small N-Triples
   batches (1 in 8 batches is a retraction burst, which exercises the
   rebuild path); write acceptance is asynchronous (202), so write
   latency measures queueing + back-pressure, while the server's own
   flush metrics (scraped from ``/stats``) report how many coalesced
   incremental flushes the burst collapsed into.

The report (``BENCH_serving.json``) carries client-side p50/p99
latency and QPS per phase and class, 429 back-pressure counts, and the
server's flush/staleness summary — the serving-shaped numbers the
ROADMAP asks for next to the Table-2 inference times.

Run:     python benchmarks/bench_serving.py
JSON:    --json [PATH]   (default BENCH_serving.json)
Smoke:   --smoke    tiny dataset + short phases (the CI serving job
         runs --smoke --json and validates the report schema against
         the committed baseline)
"""

import argparse
import http.client
import json
import threading
import time
import urllib.parse

from repro.core.store_api import Store
from repro.datasets.bsbm import bsbm_like
from repro.serving import ServerThread

BSBM = "http://example.org/bsbm#"  # matches repro.datasets.bsbm._NS

#: BGP patterns the readers rotate through (URL-encoded at setup).
READ_PATTERNS = [
    "?s rdf:type ?t",
    f"?p a <{BSBM}Product>",
    f"?x rdfs:subClassOf <{BSBM}ProductType0>",
    f"?s <{BSBM}producer> ?who",
]


class WorkerStats:
    """Latencies and error counts one worker thread collected."""

    def __init__(self):
        self.latencies = []
        self.errors = 0
        self.rejected = 0  # 429 back-pressure answers (writers)

    def merge(self, others):
        for other in others:
            self.latencies.extend(other.latencies)
            self.errors += other.errors
            self.rejected += other.rejected
        return self


def percentile(values, q):
    if not values:
        return None
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
    return ordered[index]


def latency_summary(latencies_s):
    ms = [value * 1000.0 for value in latencies_s]
    return {
        "n": len(ms),
        "p50_ms": percentile(ms, 0.50),
        "p90_ms": percentile(ms, 0.90),
        "p99_ms": percentile(ms, 0.99),
        "mean_ms": (sum(ms) / len(ms)) if ms else None,
        "max_ms": max(ms) if ms else None,
    }


def reader_worker(address, deadline, stats, limit, offset):
    host, port = address
    conn = http.client.HTTPConnection(host, port, timeout=30)
    paths = [
        f"/query?q={urllib.parse.quote(p)}&limit={limit}"
        for p in READ_PATTERNS
    ]
    index = offset  # de-synchronize the rotation across readers
    try:
        while time.monotonic() < deadline:
            path = paths[index % len(paths)]
            index += 1
            started = time.monotonic()
            try:
                conn.request("GET", path)
                response = conn.getresponse()
                response.read()
                status = response.status
            except (http.client.HTTPException, OSError):
                stats.errors += 1
                conn.close()
                conn = http.client.HTTPConnection(host, port, timeout=30)
                continue
            stats.latencies.append(time.monotonic() - started)
            if status != 200:
                stats.errors += 1
    finally:
        conn.close()


def writer_worker(address, deadline, stats, worker_id, batch_size):
    """POST small add batches; every 8th batch retracts the previous
    one (mixed add/remove traffic, hitting the rebuild path)."""
    host, port = address
    conn = http.client.HTTPConnection(host, port, timeout=30)
    batch_no = 0
    last_batch = None
    try:
        while time.monotonic() < deadline:
            batch_no += 1
            if batch_no % 8 == 0 and last_batch:
                verb, body = "/remove", last_batch
                last_batch = None
            else:
                lines = [
                    f"<{BSBM}live/w{worker_id}b{batch_no}i{i}> "
                    f"<{BSBM}producer> <{BSBM}Producer0> ."
                    for i in range(batch_size)
                ]
                body = "\n".join(lines) + "\n"
                verb, last_batch = "/add", body
            started = time.monotonic()
            try:
                conn.request("POST", verb, body=body)
                response = conn.getresponse()
                response.read()
                status = response.status
            except (http.client.HTTPException, OSError):
                stats.errors += 1
                conn.close()
                conn = http.client.HTTPConnection(host, port, timeout=30)
                continue
            stats.latencies.append(time.monotonic() - started)
            if status == 429:
                stats.rejected += 1
                time.sleep(0.02)  # honour back-pressure, lightly
            elif status not in (200, 202):
                stats.errors += 1
    finally:
        conn.close()


def run_phase(address, *, readers, writers, duration, limit, batch_size):
    deadline = time.monotonic() + duration
    read_stats = [WorkerStats() for _ in range(readers)]
    write_stats = [WorkerStats() for _ in range(writers)]
    threads = [
        threading.Thread(
            target=reader_worker,
            args=(address, deadline, read_stats[i], limit, i),
        )
        for i in range(readers)
    ] + [
        threading.Thread(
            target=writer_worker,
            args=(address, deadline, write_stats[i], i, batch_size),
        )
        for i in range(writers)
    ]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - started
    reads = WorkerStats().merge(read_stats)
    writes = WorkerStats().merge(write_stats)
    total_requests = len(reads.latencies) + len(writes.latencies)
    phase = {
        "duration_seconds": elapsed,
        "qps_total": total_requests / elapsed if elapsed else None,
        "read": dict(
            latency_summary(reads.latencies),
            qps=len(reads.latencies) / elapsed if elapsed else None,
            errors=reads.errors,
        ),
    }
    if writers:
        phase["write"] = dict(
            latency_summary(writes.latencies),
            qps=len(writes.latencies) / elapsed if elapsed else None,
            errors=writes.errors,
            rejected_429=writes.rejected,
        )
    return phase


def scrape_stats(address):
    host, port = address
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", "/stats")
        return json.loads(conn.getresponse().read())
    finally:
        conn.close()


def wait_until_clean(address, timeout=60.0):
    """Let the writer drain before sampling final server state."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        stats = scrape_stats(address)
        if stats["queue"]["depth"] == 0:
            return stats
        time.sleep(0.05)
    return scrape_stats(address)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--products", type=int, default=2_000,
                        help="BSBM-like scale factor for the seed closure")
    parser.add_argument("--readers", type=int, default=4)
    parser.add_argument("--writers", type=int, default=2)
    parser.add_argument("--duration", type=float, default=5.0,
                        help="seconds per traffic phase")
    parser.add_argument("--batch-size", type=int, default=8,
                        help="triples per write batch")
    parser.add_argument("--limit", type=int, default=50,
                        help="solution cap per read")
    parser.add_argument("--queue-depth", type=int, default=256)
    parser.add_argument("--ruleset", default="rdfs-default")
    parser.add_argument("--backend", default="auto")
    parser.add_argument("--json", nargs="?", const="BENCH_serving.json",
                        default=None, metavar="PATH")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny dataset + short phases for CI")
    args = parser.parse_args(argv)
    if args.smoke:
        args.products = min(args.products, 300)
        args.duration = min(args.duration, 1.5)

    triples = list(bsbm_like(args.products))
    store = Store(triples, ruleset=args.ruleset, backend=args.backend)
    store.materialize()
    print(
        f"seed closure: {len(triples)} asserted -> {store.n_triples} "
        f"triples ({args.ruleset}, {store.engine.kernels.name} kernels)"
    )

    with ServerThread(
        store, port=0, queue_depth=args.queue_depth
    ) as handle:
        address = handle.address
        print(f"server: http://{address[0]}:{address[1]}")

        read_only = run_phase(
            address,
            readers=args.readers,
            writers=0,
            duration=args.duration,
            limit=args.limit,
            batch_size=args.batch_size,
        )
        mixed = run_phase(
            address,
            readers=args.readers,
            writers=args.writers,
            duration=args.duration,
            limit=args.limit,
            batch_size=args.batch_size,
        )
        server_stats = wait_until_clean(address)

    report = {
        "table": "serving",
        "config": {
            "products": args.products,
            "n_asserted": len(triples),
            "n_triples_seed": server_stats["n_triples"],
            "readers": args.readers,
            "writers": args.writers,
            "duration_seconds": args.duration,
            "batch_size": args.batch_size,
            "queue_depth": args.queue_depth,
            "ruleset": args.ruleset,
            "backend": store.engine.kernels.name,
            "smoke": args.smoke,
        },
        "phases": {"read_only": read_only, "mixed": mixed},
        "server": {
            "epoch_final": server_stats["epoch"],
            "n_triples_final": server_stats["n_triples"],
            "flush": server_stats["flush"],
            "queue": server_stats["queue"],
        },
    }

    for label, phase in report["phases"].items():
        read = phase["read"]
        line = (
            f"{label:10s} read p50 {read['p50_ms']:.2f} ms, "
            f"p99 {read['p99_ms']:.2f} ms, {read['qps']:.0f} q/s"
        )
        if "write" in phase:
            write = phase["write"]
            line += (
                f" | write p50 {write['p50_ms']:.2f} ms, "
                f"p99 {write['p99_ms']:.2f} ms, {write['qps']:.0f} w/s, "
                f"{write['rejected_429']} rejected"
            )
        print(line)
    flush = report["server"]["flush"]
    print(
        f"flushes: {flush['flushes']} ({flush['failures']} failed), "
        f"mean batch {flush['mean_batch']:.1f} mutations, "
        f"epoch {report['server']['epoch_final']}"
    )

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle_:
            json.dump(report, handle_, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
