"""Ablation — the operating-range sort dispatcher (DESIGN.md §7).

Forces the engine's pair-sort backend to counting-only, radix-only or
timsort-only and compares against the paper's 'auto' policy (§5.4
operating ranges) on workloads with opposite density profiles.  The
dispatcher should track the better specialist on each workload.

Run:     python benchmarks/bench_ablation_sort_choice.py
Pytest:  pytest benchmarks/bench_ablation_sort_choice.py --benchmark-only
"""

import time

import pytest

from repro.bench.harness import format_table
from repro.core.engine import InferrayEngine
from repro.datasets.bsbm import bsbm_like
from repro.datasets.chains import subclass_chain
from repro.datasets.realworld import yago_like

BACKENDS = ["auto", "counting", "radix", "timsort"]


def workloads():
    return [
        ("chain-800 (dense ids)", subclass_chain(800), "rho-df"),
        ("bsbm-2k", bsbm_like(2_000), "rdfs-default"),
        ("yago-3 (schema-heavy)", yago_like(3), "rdfs-default"),
    ]


def run_ablation(subset=None, repeats=2):
    rows = []
    for name, data, ruleset in subset or workloads():
        timings = {}
        totals = set()
        for backend in BACKENDS:
            best = float("inf")
            for _ in range(repeats):
                engine = InferrayEngine(ruleset, algorithm=backend)
                engine.load_triples(data)
                started = time.perf_counter()
                engine.materialize()
                best = min(best, time.perf_counter() - started)
                totals.add(engine.n_triples)
            timings[backend] = best
        assert len(totals) == 1, "backends must agree on the closure"
        rows.append((name, timings))
    return rows


def main():
    rows = run_ablation()
    headers = ["workload"] + [f"{b} (ms)" for b in BACKENDS]
    table = []
    for name, timings in rows:
        table.append(
            [name] + [f"{timings[b] * 1000:,.0f}" for b in BACKENDS]
        )
    print("Ablation — forced sort backends vs the operating-range policy")
    print(format_table(headers, table))
    print(
        "\nExpected shape: 'auto' tracks the better of counting/radix on"
        "\neach workload instead of committing to one specialist."
    )


@pytest.mark.benchmark(group="ablation-sort")
@pytest.mark.parametrize("backend", BACKENDS)
def test_sort_backend_chain(benchmark, backend):
    data = subclass_chain(200)

    def run():
        engine = InferrayEngine("rho-df", algorithm=backend)
        engine.load_triples(data)
        engine.materialize()
        return engine.n_triples

    assert benchmark(run) == 200 * 199 // 2


if __name__ == "__main__":
    main()
