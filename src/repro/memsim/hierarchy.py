"""Trace-driven memory-hierarchy simulator (the Figures-7/8 substrate).

Models the paper's testbed (Intel Xeon E3-1246v3):

* **L1d**: 32 KiB, 64-byte lines, 8-way set-associative, LRU;
* **LLC**: 8 MiB, 64-byte lines, 16-way, LRU (the L2 is omitted — the
  paper reports only L1d and LLC rates);
* **dTLB**: 64 entries, 4 KiB pages, fully associative LRU;
* **page faults**: first-touch (minor) faults over 4 KiB pages.

The simulator consumes the operation stream of a
:class:`repro.memsim.tracer.RecordingTracer` and expands each operation
into concrete addresses through an
:class:`repro.memsim.address_space.AddressSpace`.  Very long random /
chase operations are *sampled* and the counters scaled — miss rates are
statistically stable under uniform sampling (documented in DESIGN.md;
sequential scans are always simulated exactly, line by line).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from .address_space import AddressSpace
from .tracer import ALLOC, CHASE, RAND, SEQ, TraceOp

LINE_SIZE = 64
PAGE_SIZE = 4096

#: Random/chase ops longer than this are sampled down to it.
SAMPLE_CAP = 4096


class CacheSim:
    """Set-associative LRU cache over 64-byte lines."""

    def __init__(self, size_bytes: int, associativity: int,
                 line_size: int = LINE_SIZE):
        if size_bytes % (associativity * line_size) != 0:
            raise ValueError("cache size must be a multiple of way size")
        self.line_size = line_size
        self.associativity = associativity
        self.n_sets = size_bytes // (associativity * line_size)
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        self.accesses = 0.0
        self.misses = 0.0

    def access(self, address: int, weight: float = 1.0) -> bool:
        """Touch one line; returns True on hit.  ``weight`` scales counters."""
        line = address // self.line_size
        index = line % self.n_sets
        way = self._sets[index]
        self.accesses += weight
        if line in way:
            way.move_to_end(line)
            return True
        self.misses += weight
        way[line] = True
        if len(way) > self.associativity:
            way.popitem(last=False)
        return False

    def install(self, address: int) -> None:
        """Bring a line in without counting (hardware prefetch model)."""
        line = address // self.line_size
        way = self._sets[line % self.n_sets]
        if line in way:
            way.move_to_end(line)
            return
        way[line] = True
        if len(way) > self.associativity:
            way.popitem(last=False)

    @property
    def miss_rate(self) -> float:
        """Misses / accesses (0 when idle)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class TlbSim:
    """Fully-associative LRU TLB over 4 KiB pages."""

    def __init__(self, entries: int = 64, page_size: int = PAGE_SIZE):
        self.entries = entries
        self.page_size = page_size
        self._pages: OrderedDict = OrderedDict()
        self.accesses = 0.0
        self.misses = 0.0

    def access(self, address: int, weight: float = 1.0) -> bool:
        """Translate one address; returns True on TLB hit."""
        page = address // self.page_size
        self.accesses += weight
        if page in self._pages:
            self._pages.move_to_end(page)
            return True
        self.misses += weight
        self._pages[page] = True
        if len(self._pages) > self.entries:
            self._pages.popitem(last=False)
        return False


class PageFaultSim:
    """First-touch (minor) page faults over 4 KiB pages."""

    def __init__(self, page_size: int = PAGE_SIZE):
        self.page_size = page_size
        self._touched = set()
        self.faults = 0.0

    def access(self, address: int, weight: float = 1.0) -> None:
        """Record a touch; faults on the first touch of each page."""
        page = address // self.page_size
        if page not in self._touched:
            self._touched.add(page)
            self.faults += weight


@dataclass
class MemoryCounters:
    """The Figure-7/8 counter set."""

    l1_accesses: float = 0.0
    l1_misses: float = 0.0
    llc_misses: float = 0.0
    tlb_misses: float = 0.0
    page_faults: float = 0.0
    footprint_bytes: int = 0
    regions: Dict[Hashable, int] = field(default_factory=dict)

    @property
    def l1_miss_rate(self) -> float:
        """L1d miss rate."""
        if self.l1_accesses == 0:
            return 0.0
        return self.l1_misses / self.l1_accesses

    @property
    def tlb_miss_rate(self) -> float:
        """dTLB load-miss rate."""
        if self.l1_accesses == 0:
            return 0.0
        return self.tlb_misses / self.l1_accesses

    def per_triple(self, n_triples: int) -> Dict[str, float]:
        """Counters normalised per inferred triple (the figures' axes)."""
        divisor = max(1, n_triples)
        return {
            "cache_misses_per_triple": self.llc_misses / divisor,
            "l1_misses_per_triple": self.l1_misses / divisor,
            "tlb_misses_per_triple": self.tlb_misses / divisor,
            "page_faults_per_triple": self.page_faults / divisor,
            "l1_miss_rate": self.l1_miss_rate,
            "tlb_miss_rate": self.tlb_miss_rate,
        }


class MemoryHierarchy:
    """L1d + LLC + TLB + page-fault pipeline with trace replay."""

    def __init__(
        self,
        *,
        l1_size: int = 32 * 1024,
        l1_ways: int = 8,
        llc_size: int = 8 * 1024 * 1024,
        llc_ways: int = 16,
        tlb_entries: int = 64,
        seed: int = 0x5EED,
        prefetch_distance: int = 0,
    ):
        self.l1 = CacheSim(l1_size, l1_ways)
        self.llc = CacheSim(llc_size, llc_ways)
        self.tlb = TlbSim(tlb_entries)
        self.pages = PageFaultSim()
        self.space = AddressSpace(seed)
        #: Next-line stride prefetcher: on a detected +1-line stride,
        #: bring the next N lines in ahead of use.  0 disables it.  The
        #: paper's premise — "a predictive memory access pattern guides
        #: the prefetcher to retrieve the data correctly in advance" —
        #: is exactly what this models; enabling it widens Inferray's
        #: advantage (sequential scans stop missing) without helping
        #: the hash/pointer engines.
        self.prefetch_distance = prefetch_distance
        self._last_line: Optional[int] = None

    # ------------------------------------------------------------------
    # Single access
    # ------------------------------------------------------------------
    def access(self, address: int, weight: float = 1.0) -> None:
        """Run one 8-byte access through the hierarchy."""
        if self.prefetch_distance:
            line = address // LINE_SIZE
            if self._last_line is not None and line == self._last_line + 1:
                for ahead in range(1, self.prefetch_distance + 1):
                    prefetched = address + ahead * LINE_SIZE
                    self.l1.install(prefetched)
                    self.llc.install(prefetched)
            self._last_line = line
        if not self.l1.access(address, weight):
            self.llc.access(address, weight)
        self.tlb.access(address, weight)
        self.pages.access(address, weight)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay(self, ops: Iterable[TraceOp]) -> MemoryCounters:
        """Replay recorded operations; returns the counters snapshot."""
        extra_hits = 0.0
        for kind, region, amount in ops:
            if kind == ALLOC:
                self.space.grow(region, amount)
            elif kind == SEQ:
                # Simulate per line (captures misses exactly); account
                # the element-level accesses (8-byte stride) as hits on
                # the already-resident line.
                n_lines = 0
                for address in self.space.sequential_addresses(
                    region, amount, LINE_SIZE
                ):
                    self.access(address)
                    n_lines += 1
                logical = amount // 8
                if logical > n_lines:
                    extra_hits += logical - n_lines
            elif kind == RAND:
                weight, count = self._sample(amount)
                for address in self.space.random_addresses(region, count):
                    self.access(address, weight)
            elif kind == CHASE:
                weight, count = self._sample(amount)
                for address in self.space.chase_addresses(region, count):
                    self.access(address, weight)
            else:  # pragma: no cover - tracer only emits known kinds
                raise ValueError(f"unknown trace op {kind!r}")
        self.l1.accesses += extra_hits
        self.tlb.accesses += extra_hits
        return self.counters()

    @staticmethod
    def _sample(amount: int) -> Tuple[float, int]:
        """(weight, simulated_count) for possibly-sampled operations."""
        if amount <= SAMPLE_CAP:
            return 1.0, amount
        return amount / SAMPLE_CAP, SAMPLE_CAP

    def counters(self) -> MemoryCounters:
        """Current counter snapshot."""
        return MemoryCounters(
            l1_accesses=self.l1.accesses,
            l1_misses=self.l1.misses,
            llc_misses=self.llc.misses,
            tlb_misses=self.tlb.misses,
            page_faults=self.pages.faults,
            footprint_bytes=self.space.total_footprint(),
            regions={
                key: self.space.footprint(key)
                for key in self.space._regions
            },
        )


def replay_trace(
    ops: Iterable[TraceOp], *, seed: int = 0x5EED, **config
) -> MemoryCounters:
    """One-shot convenience: fresh hierarchy, replay, counters."""
    hierarchy = MemoryHierarchy(seed=seed, **config)
    return hierarchy.replay(ops)
