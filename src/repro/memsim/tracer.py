"""Tracer protocol: engines report memory-access *operations*.

The paper measures hardware counters (cache/TLB misses, page faults)
with ``perf``.  A pure-Python reproduction cannot observe the hardware,
so engines instead report their data-structure operations at the level
where the access *pattern* is decided:

* ``sequential_scan(region, n_bytes)`` — a streaming pass over a flat
  array region (Inferray's property-table scans, sorts and merges);
* ``random_access(region, n)`` — n independent uniformly-spread probes
  into a region (hash-table lookups/inserts);
* ``pointer_chase(region, n_hops)`` — n dependent object-to-object hops
  (RETE tokens, statement lists, graph nodes);
* ``alloc(region, n_bytes)`` — the region grew (heap allocation).

A :class:`RecordingTracer` stores these ops; the
:class:`repro.memsim.hierarchy.MemoryHierarchy` replays them through a
simulated L1d/LLC/TLB/page hierarchy, turning patterns into the
counters of Figures 7–8.  One op per *operation* (not per element)
keeps tracing overhead negligible in the engines' hot loops.
"""

from __future__ import annotations

from typing import Hashable, List, Tuple

#: A recorded operation: (kind, region, amount).
TraceOp = Tuple[str, Hashable, int]

SEQ = "seq"
RAND = "rand"
CHASE = "chase"
ALLOC = "alloc"


class RecordingTracer:
    """Accumulates trace operations for later replay."""

    __slots__ = ("ops",)

    def __init__(self) -> None:
        self.ops: List[TraceOp] = []

    def sequential_scan(self, region: Hashable, n_bytes: int) -> None:
        """A streaming scan of ``n_bytes`` from the region's start."""
        if n_bytes > 0:
            self.ops.append((SEQ, region, n_bytes))

    def random_access(self, region: Hashable, n_accesses: int = 1) -> None:
        """``n_accesses`` independent probes spread over the region."""
        if n_accesses > 0:
            self.ops.append((RAND, region, n_accesses))

    def pointer_chase(self, region: Hashable, n_hops: int = 1) -> None:
        """``n_hops`` dependent object-graph hops inside the region."""
        if n_hops > 0:
            self.ops.append((CHASE, region, n_hops))

    def alloc(self, region: Hashable, n_bytes: int) -> None:
        """The region grew by ``n_bytes`` (no accesses implied)."""
        if n_bytes > 0:
            self.ops.append((ALLOC, region, n_bytes))

    def clear(self) -> None:
        """Drop all recorded operations."""
        self.ops.clear()

    def __len__(self) -> int:
        return len(self.ops)


class NullTracer:
    """A tracer that ignores everything (hot-path default stand-in)."""

    def sequential_scan(self, region: Hashable, n_bytes: int) -> None:
        pass

    def random_access(self, region: Hashable, n_accesses: int = 1) -> None:
        pass

    def pointer_chase(self, region: Hashable, n_hops: int = 1) -> None:
        pass

    def alloc(self, region: Hashable, n_bytes: int) -> None:
        pass
