"""Virtual address-space model for trace replay.

Each region named by a tracer gets its own widely-spaced virtual
window (1 GiB apart, so growing regions never collide), mirroring how a
runtime lays out large arrays and heaps.  The replayer asks the address
space to expand an operation into concrete addresses:

* flat-array regions are contiguous from the window base (sequential
  scans walk them line by line);
* hash regions spread probes uniformly over the region's current
  footprint (multiplicative-hash placement);
* object-heap regions place objects in allocation order with a fixed
  object stride, and chases hop between uniformly-drawn objects.

All randomness is drawn from a per-space seeded generator, so replays
are deterministic.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Iterator, Tuple

#: Spacing between region windows — large enough that no region in any
#: experiment outgrows its window.
REGION_WINDOW = 1 << 30

#: Modelled size of one heap object (token, dict entry, list node).
OBJECT_BYTES = 64


class AddressSpace:
    """Region registry + deterministic address synthesis."""

    def __init__(self, seed: int = 0x5EED):
        self._regions: Dict[Hashable, Tuple[int, int]] = {}
        self._rng = random.Random(seed)

    def _region(self, key: Hashable) -> Tuple[int, int]:
        entry = self._regions.get(key)
        if entry is None:
            base = (len(self._regions) + 1) * REGION_WINDOW
            entry = (base, 0)
            self._regions[key] = entry
        return entry

    def grow(self, key: Hashable, n_bytes: int) -> None:
        """Extend a region's footprint (alloc op)."""
        base, size = self._region(key)
        self._regions[key] = (base, size + n_bytes)

    def ensure(self, key: Hashable, n_bytes: int) -> None:
        """Make the region at least ``n_bytes`` large."""
        base, size = self._region(key)
        if n_bytes > size:
            self._regions[key] = (base, n_bytes)

    def footprint(self, key: Hashable) -> int:
        """Current size of a region in bytes."""
        return self._region(key)[1]

    def total_footprint(self) -> int:
        """Sum of all region sizes."""
        return sum(size for _, size in self._regions.values())

    # ------------------------------------------------------------------
    # Address synthesis
    # ------------------------------------------------------------------
    def sequential_addresses(
        self, key: Hashable, n_bytes: int, stride: int
    ) -> Iterator[int]:
        """Addresses of a streaming scan over the region's first bytes."""
        self.ensure(key, n_bytes)
        base, _ = self._region(key)
        for offset in range(0, n_bytes, stride):
            yield base + offset

    def random_addresses(self, key: Hashable, count: int) -> Iterator[int]:
        """Uniform probes over the region's current footprint."""
        base, size = self._region(key)
        if size < OBJECT_BYTES:
            self.ensure(key, OBJECT_BYTES)
            base, size = self._region(key)
        slots = max(1, size // 8)
        rand = self._rng.randrange
        for _ in range(count):
            yield base + 8 * rand(slots)

    def chase_addresses(self, key: Hashable, hops: int) -> Iterator[int]:
        """Dependent hops between allocation-ordered heap objects."""
        base, size = self._region(key)
        if size < OBJECT_BYTES:
            self.ensure(key, OBJECT_BYTES)
            base, size = self._region(key)
        n_objects = max(1, size // OBJECT_BYTES)
        rand = self._rng.randrange
        for _ in range(hops):
            yield base + OBJECT_BYTES * rand(n_objects)
