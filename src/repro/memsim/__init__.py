"""Memory-hierarchy simulation substrate (Figures 7–8; see DESIGN.md)."""

from .address_space import AddressSpace, OBJECT_BYTES, REGION_WINDOW
from .hierarchy import (
    CacheSim,
    LINE_SIZE,
    MemoryCounters,
    MemoryHierarchy,
    PAGE_SIZE,
    PageFaultSim,
    TlbSim,
    replay_trace,
)
from .probe import StoreMemoryReport, TableMemory, measure_store
from .tracer import NullTracer, RecordingTracer, TraceOp

__all__ = [
    "AddressSpace",
    "CacheSim",
    "LINE_SIZE",
    "MemoryCounters",
    "MemoryHierarchy",
    "NullTracer",
    "OBJECT_BYTES",
    "PAGE_SIZE",
    "PageFaultSim",
    "RecordingTracer",
    "REGION_WINDOW",
    "StoreMemoryReport",
    "TableMemory",
    "TlbSim",
    "TraceOp",
    "measure_store",
    "replay_trace",
]
