"""Live-store resident-memory probe: measured bytes/triple.

The simulators in this package *replay* recorded address traces against
modelled hierarchies (Figures 7–8).  This module instead measures the
**actual** resident footprint of a live store — the committed pair
arrays plus any materialized ⟨o, s⟩ caches — through the kernel
backends' :meth:`~repro.kernels.base.KernelBackend.flat_nbytes`
accounting hook.  One shared identity set deduplicates storage aliased
across tables, versions and snapshots (copy-on-write views, shared
compressed blocks), so the report is the bytes the process would free
if the store went away, not a naive per-view sum.

This is the instrument behind the full-vs-compressed memory curves in
``benchmarks/bench_fig7_memory_closure.py``: the flat backends sit at
16 bytes/pair per array by construction, the compressed backend's
figure is whatever its delta blocks actually occupy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["StoreMemoryReport", "TableMemory", "measure_store"]


@dataclass(frozen=True)
class TableMemory:
    """Footprint of one property table."""

    property_id: int
    n_pairs: int
    resident_bytes: int
    has_os_cache: bool


@dataclass(frozen=True)
class StoreMemoryReport:
    """Resident footprint of one store's committed closure.

    ``resident_bytes`` is the deduplicated total across every table's
    committed ⟨s, o⟩ array and materialized ⟨o, s⟩ cache;
    ``flat_bytes`` is what the *same* arrays would occupy in the flat
    16-bytes-per-pair encoding (the baseline the compression ratio is
    against); ``bytes_per_triple`` divides by the closure size.
    """

    backend: str
    inner_backend: Optional[str]
    n_triples: int
    n_tables: int
    resident_bytes: int
    flat_bytes: int
    tables: Tuple[TableMemory, ...]

    @property
    def bytes_per_triple(self) -> float:
        if self.n_triples == 0:
            return 0.0
        return self.resident_bytes / self.n_triples

    @property
    def compression_ratio(self) -> float:
        """Flat-encoding bytes over resident bytes (>1 = smaller)."""
        if self.resident_bytes == 0:
            return 1.0
        return self.flat_bytes / self.resident_bytes

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view (bench reports)."""
        return {
            "backend": self.backend,
            "inner_backend": self.inner_backend,
            "n_triples": self.n_triples,
            "n_tables": self.n_tables,
            "resident_bytes": self.resident_bytes,
            "flat_bytes": self.flat_bytes,
            "bytes_per_triple": round(self.bytes_per_triple, 3),
            "compression_ratio": round(self.compression_ratio, 3),
        }


def _resolve_tables(target):
    """(TripleStore, kernels) from a Store / Snapshot / engine / store."""
    engine = getattr(target, "engine", None)
    if engine is not None:  # repro.Store (flushes pending mutations)
        target = engine
    main = getattr(target, "main", None)
    if main is not None:  # InferrayEngine
        return main, target.kernels
    view = getattr(target, "_tables", None)
    if view is not None and hasattr(target, "_dictionary"):  # Snapshot
        return view, view.kernels
    if hasattr(target, "table_arrays"):  # TripleStore
        return target, target.kernels
    raise TypeError(
        f"measure_store() wants a Store, Snapshot, InferrayEngine or "
        f"TripleStore, got {type(target).__name__}"
    )


def measure_store(target) -> StoreMemoryReport:
    """Measure the resident footprint of a live store's closure.

    Accepts a :class:`repro.Store` (pending mutations are flushed
    first, so the measurement is of a complete closure), a
    :class:`~repro.core.store_api.Snapshot`, an
    :class:`~repro.core.engine.InferrayEngine` or a bare
    :class:`~repro.store.triple_store.TripleStore`.
    """
    if hasattr(target, "materialize") and hasattr(target, "stale"):
        target.materialize()  # repro.Store: measure a complete closure
    tables, kernels = _resolve_tables(target)
    seen: set = set()
    per_table: List[TableMemory] = []
    total = 0
    flat_total = 0
    n_triples = 0
    for property_id in sorted(tables._tables):
        table = tables._tables[property_id]
        if not table:
            continue
        resident = table.memory_bytes(seen)
        total += resident
        n_pairs = table.n_pairs
        n_triples += n_pairs
        flat_total += 16 * n_pairs * (2 if table.has_os_cache else 1)
        per_table.append(
            TableMemory(
                property_id=property_id,
                n_pairs=n_pairs,
                resident_bytes=resident,
                has_os_cache=table.has_os_cache,
            )
        )
    return StoreMemoryReport(
        backend=kernels.name,
        inner_backend=getattr(kernels, "inner_name", None),
        n_triples=n_triples,
        n_tables=len(per_table),
        resident_bytes=total,
        flat_bytes=flat_total,
        tables=tuple(per_table),
    )
