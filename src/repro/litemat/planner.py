"""Hybrid planner: which rules does the hierarchy encoding absorb?

Given a rule catalogue, decide per ruleset which Table-5 executors the
interval encoding can answer at query time (*absorbed* — they never run
on flush) and which must still materialize.  The decision consults
:class:`repro.rules.depgraph.RuleDependencyGraph`: an absorbed rule's
virtual output must never flow into a still-materialized rule (that
rule would fire over an incomplete table), and a materialized rule must
never write into a table the encoding answers from (the encoding is
built once per flush, from the stored schema).

The only exemption is the pair of *hierarchy-aware* rules PRP-DOM /
PRP-RNG: the engine's hybrid flush compensates for their interaction
with the encoding — a schema-sized pre-pass types the subjects/objects
of sub-property tables, and the virtual ``rdf:type`` expansion covers
the superclass closure of their output (see
``InferrayEngine._hierarchy_prepass``).

One non-local coupling is enforced on top of the feeds-graph fixed
point: absorbing SCM-DOM1 / SCM-RNG1 (class-expansion of domain/range
rows) while PRP-DOM / PRP-RNG materialize requires the virtual
``rdf:type`` expansion (CAX-SCO absorbed) — otherwise full mode would
materialize ``type(s, c′)`` for the expanded classes and hybrid would
answer without them.

Resulting plans for the built-in rulesets:

================  ====================================================
ruleset           absorbed
================  ====================================================
rdfs-default      CAX-SCO, PRP-SPO1, SCM-SCO, SCM-SPO, SCM-DOM1,
                  SCM-DOM2, SCM-RNG1, SCM-RNG2  (PRP-DOM/PRP-RNG run)
rho-df            CAX-SCO, PRP-SPO1, SCM-SCO, SCM-SPO, SCM-DOM2,
                  SCM-RNG2  (the ρdf profile has no DOM1/RNG1)
rdfs-full         ∅ — the axiomatic rules (RDFS4/8/10/12…) read every
                  table and write subClassOf/subPropertyOf
rdfs-plus(-full)  ∅ — equality reasoning (EQ-REP*, sameAs) reads every
                  table
================  ====================================================

An empty plan is valid: hybrid mode then runs the full catalogue and
behaves exactly like ``materialize="full"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..rules.classes import (
    AlphaRule,
    DomainRangeRule,
    PropertyCopyRule,
    ThetaRule,
)
from ..rules.depgraph import RuleDependencyGraph
from ..rules.spec import Rule

#: Rule names the encoding can absorb, with the exact executor shape
#: each name must carry (guarding against same-named custom rules).
#: Alpha shapes are (p1, pos1, p2, pos2, out, head_subject, head_object).
_ALPHA_SHAPES = {
    "CAX-SCO": ("subClassOf", "s", "type", "o", "type", "r2", "r1"),
    "SCM-DOM1": ("domain", "o", "subClassOf", "s", "domain", "r1", "r2"),
    "SCM-DOM2": ("domain", "s", "subPropertyOf", "o", "domain", "r2", "r1"),
    "SCM-RNG1": ("range", "o", "subClassOf", "s", "range", "r1", "r2"),
    "SCM-RNG2": ("range", "s", "subPropertyOf", "o", "range", "r2", "r1"),
}
_THETA_KINDS = {"SCM-SCO": "subClassOf", "SCM-SPO": "subPropertyOf"}

ABSORBABLE_RULES = (
    "CAX-SCO",
    "PRP-SPO1",
    "SCM-SCO",
    "SCM-SPO",
    "SCM-DOM1",
    "SCM-DOM2",
    "SCM-RNG1",
    "SCM-RNG2",
)

#: Materialized rules the hybrid flush compensates for (see module doc).
HIERARCHY_AWARE_RULES = ("PRP-DOM", "PRP-RNG")


def _is_absorbable(rule: Rule) -> bool:
    """Name *and* executor shape match one of the absorbable rules."""
    shape = _ALPHA_SHAPES.get(rule.name)
    if shape is not None:
        return isinstance(rule, AlphaRule) and shape == (
            rule.p1,
            rule.pos1,
            rule.p2,
            rule.pos2,
            rule.out,
            rule.head_subject,
            rule.head_object,
        )
    if rule.name in _THETA_KINDS:
        return (
            isinstance(rule, ThetaRule)
            and rule.kind == _THETA_KINDS[rule.name]
        )
    if rule.name == "PRP-SPO1":
        return (
            isinstance(rule, PropertyCopyRule)
            and rule.schema == "subPropertyOf"
            and rule.forward
            and not rule.reverse
        )
    return False


def _is_hierarchy_aware(rule: Rule) -> bool:
    return (
        isinstance(rule, DomainRangeRule)
        and rule.name in HIERARCHY_AWARE_RULES
    )


@dataclass(frozen=True)
class HybridPlan:
    """The per-ruleset split between absorbed and materialized rules."""

    ruleset: str
    absorbed: Tuple[str, ...]
    materialized: Tuple[str, ...]
    reduced_rules: List[Rule] = field(compare=False)

    # Per-capability flags the query rewrite consults (each names the
    # absorbed rule whose virtual semantics it switches on).
    @property
    def expand_type(self) -> bool:  # CAX-SCO / rdfs9
        return "CAX-SCO" in self.absorbed

    @property
    def copy_data(self) -> bool:  # PRP-SPO1 / rdfs7
        return "PRP-SPO1" in self.absorbed

    @property
    def close_subclass(self) -> bool:  # SCM-SCO / rdfs11
        return "SCM-SCO" in self.absorbed

    @property
    def close_subproperty(self) -> bool:  # SCM-SPO / rdfs5
        return "SCM-SPO" in self.absorbed

    @property
    def expand_domain_classes(self) -> bool:  # SCM-DOM1
        return "SCM-DOM1" in self.absorbed

    @property
    def expand_domain_properties(self) -> bool:  # SCM-DOM2
        return "SCM-DOM2" in self.absorbed

    @property
    def expand_range_classes(self) -> bool:  # SCM-RNG1
        return "SCM-RNG1" in self.absorbed

    @property
    def expand_range_properties(self) -> bool:  # SCM-RNG2
        return "SCM-RNG2" in self.absorbed

    def describe(self) -> str:
        absorbed = ", ".join(self.absorbed) if self.absorbed else "-"
        return (
            f"hybrid[{self.ruleset}]: absorbed {len(self.absorbed)} "
            f"({absorbed}); materialized {len(self.materialized)}"
        )


def plan_hybrid(rules: Sequence[Rule], ruleset_name: str) -> HybridPlan:
    """Split ``rules`` into absorbed and materialized sets.

    Starts from every shape-verified absorbable rule and ejects to a
    fixed point (ejecting one rule can strand another):

    * the absorbed rule feeds a materialized, non-aware rule — that
      rule would fire over the absorbed rule's *virtual* output;
    * a materialized, non-aware rule feeds the absorbed rule — the
      flush could write into a table the encoding answered from;
    * the SCM-DOM1/SCM-RNG1 coupling described in the module docstring.
    """
    rules = list(rules)
    graph = RuleDependencyGraph(rules)
    absorbed_idx = {
        i for i, rule in enumerate(rules) if _is_absorbable(rule)
    }
    aware_idx = {
        i for i, rule in enumerate(rules) if _is_hierarchy_aware(rule)
    }

    def exempt(j: int) -> bool:
        return j in absorbed_idx or j in aware_idx

    changed = True
    while changed:
        changed = False
        for i in sorted(absorbed_idx):
            conflict = any(
                j != i and not exempt(j) for j in graph.feeds(i)
            ) or any(j != i and not exempt(j) for j in graph.fed_by(i))
            if conflict:
                absorbed_idx.discard(i)
                changed = True
        absorbed_names = {rules[i].name for i in absorbed_idx}
        if "CAX-SCO" not in absorbed_names and aware_idx:
            for i in sorted(absorbed_idx):
                if rules[i].name in ("SCM-DOM1", "SCM-RNG1"):
                    absorbed_idx.discard(i)
                    changed = True

    absorbed = tuple(
        rules[i].name for i in range(len(rules)) if i in absorbed_idx
    )
    materialized = tuple(
        rules[i].name for i in range(len(rules)) if i not in absorbed_idx
    )
    reduced = [
        rule for i, rule in enumerate(rules) if i not in absorbed_idx
    ]
    return HybridPlan(
        ruleset=ruleset_name,
        absorbed=absorbed,
        materialized=materialized,
        reduced_rules=reduced,
    )
