"""Hierarchy-encoded hybrid entailment (LiteMat-style).

Instead of materializing the rdfs7/rdfs9-shaped consequences of the
subClassOf/subPropertyOf lattice, this subsystem encodes the lattice
as interval sets over dense closure ids (:mod:`.encoder`), decides per
ruleset which Table-5 rules that encoding absorbs (:mod:`.planner`),
and answers reads through a virtual triple view that composes the
reduced stored closure with id-range tests (:mod:`.view`).

``Store(materialize="hybrid")`` wires the three together; answers are
byte-identical to ``materialize="full"`` while the stored closure —
and hence flush time and resident size — shrinks by the absorbed
rules' output.
"""

from .encoder import HierarchyEncoding, encode_hierarchies
from .planner import (
    ABSORBABLE_RULES,
    HIERARCHY_AWARE_RULES,
    HybridPlan,
    plan_hybrid,
)
from .view import HybridTripleView

__all__ = [
    "ABSORBABLE_RULES",
    "HIERARCHY_AWARE_RULES",
    "HierarchyEncoding",
    "HybridPlan",
    "HybridTripleView",
    "encode_hierarchies",
    "plan_hybrid",
]
