"""LiteMat-style hierarchy encoder over the schema lattice.

The encoder runs the Nuutila/interval closure machinery
(:func:`repro.closure.nuutila.build_reach_index` +
:class:`repro.closure.intervals.IntervalSet`) over the schema's
``rdfs:subClassOf`` and ``rdfs:subPropertyOf`` graphs and assigns every
class/property a *closure id* plus an interval set such that

    ``c1 ⊑ c2  ⟺  closure_id(c1) ∈ intervals(c2)``

(with ``⊑`` the ≥1-edge reachability of the subsumption graph).  The
:class:`~repro.closure.nuutila.ReachIndex` tables double as the remap
between the dictionary id space of :mod:`repro.dictionary.encoding`
(arbitrary 64-bit ids, properties numbered down from ``PROPERTY_BASE``)
and the dense interval-friendly closure ids — no dictionary ids are
reassigned, so existing stores, persistence files and snapshots keep
their encoded triples unchanged.

Fallback for non-tree lattices
------------------------------
LiteMat's original scheme assigns *one* prefix-coded id per class and
breaks on multi-parent lattices.  Here a node's subsumers are an
:class:`IntervalSet` — a sorted list of id ranges — so:

* **multi-parent DAGs** (diamonds, general lattices) stay *exact*: a
  node reachable through several parents simply carries more than one
  interval; membership tests remain binary searches.
* **cycles** collapse into one SCC sharing a contiguous id block and
  one reach set; every member is a sub- and super-class of every other
  (including itself), matching the materialized closure's semantics
  over subsumption cycles.

The cost of the fallback is bounded by the number of intervals (see
``stats()``), never wrong answers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..closure.nuutila import ReachIndex, build_reach_index

Edge = Tuple[int, int]

#: Payload schema version for persisted encodings (see ``to_payload``).
ENCODING_PAYLOAD_VERSION = 1


def _normalized_edges(edges: Iterable[Edge]) -> List[Edge]:
    """Sorted-unique edge list (canonical form for payloads/rebuilds)."""
    return sorted({(int(s), int(o)) for s, o in edges})


class HierarchyEncoding:
    """Interval-encoded subClassOf/subPropertyOf lattices.

    Four :class:`ReachIndex` instances — the class and property graphs,
    each in the *up* (as asserted: node → superclass) and *down*
    (reversed: node → subclass) direction.  All predicates follow the
    closure semantics of the materialized engine: reachability via at
    least one edge, so a node subsumes itself only when it lies on a
    cycle; the ``*_inclusive`` helpers add the reflexive element the
    rule rewrites need.
    """

    __slots__ = (
        "class_edges",
        "property_edges",
        "classes_up",
        "classes_down",
        "props_up",
        "props_down",
        "_superclass_memo",
    )

    def __init__(
        self,
        class_edges: Iterable[Edge],
        property_edges: Iterable[Edge],
    ):
        self.class_edges = _normalized_edges(class_edges)
        self.property_edges = _normalized_edges(property_edges)
        self.classes_up = build_reach_index(self.class_edges)
        self.classes_down = build_reach_index(
            [(o, s) for s, o in self.class_edges]
        )
        self.props_up = build_reach_index(self.property_edges)
        self.props_down = build_reach_index(
            [(o, s) for s, o in self.property_edges]
        )
        self._superclass_memo: Dict[int, frozenset] = {}

    # -- subsumption predicates (rdfs9/rdfs7 guards, rdfs5/rdfs11) ------
    def is_subclass(self, sub: int, sup: int) -> bool:
        """``⟨sub, subClassOf, sup⟩`` entailed by the schema closure."""
        return self.classes_up.reaches(sub, sup)

    def is_subproperty(self, sub: int, sup: int) -> bool:
        """``⟨sub, subPropertyOf, sup⟩`` entailed by the schema closure."""
        return self.props_up.reaches(sub, sup)

    # -- strict reach enumerations (closure-id order) -------------------
    def superclasses(self, cls: int) -> List[int]:
        return self.classes_up.reachable_nodes(cls)

    def subclasses(self, cls: int) -> List[int]:
        return self.classes_down.reachable_nodes(cls)

    def superproperties(self, prop: int) -> List[int]:
        return self.props_up.reachable_nodes(prop)

    def subproperties(self, prop: int) -> List[int]:
        return self.props_down.reachable_nodes(prop)

    # -- reflexive-transitive sets (what the rule rewrites consume) -----
    def superclass_set(self, cls: int) -> frozenset:
        """``{cls} ∪ superclasses(cls)``, memoized (schema-sized)."""
        cached = self._superclass_memo.get(cls)
        if cached is None:
            cached = frozenset((cls, *self.classes_up.reachable_nodes(cls)))
            self._superclass_memo[cls] = cached
        return cached

    def subclass_set(self, cls: int) -> frozenset:
        return frozenset((cls, *self.classes_down.reachable_nodes(cls)))

    def superproperty_set(self, prop: int) -> frozenset:
        return frozenset((prop, *self.props_up.reachable_nodes(prop)))

    def subproperty_set(self, prop: int) -> frozenset:
        return frozenset((prop, *self.props_down.reachable_nodes(prop)))

    def stats(self) -> Dict[str, int]:
        """Encoder size counters (surfaced by CLI stats / benchmarks)."""
        return {
            "n_classes": self.classes_up.n_nodes,
            "n_class_edges": len(self.class_edges),
            "n_class_closure_pairs": self.classes_up.n_reach_pairs(),
            "n_class_intervals": self.classes_up.n_intervals(),
            "n_properties": self.props_up.n_nodes,
            "n_property_edges": len(self.property_edges),
            "n_property_closure_pairs": self.props_up.n_reach_pairs(),
            "n_property_intervals": self.props_up.n_intervals(),
        }

    # -- persistence ----------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """JSON-serializable form.

        The interval assignment is a pure function of the (canonically
        ordered) edge lists, so persisting the edges is enough — the
        loader rebuilds identical indexes, and the payload stays
        schema-sized rather than closure-sized.
        """
        return {
            "version": ENCODING_PAYLOAD_VERSION,
            "class_edges": [list(edge) for edge in self.class_edges],
            "property_edges": [list(edge) for edge in self.property_edges],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "HierarchyEncoding":
        version = payload.get("version")
        if version != ENCODING_PAYLOAD_VERSION:
            raise ValueError(
                f"unsupported litemat encoding payload version {version!r}"
            )
        return cls(
            [tuple(edge) for edge in payload["class_edges"]],
            [tuple(edge) for edge in payload["property_edges"]],
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<HierarchyEncoding {self.classes_up.n_nodes} classes / "
            f"{self.props_up.n_nodes} properties>"
        )


def encode_hierarchies(
    subclass_pairs: Sequence[Edge],
    subproperty_pairs: Sequence[Edge],
) -> HierarchyEncoding:
    """Build the encoding from stored schema pair iterables."""
    return HierarchyEncoding(subclass_pairs, subproperty_pairs)
