"""Query rewrite: a virtual triple view over the reduced closure.

:class:`HybridTripleView` duck-types the read surface of
:class:`repro.store.triple_store.TripleStore` (``n_triples``,
``triples()``, ``query()``, ``in``) over the *reduced* closure a hybrid
flush stores, composing the hierarchy encoding in so every read sees
the same answers the fully materialized closure would give — without
those triples existing.  ``repro.Store`` routes its reads, snapshots
and BGP evaluation through this object, so :mod:`repro.query.bgp`
needs no changes.

Virtual table semantics (S = stored tables, reach sets from
:class:`~repro.litemat.encoder.HierarchyEncoding`; each expansion is
active only when its plan flag — i.e. its absorbed rule — is on):

* ``rdfs:subClassOf``  = the reach relation of the class graph (rdfs11)
* ``rdfs:subPropertyOf`` = the reach relation of the property graph
  (rdfs5)
* ``rdf:type``         = S[type] with each subject's classes expanded
  through their superclass sets (rdfs9 / CAX-SCO)
* ``rdfs:domain/range`` = S rows expanded down the property lattice
  (SCM-DOM2/RNG2) and up the class lattice (SCM-DOM1/RNG1)
* data property *p*    = ∪ S[q] for q in the inclusive sub-property
  set of p (rdfs7 / PRP-SPO1)

Bound lookups stay index-shaped: bound-subject reads use the stored
tables' binary searches plus schema-sized expansions; bound-object
reads over ``rdf:type`` filter the stored class candidates through the
encoder's interval sets with ``KernelBackend.select_in_ranges`` (the
id-range test of the paper's interval encoding); full enumerations are
computed per property id and cached (the cache is shared with
snapshot views taken over the same arrays).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from .encoder import HierarchyEncoding
from .planner import HybridPlan

EncodedTriple = Tuple[int, int, int]


class HybridTripleView:
    """Read-only composition of a reduced closure and its encoding."""

    def __init__(
        self,
        tables,
        encoding: HierarchyEncoding,
        plan: HybridPlan,
        vocab,
        kernels,
        _state: Optional[dict] = None,
    ):
        self._tables = tables
        self._encoding = encoding
        self._plan = plan
        self._kernels = kernels
        self._type_id = vocab.type
        self._sc_id = vocab.subClassOf
        self._sp_id = vocab.subPropertyOf
        self._dom_id = vocab.domain
        self._rng_id = vocab.range
        self._vocab = vocab
        # Enumeration caches, shared across share_view() aliases (the
        # underlying arrays are identical, and a view is never mutated —
        # the engine builds a fresh view on every flush).
        self._state = (
            _state
            if _state is not None
            else {"pairs": {}, "pids": None, "n": None}
        )

    # -- TripleStore surface -------------------------------------------
    def share_view(self) -> "HybridTripleView":
        """A frozen alias over shared pair arrays (snapshot reads)."""
        return HybridTripleView(
            self._tables.share_view(),
            self._encoding,
            self._plan,
            self._vocab,
            self._kernels,
            _state=self._state,
        )

    @property
    def n_triples(self) -> int:
        if self._state["n"] is None:
            self._state["n"] = sum(
                len(self._virtual_pairs(pid)) for pid in self._virtual_pids()
            )
        return self._state["n"]

    def __len__(self) -> int:
        return self.n_triples

    def __bool__(self) -> bool:
        return any(
            self._virtual_pairs(pid) for pid in self._virtual_pids()
        )

    def triples(self) -> Iterator[EncodedTriple]:
        """Every virtual (s, p, o), properties in ascending-id order."""
        for pid in self._virtual_pids():
            for s, o in self._virtual_pairs(pid):
                yield (s, pid, o)

    def as_set(self) -> set:
        return set(self.triples())

    def __contains__(self, encoded: EncodedTriple) -> bool:
        s, pid, o = encoded
        return self._contains(s, pid, o)

    def memory_bytes(self) -> int:
        """Bytes of the *stored* reduced closure (caches excluded —
        they are a query-time convenience, not resident closure)."""
        return self._tables.memory_bytes()

    def query(
        self,
        subject: Optional[int] = None,
        property_id: Optional[int] = None,
        obj: Optional[int] = None,
    ) -> Iterator[EncodedTriple]:
        """Pattern query with ``None`` wildcards (TripleStore-shaped)."""
        if property_id is None:
            for pid in self._virtual_pids():
                yield from self.query(subject, pid, obj)
            return
        pid = property_id
        if subject is not None and obj is not None:
            if self._contains(subject, pid, obj):
                yield (subject, pid, obj)
        elif subject is not None:
            for o in self._objects_of(pid, subject):
                yield (subject, pid, o)
        elif obj is not None:
            for s in self._subjects_of(pid, obj):
                yield (s, pid, obj)
        else:
            for s, o in self._virtual_pairs(pid):
                yield (s, pid, o)

    # -- virtual property-id universe ----------------------------------
    def _stored(self, pid: int):
        table = self._tables.table(pid)
        if table is None or not table.n_pairs:
            return None
        return table

    def _specials(self) -> frozenset:
        return frozenset(
            (self._type_id, self._sc_id, self._sp_id, self._dom_id,
             self._rng_id)
        )

    def _virtual_pids(self) -> List[int]:
        if self._state["pids"] is None:
            specials = self._specials()
            pids = {
                pid
                for pid in self._tables.property_ids()
                if self._stored(pid) is not None
            }
            if self._plan.copy_data:
                # A super-property with no stored rows of its own still
                # gets a virtual table from its descendants' data.
                for pid in list(pids):
                    if pid in specials:
                        continue
                    for sup in self._encoding.superproperties(pid):
                        if sup not in specials:
                            pids.add(sup)
            self._state["pids"] = sorted(pids)
        return self._state["pids"]

    # -- full enumerations (cached per pid) -----------------------------
    def _virtual_pairs(self, pid: int) -> List[Tuple[int, int]]:
        cached = self._state["pairs"].get(pid)
        if cached is None:
            cached = self._compute_pairs(pid)
            self._state["pairs"][pid] = cached
        return cached

    def _compute_pairs(self, pid: int) -> List[Tuple[int, int]]:
        plan = self._plan
        if pid == self._sc_id and plan.close_subclass:
            return self._reach_pairs(self._encoding.classes_up)
        if pid == self._sp_id and plan.close_subproperty:
            return self._reach_pairs(self._encoding.props_up)
        if pid == self._type_id and plan.expand_type:
            return self._expanded_type_pairs()
        if pid == self._dom_id:
            return self._expanded_schema_pairs(
                pid,
                plan.expand_domain_properties,
                plan.expand_domain_classes,
            )
        if pid == self._rng_id:
            return self._expanded_schema_pairs(
                pid,
                plan.expand_range_properties,
                plan.expand_range_classes,
            )
        if plan.copy_data and pid not in self._specials():
            return self._data_union_pairs(pid)
        table = self._stored(pid)
        if table is None:
            return []
        return list(table.iter_pairs())

    def _reach_pairs(self, index) -> List[Tuple[int, int]]:
        originals = index.original_of_closure
        out: List[Tuple[int, int]] = []
        for node in index.nodes():
            reachable = index.reach_of(node)
            if not reachable:
                continue
            for cid in reachable:
                out.append((node, originals[cid]))
        out.sort()
        return out

    def _expanded_type_pairs(self) -> List[Tuple[int, int]]:
        table = self._stored(self._type_id)
        if table is None:
            return []
        superclass_set = self._encoding.superclass_set
        out: List[Tuple[int, int]] = []
        current_subject = None
        classes: set = set()

        def emit():
            expanded: set = set()
            for cls in classes:
                expanded |= superclass_set(cls)
            out.extend(
                (current_subject, cls) for cls in sorted(expanded)
            )

        for s, c in table.iter_pairs():
            if s != current_subject:
                if current_subject is not None:
                    emit()
                current_subject = s
                classes = set()
            classes.add(c)
        if current_subject is not None:
            emit()
        return out

    def _expanded_schema_pairs(
        self, pid: int, expand_properties: bool, expand_classes: bool
    ) -> List[Tuple[int, int]]:
        table = self._stored(pid)
        if table is None:
            return []
        encoding = self._encoding
        rows: set = set()
        for p, c in table.iter_pairs():
            props = (
                encoding.subproperty_set(p) if expand_properties else (p,)
            )
            classes = (
                encoding.superclass_set(c) if expand_classes else (c,)
            )
            rows.update((q, d) for q in props for d in classes)
        return sorted(rows)

    def _data_members(self, pid: int) -> List[int]:
        """Stored sub-properties (inclusive) contributing to pid's data."""
        members = [q for q in self._encoding.subproperty_set(pid)
                   if self._stored(q) is not None]
        members.sort()
        return members

    def _data_union_pairs(self, pid: int) -> List[Tuple[int, int]]:
        members = self._data_members(pid)
        if not members:
            return []
        if members == [pid]:
            return list(self._stored(pid).iter_pairs())
        kernels = self._kernels
        flat = kernels.sort_pairs(
            kernels.concat(
                [self._stored(q).pairs for q in members]
            ),
            dedup=True,
        )
        return list(zip(flat[0::2], flat[1::2]))

    # -- bound lookups --------------------------------------------------
    def _contains(self, s: int, pid: int, o: int) -> bool:
        plan = self._plan
        if pid == self._sc_id and plan.close_subclass:
            return self._encoding.is_subclass(s, o)
        if pid == self._sp_id and plan.close_subproperty:
            return self._encoding.is_subproperty(s, o)
        if pid == self._type_id and plan.expand_type:
            table = self._stored(pid)
            if table is None:
                return False
            is_subclass = self._encoding.is_subclass
            return any(
                c == o or is_subclass(c, o) for c in table.objects_of(s)
            )
        if pid in (self._dom_id, self._rng_id):
            return (s, o) in self._schema_row_set(pid)
        if plan.copy_data and pid not in self._specials():
            return any(
                self._stored(q).contains(s, o)
                for q in self._data_members(pid)
            )
        table = self._stored(pid)
        return table is not None and table.contains(s, o)

    def _schema_row_set(self, pid: int) -> set:
        key = ("schema_set", pid)
        cached = self._state.get(key)
        if cached is None:
            cached = set(self._virtual_pairs(pid))
            self._state[key] = cached
        return cached

    def _objects_of(self, pid: int, s: int) -> List[int]:
        plan = self._plan
        if pid == self._sc_id and plan.close_subclass:
            return sorted(self._encoding.superclasses(s))
        if pid == self._sp_id and plan.close_subproperty:
            return sorted(self._encoding.superproperties(s))
        if pid == self._type_id and plan.expand_type:
            table = self._stored(pid)
            if table is None:
                return []
            expanded: set = set()
            for c in table.objects_of(s):
                expanded |= self._encoding.superclass_set(c)
            return sorted(expanded)
        if pid in (self._dom_id, self._rng_id):
            return sorted(
                o for q, o in self._schema_row_set(pid) if q == s
            )
        if plan.copy_data and pid not in self._specials():
            objects: set = set()
            for q in self._data_members(pid):
                objects.update(self._stored(q).objects_of(s))
            return sorted(objects)
        table = self._stored(pid)
        if table is None:
            return []
        return list(table.objects_of(s))

    def _subjects_of(self, pid: int, o: int) -> List[int]:
        plan = self._plan
        if pid == self._sc_id and plan.close_subclass:
            return sorted(self._encoding.subclasses(o))
        if pid == self._sp_id and plan.close_subproperty:
            return sorted(self._encoding.subproperties(o))
        if pid == self._type_id and plan.expand_type:
            return self._type_subjects_of(o)
        if pid in (self._dom_id, self._rng_id):
            return sorted(
                q for q, c in self._schema_row_set(pid) if c == o
            )
        if plan.copy_data and pid not in self._specials():
            subjects: set = set()
            for q in self._data_members(pid):
                subjects.update(self._stored(q).subjects_of(o))
            return sorted(subjects)
        table = self._stored(pid)
        if table is None:
            return []
        return list(table.subjects_of(o))

    def _type_subjects_of(self, cls: int) -> List[int]:
        """Instances of ``cls``: subjects stored under any subclass.

        The interval membership test of the paper's encoding: stored
        class candidates map to closure ids of the *down* index and are
        filtered against ``cls``'s interval set in one vectorizable
        pass (``select_in_ranges``).
        """
        table = self._stored(self._type_id)
        if table is None:
            return []
        down = self._encoding.classes_down
        candidates = list(table.distinct_objects())
        matching: List[int] = []
        reachable = down.reach_of(cls)
        if reachable is not None:
            cid_of = down.closure_id_of
            cid_to_class = {}
            cids = []
            for c in candidates:
                cid = cid_of.get(c)
                if cid is not None:
                    cid_to_class[cid] = c
                    cids.append(cid)
            cids.sort()
            selected = self._kernels.select_in_ranges(
                cids, reachable.intervals()
            )
            matching = [cid_to_class[cid] for cid in selected]
        if cls in candidates:
            matching.append(cls)
        subjects: set = set()
        for c in matching:
            subjects.update(table.subjects_of(c))
        return sorted(subjects)
