"""Executors for the Table-5 rule classes (paper §4.4).

Each executor implements one *class* of rules over the vertically
partitioned store; :mod:`repro.rules.table5` instantiates them with the
concrete vocabulary constants.  All joins are sort-merge joins over the
⟨s, o⟩ tables and their cached ⟨o, s⟩ views, exactly as described for
CAX-SCO in the paper's Figure 4.

The bulk passes — the merge joins themselves, pair intersections,
component swaps, distinct-key scans and the functional-property
conflict scan — execute on the engine's kernel backend
(``ctx.kernels``; see :mod:`repro.kernels`), so rule firing is
vectorized end to end under the NumPy backend: a join produces one flat
pair array that is handed to the output buffers as a single chunk,
never one Python-level ``emit`` per derived triple.

Semi-naive evaluation: every executor joins (new × main) ∪ (main × new);
since ``main ⊇ new`` after the Figure-5 merge, this covers every
derivation involving at least one new triple, and (new × new) being
covered twice only produces duplicates that the merge removes.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from .spec import Rule, RuleContext, table_or_none
from ..closure.components import (
    closed_pairs,
    symmetric_transitive_closure_pairs,
)


def shard_join_views(kernels, view1, view2, shard):
    """Restrict both sides of a merge join to one key-range shard.

    ``shard`` is ``(index, count)``.  The key domain is partitioned by
    boundary keys sampled at equi-spaced pair positions of the larger
    view — deterministic, because every shard of the same firing reads
    the same committed views — giving half-open ranges ``[bₖ, bₖ₊₁)``
    with open outer ends.  A join key's whole group therefore lands in
    exactly one shard, so the union of all shards' join outputs equals
    the unsplit join.  Returns ``(None, None)`` when the shard's range
    is empty on either side.
    """
    index, count = shard
    base = view1 if len(view1) >= len(view2) else view2
    n_pairs = len(base) // 2
    lo_key = base[2 * ((index * n_pairs) // count)] if index > 0 else None
    hi_key = (
        base[2 * (((index + 1) * n_pairs) // count)]
        if index < count - 1
        else None
    )
    if lo_key is not None and hi_key is not None and lo_key == hi_key:
        return None, None
    sliced = []
    for view in (view1, view2):
        start = (
            0 if lo_key is None else kernels.key_lower_bound(view, lo_key)
        )
        end = (
            len(view) // 2
            if hi_key is None
            else kernels.key_lower_bound(view, hi_key)
        )
        if start >= end:
            return None, None
        sliced.append(view[2 * start: 2 * end])
    return sliced[0], sliced[1]


def _two_leg_input_size(legs) -> int:
    """Total pair count feeding a two-leg merge-join executor.

    ``legs`` yields ``(table1, table2)`` pairs (``None`` entries are
    skipped); the sum is the quantity the merge joins scan linearly —
    the same estimate the shard planner and the executor-selection
    cost model both gate on.
    """
    size = 0
    for table1, table2 in legs:
        if table1 is None or table2 is None:
            continue
        size += table1.n_pairs + table2.n_pairs
    return size


def _two_leg_shard_plan(legs, *, max_shards, threshold):
    """Shard count for a two-leg merge-join executor, or ``None``."""
    if max_shards < 2 or threshold <= 0:
        return None
    size = _two_leg_input_size(legs)
    if size < threshold:
        return None
    return max(2, min(max_shards, -(-size // threshold)))


def merge_join_groups(
    view1: Sequence[int],
    view2: Sequence[int],
    callback: Callable[[List[int], List[int]], None],
) -> None:
    """Sort-merge join of two flat views keyed on their even components.

    For every key present in both views, ``callback`` receives the lists
    of odd-position companions (the "rest" variables) from each side.
    Kept as the callback-style reference primitive (and for callers that
    need per-key control); bulk rule execution uses the kernel
    backends' ``merge_join`` instead.
    """
    i = j = 0
    n1 = len(view1)
    n2 = len(view2)
    while i < n1 and j < n2:
        key1 = view1[i]
        key2 = view2[j]
        if key1 < key2:
            i += 2
        elif key1 > key2:
            j += 2
        else:
            i_end = i
            while i_end < n1 and view1[i_end] == key1:
                i_end += 2
            j_end = j
            while j_end < n2 and view2[j_end] == key1:
                j_end += 2
            callback(
                [view1[x] for x in range(i + 1, i_end, 2)],
                [view2[x] for x in range(j + 1, j_end, 2)],
            )
            i = i_end
            j = j_end


class AlphaRule(Rule):
    """α: two-pattern join on subject or object (paper Figure 4).

    Body: ⟨a1, P1, b1⟩ ∧ ⟨a2, P2, b2⟩ sharing exactly one variable, the
    join variable, at position ``pos1`` of pattern 1 and ``pos2`` of
    pattern 2.  Head: ⟨A, OUT, B⟩ where A/B are the two *rest*
    variables ('r1' = pattern 1's non-join variable, 'r2' = pattern 2's).
    """

    rule_class = "alpha"

    def __init__(
        self,
        name: str,
        p1: str,
        pos1: str,
        p2: str,
        pos2: str,
        out: str,
        head_subject: str,
        head_object: str,
    ):
        super().__init__(name)
        if pos1 not in ("s", "o") or pos2 not in ("s", "o"):
            raise ValueError("join positions must be 's' or 'o'")
        if {head_subject, head_object} - {"r1", "r2"}:
            raise ValueError("alpha heads draw from rest variables only")
        self.p1 = p1
        self.pos1 = pos1
        self.p2 = p2
        self.pos2 = pos2
        self.out = out
        self.head_subject = head_subject
        self.head_object = head_object

    def apply(self, ctx: RuleContext) -> None:
        self._apply(ctx, None)

    def apply_shard(self, ctx: RuleContext, shard) -> None:
        self._apply(ctx, shard)

    def shard_plan(self, *, main, new, vocab, max_shards, threshold):
        pid1 = vocab[self.p1]
        pid2 = vocab[self.p2]
        legs = [
            (table_or_none(store1, pid1), table_or_none(store2, pid2))
            for store1, store2 in ((new, main), (main, new))
        ]
        return _two_leg_shard_plan(
            legs, max_shards=max_shards, threshold=threshold
        )

    def estimate_join_input(self, *, main, new, vocab):
        pid1 = vocab[self.p1]
        pid2 = vocab[self.p2]
        legs = [
            (table_or_none(store1, pid1), table_or_none(store2, pid2))
            for store1, store2 in ((new, main), (main, new))
        ]
        return _two_leg_input_size(legs)

    def _apply(self, ctx: RuleContext, shard) -> None:
        kernels = ctx.kernels
        pid1 = ctx.vocab[self.p1]
        pid2 = ctx.vocab[self.p2]
        out_pid = ctx.vocab[self.out]
        subject_first = self.head_subject == "r1"
        emitted = 0

        for store1, store2 in ((ctx.new, ctx.main), (ctx.main, ctx.new)):
            table1 = table_or_none(store1, pid1)
            table2 = table_or_none(store2, pid2)
            if table1 is None or table2 is None:
                continue
            view1 = table1.pairs if self.pos1 == "s" else table1.os_pairs()
            view2 = table2.pairs if self.pos2 == "s" else table2.os_pairs()
            if shard is not None:
                view1, view2 = shard_join_views(kernels, view1, view2, shard)
                if view1 is None:
                    continue
            joined = kernels.merge_join(view1, view2, swap=not subject_first)
            if len(joined):
                ctx.out.extend(out_pid, joined)
                emitted += len(joined) // 2
        ctx.count(self.name, emitted)


class BetaRule(Rule):
    """β: self-join of one table, subject of one side = object of the other.

    SCM-EQC2 / SCM-EQP2: ⟨a, P, b⟩ ∧ ⟨b, P, a⟩ → ⟨a, OUT, b⟩ (and the
    symmetric instantiation ⟨b, OUT, a⟩).  Implemented as one linear
    co-scan of the delta's ⟨s, o⟩ view against main's ⟨o, s⟩ view: the
    composite keys coincide exactly on mutual pairs.
    """

    rule_class = "beta"

    def __init__(self, name: str, prop: str, out: str):
        super().__init__(name)
        self.prop = prop
        self.out = out

    def apply(self, ctx: RuleContext) -> None:
        kernels = ctx.kernels
        pid = ctx.vocab[self.prop]
        out_pid = ctx.vocab[self.out]
        new_table = table_or_none(ctx.new, pid)
        main_table = table_or_none(ctx.main, pid)
        if new_table is None or main_table is None:
            return
        mutual = kernels.intersect(new_table.pairs, main_table.os_pairs())
        if len(mutual):
            ctx.out.extend(out_pid, mutual)
            ctx.out.extend(out_pid, kernels.swap(mutual))
        ctx.count(self.name, len(mutual))


class PropertyCopyRule(Rule):
    """δ (and the table-copy γ): copy one property table into another.

    Driven by a schema table whose rows ⟨x, y⟩ name two properties:
    ``forward`` copies table(x) into y, else table(y) into x; ``reverse``
    swaps each pair while copying (inverseOf heads).  Covers PRP-SPO1,
    PRP-EQP1/2 and PRP-INV1/2.
    """

    rule_class = "delta"

    def __init__(self, name: str, schema: str, forward: bool, reverse: bool):
        super().__init__(name)
        self.schema = schema
        self.forward = forward
        self.reverse = reverse

    def _copy(self, ctx: RuleContext, store, src: int, dst: int) -> int:
        if src == dst and not self.reverse:
            return 0  # copying a table onto itself adds nothing
        table = table_or_none(store, src)
        if table is None:
            return 0
        pairs = table.pairs
        if self.reverse:
            ctx.out.extend(dst, ctx.kernels.swap(pairs))
        else:
            ctx.out.extend(dst, pairs)
        return len(pairs) // 2

    def apply(self, ctx: RuleContext) -> None:
        schema_pid = ctx.vocab[self.schema]
        emitted = 0
        new_schema = table_or_none(ctx.new, schema_pid)
        if new_schema is not None:
            for x, y in new_schema.iter_pairs():
                src, dst = (x, y) if self.forward else (y, x)
                emitted += self._copy(ctx, ctx.main, src, dst)
        main_schema = table_or_none(ctx.main, schema_pid)
        if main_schema is not None:
            for x, y in main_schema.iter_pairs():
                src, dst = (x, y) if self.forward else (y, x)
                emitted += self._copy(ctx, ctx.new, src, dst)
        ctx.count(self.name, emitted)


class DomainRangeRule(Rule):
    """γ: PRP-DOM / PRP-RNG — type every subject (object) of p with c.

    Body: ⟨p, domain|range, c⟩ ∧ ⟨x, p, y⟩; the second pattern's
    *property* is the first pattern's subject, so the executor iterates
    the schema rows and visits each named property table — cheap in
    practice because "the number of properties is much smaller compared
    to classes and instances."
    """

    rule_class = "gamma"

    def __init__(self, name: str, schema: str, use_subjects: bool):
        super().__init__(name)
        self.schema = schema
        self.use_subjects = use_subjects

    def _emit_types(self, ctx: RuleContext, store, p: int, c: int) -> int:
        table = table_or_none(store, p)
        if table is None:
            return 0
        kernels = ctx.kernels
        if self.use_subjects:
            members = kernels.distinct_evens(table.pairs)
        else:
            members = kernels.distinct_evens(table.os_pairs())
        if not len(members):
            return 0
        ctx.out.extend(
            ctx.vocab.type, kernels.pair_with_constant(members, c)
        )
        return len(members)

    def apply(self, ctx: RuleContext) -> None:
        schema_pid = ctx.vocab[self.schema]
        emitted = 0
        new_schema = table_or_none(ctx.new, schema_pid)
        if new_schema is not None:
            for p, c in new_schema.iter_pairs():
                emitted += self._emit_types(ctx, ctx.main, p, c)
        main_schema = table_or_none(ctx.main, schema_pid)
        if main_schema is not None:
            for p, c in main_schema.iter_pairs():
                emitted += self._emit_types(ctx, ctx.new, p, c)
        ctx.count(self.name, emitted)


class SymmetricPropertyRule(Rule):
    """γ: PRP-SYMP — reverse-copy the table of every symmetric property."""

    rule_class = "gamma"

    def __init__(self, name: str = "PRP-SYMP"):
        super().__init__(name)

    def apply(self, ctx: RuleContext) -> None:
        vocab = ctx.vocab
        marker = vocab.SymmetricProperty
        emitted = 0
        new_types = table_or_none(ctx.new, vocab.type)
        if new_types is not None:
            for p in new_types.subjects_of(marker):
                table = table_or_none(ctx.main, p)
                if table is not None:
                    ctx.out.extend(p, ctx.kernels.swap(table.pairs))
                    emitted += table.n_pairs
        main_types = table_or_none(ctx.main, vocab.type)
        if main_types is not None:
            for p in main_types.subjects_of(marker):
                table = table_or_none(ctx.new, p)
                if table is not None:
                    ctx.out.extend(p, ctx.kernels.swap(table.pairs))
                    emitted += table.n_pairs
        ctx.count(self.name, emitted)


class FunctionalPropertyRule(Rule):
    """PRP-FP / PRP-IFP: linear self-joins on (inverse-)functional tables.

    For each marked property whose table (or marking) changed this
    iteration, one scan of the ⟨s, o⟩ (FP) or ⟨o, s⟩ (IFP) view emits a
    sameAs link between *consecutive distinct* conflict values in each
    group — the symmetric-transitive sameAs closure completes the
    clique, preserving the paper's O(k·n) bound.
    """

    rule_class = "functional"

    def __init__(self, name: str, inverse: bool):
        super().__init__(name)
        self.inverse = inverse

    def apply(self, ctx: RuleContext) -> None:
        vocab = ctx.vocab
        marker = (
            vocab.InverseFunctionalProperty
            if self.inverse
            else vocab.FunctionalProperty
        )
        main_types = table_or_none(ctx.main, vocab.type)
        if main_types is None:
            return
        marked = main_types.subjects_of(marker)
        if not marked:
            return
        new_types = table_or_none(ctx.new, vocab.type)
        newly_marked = (
            set(new_types.subjects_of(marker)) if new_types is not None else set()
        )
        sameas_pid = vocab.sameAs
        emitted = 0
        for p in marked:
            changed = p in newly_marked or table_or_none(ctx.new, p) is not None
            if not changed:
                continue
            table = table_or_none(ctx.main, p)
            if table is None:
                continue
            view = table.os_pairs() if self.inverse else table.pairs
            conflicts = ctx.kernels.consecutive_in_group(view)
            if len(conflicts):
                ctx.out.extend(sameas_pid, conflicts)
                emitted += len(conflicts) // 2
        ctx.count(self.name, emitted)


class SameAsRule(Rule):
    """same-as: EQ-REP-S / EQ-REP-P / EQ-REP-O in a single loop (§4.4).

    The sameAs table (already symmetric after the θ closure) drives the
    substitution: for each pair ⟨a, b⟩, b's property table is copied to
    a (EQ-REP-P) and every occurrence of b as subject or object in any
    property table re-emits with a substituted (EQ-REP-S / EQ-REP-O),
    via per-table merge joins.
    """

    rule_class = "same-as"

    def __init__(self, name: str = "EQ-REP"):
        super().__init__(name)

    def apply(self, ctx: RuleContext) -> None:
        vocab = ctx.vocab
        kernels = ctx.kernels
        sameas_pid = vocab.sameAs
        emit = ctx.out.emit
        emitted = 0

        # Direction 1: new sameAs pairs × main data.
        new_sa = table_or_none(ctx.new, sameas_pid)
        if new_sa is not None:
            sa_by_object = new_sa.os_pairs()  # keyed by b, rest = a
            for a, b in new_sa.iter_pairs():
                if a == b:
                    continue
                table_b = table_or_none(ctx.main, b)
                if table_b is not None:  # EQ-REP-P
                    ctx.out.extend(a, table_b.pairs)
                    emitted += table_b.n_pairs
            for pid in ctx.main.property_ids():
                table = ctx.main.table(pid)
                # EQ-REP-S: ⟨b, p, o⟩ ∧ sameAs(a, b) → ⟨a, p, o⟩.
                substituted = kernels.merge_join(sa_by_object, table.pairs)
                if len(substituted):
                    ctx.out.extend(pid, substituted)
                    emitted += len(substituted) // 2
                # EQ-REP-O: ⟨s, p, b⟩ ∧ sameAs(a, b) → ⟨s, p, a⟩.
                substituted = kernels.merge_join(
                    sa_by_object, table.os_pairs(), swap=True
                )
                if len(substituted):
                    ctx.out.extend(pid, substituted)
                    emitted += len(substituted) // 2

        # Direction 2: all sameAs pairs × new data.
        main_sa = table_or_none(ctx.main, sameas_pid)
        if main_sa is not None:
            for pid in ctx.new.property_ids():
                new_table = ctx.new.table(pid)
                for partner in main_sa.objects_of(pid):  # EQ-REP-P
                    if partner != pid:
                        ctx.out.extend(partner, new_table.pairs)
                        emitted += new_table.n_pairs
                for s, o in new_table.iter_pairs():
                    for partner in main_sa.objects_of(s):
                        if partner != s:
                            emit(pid, partner, o)
                            emitted += 1
                    for partner in main_sa.objects_of(o):
                        if partner != o:
                            emit(pid, s, partner)
                            emitted += 1
        ctx.count(self.name, emitted)


class ThetaRule(Rule):
    """θ: transitivity via the Nuutila closure machinery (§4.1).

    The engine runs a *pre-pass* closure before the fixed point (the
    paper's Algorithm 1 line 2); during iterations the rule re-closes a
    property only when its delta is non-empty (or, for PRP-TRP, when a
    property was newly marked transitive), which keeps the fixed point
    complete when other rules derive fresh θ-relevant triples.
    """

    rule_class = "theta"

    #: kinds: 'subClassOf' | 'subPropertyOf' | 'sameAs' | 'transitive'
    def __init__(self, name: str, kind: str):
        super().__init__(name)
        if kind not in ("subClassOf", "subPropertyOf", "sameAs", "transitive"):
            raise ValueError(f"unknown theta kind {kind!r}")
        self.kind = kind

    def _close_property(self, ctx: RuleContext, pid: int, symmetric: bool) -> int:
        table = table_or_none(ctx.main, pid)
        if table is None:
            return 0
        edges = list(table.iter_pairs())
        if symmetric:
            closed = symmetric_transitive_closure_pairs(edges)
        else:
            closed = closed_pairs(edges)
        ctx.out.extend(pid, closed)
        tracer = ctx.main.tracer
        if tracer is not None:
            # Nuutila's temporary layout: one streaming pass over the
            # edges plus a sequential write of the closed pair array.
            tracer.sequential_scan(("closure", pid), 16 * len(edges))
            tracer.sequential_scan(("closure", pid), 8 * len(closed))
        return len(closed) // 2

    def prepass(self, ctx: RuleContext) -> int:
        """Full closure over the loaded data (engine line 2)."""
        vocab = ctx.vocab
        if self.kind == "sameAs":
            return self._close_property(ctx, vocab.sameAs, symmetric=True)
        if self.kind in ("subClassOf", "subPropertyOf"):
            return self._close_property(ctx, vocab[self.kind], symmetric=False)
        # transitive: every property marked owl:TransitiveProperty.
        emitted = 0
        types = table_or_none(ctx.main, vocab.type)
        if types is None:
            return 0
        for p in types.subjects_of(vocab.TransitiveProperty):
            emitted += self._close_property(ctx, p, symmetric=False)
        return emitted

    def apply(self, ctx: RuleContext) -> None:
        if ctx.iteration == 1 and ctx.theta_prepass_done:
            return  # pre-pass already closed the loaded data
        vocab = ctx.vocab
        emitted = 0
        if self.kind == "sameAs":
            if table_or_none(ctx.new, vocab.sameAs) is not None:
                emitted = self._close_property(ctx, vocab.sameAs, symmetric=True)
        elif self.kind in ("subClassOf", "subPropertyOf"):
            pid = vocab[self.kind]
            if table_or_none(ctx.new, pid) is not None:
                emitted = self._close_property(ctx, pid, symmetric=False)
        else:
            main_types = table_or_none(ctx.main, vocab.type)
            if main_types is None:
                return
            new_types = table_or_none(ctx.new, vocab.type)
            newly_marked = (
                set(new_types.subjects_of(vocab.TransitiveProperty))
                if new_types is not None
                else set()
            )
            for p in main_types.subjects_of(vocab.TransitiveProperty):
                if p in newly_marked or table_or_none(ctx.new, p) is not None:
                    emitted += self._close_property(ctx, p, symmetric=False)
        ctx.count(self.name, emitted)


class IterativeTransitivityRule(Rule):
    """Ablation-only θ variant: transitivity as an iterative self-join.

    Derives ⟨a, P, c⟩ from ⟨a, P, b⟩ ∧ ⟨b, P, c⟩ with a per-iteration
    sort-merge self-join instead of the Nuutila pre-pass — the strategy
    the paper argues *against* ("transitive closure cannot be performed
    efficiently using iterative rules application since duplicate
    generation rapidly degrades performance").  Used by
    ``benchmarks/bench_ablation_closure.py`` to quantify that claim
    inside the same engine.
    """

    rule_class = "theta-iterative"

    def __init__(self, name: str, prop: str):
        super().__init__(name)
        self.prop = prop

    def apply(self, ctx: RuleContext) -> None:
        self._apply(ctx, None)

    def apply_shard(self, ctx: RuleContext, shard) -> None:
        self._apply(ctx, shard)

    def shard_plan(self, *, main, new, vocab, max_shards, threshold):
        pid = vocab[self.prop]
        legs = [
            (table_or_none(left, pid), table_or_none(right, pid))
            for left, right in ((new, main), (main, new))
        ]
        return _two_leg_shard_plan(
            legs, max_shards=max_shards, threshold=threshold
        )

    def estimate_join_input(self, *, main, new, vocab):
        pid = vocab[self.prop]
        legs = [
            (table_or_none(left, pid), table_or_none(right, pid))
            for left, right in ((new, main), (main, new))
        ]
        return _two_leg_input_size(legs)

    def _apply(self, ctx: RuleContext, shard) -> None:
        pid = ctx.vocab[self.prop]
        emitted = 0
        for left_store, right_store in (
            (ctx.new, ctx.main),
            (ctx.main, ctx.new),
        ):
            left = table_or_none(left_store, pid)
            right = table_or_none(right_store, pid)
            if left is None or right is None:
                continue
            # join var b: object of the left pattern, subject of the right.
            view1 = left.os_pairs()
            view2 = right.pairs
            if shard is not None:
                view1, view2 = shard_join_views(
                    ctx.kernels, view1, view2, shard
                )
                if view1 is None:
                    continue
            joined = ctx.kernels.merge_join(view1, view2)
            if len(joined):
                ctx.out.extend(pid, joined)
                emitted += len(joined) // 2
        ctx.count(self.name, emitted)


class TrivialTypeExpandRule(Rule):
    """Single-antecedent rules keyed on ⟨x, rdf:type, MARKER⟩.

    ``heads`` are templates (subject_spec, out_property, object_spec)
    where a spec is the variable ``'x'`` or a vocabulary constant name.
    Covers SCM-CLS, SCM-DP, SCM-OP, RDFS6/8/10/12/13.
    """

    rule_class = "trivial"

    def __init__(self, name: str, marker: str, heads):
        super().__init__(name)
        self.marker = marker
        self.heads = heads

    def apply(self, ctx: RuleContext) -> None:
        vocab = ctx.vocab
        new_types = table_or_none(ctx.new, vocab.type)
        if new_types is None:
            return
        subjects = new_types.subjects_of(vocab[self.marker])
        if not subjects:
            return
        emit = ctx.out.emit
        emitted = 0
        for x in subjects:
            for subject_spec, out, object_spec in self.heads:
                s = x if subject_spec == "x" else vocab[subject_spec]
                o = x if object_spec == "x" else vocab[object_spec]
                emit(vocab[out], s, o)
                emitted += 1
        ctx.count(self.name, emitted)


class TrivialCopyRule(Rule):
    """Single-antecedent rules keyed on one schema table's rows ⟨a, b⟩.

    ``heads`` templates use 'a' / 'b' or vocabulary constant names.
    Covers EQ-SYM, SCM-EQC1 and SCM-EQP1.
    """

    rule_class = "trivial"

    def __init__(self, name: str, src: str, heads):
        super().__init__(name)
        self.src = src
        self.heads = heads

    def apply(self, ctx: RuleContext) -> None:
        vocab = ctx.vocab
        table = table_or_none(ctx.new, vocab[self.src])
        if table is None:
            return
        emit = ctx.out.emit
        emitted = 0
        for a, b in table.iter_pairs():
            for subject_spec, out, object_spec in self.heads:
                if subject_spec == "a":
                    s = a
                elif subject_spec == "b":
                    s = b
                else:
                    s = vocab[subject_spec]
                if object_spec == "a":
                    o = a
                elif object_spec == "b":
                    o = b
                else:
                    o = vocab[object_spec]
                emit(vocab[out], s, o)
                emitted += 1
        ctx.count(self.name, emitted)


class ResourceRule(Rule):
    """RDFS4 (a+b): every subject and object is an rdfs:Resource."""

    rule_class = "trivial"

    def __init__(self, name: str = "RDFS4"):
        super().__init__(name)

    def apply(self, ctx: RuleContext) -> None:
        vocab = ctx.vocab
        kernels = ctx.kernels
        type_pid = vocab.type
        resource = vocab.Resource
        emitted = 0
        for pid in ctx.new.property_ids():
            table = ctx.new.table(pid)
            subjects = kernels.distinct_evens(table.pairs)
            objects = kernels.distinct_evens(table.os_pairs())
            if len(subjects):
                ctx.out.extend(
                    type_pid, kernels.pair_with_constant(subjects, resource)
                )
            if len(objects):
                ctx.out.extend(
                    type_pid, kernels.pair_with_constant(objects, resource)
                )
            emitted += len(subjects) + len(objects)
        ctx.count(self.name, emitted)
