"""Rule machinery core: resolved vocabulary, rule context, base class.

Rules operate entirely on dictionary-encoded ids.  A :class:`Vocab`
resolves every constant appearing in Table 5 (schema properties and
marker classes) to its id once per engine, so rule executors never touch
strings.  A :class:`RuleContext` carries the Algorithm-1 stores of the
current iteration plus the output buffers rules emit into.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..dictionary.encoding import Dictionary
from ..kernels import KernelBackend
from ..kernels.python_backend import PYTHON_KERNELS
from ..rdf.vocabulary import OWL, RDF, RDFS
from ..store.triple_store import InferredBuffers, TripleStore


class Vocab:
    """Dictionary-resolved ids for every constant used by Table 5.

    Attribute names mirror the vocabulary local names; schema *property*
    constants are registered in the dense property space, marker
    *classes* in the resource space.
    """

    _PROPERTY_TERMS = {
        "type": RDF.type,
        "subClassOf": RDFS.subClassOf,
        "subPropertyOf": RDFS.subPropertyOf,
        "domain": RDFS.domain,
        "range": RDFS.range,
        "member": RDFS.member,
        "sameAs": OWL.sameAs,
        "equivalentClass": OWL.equivalentClass,
        "equivalentProperty": OWL.equivalentProperty,
        "inverseOf": OWL.inverseOf,
    }

    _RESOURCE_TERMS = {
        "Resource": RDFS.Resource,
        "rdfsClass": RDFS.Class,
        "Literal": RDFS.Literal,
        "Datatype": RDFS.Datatype,
        "ContainerMembershipProperty": RDFS.ContainerMembershipProperty,
        "Property": RDF.Property,
        "owlClass": OWL.Class,
        "Thing": OWL.Thing,
        "Nothing": OWL.Nothing,
        "TransitiveProperty": OWL.TransitiveProperty,
        "SymmetricProperty": OWL.SymmetricProperty,
        "FunctionalProperty": OWL.FunctionalProperty,
        "InverseFunctionalProperty": OWL.InverseFunctionalProperty,
        "DatatypeProperty": OWL.DatatypeProperty,
        "ObjectProperty": OWL.ObjectProperty,
    }

    def __init__(self, dictionary: Dictionary):
        self._ids: Dict[str, int] = {}
        for attr, term in self._PROPERTY_TERMS.items():
            self._ids[attr] = dictionary.encode_property(term)
        for attr, term in self._RESOURCE_TERMS.items():
            self._ids[attr] = dictionary.encode_resource(term)

    def __getattr__(self, attr: str) -> int:
        try:
            return self._ids[attr]
        except KeyError:
            raise AttributeError(f"unknown vocabulary constant {attr!r}")

    def __getitem__(self, attr: str) -> int:
        return self._ids[attr]

    def __contains__(self, attr: str) -> bool:
        return attr in self._ids


@dataclass
class RuleContext:
    """Per-iteration state handed to every rule's ``apply``.

    ``main`` already contains everything derived up to the previous
    iteration (including ``new`` — Algorithm 1 merges before looping);
    ``new`` is the delta that must participate in every join, giving the
    semi-naive evaluation the paper describes ("Inferray takes two
    inputs: existing triples and newly-inferred triples").
    """

    main: TripleStore
    new: TripleStore
    out: InferredBuffers
    vocab: Vocab
    iteration: int = 1
    theta_prepass_done: bool = False
    stats: Dict[str, int] = field(default_factory=dict)
    #: Kernel backend rule executors run their bulk passes on; the
    #: engine passes its own, the default is the pure-Python reference.
    kernels: KernelBackend = field(default=PYTHON_KERNELS)

    def count(self, rule_name: str, emitted: int) -> None:
        """Accumulate per-rule emission counters (observability)."""
        if emitted:
            self.stats[rule_name] = self.stats.get(rule_name, 0) + emitted


class Rule:
    """Base class: a named Table-5 rule with a class label.

    Subclasses implement :meth:`apply`, reading ``ctx.main`` /
    ``ctx.new`` and emitting raw pairs into ``ctx.out``.  Emitting
    duplicates is fine — the Figure-5 merge removes them; emitting
    *already-known* triples is also fine but wasteful, so executors use
    the delta store wherever the join shape allows.
    """

    #: Table-5 class label: alpha, beta, gamma, delta, same-as, theta,
    #: functional, or trivial.
    rule_class = "trivial"

    def __init__(self, name: str):
        self.name = name

    def apply(self, ctx: RuleContext) -> None:
        """Fire the rule once for the current iteration."""
        raise NotImplementedError

    # -- intra-rule work splitting (scheduler hook) --------------------
    def shard_plan(
        self,
        *,
        main: TripleStore,
        new: TripleStore,
        vocab: Vocab,
        max_shards: int,
        threshold: int,
    ) -> Optional[int]:
        """Number of key-range shards this firing should split into.

        Returns ``None`` (the default — executor not splittable, or the
        estimated join input is below ``threshold`` pairs) or a shard
        count in ``[2, max_shards]``.  A plan of *n* makes the scheduler
        fire :meth:`apply_shard` with ``shard=(k, n)`` for every
        ``k < n`` instead of one :meth:`apply` call; the shards' private
        outputs are absorbed in shard order, and the Figure-5 sort+dedup
        keeps the committed closure byte-identical to the unsplit run.
        """
        return None

    def apply_shard(self, ctx: RuleContext, shard: Tuple[int, int]) -> None:
        """Fire one key-range shard ``(index, count)`` of this rule.

        Only called when :meth:`shard_plan` returned a count; the union
        of all shards' emissions must equal the emissions of one
        :meth:`apply` call on the same ``(main, new)`` snapshot.
        """
        raise NotImplementedError(
            f"rule {self.name} does not support intra-rule sharding"
        )

    def estimate_join_input(
        self,
        *,
        main: TripleStore,
        new: TripleStore,
        vocab: Vocab,
    ) -> Optional[int]:
        """Estimated pairs this firing will scan, or ``None`` (unknown).

        The executor-selection cost model sums these estimates over the
        catalogue (floored by the committed store size, which covers
        rules that return ``None``) to decide whether a materialization
        is big enough for a parallel substrate to pay off.  Like
        :meth:`shard_plan`, implementations must stay O(1) table-size
        lookups — the estimate runs before *every* flush.
        """
        return None

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} ({self.rule_class})>"


def table_or_none(store: TripleStore, property_id: Optional[int]):
    """The non-empty table for a property id, else ``None``."""
    if property_id is None:
        return None
    table = store.table(property_id)
    if table is None or not table:
        return None
    return table
