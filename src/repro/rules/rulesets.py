"""Ruleset selections over the Table-5 catalogue.

The benchmark fragments (paper §6):

* ``rho-df`` — the ρdf subset: the essential RDFS semantics.
* ``rdfs-default`` — the "default" RDFS flavour: two-way-join rules only.
* ``rdfs-full`` — RDFS-default plus the half-circle rules that "do not
  produce meaningful triples but satisfy the logician" (RDFS4/6/8/10/12/13).
* ``rdfs-plus`` — the RDFS-Plus fragment of Allemang & Hendler.
* ``rdfs-plus-full`` — RDFS-Plus plus its half-circle rules
  (SCM-CLS / SCM-DP / SCM-OP / RDFS4).
"""

from __future__ import annotations

from typing import List

from .spec import Rule
from .table5 import BY_NAME, TABLE5, make_rules

RULESET_NAMES = (
    "rho-df",
    "rdfs-default",
    "rdfs-full",
    "rdfs-plus",
    "rdfs-plus-full",
)


def _names(column: str, include_full: bool) -> List[str]:
    names = []
    for entry in TABLE5:
        membership = getattr(entry, column)
        if membership is True:
            names.append(entry.name)
        elif membership == "full" and include_full:
            names.append(entry.name)
    return names


def ruleset_rule_names(name: str) -> List[str]:
    """The Table-5 rule names composing a ruleset."""
    if name == "rho-df":
        return _names("rho_df", include_full=False)
    if name == "rdfs-default":
        return _names("rdfs", include_full=False)
    if name == "rdfs-full":
        return _names("rdfs", include_full=True)
    if name == "rdfs-plus":
        return _names("rdfs_plus", include_full=False)
    if name == "rdfs-plus-full":
        return _names("rdfs_plus", include_full=True)
    raise ValueError(
        f"unknown ruleset {name!r}; expected one of {RULESET_NAMES}"
    )


def get_ruleset(name: str) -> List[Rule]:
    """Instantiate the executors of a named ruleset."""
    return make_rules(ruleset_rule_names(name))


def rule_entry(name: str):
    """Catalogue metadata for one rule name."""
    return BY_NAME[name]
