"""Rule→rule dependency graph over the Table-5 catalogue.

Parallel rule firing needs to know *which rule outputs can feed which
rule inputs*.  Each Table-5 executor reads a small set of property
classes (its body patterns) and writes another (its head patterns);
rule ``r1`` **feeds** ``r2`` when something ``r1`` can derive lands in
a table ``r2`` joins on.  The analysis is symbolic: property classes
are the vocabulary constant names the executors were instantiated with
(``"subClassOf"``, ``"type"``, …) plus the wildcard :data:`ANY` for
executors that touch arbitrary data-property tables (the δ copies, the
sameAs substitution, PRP-TRP, RDFS4 — a ``subPropertyOf`` row may name
*any* property, including schema vocabulary, so the wildcard must stay
conservative; see ``tests/integration/test_differential.py::
test_schema_of_schema``).

:meth:`RuleDependencyGraph.stratify` condenses the graph's strongly
connected components (RDFS is mutually recursive through the schema
vocabulary, so full rulesets typically collapse into one component —
that recursion is exactly why Algorithm 1 iterates to a fixed point)
and layers the condensation by longest path into **waves**: rules in
wave *k* are never fed by rules in waves > *k*, and rules within one
wave either belong to the same recursive component or are mutually
independent.  The scheduler (:mod:`repro.core.scheduler`) fires each
wave's rules concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from .classes import (
    AlphaRule,
    BetaRule,
    DomainRangeRule,
    FunctionalPropertyRule,
    IterativeTransitivityRule,
    PropertyCopyRule,
    ResourceRule,
    SameAsRule,
    SymmetricPropertyRule,
    ThetaRule,
    TrivialCopyRule,
    TrivialTypeExpandRule,
)
from .spec import Rule

__all__ = ["ANY", "RuleDependencyGraph", "RuleIO", "rule_io"]

#: Wildcard property class: "any property table" (data or schema).
ANY = "*"


@dataclass(frozen=True)
class RuleIO:
    """The property classes one rule executor reads and writes."""

    reads: FrozenSet[str]
    writes: FrozenSet[str]

    def feeds(self, other: "RuleIO") -> bool:
        """Whether this rule's outputs can reach ``other``'s inputs."""
        if not self.writes or not other.reads:
            return False
        if ANY in self.writes or ANY in other.reads:
            return True
        return not self.writes.isdisjoint(other.reads)


def _io(reads, writes) -> RuleIO:
    return RuleIO(frozenset(reads), frozenset(writes))


def rule_io(rule: Rule) -> RuleIO:
    """Symbolic read/write sets for one Table-5 executor.

    Unknown :class:`Rule` subclasses get the conservative
    ``({ANY}, {ANY})`` — correct (it only adds edges) if pessimal.
    """
    if isinstance(rule, AlphaRule):
        return _io({rule.p1, rule.p2}, {rule.out})
    if isinstance(rule, BetaRule):
        return _io({rule.prop}, {rule.out})
    if isinstance(rule, PropertyCopyRule):
        # The schema rows name arbitrary source/target tables.
        return _io({rule.schema, ANY}, {ANY})
    if isinstance(rule, DomainRangeRule):
        return _io({rule.schema, ANY}, {"type"})
    if isinstance(rule, SymmetricPropertyRule):
        return _io({"type", ANY}, {ANY})
    if isinstance(rule, FunctionalPropertyRule):
        return _io({"type", ANY}, {"sameAs"})
    if isinstance(rule, SameAsRule):
        return _io({"sameAs", ANY}, {ANY})
    if isinstance(rule, IterativeTransitivityRule):
        return _io({rule.prop}, {rule.prop})
    if isinstance(rule, ThetaRule):
        if rule.kind == "transitive":
            # PRP-TRP closes every owl:TransitiveProperty table.
            return _io({"type", ANY}, {ANY})
        # The remaining kinds name their vocab constant directly.
        return _io({rule.kind}, {rule.kind})
    if isinstance(rule, TrivialTypeExpandRule):
        return _io({"type"}, {out for _, out, _ in rule.heads})
    if isinstance(rule, TrivialCopyRule):
        return _io({rule.src}, {out for _, out, _ in rule.heads})
    if isinstance(rule, ResourceRule):
        return _io({ANY}, {"type"})
    return _io({ANY}, {ANY})


class RuleDependencyGraph:
    """Feeds-edges between rule executors, plus wave stratification.

    Node *i* is ``rules[i]``; edge *i → j* means rule *i*'s head can
    produce triples that rule *j*'s body consumes.  All derived
    structure (edges, components, waves) is deterministic in the input
    rule order, which the scheduler relies on for reproducible
    commit order.
    """

    def __init__(self, rules: Sequence[Rule]):
        self.rules: List[Rule] = list(rules)
        self.io: List[RuleIO] = [rule_io(rule) for rule in self.rules]
        n = len(self.rules)
        self._succ: List[List[int]] = [
            [j for j in range(n) if self.io[i].feeds(self.io[j])]
            for i in range(n)
        ]

    def __len__(self) -> int:
        return len(self.rules)

    def feeds(self, i: int) -> List[int]:
        """Successor rule indexes of rule ``i`` (sorted)."""
        return list(self._succ[i])

    def fed_by(self, i: int) -> List[int]:
        """Predecessor rule indexes of rule ``i`` (sorted).

        The reverse of :meth:`feeds`: every rule whose head can produce
        triples rule ``i``'s body consumes.  The hybrid planner
        (:mod:`repro.litemat.planner`) uses this to eject an absorbed
        rule when a still-materialized rule could write into one of the
        virtual tables the encoding answers from.
        """
        return [j for j in range(len(self.rules)) if i in self._succ[j]]

    def edges(self) -> List[Tuple[int, int]]:
        """All feeds-edges as (producer, consumer) index pairs."""
        return [(i, j) for i in range(len(self.rules)) for j in self._succ[i]]

    # ------------------------------------------------------------------
    # Strongly connected components (iterative Tarjan)
    # ------------------------------------------------------------------
    def sccs(self) -> List[List[int]]:
        """Strongly connected components, each sorted by rule index.

        Components are returned in reverse topological order of the
        condensation (consumers before their producers), the order
        Tarjan's algorithm emits them in.
        """
        n = len(self.rules)
        index = [-1] * n
        low = [0] * n
        on_stack = [False] * n
        stack: List[int] = []
        components: List[List[int]] = []
        counter = 0
        for root in range(n):
            if index[root] != -1:
                continue
            # Iterative Tarjan: (node, iterator position) work stack.
            work = [(root, 0)]
            while work:
                node, child_pos = work.pop()
                if child_pos == 0:
                    index[node] = low[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack[node] = True
                recurse = False
                successors = self._succ[node]
                for pos in range(child_pos, len(successors)):
                    succ = successors[pos]
                    if index[succ] == -1:
                        work.append((node, pos + 1))
                        work.append((succ, 0))
                        recurse = True
                        break
                    if on_stack[succ]:
                        low[node] = min(low[node], index[succ])
                if recurse:
                    continue
                if low[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        component.append(member)
                        if member == node:
                            break
                    components.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return components

    # ------------------------------------------------------------------
    # Wave stratification
    # ------------------------------------------------------------------
    def stratify(self) -> List[List[int]]:
        """Topological waves of rule indexes.

        Wave *k* holds the rules whose longest producer chain through
        the condensation has depth *k*: an edge *i → j* with *i*, *j*
        in different components always crosses from a lower wave to a
        strictly higher one, and rules sharing a wave are either
        mutually recursive (same component — the fixed-point loop
        resolves them) or independent.  Rules within a wave keep their
        catalogue order.
        """
        components = self.sccs()
        comp_of: Dict[int, int] = {}
        for comp_index, members in enumerate(components):
            for member in members:
                comp_of[member] = comp_index
        n_comps = len(components)
        comp_succ: List[set] = [set() for _ in range(n_comps)]
        indegree = [0] * n_comps
        for i, j in self.edges():
            ci, cj = comp_of[i], comp_of[j]
            if ci != cj and cj not in comp_succ[ci]:
                comp_succ[ci].add(cj)
                indegree[cj] += 1
        # Longest-path layering via Kahn's algorithm.
        depth = [0] * n_comps
        ready = sorted(c for c in range(n_comps) if indegree[c] == 0)
        order: List[int] = []
        while ready:
            comp = ready.pop(0)
            order.append(comp)
            for succ in sorted(comp_succ[comp]):
                depth[succ] = max(depth[succ], depth[comp] + 1)
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
            ready.sort()
        assert len(order) == n_comps, "condensation must be acyclic"
        n_waves = max(depth, default=-1) + 1
        waves: List[List[int]] = [[] for _ in range(n_waves)]
        for comp_index, members in enumerate(components):
            waves[depth[comp_index]].extend(members)
        for wave in waves:
            wave.sort()
        return [wave for wave in waves if wave]

    def waves_by_name(self) -> List[List[str]]:
        """The stratification with rule names instead of indexes."""
        return [
            [self.rules[i].name for i in wave] for wave in self.stratify()
        ]

    def describe(self) -> str:
        """Human-readable wave listing (CLI / debugging)."""
        lines = []
        for number, wave in enumerate(self.stratify()):
            names = ", ".join(self.rules[i].name for i in wave)
            lines.append(f"wave {number}: {names}")
        return "\n".join(lines)
