"""The 38-rule catalogue of the paper's Table 5, as declarative data.

Each entry records the paper's row number, rule name, ruleset
memberships (``True`` = filled circle, ``"full"`` = half circle — rules
that "do not produce meaningful triples and are used only in full
versions of rulesets"), the paper's class label (α/β/γ/δ/θ/same-as/–)
and a factory building the executor.

The four EQ-REP*/EQ-SYM rows note which executor *instance* they share:
the paper "handles the four rules with a single loop" — here EQ-REP-S,
EQ-REP-P and EQ-REP-O share one :class:`SameAsRule`, while EQ-SYM is the
trivial single-antecedent case.

RDFS8's head is printed garbled in the paper's PDF; we implement the
W3C RDF-Semantics form ``x rdf:type rdfs:Class → x rdfs:subClassOf
rdfs:Resource`` (DESIGN.md §6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

from .classes import (
    AlphaRule,
    BetaRule,
    DomainRangeRule,
    FunctionalPropertyRule,
    PropertyCopyRule,
    ResourceRule,
    SameAsRule,
    SymmetricPropertyRule,
    ThetaRule,
    TrivialCopyRule,
    TrivialTypeExpandRule,
)
from .spec import Rule

Membership = Union[bool, str]  # True, False, or "full"


@dataclass(frozen=True)
class RuleEntry:
    """One Table-5 row."""

    number: int
    name: str
    rdfs: Membership
    rho_df: Membership
    rdfs_plus: Membership
    paper_class: str
    factory: Optional[Callable[[], Rule]]
    #: For rows sharing one executor (EQ-REP-*), the canonical row name.
    shared_executor: Optional[str] = None


def _alpha(name, p1, pos1, p2, pos2, out, hs, ho):
    return lambda: AlphaRule(name, p1, pos1, p2, pos2, out, hs, ho)


TABLE5: List[RuleEntry] = [
    RuleEntry(
        1, "CAX-EQC1", False, False, True, "alpha",
        _alpha("CAX-EQC1", "equivalentClass", "s", "type", "o",
               "type", "r2", "r1"),
    ),
    RuleEntry(
        2, "CAX-EQC2", False, False, True, "alpha",
        _alpha("CAX-EQC2", "equivalentClass", "o", "type", "o",
               "type", "r2", "r1"),
    ),
    RuleEntry(
        3, "CAX-SCO", True, True, True, "alpha",
        _alpha("CAX-SCO", "subClassOf", "s", "type", "o",
               "type", "r2", "r1"),
    ),
    RuleEntry(
        4, "EQ-REP-O", False, False, True, "same-as",
        lambda: SameAsRule("EQ-REP"), shared_executor="EQ-REP",
    ),
    RuleEntry(
        5, "EQ-REP-P", False, False, True, "same-as",
        lambda: SameAsRule("EQ-REP"), shared_executor="EQ-REP",
    ),
    RuleEntry(
        6, "EQ-REP-S", False, False, True, "same-as",
        lambda: SameAsRule("EQ-REP"), shared_executor="EQ-REP",
    ),
    RuleEntry(
        7, "EQ-SYM", False, False, True, "trivial",
        lambda: TrivialCopyRule("EQ-SYM", "sameAs", [("b", "sameAs", "a")]),
    ),
    RuleEntry(
        8, "EQ-TRANS", False, False, True, "theta",
        lambda: ThetaRule("EQ-TRANS", "sameAs"),
    ),
    RuleEntry(
        9, "PRP-DOM", True, True, True, "gamma",
        lambda: DomainRangeRule("PRP-DOM", "domain", use_subjects=True),
    ),
    RuleEntry(
        10, "PRP-EQP1", False, False, True, "delta",
        lambda: PropertyCopyRule(
            "PRP-EQP1", "equivalentProperty", forward=True, reverse=False
        ),
    ),
    RuleEntry(
        11, "PRP-EQP2", False, False, True, "delta",
        lambda: PropertyCopyRule(
            "PRP-EQP2", "equivalentProperty", forward=False, reverse=False
        ),
    ),
    RuleEntry(
        12, "PRP-FP", False, False, True, "functional",
        lambda: FunctionalPropertyRule("PRP-FP", inverse=False),
    ),
    RuleEntry(
        13, "PRP-IFP", False, False, True, "functional",
        lambda: FunctionalPropertyRule("PRP-IFP", inverse=True),
    ),
    RuleEntry(
        14, "PRP-INV1", False, False, True, "delta",
        lambda: PropertyCopyRule(
            "PRP-INV1", "inverseOf", forward=True, reverse=True
        ),
    ),
    RuleEntry(
        15, "PRP-INV2", False, False, True, "delta",
        lambda: PropertyCopyRule(
            "PRP-INV2", "inverseOf", forward=False, reverse=True
        ),
    ),
    RuleEntry(
        16, "PRP-RNG", True, True, True, "gamma",
        lambda: DomainRangeRule("PRP-RNG", "range", use_subjects=False),
    ),
    RuleEntry(
        17, "PRP-SPO1", True, True, True, "gamma",
        lambda: PropertyCopyRule(
            "PRP-SPO1", "subPropertyOf", forward=True, reverse=False
        ),
    ),
    RuleEntry(
        18, "PRP-SYMP", False, False, True, "gamma",
        lambda: SymmetricPropertyRule("PRP-SYMP"),
    ),
    RuleEntry(
        19, "PRP-TRP", False, False, True, "theta",
        lambda: ThetaRule("PRP-TRP", "transitive"),
    ),
    RuleEntry(
        20, "SCM-DOM1", True, False, True, "alpha",
        _alpha("SCM-DOM1", "domain", "o", "subClassOf", "s",
               "domain", "r1", "r2"),
    ),
    RuleEntry(
        21, "SCM-DOM2", True, True, True, "alpha",
        _alpha("SCM-DOM2", "domain", "s", "subPropertyOf", "o",
               "domain", "r2", "r1"),
    ),
    RuleEntry(
        22, "SCM-EQC1", False, False, True, "trivial",
        lambda: TrivialCopyRule(
            "SCM-EQC1", "equivalentClass",
            [("a", "subClassOf", "b"), ("b", "subClassOf", "a")],
        ),
    ),
    RuleEntry(
        23, "SCM-EQC2", False, False, True, "beta",
        lambda: BetaRule("SCM-EQC2", "subClassOf", "equivalentClass"),
    ),
    RuleEntry(
        24, "SCM-EQP1", False, False, True, "trivial",
        lambda: TrivialCopyRule(
            "SCM-EQP1", "equivalentProperty",
            [("a", "subPropertyOf", "b"), ("b", "subPropertyOf", "a")],
        ),
    ),
    RuleEntry(
        25, "SCM-EQP2", False, False, True, "beta",
        lambda: BetaRule("SCM-EQP2", "subPropertyOf", "equivalentProperty"),
    ),
    RuleEntry(
        26, "SCM-RNG1", True, False, True, "alpha",
        _alpha("SCM-RNG1", "range", "o", "subClassOf", "s",
               "range", "r1", "r2"),
    ),
    RuleEntry(
        27, "SCM-RNG2", True, True, True, "alpha",
        _alpha("SCM-RNG2", "range", "s", "subPropertyOf", "o",
               "range", "r2", "r1"),
    ),
    RuleEntry(
        28, "SCM-SCO", True, True, True, "theta",
        lambda: ThetaRule("SCM-SCO", "subClassOf"),
    ),
    RuleEntry(
        29, "SCM-SPO", True, True, True, "theta",
        lambda: ThetaRule("SCM-SPO", "subPropertyOf"),
    ),
    RuleEntry(
        30, "SCM-CLS", False, False, "full", "trivial",
        lambda: TrivialTypeExpandRule(
            "SCM-CLS", "owlClass",
            [
                ("x", "subClassOf", "x"),
                ("x", "equivalentClass", "x"),
                ("x", "subClassOf", "Thing"),
                ("Nothing", "subClassOf", "x"),
            ],
        ),
    ),
    RuleEntry(
        31, "SCM-DP", False, False, "full", "trivial",
        lambda: TrivialTypeExpandRule(
            "SCM-DP", "DatatypeProperty",
            [("x", "subPropertyOf", "x"), ("x", "equivalentProperty", "x")],
        ),
    ),
    RuleEntry(
        32, "SCM-OP", False, False, "full", "trivial",
        lambda: TrivialTypeExpandRule(
            "SCM-OP", "ObjectProperty",
            [("x", "subPropertyOf", "x"), ("x", "equivalentProperty", "x")],
        ),
    ),
    RuleEntry(
        33, "RDFS4", "full", "full", "full", "trivial",
        lambda: ResourceRule("RDFS4"),
    ),
    RuleEntry(
        34, "RDFS8", "full", False, False, "trivial",
        lambda: TrivialTypeExpandRule(
            "RDFS8", "rdfsClass", [("x", "subClassOf", "Resource")]
        ),
    ),
    RuleEntry(
        35, "RDFS12", "full", False, False, "trivial",
        lambda: TrivialTypeExpandRule(
            "RDFS12", "ContainerMembershipProperty",
            [("x", "subPropertyOf", "member")],
        ),
    ),
    RuleEntry(
        36, "RDFS13", "full", False, False, "trivial",
        lambda: TrivialTypeExpandRule(
            "RDFS13", "Datatype", [("x", "subClassOf", "Literal")]
        ),
    ),
    RuleEntry(
        37, "RDFS6", "full", False, False, "trivial",
        lambda: TrivialTypeExpandRule(
            "RDFS6", "Property", [("x", "subPropertyOf", "x")]
        ),
    ),
    RuleEntry(
        38, "RDFS10", "full", False, False, "trivial",
        lambda: TrivialTypeExpandRule(
            "RDFS10", "rdfsClass", [("x", "subClassOf", "x")]
        ),
    ),
]

BY_NAME: Dict[str, RuleEntry] = {entry.name: entry for entry in TABLE5}


def make_rules(names: List[str]) -> List[Rule]:
    """Instantiate executors for rule names, deduplicating shared ones."""
    rules: List[Rule] = []
    seen_shared = set()
    for name in names:
        entry = BY_NAME[name]
        if entry.factory is None:  # pragma: no cover - all rows have one
            continue
        if entry.shared_executor is not None:
            if entry.shared_executor in seen_shared:
                continue
            seen_shared.add(entry.shared_executor)
        rules.append(entry.factory())
    return rules
