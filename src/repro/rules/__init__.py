"""Rule machinery: Table-5 catalogue, classes and rulesets (paper §4.4)."""

from .classes import (
    AlphaRule,
    BetaRule,
    DomainRangeRule,
    FunctionalPropertyRule,
    IterativeTransitivityRule,
    PropertyCopyRule,
    ResourceRule,
    SameAsRule,
    SymmetricPropertyRule,
    ThetaRule,
    TrivialCopyRule,
    TrivialTypeExpandRule,
    merge_join_groups,
)
from .depgraph import ANY, RuleDependencyGraph, RuleIO, rule_io
from .rulesets import (
    RULESET_NAMES,
    get_ruleset,
    rule_entry,
    ruleset_rule_names,
)
from .spec import Rule, RuleContext, Vocab, table_or_none
from .table5 import BY_NAME, TABLE5, RuleEntry, make_rules

__all__ = [
    "ANY",
    "AlphaRule",
    "BY_NAME",
    "BetaRule",
    "DomainRangeRule",
    "FunctionalPropertyRule",
    "IterativeTransitivityRule",
    "PropertyCopyRule",
    "RULESET_NAMES",
    "ResourceRule",
    "Rule",
    "RuleContext",
    "RuleDependencyGraph",
    "RuleEntry",
    "RuleIO",
    "SameAsRule",
    "SymmetricPropertyRule",
    "TABLE5",
    "ThetaRule",
    "TrivialCopyRule",
    "TrivialTypeExpandRule",
    "Vocab",
    "get_ruleset",
    "make_rules",
    "merge_join_groups",
    "rule_entry",
    "rule_io",
    "ruleset_rule_names",
    "table_or_none",
]
