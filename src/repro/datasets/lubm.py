"""LUBM-like university workload generator (Table-3 substitute).

The Lehigh University Benchmark generates university/department worlds
over an ontology whose RDFS-Plus-visible features are: a class
hierarchy (professors ⊑ faculty ⊑ employee ⊑ person, …), a property
hierarchy (headOf ⊑ worksFor ⊑ memberOf, the degreeFrom family), a
*transitive* ``subOrganizationOf``, and ``inverseOf`` pairs
(hasAlumnus/degreeFrom, member/memberOf).  "Only RDFS-Plus is
expressive enough to derive many triples on LUBM" — exactly these
features drive the Table-3 experiment.

This generator reproduces that shape at configurable scale with a
deterministic seeded RNG.  ``scale`` counts *departments*; each
department contributes ≈65 entities / ≈210 triples, so
``lubm_like(50)`` ≈ 10k triples.
"""

from __future__ import annotations

import random
from typing import List

from ..rdf.terms import IRI, Triple
from ..rdf.vocabulary import OWL, RDF, RDFS

_NS = "http://example.org/lubm#"


def _c(name: str) -> IRI:
    return IRI(_NS + name)


# ----------------------------------------------------------------------
# Ontology (Tbox)
# ----------------------------------------------------------------------
CLASSES = [
    "Organization", "University", "Department", "ResearchGroup",
    "Person", "Employee", "Faculty", "Professor", "FullProfessor",
    "AssociateProfessor", "AssistantProfessor", "Lecturer", "Chair",
    "Student", "UndergraduateStudent", "GraduateStudent",
    "TeachingAssistant", "ResearchAssistant",
    "Course", "GraduateCourse", "Publication",
]

_SUBCLASS = [
    ("University", "Organization"),
    ("Department", "Organization"),
    ("ResearchGroup", "Organization"),
    ("Employee", "Person"),
    ("Faculty", "Employee"),
    ("Professor", "Faculty"),
    ("FullProfessor", "Professor"),
    ("AssociateProfessor", "Professor"),
    ("AssistantProfessor", "Professor"),
    ("Lecturer", "Faculty"),
    ("Chair", "Professor"),
    ("Student", "Person"),
    ("UndergraduateStudent", "Student"),
    ("GraduateStudent", "Student"),
    ("TeachingAssistant", "Person"),
    ("ResearchAssistant", "Person"),
    ("GraduateCourse", "Course"),
]

_SUBPROPERTY = [
    ("worksFor", "memberOf"),
    ("headOf", "worksFor"),
    ("doctoralDegreeFrom", "degreeFrom"),
    ("mastersDegreeFrom", "degreeFrom"),
    ("undergraduateDegreeFrom", "degreeFrom"),
]

_DOMAIN = [
    ("memberOf", "Person"),
    ("subOrganizationOf", "Organization"),
    ("teacherOf", "Faculty"),
    ("takesCourse", "Student"),
    ("advisor", "Person"),
    ("publicationAuthor", "Publication"),
    ("degreeFrom", "Person"),
]

_RANGE = [
    ("memberOf", "Organization"),
    ("subOrganizationOf", "Organization"),
    ("teacherOf", "Course"),
    ("takesCourse", "Course"),
    ("advisor", "Professor"),
    ("publicationAuthor", "Person"),
    ("degreeFrom", "University"),
]


def lubm_ontology() -> List[Triple]:
    """The Tbox: hierarchy + domains/ranges + OWL property axioms."""
    triples: List[Triple] = []
    for sub, sup in _SUBCLASS:
        triples.append(Triple(_c(sub), RDFS.subClassOf, _c(sup)))
    for sub, sup in _SUBPROPERTY:
        triples.append(Triple(_c(sub), RDFS.subPropertyOf, _c(sup)))
    for prop, cls in _DOMAIN:
        triples.append(Triple(_c(prop), RDFS.domain, _c(cls)))
    for prop, cls in _RANGE:
        triples.append(Triple(_c(prop), RDFS.range, _c(cls)))
    # RDFS-Plus constructs.
    triples.append(
        Triple(_c("subOrganizationOf"), RDF.type, OWL.TransitiveProperty)
    )
    triples.append(Triple(_c("hasAlumnus"), OWL.inverseOf, _c("degreeFrom")))
    triples.append(Triple(_c("member"), OWL.inverseOf, _c("memberOf")))
    triples.append(
        Triple(_c("emailAddress"), RDF.type, OWL.InverseFunctionalProperty)
    )
    return triples


# ----------------------------------------------------------------------
# Instance data (Abox)
# ----------------------------------------------------------------------
def lubm_like(scale: int, *, seed: int = 42) -> List[Triple]:
    """Generate the ontology plus ``scale`` departments of instance data.

    Deterministic for a given (scale, seed).  ≈210 triples/department.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    rng = random.Random((seed, scale).__hash__())
    triples = lubm_ontology()

    def ind(kind: str, index: int) -> IRI:
        return IRI(f"{_NS}{kind}{index}")

    n_universities = max(1, scale // 10)
    universities = []
    for u in range(n_universities):
        univ = ind("University", u)
        universities.append(univ)
        triples.append(Triple(univ, RDF.type, _c("University")))

    professors: List[IRI] = []
    entity = 0
    for d in range(scale):
        dept = ind("Department", d)
        univ = universities[d % n_universities]
        triples.append(Triple(dept, RDF.type, _c("Department")))
        triples.append(Triple(dept, _c("subOrganizationOf"), univ))
        # One research group chain per department exercises the
        # transitive subOrganizationOf.
        group = ind("Group", d)
        triples.append(Triple(group, RDF.type, _c("ResearchGroup")))
        triples.append(Triple(group, _c("subOrganizationOf"), dept))

        courses = []
        for c in range(rng.randint(6, 10)):
            course = ind("Course", entity)
            entity += 1
            kind = "GraduateCourse" if rng.random() < 0.3 else "Course"
            triples.append(Triple(course, RDF.type, _c(kind)))
            courses.append(course)

        dept_professors = []
        for p in range(rng.randint(3, 5)):
            prof = ind("Professor", entity)
            entity += 1
            kind = rng.choice(
                ["FullProfessor", "AssociateProfessor", "AssistantProfessor"]
            )
            triples.append(Triple(prof, RDF.type, _c(kind)))
            triples.append(Triple(prof, _c("worksFor"), dept))
            triples.append(
                Triple(prof, _c("doctoralDegreeFrom"), rng.choice(universities))
            )
            triples.append(Triple(prof, _c("teacherOf"), rng.choice(courses)))
            triples.append(
                Triple(prof, _c("emailAddress"),
                       IRI(f"{_NS}mail/p{entity}"))
            )
            dept_professors.append(prof)
            professors.append(prof)
        head = dept_professors[0]
        triples.append(Triple(head, RDF.type, _c("Chair")))
        triples.append(Triple(head, _c("headOf"), dept))

        for s in range(rng.randint(15, 25)):
            student = ind("Student", entity)
            entity += 1
            graduate = rng.random() < 0.35
            kind = "GraduateStudent" if graduate else "UndergraduateStudent"
            triples.append(Triple(student, RDF.type, _c(kind)))
            triples.append(Triple(student, _c("memberOf"), dept))
            for _ in range(rng.randint(1, 3)):
                triples.append(
                    Triple(student, _c("takesCourse"), rng.choice(courses))
                )
            if graduate:
                triples.append(
                    Triple(student, _c("advisor"), rng.choice(dept_professors))
                )
                triples.append(
                    Triple(
                        student,
                        _c("undergraduateDegreeFrom"),
                        rng.choice(universities),
                    )
                )

        for pub in range(rng.randint(4, 8)):
            publication = ind("Publication", entity)
            entity += 1
            triples.append(Triple(publication, RDF.type, _c("Publication")))
            triples.append(
                Triple(
                    publication,
                    _c("publicationAuthor"),
                    rng.choice(dept_professors),
                )
            )
    return triples
