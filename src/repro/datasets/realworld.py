"""Synthetic stand-ins for the paper's real-world ontologies.

The paper benchmarks on the Yago taxonomy, the Wikipedia ontology and
Wordnet — all offline downloads we cannot fetch.  Each stand-in
reproduces the *documented shape* that makes the original challenging
(DESIGN.md §2 records the substitution):

* :func:`yago_like` — "a large set of properties [that] challenges the
  vertical partitioning approach, due to the large number of generated
  tables" and "transitive closure challenged by the large number of
  subClassOf and subPropertyOf statements": a deep, wide class taxonomy,
  a property hierarchy, many distinct fact properties.
* :func:`wikipedia_like` — "a large set of classes and a large schema":
  a broad, shallow category tree with many typed instances.
* :func:`wordnet_like` — lexical hypernym chains: long subClassOf
  chains (deep closure) plus a transitive ``hypernymOf`` relation among
  synset instances for the RDFS-Plus run.
"""

from __future__ import annotations

import random
from typing import List

from ..rdf.terms import IRI, Triple
from ..rdf.vocabulary import OWL, RDF, RDFS

_NS = "http://example.org/rw#"


def _i(name: str) -> IRI:
    return IRI(_NS + name)


def _random_tree_edges(
    rng: random.Random, n_nodes: int, recency_window: int
) -> List[int]:
    """Parent index for nodes 1..n−1; small windows make deeper trees."""
    parents = [0] * n_nodes
    for node in range(1, n_nodes):
        low = max(0, node - recency_window)
        parents[node] = rng.randint(low, node - 1)
    return parents


def yago_like(scale: int = 60, *, seed: int = 11) -> List[Triple]:
    """Yago-taxonomy stand-in: big taxonomy + many properties.

    ``scale`` ≈ tenths of the dataset: ``yago_like(60)`` ≈ 10k triples,
    of which roughly half are subClassOf/subPropertyOf schema.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    rng = random.Random((seed, scale).__hash__())
    triples: List[Triple] = []

    n_classes = 60 * scale
    parents = _random_tree_edges(rng, n_classes, recency_window=25)
    for node in range(1, n_classes):
        triples.append(
            Triple(
                _i(f"class{node}"),
                RDFS.subClassOf,
                _i(f"class{parents[node]}"),
            )
        )

    n_properties = 8 * scale
    prop_parents = _random_tree_edges(rng, n_properties, recency_window=10)
    for node in range(1, n_properties):
        triples.append(
            Triple(
                _i(f"prop{node}"),
                RDFS.subPropertyOf,
                _i(f"prop{prop_parents[node]}"),
            )
        )
    for node in range(0, n_properties, 4):
        cls = rng.randrange(n_classes)
        triples.append(Triple(_i(f"prop{node}"), RDFS.domain, _i(f"class{cls}")))
        cls = rng.randrange(n_classes)
        triples.append(Triple(_i(f"prop{node}"), RDFS.range, _i(f"class{cls}")))

    n_instances = 25 * scale
    for instance in range(n_instances):
        subject = _i(f"entity{instance}")
        triples.append(
            Triple(subject, RDF.type, _i(f"class{rng.randrange(n_classes)}"))
        )
        prop = _i(f"prop{rng.randrange(n_properties)}")
        other = _i(f"entity{rng.randrange(n_instances)}")
        triples.append(Triple(subject, prop, other))
    return triples


def wikipedia_like(scale: int = 60, *, seed: int = 13) -> List[Triple]:
    """Wikipedia-ontology stand-in: many classes, shallow broad schema.

    ``wikipedia_like(60)`` ≈ 10k triples; the category tree is wide and
    shallow, and most triples are instance typings.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    rng = random.Random((seed, scale).__hash__())
    triples: List[Triple] = []

    n_categories = 40 * scale
    parents = _random_tree_edges(rng, n_categories, recency_window=2000)
    for node in range(1, n_categories):
        triples.append(
            Triple(
                _i(f"cat{node}"),
                RDFS.subClassOf,
                _i(f"cat{parents[node]}"),
            )
        )

    for prop in ("linksTo", "about", "createdBy"):
        triples.append(Triple(_i(prop), RDFS.domain, _i("cat0")))

    n_articles = 100 * scale
    for article in range(n_articles):
        subject = _i(f"article{article}")
        triples.append(
            Triple(subject, RDF.type, _i(f"cat{rng.randrange(n_categories)}"))
        )
        if rng.random() < 0.3:
            target = _i(f"article{rng.randrange(n_articles)}")
            triples.append(Triple(subject, _i("linksTo"), target))
    return triples


def wordnet_like(scale: int = 60, *, seed: int = 17) -> List[Triple]:
    """Wordnet stand-in: deep hypernym chains + transitive relation.

    ``wordnet_like(60)`` ≈ 10k triples.  Synset classes form long
    chains (depth ≈ 40), so the subClassOf closure dominates; instances
    are linked by a transitive ``hypernymOf`` for RDFS-Plus.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    rng = random.Random((seed, scale).__hash__())
    triples: List[Triple] = []

    chain_length = 40
    n_chains = max(1, (45 * scale) // chain_length)
    for chain in range(n_chains):
        for position in range(chain_length - 1):
            triples.append(
                Triple(
                    _i(f"synset{chain}_{position}"),
                    RDFS.subClassOf,
                    _i(f"synset{chain}_{position + 1}"),
                )
            )

    hypernym = _i("hypernymOf")
    triples.append(Triple(hypernym, RDF.type, OWL.TransitiveProperty))
    triples.append(Triple(_i("hyponymOf"), OWL.inverseOf, hypernym))

    n_words = 55 * scale
    for word in range(n_words):
        subject = _i(f"word{word}")
        chain = rng.randrange(n_chains)
        position = rng.randrange(chain_length)
        triples.append(
            Triple(subject, RDF.type, _i(f"synset{chain}_{position}"))
        )
        if word + 1 < n_words and rng.random() < 0.25:
            triples.append(
                Triple(subject, hypernym, _i(f"word{word + 1}"))
            )
    return triples
