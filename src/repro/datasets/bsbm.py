"""BSBM-like e-commerce workload generator (Table-2 substitute).

The Berlin SPARQL Benchmark generates product catalogues: a *product
type* tree (the subClassOf hierarchy that drives CAX-SCO), products
typed with leaf types, producers, vendors, offers, reviews and
reviewers, with domains and ranges on the linking properties.  The
paper uses BSBM-generated datasets for the RDFS-flavour experiment
(ρdf / RDFS-default / RDFS-Full): the workload is hierarchy- and
domain/range-heavy with no OWL constructs.

``scale`` counts *products*; each product contributes ≈10 triples
(product + offers + reviews), so ``bsbm_like(1000)`` ≈ 10k triples.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..rdf.terms import IRI, Triple
from ..rdf.vocabulary import RDF, RDFS

_NS = "http://example.org/bsbm#"


def _c(name: str) -> IRI:
    return IRI(_NS + name)


def bsbm_schema(
    rng: random.Random, n_types: int
) -> Tuple[List[Triple], List[IRI]]:
    """Product-type tree + property domains/ranges.

    Returns (schema triples, leaf product types).
    """
    triples: List[Triple] = []
    root = _c("ProductType0")
    types = [root]
    children: dict = {root: 0}
    # BSBM keeps its product-type tree *shallow*: the generator widens
    # the branching factor with the type count so the depth stays ~3-5
    # across the whole published scale range.  Mirroring that keeps the
    # subClassOf closure O(n_types · depth); a recency-biased parent
    # pick (the previous behaviour) degenerates into a near-path whose
    # closure — and every CAX-SCO firing over it — grows quadratically
    # with scale, which is not the benchmark's shape.
    branching = max(2, round(n_types ** 0.25))
    for i in range(1, n_types):
        node = _c(f"ProductType{i}")
        parent = types[(i - 1) // branching]
        triples.append(Triple(node, RDFS.subClassOf, parent))
        children[parent] = children.get(parent, 0) + 1
        children[node] = 0
        types.append(node)
    leaves = [t for t in types if children.get(t, 0) == 0]

    for prop, domain, range_ in [
        ("producer", "Product", "Producer"),
        ("productFeature", "Product", "ProductFeature"),
        ("offerOf", "Offer", "Product"),
        ("vendor", "Offer", "Vendor"),
        ("reviewFor", "Review", "Product"),
        ("reviewer", "Review", "Person"),
        ("country", "Producer", "Country"),
    ]:
        triples.append(Triple(_c(prop), RDFS.domain, _c(domain)))
        triples.append(Triple(_c(prop), RDFS.range, _c(range_)))
    triples.append(Triple(_c("Product"), RDFS.subClassOf, _c("Thing")))
    for leaf_parentable in ("Producer", "Vendor", "Person"):
        triples.append(
            Triple(_c(leaf_parentable), RDFS.subClassOf, _c("Agent"))
        )
    return triples, leaves


def bsbm_like(scale: int, *, seed: int = 7) -> List[Triple]:
    """Generate schema + ``scale`` products with offers and reviews."""
    if scale < 1:
        raise ValueError("scale must be >= 1")
    rng = random.Random((seed, scale).__hash__())
    n_types = max(8, scale // 40)
    triples, leaves = bsbm_schema(rng, n_types)

    n_producers = max(2, scale // 25)
    n_vendors = max(2, scale // 50)
    n_reviewers = max(2, scale // 10)
    n_features = max(4, scale // 20)
    producers = [IRI(f"{_NS}Producer{i}") for i in range(n_producers)]
    vendors = [IRI(f"{_NS}Vendor{i}") for i in range(n_vendors)]
    reviewers = [IRI(f"{_NS}Reviewer{i}") for i in range(n_reviewers)]
    features = [IRI(f"{_NS}Feature{i}") for i in range(n_features)]
    countries = [IRI(f"{_NS}Country{i}") for i in range(6)]

    for producer in producers:
        triples.append(Triple(producer, RDF.type, _c("Producer")))
        triples.append(Triple(producer, _c("country"), rng.choice(countries)))
    for vendor in vendors:
        triples.append(Triple(vendor, RDF.type, _c("Vendor")))
    for reviewer in reviewers:
        triples.append(Triple(reviewer, RDF.type, _c("Person")))

    entity = 0
    for p in range(scale):
        product = IRI(f"{_NS}Product{p}")
        triples.append(Triple(product, RDF.type, rng.choice(leaves)))
        triples.append(Triple(product, _c("producer"), rng.choice(producers)))
        for _ in range(rng.randint(1, 3)):
            triples.append(
                Triple(product, _c("productFeature"), rng.choice(features))
            )
        for _ in range(rng.randint(1, 2)):
            offer = IRI(f"{_NS}Offer{entity}")
            entity += 1
            triples.append(Triple(offer, _c("offerOf"), product))
            triples.append(Triple(offer, _c("vendor"), rng.choice(vendors)))
        for _ in range(rng.randint(0, 2)):
            review = IRI(f"{_NS}Review{entity}")
            entity += 1
            triples.append(Triple(review, _c("reviewFor"), product))
            triples.append(
                Triple(review, _c("reviewer"), rng.choice(reviewers))
            )
    return triples
