"""Chain/tree/star schema generators — the Table-4 workload.

The paper's transitivity-closure benchmark feeds chains of
``rdfs:subClassOf`` statements of a given length: a chain of *n* nodes
has n−1 asserted edges and a closure of n·(n−1)/2 pairs, so the number
of *inferred* triples grows quadratically while the input stays linear
— the workload that separates closure algorithms from iterative rule
application.
"""

from __future__ import annotations

from typing import List

from ..rdf.terms import IRI, Triple
from ..rdf.vocabulary import OWL, RDF, RDFS


def _node(prefix: str, index: int) -> IRI:
    return IRI(f"http://example.org/{prefix}/n{index}")


def subclass_chain(n_nodes: int, *, prefix: str = "chain") -> List[Triple]:
    """A subClassOf chain over ``n_nodes`` classes (n−1 edges).

    Closure size: n·(n−1)/2 pairs, i.e. (n²−n)/2 − (n−1) inferred.
    """
    if n_nodes < 2:
        raise ValueError("a chain needs at least 2 nodes")
    return [
        Triple(_node(prefix, i), RDFS.subClassOf, _node(prefix, i + 1))
        for i in range(n_nodes - 1)
    ]


def subproperty_chain(n_nodes: int, *, prefix: str = "pchain") -> List[Triple]:
    """A subPropertyOf chain (θ workload on SCM-SPO)."""
    if n_nodes < 2:
        raise ValueError("a chain needs at least 2 nodes")
    return [
        Triple(_node(prefix, i), RDFS.subPropertyOf, _node(prefix, i + 1))
        for i in range(n_nodes - 1)
    ]


def transitive_property_chain(
    n_nodes: int, *, prefix: str = "tchain"
) -> List[Triple]:
    """A chain over a property declared owl:TransitiveProperty (PRP-TRP)."""
    if n_nodes < 2:
        raise ValueError("a chain needs at least 2 nodes")
    prop = IRI(f"http://example.org/{prefix}/follows")
    triples = [Triple(prop, RDF.type, OWL.TransitiveProperty)]
    triples.extend(
        Triple(_node(prefix, i), prop, _node(prefix, i + 1))
        for i in range(n_nodes - 1)
    )
    return triples


def sameas_chain(n_nodes: int, *, prefix: str = "schain") -> List[Triple]:
    """A sameAs chain: the closure materialises the full n² clique."""
    if n_nodes < 2:
        raise ValueError("a chain needs at least 2 nodes")
    return [
        Triple(_node(prefix, i), OWL.sameAs, _node(prefix, i + 1))
        for i in range(n_nodes - 1)
    ]


def subclass_star(n_leaves: int, *, prefix: str = "star") -> List[Triple]:
    """``n_leaves`` classes all direct subclasses of one root (no closure)."""
    root = _node(prefix, 0)
    return [
        Triple(_node(prefix, i + 1), RDFS.subClassOf, root)
        for i in range(n_leaves)
    ]


def subclass_tree(
    depth: int, branching: int = 2, *, prefix: str = "tree"
) -> List[Triple]:
    """A complete class tree: each node subClassOf its parent.

    Closure size equals the sum over nodes of their depth (ancestors).
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    triples: List[Triple] = []
    # Breadth-first numbering: node k's parent is (k - 1) // branching.
    n_nodes = sum(branching**level for level in range(depth + 1))
    for k in range(1, n_nodes):
        parent = (k - 1) // branching
        triples.append(
            Triple(_node(prefix, k), RDFS.subClassOf, _node(prefix, parent))
        )
    return triples


def chain_closure_size(n_nodes: int) -> int:
    """Total pairs in the closure of an n-node chain: n·(n−1)/2."""
    return n_nodes * (n_nodes - 1) // 2


def chain_inferred_size(n_nodes: int) -> int:
    """Inferred pairs for an n-node chain (closure minus asserted)."""
    return chain_closure_size(n_nodes) - (n_nodes - 1)
