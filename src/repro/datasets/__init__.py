"""Benchmark workload generators (paper §6 "Data")."""

from .bsbm import bsbm_like, bsbm_schema
from .chains import (
    chain_closure_size,
    chain_inferred_size,
    sameas_chain,
    subclass_chain,
    subclass_star,
    subclass_tree,
    subproperty_chain,
    transitive_property_chain,
)
from .lubm import lubm_like, lubm_ontology
from .realworld import wikipedia_like, wordnet_like, yago_like

__all__ = [
    "bsbm_like",
    "bsbm_schema",
    "chain_closure_size",
    "chain_inferred_size",
    "lubm_like",
    "lubm_ontology",
    "sameas_chain",
    "subclass_chain",
    "subclass_star",
    "subclass_tree",
    "subproperty_chain",
    "transitive_property_chain",
    "wikipedia_like",
    "wordnet_like",
    "yago_like",
]
