"""repro — reproduction of "Inferray: fast in-memory RDF inference" (VLDB'16).

Public API
----------

The common entry points are re-exported here:

* :class:`Store` — the unified facade: lazy materialization on
  add/remove, snapshot-isolated reads, one ``query()`` entry point
  (pattern / BGP string / :class:`TriplePattern` list) and
  ``save()`` / ``Store.load()`` persistence.
* :class:`InferrayEngine` — the forward-chaining reasoner (Algorithm 1)
  the Store drives.
* :func:`infer` / :func:`infer_with_stats` / :class:`InferredModel` —
  deprecated one-shot helpers, kept as shims over the Store.
* :mod:`repro.rdf` — terms, vocabularies, N-Triples I/O.
* :mod:`repro.rules` — the Table-5 catalogue and ruleset selections.
* :mod:`repro.baselines` — comparator engines (hash-join, RETE, naive).
* :mod:`repro.datasets` — benchmark workload generators.
* :mod:`repro.memsim` — the memory-hierarchy simulator (Figures 7–8).

Quickstart::

    from repro import Store
    from repro.rdf import iri, Triple, RDF, RDFS

    store = Store([
        Triple(iri("ex:human"), RDFS.subClassOf, iri("ex:mammal")),
        Triple(iri("ex:Bart"), RDF.type, iri("ex:human")),
    ])
    assert Triple(iri("ex:Bart"), RDF.type, iri("ex:mammal")) in store
    for solution in store.query("?who a ex:mammal"):
        print(solution["who"])
    store.save("closure.store")            # reload later in O(read)
"""

from .core.api import (
    InferredModel,
    infer,
    infer_with_stats,
    load_and_materialize,
)
from .core.engine import (
    FixedPointError,
    InferrayEngine,
    MaterializationStats,
    MaterializationTimeout,
)
from .core.parallel import PARALLEL_MODES, ProcessModeUnavailable
from .core.store_api import (
    Snapshot,
    Store,
    StoreChecksumError,
    StoreConfig,
    StoreCorruptionError,
    StoreFormatError,
    StoreMagicError,
    StoreTruncationError,
    StoreVersionError,
    is_store_file,
)
from .query.bgp import Query, TriplePattern, Var, parse_bgp
from .rules.rulesets import RULESET_NAMES

__version__ = "1.2.0"

__all__ = [
    "FixedPointError",
    "InferrayEngine",
    "InferredModel",
    "MaterializationStats",
    "MaterializationTimeout",
    "Query",
    "RULESET_NAMES",
    "Snapshot",
    "Store",
    "StoreChecksumError",
    "StoreConfig",
    "StoreCorruptionError",
    "StoreFormatError",
    "StoreMagicError",
    "StoreTruncationError",
    "StoreVersionError",
    "TriplePattern",
    "Var",
    "__version__",
    "infer",
    "infer_with_stats",
    "is_store_file",
    "load_and_materialize",
    "parse_bgp",
]
