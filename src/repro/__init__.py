"""repro — reproduction of "Inferray: fast in-memory RDF inference" (VLDB'16).

Public API
----------

The common entry points are re-exported here:

* :class:`InferrayEngine` — the forward-chaining reasoner (Algorithm 1).
* :func:`infer` / :func:`infer_with_stats` — one-shot materialization.
* :class:`InferredModel` — a Jena-InfModel-style wrapper.
* :mod:`repro.rdf` — terms, vocabularies, N-Triples I/O.
* :mod:`repro.rules` — the Table-5 catalogue and ruleset selections.
* :mod:`repro.baselines` — comparator engines (hash-join, RETE, naive).
* :mod:`repro.datasets` — benchmark workload generators.
* :mod:`repro.memsim` — the memory-hierarchy simulator (Figures 7–8).

Quickstart::

    from repro import infer
    from repro.rdf import iri, Triple, RDF, RDFS

    g = infer([
        Triple(iri("ex:human"), RDFS.subClassOf, iri("ex:mammal")),
        Triple(iri("ex:Bart"), RDF.type, iri("ex:human")),
    ])
    assert Triple(iri("ex:Bart"), RDF.type, iri("ex:mammal")) in g
"""

from .core.api import (
    InferredModel,
    infer,
    infer_with_stats,
    load_and_materialize,
)
from .core.engine import (
    FixedPointError,
    InferrayEngine,
    MaterializationStats,
    MaterializationTimeout,
)
from .query.bgp import Query, TriplePattern, Var
from .rules.rulesets import RULESET_NAMES

__version__ = "1.0.0"

__all__ = [
    "FixedPointError",
    "InferrayEngine",
    "InferredModel",
    "MaterializationStats",
    "MaterializationTimeout",
    "Query",
    "RULESET_NAMES",
    "TriplePattern",
    "Var",
    "__version__",
    "infer",
    "infer_with_stats",
    "load_and_materialize",
]
