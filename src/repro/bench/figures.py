"""ASCII bar charts for the Figure-7/8 outputs.

The paper presents the memory-counter experiments as grouped bar
charts; these helpers render the same grouping in terminal-friendly
form so the benchmark scripts read like the figures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: (group label, series label, value) — one bar.
Bar = Tuple[str, str, Optional[float]]

_BAR_WIDTH = 42


def render_bars(
    title: str,
    bars: Sequence[Bar],
    *,
    unit: str = "",
    log_note: bool = False,
) -> str:
    """Render grouped horizontal bars, scaled to the maximum value.

    ``None`` values render as a '–' row (timeouts / not-run cells).
    """
    values = [value for _, _, value in bars if value]
    maximum = max(values, default=0.0)
    label_width = max(
        (len(f"{group} {series}") for group, series, _ in bars), default=0
    )
    lines = [title]
    previous_group: Optional[str] = None
    for group, series, value in bars:
        if previous_group is not None and group != previous_group:
            lines.append("")
        previous_group = group
        label = f"{group} {series}".ljust(label_width)
        if value is None:
            lines.append(f"  {label} │ –")
            continue
        filled = 0
        if maximum > 0 and value > 0:
            filled = max(1, round(_BAR_WIDTH * value / maximum))
        bar = "█" * filled
        lines.append(f"  {label} │{bar} {value:,.3f}{unit}")
    if log_note:
        lines.append("  (linear scale; the paper's figures vary per panel)")
    return "\n".join(lines)


def counters_to_bars(
    rows: Sequence[Tuple[str, str, Optional[Dict[str, float]]]],
    metric: str,
) -> List[Bar]:
    """Project (group, series, per-triple-dict) rows onto one metric."""
    bars: List[Bar] = []
    for group, series, counters in rows:
        if counters is None:
            bars.append((group, series, None))
        else:
            bars.append((group, series, counters.get(metric, 0.0)))
    return bars
