"""Benchmark harness utilities."""

from .figures import counters_to_bars, render_bars
from .harness import (
    ENGINE_FACTORIES,
    RunResult,
    format_table,
    measure,
    run_engine,
)
from .reporting import markdown_table, results_matrix, speedup_summary

__all__ = [
    "ENGINE_FACTORIES",
    "counters_to_bars",
    "render_bars",
    "RunResult",
    "format_table",
    "markdown_table",
    "measure",
    "results_matrix",
    "run_engine",
    "speedup_summary",
]
