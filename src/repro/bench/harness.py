"""Benchmark harness: timing, engine runners and table assembly.

Mirrors the paper's measurement protocol at laptop scale: each
measurement is repeated (default one warm-up + three timed runs — the
paper uses two warm-ups + five runs) and summarized by the **median**
(robust to one noisy run on a shared machine; the mean is what a
single GC pause or page-cache miss skews).  The raw timings and their
spread ride along on every result so reports can show the noise.
Every engine run carries a timeout; timed-out cells are reported as
``None`` and printed as '–', the way the paper's tables mark
OWLIM/RDFox timeouts.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.engine import InferrayEngine, MaterializationTimeout
from ..rdf.terms import Triple

#: Engine-name → factory(ruleset) used by the comparison benchmarks.
ENGINE_FACTORIES: Dict[str, Callable] = {}


def _register_engines() -> None:
    from ..baselines.hashjoin import HashJoinEngine
    from ..baselines.naive import NaiveEngine
    from ..baselines.rete import ReteEngine

    ENGINE_FACTORIES.update(
        {
            "inferray": InferrayEngine,
            "hashjoin": HashJoinEngine,
            "rete": ReteEngine,
            "naive": NaiveEngine,
        }
    )


_register_engines()


@dataclass
class RunResult:
    """One (engine, workload) measurement."""

    engine: str
    dataset: str
    ruleset: str
    seconds: Optional[float]  # median across runs; None = timeout
    n_input: int = 0
    n_inferred: int = 0
    n_total: int = 0
    runs: List[float] = field(default_factory=list)
    #: Executor substrate the (Inferray) engine ran on, and the full
    #: recorded cost-model decision — None for baseline engines.
    parallel_mode: Optional[str] = None
    parallel_decision: Optional[Dict] = None

    @property
    def milliseconds(self) -> Optional[float]:
        """Median wall time in ms, or None on timeout."""
        if self.seconds is None:
            return None
        return self.seconds * 1000.0

    @property
    def spread_seconds(self) -> Optional[float]:
        """Max-min spread across the timed runs (None on timeout)."""
        if self.seconds is None or not self.runs:
            return None
        return max(self.runs) - min(self.runs)

    @property
    def throughput(self) -> Optional[float]:
        """Inferred triples per second, or None on timeout."""
        if self.seconds is None or self.seconds <= 0:
            return None
        return self.n_inferred / self.seconds

    def cell(self) -> str:
        """Paper-style table cell: integer ms, or '–' on timeout."""
        if self.seconds is None:
            return "–"
        return f"{self.seconds * 1000.0:,.0f}"


def measure(
    callable_once: Callable[[], Dict[str, int]],
    *,
    warmup: int = 1,
    runs: int = 3,
) -> Tuple[Optional[float], Dict[str, int], List[float]]:
    """Run a measurement callable with warm-ups; returns
    (median, info, runs).

    ``callable_once`` performs one full run and returns an info dict; a
    :class:`MaterializationTimeout` anywhere yields median ``None``.
    """
    info: Dict[str, int] = {}
    try:
        for _ in range(warmup):
            info = callable_once()
        timings = []
        for _ in range(runs):
            started = time.perf_counter()
            info = callable_once()
            timings.append(time.perf_counter() - started)
    except MaterializationTimeout:
        return None, info, []
    return statistics.median(timings), info, timings


def run_engine(
    engine_name: str,
    ruleset: str,
    data: Sequence[Triple],
    *,
    dataset_name: str = "",
    timeout_seconds: float = 60.0,
    warmup: int = 1,
    runs: int = 3,
    engine_kwargs: Optional[Dict] = None,
    label: Optional[str] = None,
) -> RunResult:
    """Measure one engine materializing one workload.

    Every run builds a fresh engine (load time excluded from the timed
    region is *not* attempted — the paper measures inference time for
    the in-memory engines, so we time ``materialize()`` only).

    ``engine_kwargs`` are forwarded to the engine factory (e.g.
    ``{"backend": "numpy"}`` to pin the Inferray kernel backend);
    ``label`` overrides the engine name recorded on the result, so one
    engine can appear as several table columns (backend comparisons).
    """
    factory = ENGINE_FACTORIES[engine_name]
    kwargs = engine_kwargs or {}
    data = list(data)
    outcome: Dict[str, int] = {}

    def once() -> Dict[str, int]:
        engine = factory(ruleset, **kwargs)
        engine.load_triples(data)
        try:
            started = time.perf_counter()
            engine.materialize(timeout_seconds=timeout_seconds)
            elapsed = time.perf_counter() - started
        finally:
            close = getattr(engine, "close", None)
            if close is not None:  # release persistent worker pools
                close()
        stats = engine.stats  # same shape on Inferray and baselines
        return {
            "n_input": stats.n_input,
            "n_inferred": stats.n_inferred,
            "n_total": stats.n_total,
            "seconds": elapsed,
            "parallel_mode": getattr(stats, "parallel_mode", None),
            "parallel_decision": getattr(
                stats, "parallel_decision", None
            ),
        }

    median_seconds: Optional[float]
    try:
        for _ in range(warmup):
            outcome = once()
        timings = []
        for _ in range(runs):
            outcome = once()
            timings.append(outcome["seconds"])
        median_seconds = statistics.median(timings)
    except MaterializationTimeout:
        return RunResult(
            engine=label or engine_name,
            dataset=dataset_name,
            ruleset=ruleset,
            seconds=None,
            n_input=len(data),
        )
    return RunResult(
        engine=label or engine_name,
        dataset=dataset_name,
        ruleset=ruleset,
        seconds=median_seconds,
        n_input=outcome.get("n_input", len(data)),
        n_inferred=outcome.get("n_inferred", 0),
        n_total=outcome.get("n_total", 0),
        runs=timings,
        parallel_mode=outcome.get("parallel_mode"),
        parallel_decision=outcome.get("parallel_decision"),
    )


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """Fixed-width plain-text table (right-aligned data columns)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    lines = []
    header_line = "  ".join(
        str(h).ljust(widths[i]) if i == 0 else str(h).rjust(widths[i])
        for i, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(
                str(cell).ljust(widths[i])
                if i == 0
                else str(cell).rjust(widths[i])
                for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)
