"""Reporting helpers: paper-style tables and EXPERIMENTS.md sections."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .harness import RunResult, format_table


def results_matrix(
    results: Sequence[RunResult],
    *,
    row_key=lambda r: (r.dataset, r.ruleset),
    column_key=lambda r: r.engine,
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Pivot RunResults into a Table-2/3-style matrix of ms cells."""
    if columns is None:
        seen: List[str] = []
        for result in results:
            key = column_key(result)
            if key not in seen:
                seen.append(key)
        columns = seen
    rows_index: Dict = {}
    for result in results:
        rows_index.setdefault(row_key(result), {})[column_key(result)] = result
    headers = ["workload"] + list(columns)
    rows = []
    for key, cells in rows_index.items():
        label = " / ".join(str(part) for part in key if part != "")
        row = [label]
        for column in columns:
            result = cells.get(column)
            row.append(result.cell() if result is not None else "")
        rows.append(row)
    return format_table(headers, rows)


def speedup_summary(
    results: Sequence[RunResult], *, reference: str = "inferray"
) -> List[str]:
    """Human-readable speedup lines vs a reference engine."""
    by_workload: Dict = {}
    for result in results:
        by_workload.setdefault((result.dataset, result.ruleset), {})[
            result.engine
        ] = result
    lines = []
    for (dataset, ruleset), cells in by_workload.items():
        base = cells.get(reference)
        if base is None or base.seconds is None:
            continue
        for engine, other in cells.items():
            if engine == reference:
                continue
            if other.seconds is None:
                lines.append(
                    f"{dataset}/{ruleset}: {engine} timed out, "
                    f"{reference} finished in {base.cell()} ms"
                )
            else:
                factor = other.seconds / base.seconds
                lines.append(
                    f"{dataset}/{ruleset}: {reference} is {factor:.1f}x "
                    f"{'faster' if factor >= 1 else 'slower'} than {engine}"
                )
    return lines


def markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """GitHub-markdown table (for EXPERIMENTS.md)."""
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)
