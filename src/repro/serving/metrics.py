"""Serving metrics: flush latency, staleness, epochs, back-pressure.

Everything is in-process and allocation-light: counters are plain ints,
latency distributions are fixed-size rings over recent observations
(enough for p50/p99 under steady load without unbounded growth), and
:meth:`ServingMetrics.render` emits the Prometheus text exposition
format so ``/metrics`` can be scraped by anything.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Dict, List, Optional

__all__ = ["LatencyWindow", "ServingMetrics"]


class LatencyWindow:
    """A fixed-size ring of recent observations with quantile queries.

    Thread-safe: request handlers observe from the event loop while the
    bench (or a scraper) reads percentiles concurrently.
    """

    def __init__(self, size: int = 1024):
        self._window: deque = deque(maxlen=size)
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self._window.append(value)
            self.count += 1
            self.total += value

    def percentile(self, q: float) -> Optional[float]:
        """The q-quantile (0..1) over the retained window, or ``None``."""
        with self._lock:
            values = sorted(self._window)
        if not values:
            return None
        index = min(len(values) - 1, max(0, math.ceil(q * len(values)) - 1))
        return values[index]

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    @property
    def max_recent(self) -> Optional[float]:
        with self._lock:
            return max(self._window) if self._window else None


class ServingMetrics:
    """All counters and distributions the server exposes at ``/metrics``."""

    def __init__(self):
        self.requests_total: Dict[str, int] = {}
        self.rejected_total = 0  # 429 back-pressure rejections
        self.errors_total = 0  # 4xx/5xx other than back-pressure
        self.flush_total = 0
        self.flush_failures_total = 0
        #: Flushes that landed only after the parallel executor
        #: self-healed mid-wave (broken pool / vanished segment).
        self.flush_degraded_total = 0
        # Write-ahead log counters (all zero when serving without one).
        self.wal_appended_total = 0
        self.wal_append_errors_total = 0
        self.wal_replayed_total = 0
        self.wal_checkpoints_total = 0
        self.coalesced_mutations_total = 0  # mutations merged into batches
        self.flushed_triples_total = 0
        self.flush_batch_max = 0
        self.flush_latency = LatencyWindow()
        self.read_latency = LatencyWindow()
        #: Epoch lag observed by reads that pinned an older epoch.
        self.read_epoch_lag = LatencyWindow(size=4096)

    def count_request(self, verb: str) -> None:
        self.requests_total[verb] = self.requests_total.get(verb, 0) + 1

    def record_flush(self, seconds: float, batch: int, triples: int) -> None:
        self.flush_total += 1
        self.coalesced_mutations_total += batch
        self.flushed_triples_total += triples
        self.flush_batch_max = max(self.flush_batch_max, batch)
        self.flush_latency.observe(seconds)

    def flush_summary(self) -> Dict[str, Optional[float]]:
        """The flush-side numbers the bench report embeds."""
        window = self.flush_latency
        mean_batch = (
            self.coalesced_mutations_total / self.flush_total
            if self.flush_total
            else None
        )
        return {
            "flushes": self.flush_total,
            "failures": self.flush_failures_total,
            "coalesced_mutations": self.coalesced_mutations_total,
            "flushed_triples": self.flushed_triples_total,
            "mean_batch": mean_batch,
            "max_batch": self.flush_batch_max,
            "p50_seconds": window.percentile(0.5),
            "p99_seconds": window.percentile(0.99),
            "mean_seconds": window.mean,
        }

    def render(
        self,
        gauges: Dict[str, float],
        raw_gauges: Optional[Dict[str, float]] = None,
    ) -> str:
        """Prometheus text format; ``gauges`` carries live server state
        (epoch, queue depth, staleness…) sampled at scrape time.

        ``gauges`` names are emitted under the ``repro_serving_``
        prefix; ``raw_gauges`` names are emitted verbatim — for
        metrics whose canonical name belongs to another subsystem
        (e.g. ``repro_hybrid_absorbed_rules``).
        """
        lines: List[str] = []

        def emit(name: str, value, labels: str = "") -> None:
            if value is None:
                return
            lines.append(f"repro_serving_{name}{labels} {_fmt(value)}")

        for name, value in (raw_gauges or {}).items():
            if value is not None:
                lines.append(f"{name} {_fmt(value)}")
        for name, value in gauges.items():
            emit(name, value)
        for verb, count in sorted(self.requests_total.items()):
            emit("requests_total", count, f'{{verb="{verb}"}}')
        emit("rejected_total", self.rejected_total)
        emit("errors_total", self.errors_total)
        emit("flush_total", self.flush_total)
        emit("flush_failures_total", self.flush_failures_total)
        # Degradations belong to the flush pipeline as a whole, not
        # just serving — emitted under the engine-wide name.
        lines.append(
            f"repro_flush_degraded_total {self.flush_degraded_total}"
        )
        emit("wal_appended_total", self.wal_appended_total)
        emit("wal_append_errors_total", self.wal_append_errors_total)
        emit("wal_replayed_total", self.wal_replayed_total)
        emit("wal_checkpoints_total", self.wal_checkpoints_total)
        emit("coalesced_mutations_total", self.coalesced_mutations_total)
        emit("flushed_triples_total", self.flushed_triples_total)
        emit("flush_batch_max", self.flush_batch_max)
        for window, prefix in (
            (self.flush_latency, "flush_latency_seconds"),
            (self.read_latency, "read_latency_seconds"),
            (self.read_epoch_lag, "read_epoch_lag"),
        ):
            for q in (0.5, 0.9, 0.99):
                emit(prefix, window.percentile(q), f'{{quantile="{q}"}}')
            emit(f"{prefix}_count", window.count)
            emit(f"{prefix}_sum", window.total)
        return "\n".join(lines) + "\n"


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))
