"""The asyncio reasoning server: snapshot reads, one batching writer.

Architecture (the VLog/LiteMat shape: materialization behind a
query-serving front end):

* **Reads never touch the live store.**  After every flush the writer
  publishes an immutable :class:`~repro.core.store_api.Snapshot`; query
  handlers answer from the currently published snapshot (or from an
  older retained epoch pinned via ``?epoch=N``), so a reader never
  observes a partially flushed closure and readers scale without
  locking writers.
* **All writes funnel through one batching queue.**  ``POST /add`` and
  ``POST /remove`` enqueue; a single writer task drains the whole queue
  into the store and runs *one* incremental flush per batch — bursts
  coalesce naturally while a flush is in progress.  A full queue is
  back-pressure: ``429`` with ``Retry-After``.
* **Failed flushes lose nothing.**  The store's mutation queues survive
  a :class:`~repro.core.engine.MaterializationTimeout` (or any flush
  error); the writer backs off and retries, and ``?wait=1`` clients get
  a ``503`` telling them the write is queued, not lost.
* **Graceful shutdown drains.**  Stopping closes the listener and the
  queue, flushes everything still pending, then resolves in-flight
  waiters before the loop exits.

Endpoints: ``GET /health``, ``GET /stats``, ``GET /metrics``
(Prometheus text), ``GET|POST /query``, ``POST /add``,
``POST /remove`` — mirroring the CLI verbs.  Wire format for mutations
is N-Triples (the same format every loader in the repo speaks); query
responses are JSON with terms rendered in N-Triples syntax.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.store_api import Snapshot, Store
from ..faults import fire as _fire_fault
from ..query.bgp import BGPSyntaxError
from ..rdf.ntriples import NTriplesError, parse
from .http import HTTPError, Request, json_body, read_request, render_response
from .metrics import ServingMetrics
from .queue import Mutation, MutationQueue, QueueClosed, QueueFull
from .wal import WriteAheadLog

__all__ = ["FlushFailed", "ReasoningServer"]

#: (status, body, content-type, extra headers) produced by a handler.
Response = Tuple[int, bytes, str, Dict[str, str]]


class FlushFailed(RuntimeError):
    """A ``?wait=1`` write's flush errored; the write stays queued."""


class ReasoningServer:
    """Serve a :class:`repro.Store` over HTTP with snapshot isolation.

    Parameters
    ----------
    store:
        The store to serve.  The server becomes its only writer; don't
        mutate it from elsewhere while the server runs.
    host, port:
        Listen address; ``port=0`` picks an ephemeral port (see
        :attr:`address` after :meth:`start`).
    queue_depth:
        Bound on queued (un-flushed) mutations before writes are
        rejected with ``429`` back-pressure.
    retained_epochs:
        How many recent snapshot epochs stay pinnable via ``?epoch=N``;
        older epochs answer ``410 Gone``.
    flush_retry_seconds:
        Back-off before the writer retries a failed flush.
    read_workers:
        Threads answering BGP queries off the event loop.
    default_limit:
        Cap on solutions returned when the client sends no ``limit``.
    read_timeout:
        Slowloris guard: seconds a *started* request has to finish
        arriving (line, headers, body) before the connection is closed
        with ``408``.  Idle keep-alive connections are unaffected.
        ``None`` disables the deadline.
    wal:
        A :class:`~repro.serving.wal.WriteAheadLog`; when given, every
        accepted mutation is appended (and, per the log's fsync
        policy, fsynced) *before* the client sees the ack, the tail is
        replayed into the store on :meth:`start`, and successful
        flushes checkpoint via atomic save + log compaction.
    checkpoint_path:
        Where checkpoints save the store (defaults to
        ``<wal path>.checkpoint``).  On boot the CLI prefers this file
        over the original input when it exists.
    checkpoint_every:
        Checkpoint after every N-th successful flush (default 1).
    """

    def __init__(
        self,
        store: Store,
        *,
        host: str = "127.0.0.1",
        port: int = 8080,
        queue_depth: int = 256,
        retained_epochs: int = 8,
        flush_retry_seconds: float = 0.5,
        read_workers: int = 4,
        default_limit: int = 1000,
        max_drain_failures: int = 3,
        read_timeout: Optional[float] = 30.0,
        wal: Optional[WriteAheadLog] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: int = 1,
    ):
        self._store = store
        self.host = host
        self.port = port
        self.retained_epochs = max(1, retained_epochs)
        self.default_limit = default_limit
        self._flush_retry_seconds = flush_retry_seconds
        self._max_drain_failures = max_drain_failures
        self.queue = MutationQueue(max_depth=queue_depth)
        self.metrics = ServingMetrics()
        self._epochs: "OrderedDict[int, Snapshot]" = OrderedDict()
        self._current: Optional[Snapshot] = None
        self._epoch_published_at = time.monotonic()
        self._started_at = time.monotonic()
        self._last_flush_error: Optional[str] = None
        #: Enqueue time of the oldest mutation drained from the queue
        #: but not yet durably flushed; feeds the staleness gauge so a
        #: failing flush can't make drained-but-unapplied writes read
        #: as zero staleness.
        self._oldest_unflushed: Optional[float] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._writer_task: Optional[asyncio.Task] = None
        self._connections: set = set()
        self._stopping = False
        self._closed = asyncio.Event()
        self._read_timeout = (
            read_timeout if read_timeout and read_timeout > 0 else None
        )
        self._wal = wal
        self._checkpoint_path = checkpoint_path or (
            wal.path + ".checkpoint" if wal is not None else None
        )
        self._checkpoint_every = max(1, checkpoint_every)
        self._flushes_since_checkpoint = 0
        self._replayed_at_boot = 0
        #: Highest WAL sequence covered by a *successful* flush — the
        #: only safe checkpoint bound.  A drained batch whose flush
        #: errored is not in the store, so its records must survive in
        #: the log for the next boot's replay.
        self._flushed_wal_seq = 0
        self._flush_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-flush"
        )
        self._read_pool = ThreadPoolExecutor(
            max_workers=max(1, read_workers),
            thread_name_prefix="repro-read",
        )
        # WAL appends get a dedicated single thread: they must not sit
        # behind a long materialization on the flush thread (appends
        # gate acks), and a single thread keeps sequence order equal to
        # enqueue order, which checkpoints rely on.
        self._wal_pool = (
            ThreadPoolExecutor(max_workers=1, thread_name_prefix="repro-wal")
            if wal is not None
            else None
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Materialize, publish epoch 1, start listening and writing.

        With a WAL, the un-checkpointed tail (acknowledged writes a
        previous process never flushed) is replayed into the store
        first, so the epoch published here already contains them; the
        boot then checkpoints immediately, compacting the log.
        """
        loop = asyncio.get_running_loop()
        if self._wal is not None:
            self._replayed_at_boot = await loop.run_in_executor(
                self._flush_pool, self._wal.replay_into, self._store
            )
            self.metrics.wal_replayed_total += self._replayed_at_boot
        snapshot, _ = await loop.run_in_executor(
            self._flush_pool, self._flush_sync
        )
        self._publish(snapshot)
        if self._wal is not None:
            self._flushed_wal_seq = self._wal.last_seq
            if self._wal.depth:
                await loop.run_in_executor(
                    self._flush_pool,
                    self._checkpoint_sync,
                    self._wal.last_seq,
                )
        self._started_at = time.monotonic()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self._writer_task = asyncio.create_task(
            self._writer_loop(), name="repro-serving-writer"
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — resolves ``port=0`` ephemerality."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def epoch(self) -> int:
        """The currently published closure epoch."""
        return self._current.epoch if self._current is not None else 0

    def request_stop(self) -> None:
        """Begin a graceful shutdown from anywhere on the loop."""
        if not self._stopping:
            asyncio.ensure_future(self.stop())

    async def wait_closed(self) -> None:
        """Block until a requested shutdown has fully drained."""
        await self._closed.wait()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain the queue, flush."""
        if self._stopping:
            await self._closed.wait()
            return
        self._stopping = True
        if self._server is not None:
            # Stop accepting, but do NOT await wait_closed() yet: on
            # Python >= 3.12.1 it blocks until every connection handler
            # returns, and an idle keep-alive client parked in
            # read_request() never would — the queue must drain and the
            # connections must be cancelled first.
            self._server.close()
        self.queue.close()
        if self._writer_task is not None:
            await self._writer_task
        if self._connections:
            done, pending = await asyncio.wait(
                list(self._connections), timeout=1.0
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(list(pending), timeout=1.0)
        if self._server is not None:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._server.wait_closed(), timeout=1.0)
        if (
            self._wal is not None
            and self._wal.depth
            and self._flushed_wal_seq
        ):
            # One last checkpoint covering every *flushed* record —
            # when the shutdown drained cleanly that is all of them
            # (empty log, nothing to replay next boot); records whose
            # flush never landed stay in the log for the next replay.
            with contextlib.suppress(Exception):
                await asyncio.get_running_loop().run_in_executor(
                    self._flush_pool,
                    self._checkpoint_sync,
                    self._flushed_wal_seq,
                )
        if self._wal_pool is not None:
            self._wal_pool.shutdown(wait=True)
        self._flush_pool.shutdown(wait=True)
        self._read_pool.shutdown(wait=True)
        if self._wal is not None:
            self._wal.close()
        self._closed.set()

    # ------------------------------------------------------------------
    # The single writer
    # ------------------------------------------------------------------
    def _flush_sync(self, batch: Sequence[Mutation] = ()):
        """Apply a drained batch, then flush — on the flush thread.

        Applying the mutations here rather than on the event loop
        matters for removes: ``Store.remove`` probes the engine's
        asserted set (O(n_asserted) per call), which would stall every
        in-flight read and health check if it ran on the loop.

        Returns ``(snapshot, stats)``; ``snapshot`` is ``None`` when
        the batch left nothing to flush (e.g. removes of triples that
        were never asserted).
        """
        _fire_fault("serving.flush")
        for mutation in batch:
            if mutation.kind == "add":
                self._store.add(list(mutation.triples))
            else:
                self._store.remove(list(mutation.triples))
        if batch and not self._store.stale:
            return None, None
        stats = self._store.materialize()
        return self._store.snapshot(), stats

    def _checkpoint_sync(self, upto_seq: int) -> None:
        """Atomic store save + WAL compaction — on the flush thread.

        Sharing the flush thread serializes checkpoints against
        flushes, so the saved closure always covers every record being
        truncated.
        """
        assert self._wal is not None and self._checkpoint_path is not None
        if self._wal.fsync_policy == "batch":
            self._wal.sync()
        self._store.save(self._checkpoint_path)
        self._wal.checkpoint(upto_seq)
        self.metrics.wal_checkpoints_total += 1

    def _degraded_total(self) -> int:
        """Mid-wave self-healing degradations across the engine's
        schedulers (mirrored into ``repro_flush_degraded_total``)."""
        engine = self._store.engine
        total = engine.scheduler.degraded_total
        reduced = getattr(engine, "_reduced_scheduler", None)
        if reduced is not None:
            total += reduced.degraded_total
        return total

    async def _writer_loop(self) -> None:
        loop = asyncio.get_running_loop()
        waiters: List[asyncio.Future] = []
        consecutive_failures = 0
        while True:
            if self._store.stale or self.queue.depth:
                batch = self.queue.drain()
            else:
                batch = await self.queue.get_batch()
                if not batch:
                    break  # closed and empty, nothing stale
            n_triples = 0
            for mutation in batch:
                n_triples += len(mutation.triples)
                if mutation.future is not None:
                    waiters.append(mutation.future)
                if mutation.wal_future is not None:
                    # Durability before application: wait out the
                    # in-flight append so the flush below never applies
                    # a record the log doesn't hold, and its wal_seq
                    # is known by checkpoint time.  A failed append is
                    # fine — that write was 503'd, never acknowledged.
                    try:
                        mutation.wal_seq = await mutation.wal_future
                    except Exception:
                        pass
            if batch and self._oldest_unflushed is None:
                self._oldest_unflushed = batch[0].enqueued_at
            started = time.monotonic()
            try:
                snapshot, _ = await loop.run_in_executor(
                    self._flush_pool, self._flush_sync, batch
                )
            except Exception as error:
                consecutive_failures += 1
                self.metrics.flush_failures_total += 1
                detail = f"{type(error).__name__}: {error}"
                self._last_flush_error = detail
                self._fail_waiters(waiters, detail)
                waiters = []
                if (
                    self.queue.closed
                    and consecutive_failures >= self._max_drain_failures
                ):
                    break  # shutting down and the flush won't land
                await asyncio.sleep(self._flush_retry_seconds)
                continue
            consecutive_failures = 0
            self._oldest_unflushed = None
            self.metrics.flush_degraded_total = self._degraded_total()
            if snapshot is not None:
                self._publish(
                    snapshot,
                    latency=time.monotonic() - started,
                    batch=len(batch),
                    n_triples=n_triples,
                )
            self._resolve_waiters(waiters)
            waiters = []
            if self._wal is not None and batch:
                known = [
                    m.wal_seq for m in batch if m.wal_seq is not None
                ]
                if known:
                    self._flushed_wal_seq = max(
                        self._flushed_wal_seq, max(known)
                    )
                self._flushes_since_checkpoint += 1
                if (
                    self._flushes_since_checkpoint >= self._checkpoint_every
                    and self._flushed_wal_seq
                ):
                    # The batch is durably in the closure; truncate the
                    # log through the highest flushed sequence.  A
                    # record whose append failed has no seq — but its
                    # write was never acknowledged, so it needs no
                    # durability either.
                    try:
                        await loop.run_in_executor(
                            self._flush_pool,
                            self._checkpoint_sync,
                            self._flushed_wal_seq,
                        )
                    except Exception as error:
                        # Checkpoint failure is not data loss — the
                        # WAL still covers everything; retry after
                        # the next flush.
                        self._last_flush_error = (
                            f"checkpoint failed: "
                            f"{type(error).__name__}: {error}"
                        )
                    else:
                        self._flushes_since_checkpoint = 0
            if (
                self.queue.closed
                and not self.queue.depth
                and not self._store.stale
            ):
                break
        self._fail_waiters(waiters, "server stopped before the flush landed")

    def _resolve_waiters(self, waiters: List[asyncio.Future]) -> None:
        for future in waiters:
            if not future.done():
                future.set_result(self.epoch)

    def _fail_waiters(self, waiters: List[asyncio.Future], detail: str) -> None:
        for future in waiters:
            if not future.done():
                future.set_exception(FlushFailed(detail))

    def _publish(
        self,
        snapshot: Snapshot,
        *,
        latency: Optional[float] = None,
        batch: int = 0,
        n_triples: int = 0,
    ) -> None:
        self._current = snapshot
        self._epochs[snapshot.epoch] = snapshot
        while len(self._epochs) > self.retained_epochs:
            self._epochs.popitem(last=False)
        self._epoch_published_at = time.monotonic()
        if latency is not None:
            self.metrics.record_flush(latency, batch, n_triples)

    # ------------------------------------------------------------------
    # Connections and routing
    # ------------------------------------------------------------------
    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _serve_connection(self, reader, writer) -> None:
        while True:
            try:
                request = await read_request(
                    reader, timeout=self._read_timeout
                )
            except HTTPError as error:
                self.metrics.errors_total += 1
                writer.write(
                    render_response(
                        error.status,
                        json_body({"error": error.message}),
                        headers=error.headers,
                        keep_alive=False,
                    )
                )
                await writer.drain()
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            if request is None:
                return
            keep_alive = request.keep_alive and not self._stopping
            try:
                status, body, content_type, headers = await self._route(
                    request
                )
            except HTTPError as error:
                if error.status == 429:
                    self.metrics.rejected_total += 1
                else:
                    self.metrics.errors_total += 1
                status, content_type = error.status, "application/json"
                body = json_body({"error": error.message})
                headers = error.headers
            except Exception as error:  # a handler bug must not kill serving
                self.metrics.errors_total += 1
                status, content_type = 500, "application/json"
                body = json_body(
                    {"error": f"{type(error).__name__}: {error}"}
                )
                headers = {}
            writer.write(
                render_response(
                    status,
                    body,
                    content_type=content_type,
                    headers=headers,
                    keep_alive=keep_alive,
                )
            )
            await writer.drain()
            if not keep_alive:
                return

    async def _route(self, request: Request) -> Response:
        path = request.path.rstrip("/") or "/"
        routes = {
            "/health": (("GET",), self._handle_health),
            "/stats": (("GET",), self._handle_stats),
            "/metrics": (("GET",), self._handle_metrics),
            "/query": (("GET", "POST"), self._handle_query),
            "/add": (("POST",), self._handle_add),
            "/remove": (("POST",), self._handle_remove),
        }
        entry = routes.get(path)
        if entry is None:
            raise HTTPError(404, f"no such endpoint {request.path!r}")
        methods, handler = entry
        if request.method not in methods:
            raise HTTPError(
                405,
                f"{request.method} not allowed on {path}",
                headers={"Allow": ", ".join(methods)},
            )
        return await handler(request)

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def _pin_epoch(self, request: Request) -> Snapshot:
        """The snapshot a read runs against (current, or ``?epoch=N``)."""
        wanted = request.int_param("epoch")
        current = self._current
        if wanted is None or wanted == current.epoch:
            return current
        snapshot = self._epochs.get(wanted)
        if snapshot is None:
            raise HTTPError(
                410,
                f"epoch {wanted} is no longer retained "
                f"(current epoch {current.epoch}, retaining "
                f"{len(self._epochs)})",
            )
        self.metrics.read_epoch_lag.observe(current.epoch - wanted)
        return snapshot

    async def _handle_query(self, request: Request) -> Response:
        self.metrics.count_request("query")
        if request.method == "POST":
            payload = _json_payload(request)
            text = payload.get("query")
            limit = payload.get("limit")
            if limit is not None and not isinstance(limit, int):
                raise HTTPError(400, "limit must be an integer")
            if "epoch" in payload and payload["epoch"] is not None:
                request.query["epoch"] = str(payload["epoch"])
        else:
            text = request.query.get("q") or request.query.get("query")
            limit = request.int_param("limit")
        if not text or not isinstance(text, str):
            raise HTTPError(
                400, "missing BGP: pass ?q=… or a JSON body with 'query'"
            )
        if limit is None:
            limit = self.default_limit
        snapshot = self._pin_epoch(request)
        started = time.monotonic()

        def run() -> List[dict]:
            return snapshot.solutions(text)

        loop = asyncio.get_running_loop()
        try:
            solutions = await loop.run_in_executor(self._read_pool, run)
        except BGPSyntaxError as error:
            raise HTTPError(400, f"bad BGP: {error}")
        self.metrics.read_latency.observe(time.monotonic() - started)
        n_total = len(solutions)
        if limit >= 0:
            solutions = solutions[:limit]
        payload = {
            "epoch": snapshot.epoch,
            "n": n_total,
            "returned": len(solutions),
            "solutions": [
                {name: term.n3() for name, term in solution.items()}
                for solution in solutions
            ],
        }
        return 200, json_body(payload), "application/json", {}

    async def _handle_health(self, request: Request) -> Response:
        self.metrics.count_request("health")
        payload = {
            "status": "draining" if self._stopping else "ok",
            "epoch": self.epoch,
            "n_triples": self._current.n_triples,
            "queue_depth": self.queue.depth,
        }
        return 200, json_body(payload), "application/json", {}

    async def _handle_stats(self, request: Request) -> Response:
        self.metrics.count_request("stats")
        engine = self._store.engine
        reads = self.metrics.read_latency
        payload = {
            "epoch": self.epoch,
            "n_triples": self._current.n_triples,
            "ruleset": self._current.ruleset_name,
            "backend": engine.kernels.name,
            "workers": engine.workers,
            "parallel_mode": engine.parallel_mode,
            "materialize": engine.materialize_mode,
            "absorbed_rules": list(engine.absorbed_rule_names),
            "hybrid_fallback": engine.hybrid_fallback_reason,
            "uptime_seconds": time.monotonic() - self._started_at,
            "retained_epochs": list(self._epochs),
            "queue": {
                "depth": self.queue.depth,
                "capacity": self.queue.max_depth,
                "enqueued_total": self.queue.total_enqueued,
                "rejected_total": self.queue.total_rejected,
                "closed": self.queue.closed,
            },
            "flush": dict(
                self.metrics.flush_summary(),
                last_error=self._last_flush_error,
            ),
            "reads": {
                "count": reads.count,
                "p50_seconds": reads.percentile(0.5),
                "p99_seconds": reads.percentile(0.99),
            },
            "flush_degraded_total": self._degraded_total(),
            "wal": self._wal_stats(),
        }
        return 200, json_body(payload), "application/json", {}

    def _wal_stats(self) -> dict:
        if self._wal is None:
            return {"enabled": False}
        age = (
            time.monotonic() - self._wal.last_checkpoint_at
            if self._wal.last_checkpoint_at is not None
            else None
        )
        return {
            "enabled": True,
            "path": self._wal.path,
            "fsync_policy": self._wal.fsync_policy,
            "depth": self._wal.depth,
            "last_seq": self._wal.last_seq,
            "appended_total": self._wal.appended_total,
            "append_errors_total": self.metrics.wal_append_errors_total,
            "replayed_at_boot": self._replayed_at_boot,
            "checkpoints_total": self._wal.checkpoints_total,
            "torn_records_dropped": self._wal.torn_records_dropped,
            "last_checkpoint_age_seconds": age,
            "checkpoint_path": self._checkpoint_path,
        }

    async def _handle_metrics(self, request: Request) -> Response:
        self.metrics.count_request("metrics")
        now = time.monotonic()
        pending = [
            t
            for t in (self.queue.oldest_enqueued_at(), self._oldest_unflushed)
            if t is not None
        ]
        oldest = min(pending) if pending else None
        gauges = {
            "epoch": self.epoch,
            "triples": self._current.n_triples,
            "queue_depth": self.queue.depth,
            "queue_capacity": self.queue.max_depth,
            "retained_epochs": len(self._epochs),
            "snapshot_age_seconds": now - self._epoch_published_at,
            "staleness_seconds": (now - oldest) if oldest else 0.0,
            "draining": self.queue.closed,
            "uptime_seconds": now - self._started_at,
        }
        if self._wal is not None:
            gauges["wal_depth"] = self._wal.depth
            gauges["wal_last_seq"] = self._wal.last_seq
            if self._wal.last_checkpoint_at is not None:
                gauges["wal_last_checkpoint_age_seconds"] = (
                    now - self._wal.last_checkpoint_at
                )
        self.metrics.flush_degraded_total = self._degraded_total()
        raw_gauges = {
            "repro_hybrid_absorbed_rules": len(
                self._store.engine.absorbed_rule_names
            ),
        }
        text = self.metrics.render(gauges, raw_gauges)
        return (
            200,
            text.encode("utf-8"),
            "text/plain; version=0.0.4; charset=utf-8",
            {},
        )

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    async def _handle_add(self, request: Request) -> Response:
        self.metrics.count_request("add")
        return await self._enqueue(request, "add")

    async def _handle_remove(self, request: Request) -> Response:
        self.metrics.count_request("remove")
        return await self._enqueue(request, "remove")

    async def _enqueue(self, request: Request, kind: str) -> Response:
        triples = _parse_triples(request)
        wait = request.flag("wait")
        future = (
            asyncio.get_running_loop().create_future() if wait else None
        )
        mutation = Mutation(kind=kind, triples=triples, future=future)
        try:
            self.queue.try_put(mutation)
        except QueueFull:
            raise HTTPError(
                429,
                f"mutation queue full ({self.queue.max_depth} batches "
                "pending); retry later",
                headers={"Retry-After": str(self._retry_after())},
            )
        except QueueClosed:
            raise HTTPError(503, "server is draining; write rejected")
        if self._wal is not None:
            # Durability gates the ack: the mutation is already queued
            # (so the writer will flush it either way), but the client
            # only hears success once the append — and, under the
            # ``always`` policy, the fsync — landed.  The dedicated
            # single append thread keeps sequence order equal to
            # enqueue order, which checkpoint truncation relies on.
            # The future is published on the mutation *before* this
            # coroutine first yields, so the writer task (which awaits
            # it before flushing) can never observe the mutation
            # without it.
            mutation.wal_future = asyncio.get_running_loop().run_in_executor(
                self._wal_pool, self._wal.append, kind, triples
            )
            try:
                mutation.wal_seq = await mutation.wal_future
            except Exception as error:
                self.metrics.wal_append_errors_total += 1
                raise HTTPError(
                    503,
                    "write-ahead log append failed "
                    f"({type(error).__name__}: {error}); the write is "
                    "queued in memory but NOT durable",
                )
            self.metrics.wal_appended_total += 1
        if future is None:
            payload = {"queued": len(triples), "epoch": self.epoch}
            return 202, json_body(payload), "application/json", {}
        try:
            epoch = await future
        except FlushFailed as error:
            raise HTTPError(
                503,
                f"flush failed ({error}); the write is queued and will "
                "be retried",
            )
        payload = {"flushed": len(triples), "epoch": epoch}
        return 200, json_body(payload), "application/json", {}

    def _retry_after(self) -> int:
        """Seconds a 429'd client should back off: roughly one flush."""
        p50 = self.metrics.flush_latency.percentile(0.5) or 0.0
        return max(1, int(p50 + 0.999))


# ----------------------------------------------------------------------
# Request-body helpers
# ----------------------------------------------------------------------
def _json_payload(request: Request) -> dict:
    try:
        payload = json.loads(request.body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise HTTPError(400, f"bad JSON body: {error}")
    if not isinstance(payload, dict):
        raise HTTPError(400, "JSON body must be an object")
    return payload


def _parse_triples(request: Request):
    try:
        text = request.body.decode("utf-8")
    except UnicodeDecodeError as error:
        raise HTTPError(400, f"body is not UTF-8: {error}")
    try:
        triples = list(parse(text))
    except NTriplesError as error:
        raise HTTPError(400, f"bad N-Triples body: {error}")
    if not triples:
        raise HTTPError(400, "empty mutation: body held no triples")
    return triples
