"""Run a :class:`ReasoningServer` on a dedicated event-loop thread.

Benchmarks, tests and examples are synchronous programs; this wrapper
gives them a real server (real sockets, real back-pressure) without
owning an event loop:

    with ServerThread(store, port=0) as handle:
        host, port = handle.address
        ... hammer it with http.client ...
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional, Tuple

from ..core.store_api import Store
from .server import ReasoningServer

__all__ = ["ServerThread"]


class ServerThread:
    """Own a server and its event loop on a daemon thread."""

    def __init__(self, store: Store, **server_options):
        self._store = store
        self._options = server_options
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.server: Optional[ReasoningServer] = None
        self.address: Optional[Tuple[str, int]] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self, timeout: float = 60.0) -> "ServerThread":
        """Start the loop thread; blocks until the server is listening."""
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-serving", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("server did not start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # surface startup crashes
            if not self._ready.is_set():
                self._startup_error = error
                self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        server = ReasoningServer(self._store, **self._options)
        try:
            await server.start()
        except BaseException as error:
            self._startup_error = error
            self._ready.set()
            return
        self.server = server
        self.address = server.address
        self._ready.set()
        await server.wait_closed()

    def stop(self, timeout: float = 60.0) -> None:
        """Graceful shutdown (drains the queue), then join the thread."""
        if self._loop is not None and self.server is not None:
            try:
                self._loop.call_soon_threadsafe(self.server.request_stop)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
