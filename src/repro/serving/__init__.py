"""repro.serving — an async reasoning server over Store snapshots.

The millions-of-users story on top of the Store facade: concurrent
reads answer from pinned snapshot epochs, writes coalesce through one
batching queue into incremental flushes, back-pressure and staleness
are observable at ``/metrics``, and shutdown drains instead of
dropping.  Stdlib only (``asyncio`` + a minimal HTTP/1.1 handler).

* :class:`ReasoningServer` — the asyncio server (``await start()``).
* :class:`ServerThread` — the same server on a dedicated loop thread,
  for synchronous programs (benchmarks, tests, examples).
* :func:`run` — blocking convenience used by ``repro serve``.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import sys
from typing import Optional

from ..core.store_api import Store
from .metrics import LatencyWindow, ServingMetrics
from .queue import Mutation, MutationQueue, QueueClosed, QueueFull
from .server import FlushFailed, ReasoningServer
from .thread import ServerThread
from .wal import FSYNC_POLICIES, WALCorruptionError, WriteAheadLog

__all__ = [
    "FSYNC_POLICIES",
    "FlushFailed",
    "LatencyWindow",
    "Mutation",
    "MutationQueue",
    "QueueClosed",
    "QueueFull",
    "ReasoningServer",
    "ServerThread",
    "ServingMetrics",
    "WALCorruptionError",
    "WriteAheadLog",
    "run",
]


def run(
    store: Store,
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    announce=None,
    **server_options,
) -> int:
    """Serve ``store`` until SIGINT/SIGTERM; returns an exit code.

    ``announce(host, port)`` is called once the listener is bound —
    the CLI prints the resolved address there (``port=0`` picks one).
    """

    async def main() -> int:
        server = ReasoningServer(store, host=host, port=port, **server_options)
        await server.start()
        if announce is not None:
            bound_host, bound_port = server.address
            announce(bound_host, bound_port)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(signum, server.request_stop)
        await server.wait_closed()
        return 0

    try:
        return asyncio.run(main())
    except KeyboardInterrupt:  # platforms without add_signal_handler
        print("repro: interrupted", file=sys.stderr)
        return 130
    finally:
        # The writer task's flushes share the store's persistent worker
        # pool across batches; once the process is done serving, release
        # the pool and its shared-memory segments deterministically.
        store.close()
