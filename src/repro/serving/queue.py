"""The single batching mutation queue behind the reasoning server.

All writes funnel through one :class:`MutationQueue` consumed by one
writer task.  Producers (request handlers) enqueue without blocking —
a full queue raises :class:`QueueFull`, which the server maps to a
``429`` with ``Retry-After`` (back-pressure instead of unbounded
buffering).  The consumer drains *everything* queued in one go: while
an incremental flush is running, arriving mutations pile up and land
together in the next flush, so bursts coalesce into one fixed-point run
per flush instead of one per request.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..rdf.terms import Triple

__all__ = ["Mutation", "MutationQueue", "QueueClosed", "QueueFull"]


class QueueFull(Exception):
    """The bounded queue rejected a mutation (back-pressure)."""

    def __init__(self, depth: int):
        super().__init__(f"mutation queue full ({depth} pending batches)")
        self.depth = depth


class QueueClosed(Exception):
    """The server is shutting down; no further writes are accepted."""


@dataclass
class Mutation:
    """One client write: a batch of triples to assert or retract."""

    kind: str  # 'add' | 'remove'
    triples: Sequence[Triple]
    #: Monotonic enqueue timestamp, for staleness metrics.
    enqueued_at: float = field(default_factory=time.monotonic)
    #: Resolved with the epoch the batch landed in (``?wait=1``), or
    #: failed when the flush that owned it errored.
    future: Optional[asyncio.Future] = None
    #: Sequence number assigned by the write-ahead log append, when
    #: the server runs with one (``--wal``); checkpoints truncate the
    #: log up to the highest flushed sequence.
    wal_seq: Optional[int] = None
    #: The in-flight append itself.  The writer awaits it before
    #: flushing the mutation, so application never outruns durability
    #: (and ``wal_seq`` is known by checkpoint time).
    wal_future: Optional[asyncio.Future] = None


class MutationQueue:
    """Bounded, single-consumer, drain-everything batching queue."""

    def __init__(self, max_depth: int = 256):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self._items: deque = deque()
        self._arrival = asyncio.Event()
        self.closed = False
        self.total_enqueued = 0
        self.total_rejected = 0
        self.total_triples = 0

    @property
    def depth(self) -> int:
        """Mutations currently queued (not yet picked up by the writer)."""
        return len(self._items)

    def oldest_enqueued_at(self) -> Optional[float]:
        """Enqueue time of the oldest queued mutation, if any."""
        return self._items[0].enqueued_at if self._items else None

    def try_put(self, mutation: Mutation) -> None:
        """Enqueue or raise :class:`QueueFull` / :class:`QueueClosed`."""
        if self.closed:
            raise QueueClosed("server is draining; write rejected")
        if len(self._items) >= self.max_depth:
            self.total_rejected += 1
            raise QueueFull(self.max_depth)
        self._items.append(mutation)
        self.total_enqueued += 1
        self.total_triples += len(mutation.triples)
        self._arrival.set()

    def drain(self) -> List[Mutation]:
        """Everything currently queued, without waiting."""
        batch = list(self._items)
        self._items.clear()
        self._arrival.clear()
        return batch

    async def get_batch(self) -> List[Mutation]:
        """Wait for at least one mutation, then drain the whole queue.

        Returns an empty batch only when the queue was closed and
        nothing is left — the writer's signal to finish.
        """
        while not self._items:
            if self.closed:
                return []
            self._arrival.clear()
            await self._arrival.wait()
        return self.drain()

    def close(self) -> None:
        """Refuse further writes and wake the waiting consumer."""
        self.closed = True
        self._arrival.set()
