"""Minimal HTTP/1.1 plumbing for the serving layer (stdlib only).

The reasoning server speaks a deliberately small slice of HTTP/1.1 over
``asyncio`` streams: request line + headers + ``Content-Length`` bodies,
keep-alive connections, JSON (and text) responses with explicit lengths.
No chunked encoding, no pipelining guarantees beyond strict
request/response alternation — exactly what ``http.client``, ``curl``
and every load generator in ``benchmarks/`` need, with zero new
dependencies.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional
from urllib.parse import parse_qsl, unquote

__all__ = [
    "HTTPError",
    "Request",
    "read_request",
    "render_response",
]

#: Hard limits keeping a misbehaving client from ballooning memory.
MAX_REQUEST_LINE = 8192
MAX_HEADER_BYTES = 65536
MAX_BODY_BYTES = 64 * 1024 * 1024

_STATUS_PHRASES = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    410: "Gone",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    505: "HTTP Version Not Supported",
}


class HTTPError(Exception):
    """An error that renders as an HTTP error response.

    ``headers`` lets a handler attach response headers (e.g.
    ``Retry-After`` on a 429 back-pressure rejection).
    """

    def __init__(
        self,
        status: int,
        message: str,
        headers: Optional[Dict[str, str]] = None,
    ):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    def flag(self, name: str) -> bool:
        """A boolean query parameter (``?wait=1`` style)."""
        value = self.query.get(name, "").strip().lower()
        return value in ("1", "true", "yes", "on")

    def int_param(self, name: str) -> Optional[int]:
        """An integer query parameter, or ``None``; 400 on garbage."""
        raw = self.query.get(name)
        if raw is None or raw == "":
            return None
        try:
            return int(raw)
        except ValueError:
            raise HTTPError(400, f"query parameter {name}={raw!r} is not an integer")

    @property
    def keep_alive(self) -> bool:
        token = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            # HTTP/1.0 defaults to close; persistence is opt-in.
            return token == "keep-alive"
        return token != "close"


async def read_request(
    reader: asyncio.StreamReader,
    *,
    timeout: Optional[float] = None,
) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`HTTPError` for malformed or oversized requests and
    lets stream-level exceptions (reset connections) propagate to the
    connection handler.

    ``timeout`` is the slowloris guard: waiting for the *first* byte is
    unbounded (an idle keep-alive connection is legal and cheap), but
    once a request has started arriving, the rest of its line, headers
    and body must complete within ``timeout`` seconds or the request
    fails with ``408 Request Timeout`` (and the connection closes, so
    a half-sent request cannot park a connection task forever).
    """
    first = await reader.read(1)
    if not first:
        return None  # client closed between requests
    rest = _read_request_after(reader, first)
    if timeout is None:
        return await rest
    try:
        return await asyncio.wait_for(rest, timeout)
    except asyncio.TimeoutError:
        raise HTTPError(
            408,
            f"request read timed out after {timeout:g}s "
            "(line, headers and body must arrive promptly)",
        )


async def _read_request_after(
    reader: asyncio.StreamReader, first: bytes
) -> Request:
    """Parse the remainder of a request whose first byte is ``first``."""
    if first == b"\n":
        line = first
    else:
        try:
            line = first + await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            raise HTTPError(431, "request line too long")
    if len(line) > MAX_REQUEST_LINE:
        raise HTTPError(431, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HTTPError(400, "malformed request line")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise HTTPError(505, f"unsupported protocol {version!r}")
    raw_path, _, raw_query = target.partition("?")
    query = dict(parse_qsl(raw_query, keep_blank_values=True))
    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        line = await reader.readline()
        if not line:
            raise HTTPError(400, "truncated request headers")
        if line in (b"\r\n", b"\n"):
            break
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise HTTPError(431, "request headers too large")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HTTPError(400, "malformed header line")
        headers[name.strip().lower()] = value.strip()
    raw_length = headers.get("content-length", "0") or "0"
    try:
        length = int(raw_length)
    except ValueError:
        raise HTTPError(400, f"bad Content-Length {raw_length!r}")
    if length < 0:
        raise HTTPError(400, "negative Content-Length")
    if length > MAX_BODY_BYTES:
        raise HTTPError(413, "request body too large")
    body = await reader.readexactly(length) if length else b""
    return Request(
        method=method.upper(),
        path=unquote(raw_path),
        query=query,
        headers=headers,
        body=body,
        version=version.upper(),
    )


def render_response(
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/json",
    headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one HTTP/1.1 response with an explicit length."""
    phrase = _STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n"
    return head + body


def json_body(payload) -> bytes:
    """A compact JSON response body."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")
