"""Write-ahead log for the reasoning server's mutation stream.

Durability contract: an acknowledged write (``202``/``200`` from
``POST /add`` / ``POST /remove``) is appended — and, under the default
``always`` fsync policy, fsynced — to the WAL *before* the
acknowledgment leaves the server.  A kill -9 at any later point loses
nothing: on the next boot :meth:`WriteAheadLog.replay_into` re-applies
every record that was not yet covered by a checkpoint.

Checkpoints bound replay work: after a successful flush the server
saves the store (``Store.save`` is atomic, format v4) and calls
:meth:`WriteAheadLog.checkpoint` with the highest flushed sequence
number, which compacts the log down to the still-unflushed tail via
the same write-temp-then-``os.replace`` dance.

Replay is **at-least-once**: a record whose flush landed but whose
checkpoint did not is re-applied on boot.  That is safe because
mutations are idempotent set operations — adding a present triple or
removing an absent one is a no-op, so replaying a prefix of already
applied records converges to the same closure.

On-disk layout: an 11-byte magic followed by records of
``<QBI`` (sequence, kind, payload length) + N-Triples payload +
``<I`` CRC32 over header+payload.  A torn tail (partial record from a
crash mid-append) is detected by length/CRC, dropped with a warning,
and truncated away — records *behind* it were fsynced before any ack,
so only never-acknowledged bytes can tear.
"""

from __future__ import annotations

import os
import struct
import time
import warnings
import zlib
from typing import IO, List, Optional, Sequence, Tuple

from ..faults import fire as _fire_fault
from ..rdf.ntriples import parse as _parse_ntriples
from ..rdf.terms import Triple

__all__ = ["FSYNC_POLICIES", "WALCorruptionError", "WriteAheadLog"]

WAL_MAGIC = b"REPRO-WAL1\n"

#: ``always`` — fsync per append, before the ack (zero acknowledged
#: writes lost, even to power failure).  ``batch`` — flush to the OS
#: per append, fsync only at checkpoints (kill -9 loses nothing; a
#: power failure may lose the tail).  ``never`` — leave syncing to the
#: OS entirely.
FSYNC_POLICIES = ("always", "batch", "never")

_KINDS = ("add", "remove")
_HEADER = struct.Struct("<QBI")
_CRC = struct.Struct("<I")


class WALCorruptionError(ValueError):
    """The write-ahead log is damaged beyond a torn tail."""


class WriteAheadLog:
    """Append-only mutation log with checkpoint compaction.

    Not thread-safe by itself: the server serializes appends on a
    dedicated single-thread executor and checkpoints on the flush
    thread only after the corresponding appends completed.
    """

    def __init__(self, path: str, *, fsync_policy: str = "always"):
        if fsync_policy not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync_policy!r} "
                f"(expected one of {FSYNC_POLICIES})"
            )
        self.path = os.path.abspath(path)
        self.fsync_policy = fsync_policy
        self.appended_total = 0
        self.checkpoints_total = 0
        self.torn_records_dropped = 0
        self.last_checkpoint_at: Optional[float] = None
        #: Records appended (or recovered) and not yet checkpointed:
        #: ``(seq, kind, payload bytes)``.
        self._pending: List[Tuple[int, str, bytes]] = []
        self._next_seq = 1
        self._handle: Optional[IO[bytes]] = None
        self._recover()

    # ------------------------------------------------------------------
    # Boot-time recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Scan the existing log, keep the valid prefix, drop the tail."""
        if not os.path.exists(self.path):
            self._open_fresh()
            return
        with open(self.path, "rb") as handle:
            blob = handle.read()
        if not blob:
            self._open_fresh()
            return
        if not blob.startswith(WAL_MAGIC):
            raise WALCorruptionError(
                f"{self.path!r} is not a repro WAL (bad magic)"
            )
        offset = len(WAL_MAGIC)
        valid_end = offset
        while offset < len(blob):
            if offset + _HEADER.size > len(blob):
                break  # torn header
            seq, kind_code, length = _HEADER.unpack_from(blob, offset)
            end = offset + _HEADER.size + length + _CRC.size
            if kind_code >= len(_KINDS) or end > len(blob):
                break  # torn or garbage record
            payload = blob[offset + _HEADER.size : end - _CRC.size]
            (crc,) = _CRC.unpack_from(blob, end - _CRC.size)
            if crc != zlib.crc32(blob[offset : end - _CRC.size]):
                break  # torn mid-payload
            self._pending.append((seq, _KINDS[kind_code], payload))
            self._next_seq = seq + 1
            valid_end = end
            offset = end
        if valid_end < len(blob):
            self.torn_records_dropped += 1
            warnings.warn(
                f"repro WAL {self.path!r}: dropping "
                f"{len(blob) - valid_end} torn trailing bytes (crash "
                "mid-append; the torn record was never acknowledged)",
                RuntimeWarning,
            )
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_end)
                handle.flush()
                os.fsync(handle.fileno())
        self._handle = open(self.path, "ab")

    def _open_fresh(self) -> None:
        self._handle = open(self.path, "ab")
        if self._handle.tell() == 0:
            self._handle.write(WAL_MAGIC)
            self._handle.flush()
            os.fsync(self._handle.fileno())
            _fsync_parent_dir(self.path)

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Records appended (or recovered) and not yet checkpointed."""
        return len(self._pending)

    @property
    def last_seq(self) -> int:
        """The highest sequence number ever appended (0 when none)."""
        return self._next_seq - 1

    def append(self, kind: str, triples: Sequence[Triple]) -> int:
        """Durably append one mutation; returns its sequence number."""
        if self._handle is None:
            raise ValueError("write-ahead log is closed")
        _fire_fault("serving.wal", self.path)
        kind_code = _KINDS.index(kind)
        payload = "\n".join(t.n3() for t in triples).encode("utf-8")
        seq = self._next_seq
        record = _HEADER.pack(seq, kind_code, len(payload)) + payload
        record += _CRC.pack(zlib.crc32(record))
        self._handle.write(record)
        self._handle.flush()
        if self.fsync_policy == "always":
            os.fsync(self._handle.fileno())
        self._next_seq = seq + 1
        self._pending.append((seq, kind, payload))
        self.appended_total += 1
        return seq

    def sync(self) -> None:
        """Force appended records to disk (used by the batch policy)."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    # ------------------------------------------------------------------
    # Replay and checkpointing
    # ------------------------------------------------------------------
    def replay_into(self, store) -> int:
        """Apply every pending record to ``store``; returns the count.

        The records stay pending until the next :meth:`checkpoint`
        (at-least-once: a crash between replay and checkpoint just
        replays them again).
        """
        for _, kind, payload in self._pending:
            triples = list(_parse_ntriples(payload.decode("utf-8")))
            if kind == "add":
                store.add(triples)
            else:
                store.remove(triples)
        return len(self._pending)

    def checkpoint(self, upto_seq: int) -> None:
        """Drop records with ``seq <= upto_seq``; compact atomically.

        Called after the store state covering those records was durably
        saved.  The surviving tail is rewritten to a temp file that
        atomically replaces the log, so a crash mid-checkpoint leaves
        either the old log or the compacted one — both replayable.
        """
        if self._handle is None:
            raise ValueError("write-ahead log is closed")
        keep = [entry for entry in self._pending if entry[0] > upto_seq]
        self._handle.flush()
        self._handle.close()
        self._handle = None
        tmp_path = f"{self.path}.compact.tmp"
        try:
            with open(tmp_path, "wb") as handle:
                handle.write(WAL_MAGIC)
                for seq, kind, payload in keep:
                    record = _HEADER.pack(
                        seq, _KINDS.index(kind), len(payload)
                    )
                    record += payload
                    record += _CRC.pack(zlib.crc32(record))
                    handle.write(record)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            self._handle = open(self.path, "ab")
            raise
        _fsync_parent_dir(self.path)
        self._pending = keep
        self.checkpoints_total += 1
        self.last_checkpoint_at = time.monotonic()
        self._handle = open(self.path, "ab")

    def close(self) -> None:
        """Flush and close the log handle (the file keeps its records)."""
        if self._handle is not None:
            self._handle.flush()
            if self.fsync_policy != "never":
                os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None


def _fsync_parent_dir(path: str) -> None:
    directory = os.path.dirname(os.path.abspath(path)) or os.curdir
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)
