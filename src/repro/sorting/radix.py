"""MSD radix sort for key/value pairs, with the paper's adaptive variant.

The paper (§5.3) sorts property tables — pairs of 64-bit integers — with
a Most-Significant-Digit radix sort using 8-bit digits: blocks are
grouped on the current digit of the *subject* and recursively processed;
when subjects are exhausted (all key bytes equal) the sort recurses on
the *object* bytes.

**MSDA** ("A" for adaptive) exploits the dense numbering of
:mod:`repro.dictionary`: all values live in a window around ``2**32``,
so the leading bytes of every key are identical zeros.  Inferray
computes the number of leading zeros of the range of values and starts
the radix examination at the first significant digit, skipping the
useless leading passes (for a range of 10 M with an 8-bit radix, the
significant values start at the sixth byte out of eight).

Small blocks fall back to a comparison sort, the standard MSD hybrid.
"""

from __future__ import annotations

from array import array
from typing import List, Tuple, Union

from .counting import SortingError, _check_pairs

PairArray = array

#: Blocks at or below this size are finished with a comparison sort.
_SMALL_BLOCK = 32

_RADIX_BITS = 8
_RADIX_MASK = (1 << _RADIX_BITS) - 1


def significant_bytes(value: int) -> int:
    """Number of 8-bit digits needed to represent ``value`` (≥ 1).

    This is the paper's "number of leading zeros of the range divided by
    the size of the radix", expressed from the other end.
    """
    if value < 0:
        raise SortingError("radix sort requires non-negative values")
    if value == 0:
        return 1
    return (value.bit_length() + _RADIX_BITS - 1) // _RADIX_BITS


def _msd_sort(
    items: List[Tuple[int, int]],
    key_index: int,
    byte_pos: int,
    object_top_byte: int,
) -> List[Tuple[int, int]]:
    """Recursively sort ``items`` on byte ``byte_pos`` of ``items[i][key_index]``.

    When the subject bytes are exhausted the recursion switches to the
    object component (``key_index`` 0 → 1), starting at the object's own
    top significant byte.
    """
    if len(items) <= _SMALL_BLOCK:
        items.sort()
        return items
    if byte_pos < 0:
        if key_index == 1:
            return items  # both components fully examined: all equal
        return _msd_sort(items, 1, object_top_byte, object_top_byte)

    shift = byte_pos * _RADIX_BITS
    buckets: List[List[Tuple[int, int]]] = [[] for _ in range(1 << _RADIX_BITS)]
    if key_index == 0:
        for item in items:
            buckets[(item[0] >> shift) & _RADIX_MASK].append(item)
    else:
        for item in items:
            buckets[(item[1] >> shift) & _RADIX_MASK].append(item)

    out: List[Tuple[int, int]] = []
    next_byte = byte_pos - 1
    for bucket in buckets:
        if len(bucket) > 1:
            bucket = _msd_sort(bucket, key_index, next_byte, object_top_byte)
        out.extend(bucket)
    return out


def _dedup_sorted_items(
    items: List[Tuple[int, int]],
) -> List[Tuple[int, int]]:
    """Drop adjacent duplicates from an already-sorted item list."""
    if not items:
        return items
    out = [items[0]]
    previous = items[0]
    for item in items[1:]:
        if item != previous:
            out.append(item)
            previous = item
    return out


def _items_to_pairs(items: List[Tuple[int, int]]) -> PairArray:
    """Re-flatten (s, o) tuples into the flat pair layout."""
    flat = array("q", bytes(16 * len(items)))
    write = 0
    for subject, obj in items:
        flat[write] = subject
        flat[write + 1] = obj
        write += 2
    return flat


def msd_radix_sort_pairs(
    pairs: Union[PairArray, List[int]],
    *,
    dedup: bool = False,
    adaptive: bool = True,
) -> PairArray:
    """Sort a flat ⟨s, o⟩ pair array with MSD radix (MSDA when adaptive).

    Parameters
    ----------
    pairs:
        Flat sequence of 64-bit ints, subjects on even indices.
    dedup:
        Drop duplicate pairs from the output (linear post-scan).
    adaptive:
        Start at the first significant digit derived from the maximum
        value (the paper's MSDA).  With ``False`` the sort behaves like a
        standard 64-bit MSD radix starting at the top byte — kept for the
        ablation benchmark.
    """
    n_pairs = _check_pairs(pairs)
    if n_pairs == 0:
        return array("q")
    items = list(zip(pairs[0::2], pairs[1::2]))
    if n_pairs == 1:
        return _items_to_pairs(items)

    if adaptive:
        max_subject = max(item[0] for item in items)
        max_object = max(item[1] for item in items)
        subject_top = significant_bytes(max_subject) - 1
        object_top = significant_bytes(max_object) - 1
    else:
        subject_top = 7
        object_top = 7

    items = _msd_sort(items, 0, subject_top, object_top)
    if dedup:
        items = _dedup_sorted_items(items)
    return _items_to_pairs(items)


def msda_radix_sort_pairs(
    pairs: Union[PairArray, List[int]],
    *,
    dedup: bool = False,
) -> PairArray:
    """The paper's MSDA radix: :func:`msd_radix_sort_pairs` adaptive."""
    return msd_radix_sort_pairs(pairs, dedup=dedup, adaptive=True)


def lsd_radix_sort_pairs(
    pairs: Union[PairArray, List[int]],
    *,
    dedup: bool = False,
    adaptive: bool = True,
) -> PairArray:
    """Least-Significant-Digit radix sort over (object, subject) digits.

    Included for the paper's §5.3 discussion: "While LSD needs to
    examine all the data, MSD is, in fact, sublinear in most practical
    cases."  LSD performs one stable bucket pass per digit — object
    digits first, then subject digits, so the final order is
    (subject, object).  With ``adaptive`` the per-component digit counts
    shrink to the significant bytes, mirroring MSDA's leading-zero skip.
    """
    n_pairs = _check_pairs(pairs)
    if n_pairs == 0:
        return array("q")
    items = list(zip(pairs[0::2], pairs[1::2]))
    if n_pairs == 1:
        return _items_to_pairs(items)

    if adaptive:
        subject_bytes = significant_bytes(max(item[0] for item in items))
        object_bytes = significant_bytes(max(item[1] for item in items))
    else:
        subject_bytes = 8
        object_bytes = 8

    # Stable passes: least-significant component (the object) first.
    for byte_pos in range(object_bytes):
        shift = byte_pos * _RADIX_BITS
        buckets: List[List[Tuple[int, int]]] = [
            [] for _ in range(1 << _RADIX_BITS)
        ]
        for item in items:
            buckets[(item[1] >> shift) & _RADIX_MASK].append(item)
        items = [item for bucket in buckets for item in bucket]
    for byte_pos in range(subject_bytes):
        shift = byte_pos * _RADIX_BITS
        buckets = [[] for _ in range(1 << _RADIX_BITS)]
        for item in items:
            buckets[(item[0] >> shift) & _RADIX_MASK].append(item)
        items = [item for bucket in buckets for item in bucket]

    if dedup:
        items = _dedup_sorted_items(items)
    return _items_to_pairs(items)
