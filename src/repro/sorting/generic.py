"""Generic sorting baselines for the Table-1 comparison.

The paper compares its ad-hoc sorts against generic 128-bit sorting
algorithms (SIMD radix / merge from Satish et al., plus mergesort and
quicksort).  SIMD implementations are out of reach here, so the
comparison set is:

* ``mergesort_pairs`` / ``quicksort_pairs`` — textbook pure-Python
  implementations, the same substrate as the contribution sorts (this is
  the apples-to-apples comparison that preserves Table 1's shape);
* ``timsort_pairs`` (re-exported from dispatch) — CPython's C-compiled
  comparison sort, reported as a hardware-accelerated reference row,
  playing the role the paper gives the SIMD numbers quoted from [25];
* ``numpy_sort_pairs`` — NumPy's C quicksort/mergesort on packed 64-bit
  keys, a second accelerated reference (optional dependency).
"""

from __future__ import annotations

from array import array
from typing import List, Tuple, Union

from .counting import _check_pairs
from .dispatch import timsort_pairs  # noqa: F401  (re-export)

PairArray = array

_INSERTION_CUTOFF = 16


def _pairs_to_items(
    pairs: Union[PairArray, List[int]],
) -> List[Tuple[int, int]]:
    return list(zip(pairs[0::2], pairs[1::2]))


def _items_to_pairs(items: List[Tuple[int, int]]) -> PairArray:
    flat = array("q", bytes(16 * len(items)))
    write = 0
    for subject, obj in items:
        flat[write] = subject
        flat[write + 1] = obj
        write += 2
    return flat


def _merge(
    left: List[Tuple[int, int]], right: List[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    out: List[Tuple[int, int]] = []
    i = j = 0
    len_left = len(left)
    len_right = len(right)
    while i < len_left and j < len_right:
        if left[i] <= right[j]:
            out.append(left[i])
            i += 1
        else:
            out.append(right[j])
            j += 1
    if i < len_left:
        out.extend(left[i:])
    else:
        out.extend(right[j:])
    return out


def _mergesort(items: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    if len(items) <= _INSERTION_CUTOFF:
        return sorted(items)
    mid = len(items) // 2
    return _merge(_mergesort(items[:mid]), _mergesort(items[mid:]))


def mergesort_pairs(pairs: Union[PairArray, List[int]]) -> PairArray:
    """Textbook top-down mergesort over (s, o) tuples."""
    _check_pairs(pairs)
    return _items_to_pairs(_mergesort(_pairs_to_items(pairs)))


def _quicksort(items: List[Tuple[int, int]], low: int, high: int) -> None:
    """In-place median-of-three quicksort with small-range insertion."""
    while high - low > _INSERTION_CUTOFF:
        mid = (low + high) // 2
        a, b, c = items[low], items[mid], items[high - 1]
        if a > b:
            a, b = b, a
        if b > c:
            b, c = c, b
            if a > b:
                a, b = b, a
        pivot = b
        i = low
        j = high - 1
        while True:
            while items[i] < pivot:
                i += 1
            while items[j] > pivot:
                j -= 1
            if i >= j:
                break
            items[i], items[j] = items[j], items[i]
            i += 1
            j -= 1
        # Recurse on the smaller side, iterate on the larger.
        if j + 1 - low < high - (j + 1):
            _quicksort(items, low, j + 1)
            low = j + 1
        else:
            _quicksort(items, j + 1, high)
            high = j + 1
    if high - low > 1:
        items[low:high] = sorted(items[low:high])


def quicksort_pairs(pairs: Union[PairArray, List[int]]) -> PairArray:
    """Textbook in-place quicksort over (s, o) tuples."""
    _check_pairs(pairs)
    items = _pairs_to_items(pairs)
    _quicksort(items, 0, len(items))
    return _items_to_pairs(items)


def numpy_sort_pairs(
    pairs: Union[PairArray, List[int]],
    *,
    kind: str = "quicksort",
) -> PairArray:
    """NumPy C-speed sort on packed 64-bit keys (accelerated reference).

    Subjects and objects are offset by their minima so each fits in 32
    bits (guaranteed by the dense numbering for realistic tables), packed
    as ``(s' << 32) | o'`` and sorted with the requested NumPy kind.

    Raises
    ------
    ImportError
        If NumPy is unavailable.
    ValueError
        If the offset values do not fit in 32 bits.
    """
    import numpy as np

    n_pairs = _check_pairs(pairs)
    if n_pairs == 0:
        return array("q")
    flat = np.asarray(pairs, dtype=np.int64)
    subjects = flat[0::2]
    objects = flat[1::2]
    min_s = int(subjects.min())
    min_o = int(objects.min())
    s_rel = (subjects - min_s).astype(np.uint64)
    o_rel = (objects - min_o).astype(np.uint64)
    if int(s_rel.max()) >= (1 << 32) or int(o_rel.max()) >= (1 << 32):
        raise ValueError("pair values exceed the packable 32-bit window")
    packed = (s_rel << np.uint64(32)) | o_rel
    packed.sort(kind=kind)
    out = np.empty(2 * n_pairs, dtype=np.int64)
    out[0::2] = (packed >> np.uint64(32)).astype(np.int64) + min_s
    out[1::2] = (packed & np.uint64(0xFFFFFFFF)).astype(np.int64) + min_o
    return array("q", out.tolist())
