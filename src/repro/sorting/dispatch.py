"""Operating-range dispatch between counting sort and MSDA radix (§5.4).

The paper establishes (Table 1) that counting sort wins when the size of
the collection exceeds the range of its keys, while the adaptive MSD
radix wins on sparse data.  "As a rule of thumb, counting outperforms
MSD radix when the size of the collection is greater than its range."

:func:`sort_pairs` implements exactly that policy and is the single
entry point the store uses; the chosen algorithm is also returned for
observability (the ablation benchmark uses it).
"""

from __future__ import annotations

import math
from array import array
from typing import List, Tuple, Union

from .counting import SortingError, _check_pairs, counting_sort_pairs
from .radix import msd_radix_sort_pairs

PairArray = array

#: Collections at or below this size skip dispatch and use timsort —
#: both contenders degenerate to their comparison fallback anyway.
SMALL_COLLECTION = 64

#: Hard cap on the counting-sort histogram size, to bound memory even if
#: a caller hands us a pathological range/size combination.
MAX_COUNTING_RANGE = 1 << 26

#: Valid algorithm names accepted by :func:`sort_pairs`.
ALGORITHMS = ("auto", "counting", "radix", "timsort")


def subject_range(pairs: Union[PairArray, List[int]]) -> int:
    """Key range (max − min + 1) of the subjects of a flat pair array."""
    n_pairs = _check_pairs(pairs)
    if n_pairs == 0:
        return 0
    minimum = pairs[0]
    maximum = pairs[0]
    for i in range(0, 2 * n_pairs, 2):
        subject = pairs[i]
        if subject < minimum:
            minimum = subject
        elif subject > maximum:
            maximum = subject
    return maximum - minimum + 1


def entropy_bits(key_range: int) -> float:
    """The paper's entropy measure for a key range: log2(range)."""
    if key_range <= 0:
        return 0.0
    return math.log2(key_range)


def choose_algorithm(n_pairs: int, key_range: int) -> str:
    """Pick 'counting' or 'radix' from the Table-1 operating ranges."""
    if n_pairs <= SMALL_COLLECTION:
        return "timsort"
    if key_range <= MAX_COUNTING_RANGE and n_pairs >= key_range:
        return "counting"
    return "radix"


def timsort_pairs(
    pairs: Union[PairArray, List[int]],
    *,
    dedup: bool = False,
) -> PairArray:
    """Comparison-sort fallback on (s, o) tuples (CPython's timsort)."""
    n_pairs = _check_pairs(pairs)
    if n_pairs == 0:
        return array("q")
    items = sorted(zip(pairs[0::2], pairs[1::2]))
    flat = array("q")
    if dedup:
        previous: Union[Tuple[int, int], None] = None
        for item in items:
            if item != previous:
                flat.append(item[0])
                flat.append(item[1])
                previous = item
    else:
        for subject, obj in items:
            flat.append(subject)
            flat.append(obj)
    return flat


def sort_pairs(
    pairs: Union[PairArray, List[int]],
    *,
    dedup: bool = True,
    algorithm: str = "auto",
) -> Tuple[PairArray, str]:
    """Sort a flat pair array, dispatching on the operating ranges.

    Parameters
    ----------
    pairs:
        Flat ⟨s, o⟩ sequence (subjects on even indices).
    dedup:
        Remove duplicate pairs (the Figure-5 merge path needs this; the
        ⟨o, s⟩ cache computation does not).
    algorithm:
        'auto' applies the paper's policy; 'counting', 'radix' and
        'timsort' force a backend (used by the ablation benchmark).

    Returns
    -------
    (sorted_pairs, algorithm_used)
    """
    if algorithm not in ALGORITHMS:
        raise SortingError(
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
        )
    n_pairs = _check_pairs(pairs)
    if n_pairs == 0:
        return array("q"), "none"

    chosen = algorithm
    if chosen == "auto":
        chosen = choose_algorithm(n_pairs, subject_range(pairs))

    if chosen == "counting":
        return counting_sort_pairs(pairs, dedup=dedup), "counting"
    if chosen == "radix":
        return msd_radix_sort_pairs(pairs, dedup=dedup, adaptive=True), "radix"
    return timsort_pairs(pairs, dedup=dedup), "timsort"
