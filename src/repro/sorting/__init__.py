"""Pair-sorting subsystem: counting sort, MSDA radix, dispatch (paper §5)."""

from .counting import (
    SortingError,
    counting_sort_pairs,
    counting_sort_values,
)
from .dispatch import (
    ALGORITHMS,
    choose_algorithm,
    entropy_bits,
    sort_pairs,
    subject_range,
    timsort_pairs,
)
from .generic import mergesort_pairs, numpy_sort_pairs, quicksort_pairs
from .radix import (
    lsd_radix_sort_pairs,
    msd_radix_sort_pairs,
    msda_radix_sort_pairs,
    significant_bytes,
)

__all__ = [
    "ALGORITHMS",
    "SortingError",
    "choose_algorithm",
    "counting_sort_pairs",
    "counting_sort_values",
    "entropy_bits",
    "lsd_radix_sort_pairs",
    "mergesort_pairs",
    "msd_radix_sort_pairs",
    "msda_radix_sort_pairs",
    "numpy_sort_pairs",
    "quicksort_pairs",
    "significant_bytes",
    "sort_pairs",
    "subject_range",
    "timsort_pairs",
]
