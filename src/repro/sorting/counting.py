"""Counting sort for key/value pairs — paper Algorithm 2.

The input layout is exactly the paper's: a flat array of 64-bit integers
where even indices hold subjects (keys) and odd indices hold the objects
(values) of ⟨s, o⟩ pairs.  The algorithm:

1. builds a histogram of the subjects (and keeps a copy);
2. computes each subject's starting offset by a cumulative scan;
3. scatters the objects into per-subject *sub-arrays* of one flat
   ``objects`` array, using the histogram counters as cursors;
4. sorts each sub-array independently;
5. rebuilds the pair array by walking the histogram copy in key order,
   optionally skipping duplicate ⟨s, o⟩ pairs, and trims the result.

The only deviation from the paper's pseudo-code is step 4: the paper
reuses a scalar counting sort for the sub-arrays; here small sub-arrays
(the overwhelmingly common case in property tables) use insertion-style
``list.sort`` and larger ones use a scalar counting sort when their local
range is narrow enough to pay off — the asymptotics of Algorithm 2 are
unchanged.  See DESIGN.md §6.

Complexity: O(n + r) time and O(n + r) space, for n pairs with subject
range r.  This is the regime where the dense numbering of
:mod:`repro.dictionary` makes r ≈ number of distinct subjects.
"""

from __future__ import annotations

from array import array
from typing import List, Union

PairArray = array

#: Sub-arrays at or below this length are sorted with list.sort().
_SMALL_SUBARRAY = 32

#: A sub-array uses scalar counting sort when range <= factor * length.
_SUBARRAY_RANGE_FACTOR = 4


class SortingError(ValueError):
    """Raised on malformed pair arrays (odd length, empty width…)."""


def _check_pairs(pairs: Union[PairArray, List[int]]) -> int:
    """Validate the flat layout; returns the number of pairs."""
    length = len(pairs)
    if length % 2 != 0:
        raise SortingError(
            f"pair array must have even length, got {length}"
        )
    return length // 2


def _counting_sort_values(values: List[int]) -> List[int]:
    """Scalar counting sort used for object sub-arrays (paper line 12)."""
    low = min(values)
    high = max(values)
    width = high - low + 1
    histogram = [0] * width
    for value in values:
        histogram[value - low] += 1
    out: List[int] = []
    for offset, count in enumerate(histogram):
        if count:
            out.extend([low + offset] * count)
    return out


def _sort_subarray(objects: List[int], start: int, end: int) -> None:
    """Sort ``objects[start:end]`` in place (paper's sortFromTo)."""
    length = end - start
    if length <= 1:
        return
    chunk = objects[start:end]
    if length <= _SMALL_SUBARRAY:
        chunk.sort()
    else:
        low = min(chunk)
        high = max(chunk)
        if high - low + 1 <= _SUBARRAY_RANGE_FACTOR * length:
            chunk = _counting_sort_values(chunk)
        else:
            chunk.sort()
    objects[start:end] = chunk


def counting_sort_pairs(
    pairs: Union[PairArray, List[int]],
    *,
    dedup: bool = True,
) -> PairArray:
    """Sort a flat ⟨s, o⟩ pair array by (s, o); optionally drop duplicates.

    Parameters
    ----------
    pairs:
        Flat sequence of 64-bit ints, subjects on even indices.
    dedup:
        When True (the paper's merge-path usage), duplicate ⟨s, o⟩ pairs
        are removed and the output is trimmed (Algorithm 2 lines 20–27).

    Returns
    -------
    array('q')
        A new sorted (and possibly deduplicated) flat pair array.
    """
    n_pairs = _check_pairs(pairs)
    if n_pairs == 0:
        return array("q")
    if n_pairs == 1:
        return array("q", pairs)

    # Subject range (the "width" of the histogram).
    minimum = pairs[0]
    maximum = pairs[0]
    for i in range(0, 2 * n_pairs, 2):
        subject = pairs[i]
        if subject < minimum:
            minimum = subject
        elif subject > maximum:
            maximum = subject
    width = maximum - minimum + 1

    # Lines 1-2: histogram of subjects, and a copy for the rebuild pass.
    histogram = [0] * width
    for i in range(0, 2 * n_pairs, 2):
        histogram[pairs[i] - minimum] += 1
    histogram_copy = histogram[:]

    # Line 3: starting position of each subject's object sub-array.
    start = [0] * (width + 1)
    running = 0
    for index in range(width):
        start[index] = running
        running += histogram[index]
    start[width] = running

    # Lines 4-10: scatter objects into per-subject sub-arrays.  The
    # histogram entry of a subject acts as a down-counting cursor, so
    # objects fill their sub-array from the end.
    objects = [0] * n_pairs
    for i in range(0, 2 * n_pairs, 2):
        slot = pairs[i] - minimum
        position = start[slot]
        remaining = histogram[slot]
        histogram[slot] = remaining - 1
        objects[position + remaining - 1] = pairs[i + 1]

    # Lines 11-13: sort each sub-array.
    for index in range(width):
        _sort_subarray(objects, start[index], start[index + 1])

    # Lines 14-26: rebuild, skipping duplicates when requested.
    result = array("q", bytes(16 * n_pairs))
    write = 0
    read = 0
    previous_object = 0
    for index in range(width):
        count = histogram_copy[index]
        if not count:
            continue
        subject = minimum + index
        for k in range(count):
            obj = objects[read]
            read += 1
            if not dedup or k == 0 or obj != previous_object:
                result[write] = subject
                result[write + 1] = obj
                write += 2
            previous_object = obj

    # Line 27: trim to the deduplicated size.
    del result[write:]
    return result


def counting_sort_values(values: Union[List[int], PairArray]) -> List[int]:
    """Plain scalar counting sort (exposed for tests and benchmarks)."""
    if not len(values):
        return []
    return _counting_sort_values(list(values))
