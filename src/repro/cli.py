"""Command-line interface over the :class:`repro.Store` facade.

Usage (installed as a module; mirrors the original Inferray's
stand-alone reasoner, extended with the serving-grade store verbs):

    python -m repro infer data.nt --ruleset rdfs-plus -o closed.nt
    python -m repro stats data.nt --ruleset rdfs-default
    python -m repro rules --ruleset rho-df
    python -m repro save data.nt -o closure.store
    python -m repro load closure.store -o closed.nt
    python -m repro query closure.store "?s rdf:type ?t"
    python -m repro query data.nt "?x rdfs:subClassOf ?y"

``query`` and ``load`` accept either a serialized store file (from
``save`` — reloaded in O(read), no inference re-run) or a plain
N-Triples/Turtle file (materialized on the fly).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .core.engine import MATERIALIZE_MODES
from .core.parallel import PARALLEL_MODES, ProcessModeUnavailable
from .core.store_api import Store, StoreFormatError, is_store_file
from .kernels import BACKEND_NAMES, KernelUnavailableError
from .query.bgp import BGPSyntaxError, parse_bgp
from .rdf.ntriples import write_file
from .rules.rulesets import RULESET_NAMES, ruleset_rule_names
from .rules.table5 import BY_NAME


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="auto",
        help="kernel backend for the pair-array hot paths "
        "(default: numpy when available, else python)",
    )


def _add_workers_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="workers for the parallel rule scheduler "
        "(0 = all cores; default: $REPRO_WORKERS or 1)",
    )
    parser.add_argument(
        "--parallel-mode",
        choices=PARALLEL_MODES,
        default=None,
        help="executor for --workers > 1: 'process' runs shared-memory "
        "worker processes (scales the pure-Python backend past the "
        "GIL), 'thread' a thread pool; 'auto' lets the scheduler's "
        "cost model pick sequential/thread/process per flush from the "
        "estimated work (default: $REPRO_PARALLEL_MODE or auto)",
    )


def _add_ruleset_argument(
    parser: argparse.ArgumentParser, *, default: Optional[str] = "rdfs-default"
) -> None:
    parser.add_argument(
        "--ruleset",
        choices=RULESET_NAMES,
        default=default,
        help="rule fragment to materialize under (default: rdfs-default)",
    )


def _add_materialize_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--materialize",
        choices=MATERIALIZE_MODES,
        default=None,
        help="entailment mode: 'full' stores the whole closure, "
        "'hybrid' absorbs the hierarchy rules into the LiteMat-style "
        "interval encoding and answers them at query time "
        "(default: $REPRO_MATERIALIZE or full)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Inferray reproduction: forward-chaining RDF materialization"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    infer_cmd = commands.add_parser(
        "infer", help="materialize an N-Triples file"
    )
    infer_cmd.add_argument("input", help="input N-Triples file")
    infer_cmd.add_argument(
        "-o",
        "--output",
        help="write the closure as N-Triples (default: stdout)",
    )
    infer_cmd.add_argument(
        "--inferred-only",
        action="store_true",
        help="emit only the derived triples, not the input",
    )
    _add_ruleset_argument(infer_cmd)
    infer_cmd.add_argument(
        "--algorithm",
        choices=("auto", "counting", "radix", "timsort"),
        default="auto",
        help="scalar pair-sort algorithm (default: the paper's "
        "operating ranges; forcing one pins --backend auto to the "
        "python kernels and conflicts with --backend numpy)",
    )
    _add_materialize_argument(infer_cmd)
    _add_backend_argument(infer_cmd)
    _add_workers_argument(infer_cmd)
    infer_cmd.add_argument(
        "--timeout", type=float, default=None,
        help="abort after this many seconds",
    )

    stats_cmd = commands.add_parser(
        "stats", help="materialize and print statistics only"
    )
    stats_cmd.add_argument("input", help="input N-Triples file")
    _add_ruleset_argument(stats_cmd)
    _add_materialize_argument(stats_cmd)
    _add_backend_argument(stats_cmd)
    _add_workers_argument(stats_cmd)

    rules_cmd = commands.add_parser(
        "rules", help="list the rules of a fragment (paper Table 5)"
    )
    _add_ruleset_argument(rules_cmd)

    save_cmd = commands.add_parser(
        "save",
        help="materialize a dataset and serialize the closed store",
    )
    save_cmd.add_argument("input", help="input N-Triples/Turtle file")
    save_cmd.add_argument(
        "-o", "--output", required=True,
        help="serialized store file to write",
    )
    _add_ruleset_argument(save_cmd)
    _add_materialize_argument(save_cmd)
    _add_backend_argument(save_cmd)
    _add_workers_argument(save_cmd)

    load_cmd = commands.add_parser(
        "load",
        help="reload a serialized store (no inference) and inspect it",
    )
    load_cmd.add_argument("input", help="store file written by 'save'")
    load_cmd.add_argument(
        "-o", "--output",
        help="also dump the closure as N-Triples to this path",
    )
    load_cmd.add_argument(
        "--inferred-only",
        action="store_true",
        help="with -o: dump only the derived triples",
    )
    _add_materialize_argument(load_cmd)
    _add_backend_argument(load_cmd)

    query_cmd = commands.add_parser(
        "query",
        help="run a BGP query over a store file or a dataset",
    )
    query_cmd.add_argument(
        "input",
        help="serialized store (from 'save') or N-Triples/Turtle file",
    )
    query_cmd.add_argument(
        "pattern",
        nargs="+",
        help="BGP pattern(s), e.g. '?s rdf:type ?t' "
        "(several arguments are joined with ' . ')",
    )
    query_cmd.add_argument(
        "--limit", type=int, default=None,
        help="print at most this many solutions",
    )
    _add_ruleset_argument(query_cmd, default=None)
    _add_materialize_argument(query_cmd)
    _add_backend_argument(query_cmd)
    _add_workers_argument(query_cmd)

    serve_cmd = commands.add_parser(
        "serve",
        help="serve a dataset or store file over HTTP "
        "(query/add/remove/stats/health/metrics)",
    )
    serve_cmd.add_argument(
        "input",
        help="serialized store (from 'save') or N-Triples/Turtle file",
    )
    serve_cmd.add_argument(
        "--host", default="127.0.0.1", help="listen address"
    )
    serve_cmd.add_argument(
        "--port", type=int, default=8080,
        help="listen port (0 picks an ephemeral one)",
    )
    serve_cmd.add_argument(
        "--queue-depth", type=int, default=256, metavar="N",
        help="pending write batches before 429 back-pressure",
    )
    serve_cmd.add_argument(
        "--retained-epochs", type=int, default=8, metavar="N",
        help="snapshot epochs kept pinnable via ?epoch=N",
    )
    serve_cmd.add_argument(
        "--flush-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock bound per materialization flush "
        "(failed flushes keep the writes queued and retry)",
    )
    serve_cmd.add_argument(
        "--read-workers", type=int, default=4, metavar="N",
        help="threads answering BGP queries",
    )
    serve_cmd.add_argument(
        "--read-timeout", type=float, default=30.0, metavar="SECONDS",
        help="slowloris guard: a started request must finish arriving "
        "within this window or gets 408 (0 disables)",
    )
    serve_cmd.add_argument(
        "--wal", default=None, metavar="PATH",
        help="write-ahead log: append each accepted mutation here before "
        "acknowledging; replayed on boot so kill -9 loses nothing",
    )
    serve_cmd.add_argument(
        "--wal-fsync", default="always", choices=["always", "batch", "never"],
        help="WAL fsync policy: per append (always), at checkpoints "
        "(batch), or left to the OS (never)",
    )
    serve_cmd.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="where checkpoints save the store "
        "(default: <WAL path>.checkpoint); loaded instead of INPUT "
        "on boot when present",
    )
    serve_cmd.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="checkpoint (atomic save + WAL truncation) after every "
        "N-th successful flush",
    )
    _add_ruleset_argument(serve_cmd, default=None)
    _add_materialize_argument(serve_cmd)
    _add_backend_argument(serve_cmd)
    _add_workers_argument(serve_cmd)

    return parser


def _open_store(args: argparse.Namespace) -> Store:
    """A Store from either a serialized store or a raw dataset file."""
    ruleset = getattr(args, "ruleset", None)
    workers = getattr(args, "workers", None)
    parallel_mode = getattr(args, "parallel_mode", None)
    materialize = getattr(args, "materialize", None)
    if is_store_file(args.input):
        options = {
            "backend": args.backend,
            "workers": workers,
            "parallel_mode": parallel_mode,
        }
        if ruleset:
            options["ruleset"] = ruleset
        if materialize:
            options["materialize"] = materialize
        return Store.load(args.input, **options)
    return Store.from_file(
        args.input,
        ruleset=ruleset or "rdfs-default",
        backend=args.backend,
        workers=workers,
        parallel_mode=parallel_mode,
        materialize=materialize,
    )


def _run_infer(args: argparse.Namespace) -> int:
    if args.backend == "numpy" and args.algorithm != "auto":
        # The scalar-sort ablation is only observable on the
        # interpreted kernels; the numpy sort would silently ignore it.
        print(
            f"repro: --algorithm {args.algorithm} is a scalar-sort "
            "ablation and has no effect on the numpy backend; use "
            "--backend python (or auto)",
            file=sys.stderr,
        )
        return 2
    with Store(
        ruleset=args.ruleset,
        algorithm=args.algorithm,
        backend=args.backend,
        timeout_seconds=args.timeout,
        workers=args.workers,
        parallel_mode=args.parallel_mode,
        materialize=args.materialize,
    ) as store:
        loaded = store.add_file(args.input)
        store.materialize()
        triples = (
            store.inferred() if args.inferred_only else store.triples()
        )
        if args.output:
            count = write_file(triples, args.output)
            print(
                f"{args.input}: {loaded} asserted -> "
                f"{store.n_triples} total; "
                f"wrote {count} triples to {args.output}",
                file=sys.stderr,
            )
        else:
            for triple in triples:
                print(triple.n3())
    return 0


def _run_stats(args: argparse.Namespace) -> int:
    store = Store(
        ruleset=args.ruleset,
        backend=args.backend,
        workers=args.workers,
        parallel_mode=args.parallel_mode,
        materialize=args.materialize,
    )
    loaded = store.add_file(args.input)
    try:
        stats = store.materialize()
    finally:
        store.close()
    print(f"kernel backend:    {store.engine.kernels.name}")
    print(f"materialize mode:  {store.materialize_mode} "
          f"({len(store.absorbed_rules)} absorbed rule(s))")
    if store.hybrid_fallback:
        print(f"hybrid fallback:   {store.hybrid_fallback}")
    print(f"workers:           {stats.workers} "
          f"({stats.parallel_mode}, {stats.n_waves} scheduler wave(s))")
    if stats.parallel_decision is not None:
        print(f"executor pick:     {stats.parallel_decision['reason']}")
    if stats.parallel_fallback:
        print(f"executor fallback: {stats.parallel_fallback}")
    # In hybrid mode the entailed closure is larger than what is
    # stored: report the entailed counts (what queries answer), plus
    # the reduced resident closure.
    n_entailed = store.n_triples
    print(f"input triples:     {loaded}")
    print(f"inferred triples:  {n_entailed - stats.n_input}")
    print(f"total triples:     {n_entailed}")
    if stats.n_total != n_entailed:
        print(f"stored triples:    {stats.n_total} (reduced closure)")
    print(f"iterations:        {stats.iterations}")
    print(f"closure pairs:     {stats.closure_pairs}")
    print(f"wall time:         {stats.total_seconds * 1000:.1f} ms")
    print(f"  closure:         {stats.closure_seconds * 1000:.1f} ms")
    print(f"  rule firing:     {stats.inference_seconds * 1000:.1f} ms")
    print(f"  merge/dedup:     {stats.merge_seconds * 1000:.1f} ms")
    print(f"throughput:        {stats.triples_per_second:,.0f} inferred/s")
    if stats.workers > 1:
        print(
            f"rule-firing speedup: {stats.parallel_speedup:.2f}x "
            f"({stats.rule_busy_seconds * 1000:.1f} ms busy across "
            f"{stats.workers} {stats.parallel_mode} workers)"
        )
    if stats.rule_shards:
        shards = ", ".join(
            f"{name}x{count}"
            for name, count in sorted(stats.rule_shards.items())
        )
        print(f"intra-rule splits: {shards}")
    if stats.per_rule:
        print("per-rule emissions (raw, pre-dedup):")
        for name, count in sorted(
            stats.per_rule.items(), key=lambda item: -item[1]
        ):
            print(f"  {name:12s} {count}")
    return 0


def _run_rules(args: argparse.Namespace) -> int:
    names = ruleset_rule_names(args.ruleset)
    print(f"{args.ruleset}: {len(names)} rules")
    for name in names:
        entry = BY_NAME[name]
        print(f"  #{entry.number:<3d} {name:12s} class={entry.paper_class}")
    return 0


def _run_save(args: argparse.Namespace) -> int:
    store = Store(
        ruleset=args.ruleset,
        backend=args.backend,
        workers=args.workers,
        parallel_mode=args.parallel_mode,
        materialize=args.materialize,
    )
    loaded = store.add_file(args.input)
    try:
        stats = store.materialize()
        written = store.save(args.output)
    finally:
        store.close()
    print(
        f"{args.input}: {loaded} asserted -> {store.n_triples} total "
        f"({store.n_triples - stats.n_input} inferred); wrote "
        f"{written:,} bytes to {args.output}",
        file=sys.stderr,
    )
    return 0


def _run_load(args: argparse.Namespace) -> int:
    if not os.path.exists(args.input):
        print(f"repro: {args.input}: no such file", file=sys.stderr)
        return 2
    if not is_store_file(args.input):
        print(
            f"repro: {args.input} is not a serialized store "
            "(write one with 'repro save')",
            file=sys.stderr,
        )
        return 2
    load_options = {"backend": args.backend}
    if args.materialize:
        load_options["materialize"] = args.materialize
    store = Store.load(args.input, **load_options)
    if args.output:
        try:
            triples = (
                store.inferred() if args.inferred_only else store.triples()
            )
            count = write_file(triples, args.output)
        finally:
            store.close()
        print(
            f"{args.input}: wrote {count} triples to {args.output}",
            file=sys.stderr,
        )
        return 0
    try:
        n_asserted = len(store.asserted())
        n_triples = store.n_triples
        memory = store.memory_bytes()
    finally:
        store.close()
    print(f"store file:        {args.input}")
    print(f"ruleset:           {store.engine.ruleset_name}")
    print(f"materialize mode:  {store.materialize_mode} "
          f"({len(store.absorbed_rules)} absorbed rule(s))")
    print(f"kernel backend:    {store.engine.kernels.name}")
    print(f"total triples:     {n_triples}")
    print(f"asserted triples:  {n_asserted}")
    print(f"inferred triples:  {n_triples - n_asserted}")
    print(f"memory:            {memory:,} bytes")
    print(f"materialized:      {store.engine.is_materialized}")
    return 0


def _run_query(args: argparse.Namespace) -> int:
    try:
        patterns = parse_bgp(" . ".join(args.pattern))
    except BGPSyntaxError as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2
    store = _open_store(args)
    variables = []
    for pattern in patterns:
        for var in pattern.variables():
            if var not in variables:
                variables.append(var)
    try:
        solutions = store.query(patterns)
    finally:
        store.close()
    if args.limit is not None:
        solutions = solutions[: args.limit]
    if variables:
        print("\t".join(f"?{var.name}" for var in variables))
        for solution in solutions:
            print(
                "\t".join(solution[var.name].n3() for var in variables)
            )
    else:
        # Fully ground pattern: ASK semantics.
        print("true" if solutions else "false")
    print(f"{len(solutions)} solution(s)", file=sys.stderr)
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    from .serving import WriteAheadLog, run as run_server

    wal = None
    checkpoint_path = args.checkpoint
    if args.wal:
        checkpoint_path = checkpoint_path or f"{args.wal}.checkpoint"
        if os.path.exists(checkpoint_path) and is_store_file(
            checkpoint_path
        ):
            # The checkpoint already folds in every mutation the WAL
            # truncated away; booting from INPUT instead would silently
            # roll those acknowledged writes back.
            print(
                f"repro: booting from checkpoint {checkpoint_path} "
                f"(instead of {args.input})",
                file=sys.stderr,
            )
            args = argparse.Namespace(**vars(args))
            args.input = checkpoint_path
        wal = WriteAheadLog(args.wal, fsync_policy=args.wal_fsync)
        if wal.depth:
            print(
                f"repro: WAL {args.wal} holds {wal.depth} "
                "un-checkpointed mutation(s); replaying on boot",
                file=sys.stderr,
            )
    store = _open_store(args)
    if args.flush_timeout is not None:
        from dataclasses import replace

        store.config = replace(
            store.config, timeout_seconds=args.flush_timeout
        )
    store.materialize()
    print(
        f"repro: closure ready ({store.n_triples} triples, "
        f"ruleset={store.engine.ruleset_name}, "
        f"backend={store.engine.kernels.name})",
        file=sys.stderr,
    )

    def announce(host: str, port: int) -> None:
        print(f"repro: serving on http://{host}:{port}", file=sys.stderr)

    return run_server(
        store,
        host=args.host,
        port=args.port,
        announce=announce,
        queue_depth=args.queue_depth,
        retained_epochs=args.retained_epochs,
        read_workers=args.read_workers,
        read_timeout=args.read_timeout,
        wal=wal,
        checkpoint_path=checkpoint_path,
        checkpoint_every=args.checkpoint_every,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "infer": _run_infer,
        "stats": _run_stats,
        "rules": _run_rules,
        "save": _run_save,
        "load": _run_load,
        "query": _run_query,
        "serve": _run_serve,
    }
    try:
        return handlers[args.command](args)
    except (
        KernelUnavailableError,
        ProcessModeUnavailable,
        StoreFormatError,
    ) as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"repro: {error.filename or error}: no such file",
              file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: exit quietly, the
        # POSIX-CLI convention.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
