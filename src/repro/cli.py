"""Command-line interface: materialize N-Triples files from the shell.

Usage (installed as a module; mirrors the original Inferray's
stand-alone reasoner):

    python -m repro infer data.nt --ruleset rdfs-plus -o closed.nt
    python -m repro stats data.nt --ruleset rdfs-default
    python -m repro rules --ruleset rho-df
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .core.engine import InferrayEngine
from .kernels import BACKEND_NAMES, KernelUnavailableError
from .rdf.ntriples import write_file
from .rdf.turtle import parse_turtle_file
from .rules.rulesets import RULESET_NAMES, ruleset_rule_names
from .rules.table5 import BY_NAME


def _load_input(engine: InferrayEngine, path: str) -> int:
    """Load a file by extension: .ttl/.turtle → Turtle, else N-Triples."""
    if path.endswith((".ttl", ".turtle")):
        return engine.load_triples(parse_turtle_file(path))
    return engine.load_file(path)


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="auto",
        help="kernel backend for the pair-array hot paths "
        "(default: numpy when available, else python)",
    )


def _add_ruleset_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ruleset",
        choices=RULESET_NAMES,
        default="rdfs-default",
        help="rule fragment to materialize under (default: rdfs-default)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Inferray reproduction: forward-chaining RDF materialization"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    infer_cmd = commands.add_parser(
        "infer", help="materialize an N-Triples file"
    )
    infer_cmd.add_argument("input", help="input N-Triples file")
    infer_cmd.add_argument(
        "-o",
        "--output",
        help="write the closure as N-Triples (default: stdout)",
    )
    infer_cmd.add_argument(
        "--inferred-only",
        action="store_true",
        help="emit only the derived triples, not the input",
    )
    _add_ruleset_argument(infer_cmd)
    infer_cmd.add_argument(
        "--algorithm",
        choices=("auto", "counting", "radix", "timsort"),
        default="auto",
        help="scalar pair-sort algorithm (default: the paper's "
        "operating ranges; forcing one pins --backend auto to the "
        "python kernels and conflicts with --backend numpy)",
    )
    _add_backend_argument(infer_cmd)
    infer_cmd.add_argument(
        "--timeout", type=float, default=None,
        help="abort after this many seconds",
    )

    stats_cmd = commands.add_parser(
        "stats", help="materialize and print statistics only"
    )
    stats_cmd.add_argument("input", help="input N-Triples file")
    _add_ruleset_argument(stats_cmd)
    _add_backend_argument(stats_cmd)

    rules_cmd = commands.add_parser(
        "rules", help="list the rules of a fragment (paper Table 5)"
    )
    _add_ruleset_argument(rules_cmd)

    return parser


def _run_infer(args: argparse.Namespace) -> int:
    if args.backend == "numpy" and args.algorithm != "auto":
        # The scalar-sort ablation is only observable on the
        # interpreted kernels; the numpy sort would silently ignore it.
        print(
            f"repro: --algorithm {args.algorithm} is a scalar-sort "
            "ablation and has no effect on the numpy backend; use "
            "--backend python (or auto)",
            file=sys.stderr,
        )
        return 2
    engine = InferrayEngine(
        args.ruleset, algorithm=args.algorithm, backend=args.backend
    )
    loaded = _load_input(engine, args.input)
    asserted = set(engine.encoded_triples()) if args.inferred_only else None
    engine.materialize(timeout_seconds=args.timeout)
    if args.inferred_only:
        triples = (
            engine.dictionary.decode_triple(encoded)
            for encoded in engine.encoded_triples()
            if encoded not in asserted
        )
    else:
        triples = engine.triples()
    if args.output:
        count = write_file(triples, args.output)
        print(
            f"{args.input}: {loaded} asserted -> {engine.n_triples} total; "
            f"wrote {count} triples to {args.output}",
            file=sys.stderr,
        )
    else:
        for triple in triples:
            print(triple.n3())
    return 0


def _run_stats(args: argparse.Namespace) -> int:
    engine = InferrayEngine(args.ruleset, backend=args.backend)
    loaded = _load_input(engine, args.input)
    stats = engine.materialize()
    print(f"kernel backend:    {engine.kernels.name}")
    print(f"input triples:     {loaded}")
    print(f"inferred triples:  {stats.n_inferred}")
    print(f"total triples:     {stats.n_total}")
    print(f"iterations:        {stats.iterations}")
    print(f"closure pairs:     {stats.closure_pairs}")
    print(f"wall time:         {stats.total_seconds * 1000:.1f} ms")
    print(f"  closure:         {stats.closure_seconds * 1000:.1f} ms")
    print(f"  rule firing:     {stats.inference_seconds * 1000:.1f} ms")
    print(f"  merge/dedup:     {stats.merge_seconds * 1000:.1f} ms")
    print(f"throughput:        {stats.triples_per_second:,.0f} inferred/s")
    if stats.per_rule:
        print("per-rule emissions (raw, pre-dedup):")
        for name, count in sorted(
            stats.per_rule.items(), key=lambda item: -item[1]
        ):
            print(f"  {name:12s} {count}")
    return 0


def _run_rules(args: argparse.Namespace) -> int:
    names = ruleset_rule_names(args.ruleset)
    print(f"{args.ruleset}: {len(names)} rules")
    for name in names:
        entry = BY_NAME[name]
        print(f"  #{entry.number:<3d} {name:12s} class={entry.paper_class}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "infer":
            return _run_infer(args)
        if args.command == "stats":
            return _run_stats(args)
        return _run_rules(args)
    except KernelUnavailableError as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: exit quietly, the
        # POSIX-CLI convention.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
