"""Dictionary encoding substrate (paper §5.1 dense numbering)."""

from .encoding import (
    Dictionary,
    DictionaryError,
    EncodedTriple,
    PROPERTY_BASE,
    encode_dataset,
    scan_property_terms,
)

__all__ = [
    "Dictionary",
    "DictionaryError",
    "EncodedTriple",
    "PROPERTY_BASE",
    "encode_dataset",
    "scan_property_terms",
]
