"""Dictionary encoding with the paper's split dense numbering (§5.1).

Inference never mints new terms — only new *combinations* of existing
subjects, properties and objects.  Inferray exploits this by encoding all
terms once, at load time, into dense 64-bit ids:

* the numbering space ``[0, 2**64)`` is split at ``2**32``;
* **properties** are numbered *downward* from ``2**32``
  (first property → ``2**32``, second → ``2**32 - 1``, …);
* **non-property resources** are numbered *upward* from ``2**32 + 1``.

Both halves stay dense, which keeps the entropy of the values low — the
property that the counting / MSDA-radix sorts of :mod:`repro.sorting`
exploit.  A simple *index translation* (``2**32 - property_id``) maps a
property id onto the index of its property table in the store.

The paper assumes predicates are identifiable at load time.  Terms that
occupy property positions *indirectly* (subjects/objects of
``rdfs:subPropertyOf``, ``owl:equivalentProperty``, ``owl:inverseOf``,
subjects of ``rdfs:domain`` / ``rdfs:range``, and subjects typed as a
property class) are promoted to the property space by the two-pass
:func:`encode_dataset` helper, so that rules whose *output predicate* is a
variable (e.g. EQ-REP-P, PRP-SPO1) always find a property id.

The hybrid entailment mode (:mod:`repro.litemat`) layers a second,
derived numbering on top of this one: the interval encoder remaps the
dictionary ids that occur in ``rdfs:subClassOf`` /
``rdfs:subPropertyOf`` positions onto dense *closure ids* ordered by a
hierarchy traversal, so subsumption becomes an id-range test.  That
remap never feeds back into this dictionary — closure ids live only
inside :class:`repro.litemat.encoder.HierarchyEncoding` — but it relies
on the density guaranteed here to keep its id↔interval tables flat
arrays rather than hash maps.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..rdf.terms import Term, Triple
from ..rdf.vocabulary import (
    PROPERTY_MARKING_TYPES,
    PROPERTY_POSITION_PREDICATES,
    RDF,
)

#: The split point of the id space: property ids are ≤ PROPERTY_BASE,
#: resource ids are > PROPERTY_BASE.
PROPERTY_BASE = 1 << 32

#: Encoded triple: (subject_id, property_id, object_id).
EncodedTriple = Tuple[int, int, int]


class DictionaryError(ValueError):
    """Raised on inconsistent encodings (e.g. late property promotion)."""


class Dictionary:
    """Bidirectional term ↔ dense-id mapping with the split numbering.

    The same term may appear both as a predicate and as a subject/object
    (e.g. ``rdfs:subClassOf`` itself in schema-of-schema statements); it
    then keeps its single *property* id in every position.  What is not
    allowed — and raises :class:`DictionaryError` — is discovering that an
    already-encoded *resource* must become a property: callers avoid this
    by using :func:`encode_dataset`, which pre-registers property terms.
    """

    def __init__(self) -> None:
        self._ids: Dict[Term, int] = {}
        self._property_terms: List[Term] = []
        self._resource_terms: List[Term] = []

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode_property(self, term: Term) -> int:
        """Return the property id for ``term``, allocating downward."""
        existing = self._ids.get(term)
        if existing is not None:
            if existing > PROPERTY_BASE:
                raise DictionaryError(
                    f"{term!r} already encoded as a resource "
                    f"({existing}); property promotion requires re-encoding "
                    "— load datasets through encode_dataset()"
                )
            return existing
        new_id = PROPERTY_BASE - len(self._property_terms)
        self._property_terms.append(term)
        self._ids[term] = new_id
        return new_id

    def encode_resource(self, term: Term) -> int:
        """Return the id for ``term`` in subject/object position.

        A term already registered as a property keeps its property id.
        """
        existing = self._ids.get(term)
        if existing is not None:
            return existing
        new_id = PROPERTY_BASE + 1 + len(self._resource_terms)
        self._resource_terms.append(term)
        self._ids[term] = new_id
        return new_id

    def encode_triple(self, triple: Triple) -> EncodedTriple:
        """Encode one triple (predicate gets a property id)."""
        return (
            self.encode_resource(triple.subject),
            self.encode_property(triple.predicate),
            self.encode_resource(triple.object),
        )

    # ------------------------------------------------------------------
    # Decoding & lookups
    # ------------------------------------------------------------------
    def id_of(self, term: Term) -> Optional[int]:
        """The id of ``term`` if already encoded, else ``None``."""
        return self._ids.get(term)

    def decode(self, term_id: int) -> Term:
        """Return the term for an id.

        Raises
        ------
        KeyError
            If the id was never allocated.
        """
        if term_id <= PROPERTY_BASE:
            index = PROPERTY_BASE - term_id
            if 0 <= index < len(self._property_terms):
                return self._property_terms[index]
        else:
            index = term_id - PROPERTY_BASE - 1
            if 0 <= index < len(self._resource_terms):
                return self._resource_terms[index]
        raise KeyError(f"unknown term id {term_id}")

    def decode_triple(self, encoded: EncodedTriple) -> Triple:
        """Decode an (s, p, o) id triple back to RDF terms."""
        subject_id, property_id, object_id = encoded
        return Triple(
            self.decode(subject_id),
            self.decode(property_id),  # type: ignore[arg-type]
            self.decode(object_id),
        )

    # ------------------------------------------------------------------
    # Id-space structure
    # ------------------------------------------------------------------
    def is_property_id(self, term_id: int) -> bool:
        """True iff the id lies in the (allocated) property half."""
        return (
            PROPERTY_BASE - len(self._property_terms) < term_id <= PROPERTY_BASE
        )

    @staticmethod
    def property_index(property_id: int) -> int:
        """Index translation: property id → dense table index (paper §5.1)."""
        return PROPERTY_BASE - property_id

    @staticmethod
    def property_id_from_index(index: int) -> int:
        """Inverse index translation: table index → property id."""
        return PROPERTY_BASE - index

    @property
    def n_properties(self) -> int:
        """Number of allocated property ids."""
        return len(self._property_terms)

    @property
    def n_resources(self) -> int:
        """Number of allocated non-property resource ids."""
        return len(self._resource_terms)

    def __len__(self) -> int:
        return len(self._ids)

    def property_ids(self) -> List[int]:
        """All allocated property ids, most-recently allocated last."""
        return [
            PROPERTY_BASE - index
            for index in range(len(self._property_terms))
        ]

    # ------------------------------------------------------------------
    # Persistence (used by the Store save/load format)
    # ------------------------------------------------------------------
    def term_lists(self) -> Tuple[List[Term], List[Term]]:
        """(property terms, resource terms) in allocation order.

        Replaying the two lists through :meth:`from_term_lists`
        reproduces the exact id assignment, which is what the store
        serialization format relies on.
        """
        return list(self._property_terms), list(self._resource_terms)

    @classmethod
    def from_term_lists(
        cls,
        property_terms: Iterable[Term],
        resource_terms: Iterable[Term],
    ) -> "Dictionary":
        """Rebuild a dictionary from :meth:`term_lists` output."""
        dictionary = cls()
        for term in property_terms:
            dictionary.encode_property(term)
        for term in resource_terms:
            dictionary.encode_resource(term)
        return dictionary

    # ------------------------------------------------------------------
    # Density diagnostics (used by sorting heuristics and tests)
    # ------------------------------------------------------------------
    def resource_id_range(self) -> Tuple[int, int]:
        """(lowest, highest) allocated resource id; (0, 0) if none."""
        if not self._resource_terms:
            return (0, 0)
        return (PROPERTY_BASE + 1, PROPERTY_BASE + len(self._resource_terms))


def scan_property_terms(triples: Sequence[Triple]) -> List[Term]:
    """First pass of :func:`encode_dataset`: collect property-position terms.

    Returns terms in first-seen order: every predicate, plus subjects /
    objects of schema predicates that denote properties (see module doc).
    """
    seen: Dict[Term, None] = {}
    for triple in triples:
        if triple.predicate not in seen:
            seen[triple.predicate] = None
        positions = PROPERTY_POSITION_PREDICATES.get(triple.predicate)
        if positions:
            if "subject" in positions and triple.subject not in seen:
                seen[triple.subject] = None
            if "object" in positions and triple.object not in seen:
                seen[triple.object] = None
        elif (
            triple.predicate == RDF.type
            and triple.object in PROPERTY_MARKING_TYPES
            and triple.subject not in seen
        ):
            seen[triple.subject] = None
    return list(seen)


def encode_dataset(
    triples: Sequence[Triple],
    dictionary: Optional[Dictionary] = None,
) -> Tuple[Dictionary, List[EncodedTriple]]:
    """Two-pass dataset encoding preserving the dense split numbering.

    Pass 1 registers every property-position term as a property; pass 2
    encodes the triples.  Returns the (possibly supplied) dictionary and
    the encoded triple list.
    """
    if dictionary is None:
        dictionary = Dictionary()
    for term in scan_property_terms(triples):
        dictionary.encode_property(term)
    encoded = [dictionary.encode_triple(triple) for triple in triples]
    return dictionary, encoded
