"""A pragmatic Turtle subset parser (release convenience, not in paper).

The paper's datasets ship as N-Triples (:mod:`repro.rdf.ntriples` is
the benchmark loader), but downstream users overwhelmingly author
schemas in Turtle.  This module parses the subset that covers everyday
ontology files:

* ``@prefix`` / SPARQL-style ``PREFIX`` declarations,
* prefixed names (``rdfs:subClassOf``) and IRIs (``<…>``),
* the ``a`` keyword for ``rdf:type``,
* predicate lists (``;``) and object lists (``,``),
* blank node labels (``_:b0``),
* literals with language tags, datatypes, and the numeric/boolean
  shorthands (``42``, ``4.2``, ``true``).

Not supported (raise :class:`TurtleError`): ``@base``/relative IRIs,
anonymous blank nodes ``[...]``, collections ``(...)`` and multi-line
(triple-quoted) strings.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Tuple, Union

from .terms import BlankNode, IRI, Literal, Term, Triple, make_triple
from .vocabulary import RDF, XSD

class TurtleError(ValueError):
    """Raised on unsupported or malformed Turtle input."""


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>\#[^\n]*)
  | (?P<iri><[^<>"{}|^`\\\x00-\x20]*>)
  | (?P<string>"(?:[^"\\\n]|\\.)*")
  | (?P<prefix_decl>@prefix\b|PREFIX\b)
  | (?P<langtag>@[A-Za-z]+(?:-[A-Za-z0-9]+)*)
  | (?P<dtype>\^\^)
  | (?P<bnode>_:[A-Za-z0-9_.-]+)
  | (?P<pname>[A-Za-z_][\w.-]*)?:(?P<plocal>[\w.-]*)
  | (?P<number>[+-]?(?:\d+\.\d+|\d+))
  | (?P<keyword>\b(?:a|true|false)\b)
  | (?P<punct>[;,.])
  | (?P<ws>\s+)
  | (?P<bad>.)
    """,
    re.VERBOSE,
)

Token = Tuple[str, str, int]  # (kind, text, line)


def _tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    line = 1
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup
        value = match.group()
        if kind in ("ws", "comment"):
            line += value.count("\n")
            continue
        if kind == "bad":
            raise TurtleError(f"line {line}: unexpected character {value!r}")
        if kind == "plocal":
            # pname group matched (possibly empty prefix part).
            kind = "qname"
            value = match.group(0)
        tokens.append((kind, value, line))
        line += value.count("\n")
    return tokens


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0
        self.prefixes: Dict[str, str] = {}

    def _error(self, message: str) -> TurtleError:
        if self.pos < len(self.tokens):
            kind, value, line = self.tokens[self.pos]
            return TurtleError(f"line {line}: {message} (at {value!r})")
        return TurtleError(f"{message} (at end of input)")

    def _peek(self) -> Union[Token, None]:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise self._error("unexpected end of input")
        self.pos += 1
        return token

    def _expect(self, kind: str, value: Union[str, None] = None) -> Token:
        token = self._next()
        if token[0] != kind or (value is not None and token[1] != value):
            raise self._error(f"expected {value or kind}")
        return token

    # ------------------------------------------------------------------
    def _resolve_qname(self, qname: str) -> IRI:
        prefix, _, local = qname.partition(":")
        namespace = self.prefixes.get(prefix)
        if namespace is None:
            raise self._error(f"undeclared prefix {prefix!r}:")
        return IRI(namespace + local)

    def _parse_prefix_declaration(self, sparql_style: bool) -> None:
        name_token = self._next()
        if name_token[0] != "qname" or not name_token[1].endswith(":"):
            raise self._error("expected 'prefix:' in @prefix declaration")
        prefix = name_token[1][:-1]
        iri_token = self._expect("iri")
        self.prefixes[prefix] = iri_token[1][1:-1]
        if not sparql_style:
            self._expect("punct", ".")

    def _parse_term(self, *, as_object: bool) -> Term:
        kind, value, _ = self._next()
        if kind == "iri":
            return IRI(value[1:-1])
        if kind == "qname":
            return self._resolve_qname(value)
        if kind == "bnode":
            return BlankNode(value[2:])
        if kind == "keyword" and value == "a":
            return RDF.type
        if not as_object:
            raise self._error("expected IRI, prefixed name or blank node")
        if kind == "string":
            lexical = _unescape_string(value[1:-1])
            peeked = self._peek()
            if peeked is not None and peeked[0] == "langtag":
                self._next()
                return Literal(lexical, language=peeked[1][1:])
            if peeked is not None and peeked[0] == "dtype":
                self._next()
                datatype = self._parse_term(as_object=False)
                if not isinstance(datatype, IRI):
                    raise self._error("datatype must be an IRI")
                return Literal(lexical, datatype=datatype.value)
            return Literal(lexical)
        if kind == "number":
            datatype = XSD.decimal if "." in value else XSD.integer
            return Literal(value, datatype=datatype.value)
        if kind == "keyword" and value in ("true", "false"):
            return Literal(value, datatype=XSD.boolean.value)
        raise self._error("expected a term")

    def parse(self) -> Iterator[Triple]:
        while self._peek() is not None:
            kind, value, _ = self._peek()
            if kind == "prefix_decl":
                self._next()
                self._parse_prefix_declaration(
                    sparql_style=(value == "PREFIX")
                )
                continue
            subject = self._parse_term(as_object=False)
            while True:  # predicate lists (';')
                predicate = self._parse_term(as_object=False)
                if not isinstance(predicate, IRI):
                    raise self._error("predicate must be an IRI")
                while True:  # object lists (',')
                    obj = self._parse_term(as_object=True)
                    yield make_triple(subject, predicate, obj)
                    token = self._expect("punct")
                    if token[1] == ",":
                        continue
                    break
                if token[1] == ";":
                    peeked = self._peek()
                    if peeked is not None and peeked[0] == "punct" and (
                        peeked[1] == "."
                    ):
                        token = self._next()  # trailing ';' before '.'
                        break
                    continue
                break
            if token[1] != ".":
                raise self._error("expected '.' at end of statement")


_STRING_ESCAPES = {
    "t": "\t", "b": "\b", "n": "\n", "r": "\r", "f": "\f",
    '"': '"', "'": "'", "\\": "\\",
}


def _unescape_string(raw: str) -> str:
    if "\\" not in raw:
        return raw
    out = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        esc = raw[i + 1]
        if esc in _STRING_ESCAPES:
            out.append(_STRING_ESCAPES[esc])
            i += 2
        elif esc == "u":
            out.append(chr(int(raw[i + 2: i + 6], 16)))
            i += 6
        elif esc == "U":
            out.append(chr(int(raw[i + 2: i + 10], 16)))
            i += 10
        else:
            raise TurtleError(f"bad string escape \\{esc}")
    return "".join(out)


def parse_turtle(text: str) -> Iterator[Triple]:
    """Parse a Turtle document (subset — see module docstring)."""
    yield from _Parser(_tokenize(text)).parse()


def parse_turtle_file(path: str) -> Iterator[Triple]:
    """Parse a Turtle file from disk (UTF-8)."""
    with open(path, "r", encoding="utf-8") as handle:
        yield from parse_turtle(handle.read())
