"""Streaming N-Triples parser and serializer (RDF 1.1 N-Triples).

The parser is line-oriented and allocation-light: one :class:`Triple` per
statement line, comments and blank lines skipped.  It covers the full
N-Triples grammar used by the benchmark datasets: IRIREF, blank node
labels, literals with escapes, language tags and datatype IRIs.

It deliberately does *not* attempt Turtle prefixes — the paper's datasets
are distributed as N-Triples, and keeping the grammar small keeps the
loader fast, which matters because loading time is part of the measured
pipeline for some systems.
"""

from __future__ import annotations

import io
from typing import Iterable, Iterator, TextIO, Union

from .terms import BlankNode, IRI, Literal, Triple, make_triple


class NTriplesError(ValueError):
    """Raised on malformed N-Triples input, with line diagnostics."""

    def __init__(self, message: str, line_no: int, line: str):
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")
        self.line_no = line_no
        self.line = line


def _is_ascii_alpha(ch: str) -> bool:
    return "a" <= ch <= "z" or "A" <= ch <= "Z"


def _is_ascii_alnum(ch: str) -> bool:
    return _is_ascii_alpha(ch) or "0" <= ch <= "9"


_ESCAPES = {
    "t": "\t",
    "b": "\b",
    "n": "\n",
    "r": "\r",
    "f": "\f",
    '"': '"',
    "'": "'",
    "\\": "\\",
}


def _unescape(raw: str, line_no: int, line: str) -> str:
    """Resolve ``\\n``-style and ``\\uXXXX``/``\\UXXXXXXXX`` escapes."""
    if "\\" not in raw:
        return raw
    out = []
    i = 0
    n = len(raw)
    while i < n:
        ch = raw[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= n:
            raise NTriplesError("dangling escape", line_no, line)
        esc = raw[i + 1]
        if esc in _ESCAPES:
            out.append(_ESCAPES[esc])
            i += 2
        elif esc in ("u", "U"):
            width = 4 if esc == "u" else 8
            digits = raw[i + 2 : i + 2 + width]
            # UCHAR requires *exactly* 4 (\u) or 8 (\U) hex digits; a
            # truncated escape must not silently decode from whatever
            # characters follow, and bad hex must carry line context.
            if len(digits) < width:
                raise NTriplesError(
                    f"truncated \\{esc} escape (needs {width} hex digits)",
                    line_no,
                    line,
                )
            if not all(d in "0123456789abcdefABCDEF" for d in digits):
                # int(x, 16) is laxer than HEX (signs, underscores).
                raise NTriplesError(
                    f"invalid hex digits in \\{esc} escape: {digits!r}",
                    line_no,
                    line,
                )
            codepoint = int(digits, 16)
            try:
                out.append(chr(codepoint))
            except (ValueError, OverflowError):
                # chr() raises OverflowError past the C-int range and
                # ValueError past U+10FFFF — both are the same grammar
                # violation here.
                raise NTriplesError(
                    f"\\{esc} escape out of Unicode range: {digits!r}",
                    line_no,
                    line,
                ) from None
            i += 2 + width
        else:
            raise NTriplesError(f"bad escape \\{esc}", line_no, line)
    return "".join(out)


class _LineParser:
    """Cursor-based parser over a single statement line."""

    def __init__(self, line: str, line_no: int):
        self.line = line
        self.line_no = line_no
        self.pos = 0

    def error(self, message: str) -> NTriplesError:
        return NTriplesError(message, self.line_no, self.line)

    def skip_ws(self) -> None:
        line = self.line
        pos = self.pos
        while pos < len(line) and line[pos] in " \t":
            pos += 1
        self.pos = pos

    def parse_term(self, *, as_object: bool):
        """Parse the next term; literals only allowed when ``as_object``."""
        self.skip_ws()
        if self.pos >= len(self.line):
            raise self.error("unexpected end of statement")
        ch = self.line[self.pos]
        if ch == "<":
            return self._parse_iri()
        if ch == "_":
            return self._parse_bnode()
        if ch == '"':
            if not as_object:
                raise self.error("literal in subject/predicate position")
            return self._parse_literal()
        raise self.error(f"unexpected character {ch!r}")

    def _parse_iri(self) -> IRI:
        end = self.line.find(">", self.pos + 1)
        if end == -1:
            raise self.error("unterminated IRI")
        raw = self.line[self.pos + 1 : end]
        self.pos = end + 1
        return IRI(_unescape(raw, self.line_no, self.line))

    def _parse_bnode(self) -> BlankNode:
        if not self.line.startswith("_:", self.pos):
            raise self.error("expected blank node label")
        start = self.pos + 2
        end = start
        line = self.line
        # Stop at line terminators too: stream lines keep their '\n',
        # and a label running into it would hide a trailing '.' from
        # the give-back below.
        while end < len(line) and line[end] not in " \t\r\n":
            end += 1
        # BLANK_NODE_LABEL permits '.' only *inside* a label, never at
        # its end — `_:b1.` is the label `b1` followed by the statement
        # terminator, so give trailing dots back to the cursor.
        while end > start and line[end - 1] == ".":
            end -= 1
        if end == start:
            raise self.error("empty blank node label")
        self.pos = end
        return BlankNode(line[start:end])

    def _parse_literal(self) -> Literal:
        # Find the closing quote, honouring backslash escapes.
        line = self.line
        i = self.pos + 1
        while True:
            end = line.find('"', i)
            if end == -1:
                raise self.error("unterminated literal")
            backslashes = 0
            j = end - 1
            while j >= 0 and line[j] == "\\":
                backslashes += 1
                j -= 1
            if backslashes % 2 == 0:
                break
            i = end + 1
        lexical = _unescape(
            line[self.pos + 1 : end], self.line_no, self.line
        )
        self.pos = end + 1
        if self.pos < len(line) and line[self.pos] == "@":
            # LANGTAG ::= '@' [a-zA-Z]+ ('-' [a-zA-Z0-9]+)* — ASCII
            # only (str.isalnum() would admit '@été'), and the primary
            # subtag is alphabetic (no digit-leading tags like '@1fr').
            start = self.pos + 1
            end = start
            while end < len(line) and _is_ascii_alpha(line[end]):
                end += 1
            if end == start:
                raise self.error("empty or non-alphabetic language tag")
            while end < len(line) and line[end] == "-":
                sub_start = end + 1
                sub_end = sub_start
                while sub_end < len(line) and _is_ascii_alnum(line[sub_end]):
                    sub_end += 1
                if sub_end == sub_start:
                    raise self.error("empty language subtag")
                end = sub_end
            self.pos = end
            return Literal(lexical, language=line[start:end])
        if line.startswith("^^", self.pos):
            self.pos += 2
            if self.pos >= len(line) or line[self.pos] != "<":
                raise self.error("datatype must be an IRI")
            datatype = self._parse_iri()
            return Literal(lexical, datatype=datatype.value)
        return Literal(lexical)

    def expect_dot(self) -> None:
        self.skip_ws()
        if self.pos >= len(self.line) or self.line[self.pos] != ".":
            raise self.error("expected '.' terminator")
        self.pos += 1
        self.skip_ws()
        if self.pos < len(self.line) and not self.line[
            self.pos :
        ].lstrip().startswith("#"):
            if self.line[self.pos :].strip():
                raise self.error("trailing content after '.'")


def parse_line(line: str, line_no: int = 1) -> Union[Triple, None]:
    """Parse one N-Triples line; returns ``None`` for blanks/comments."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    parser = _LineParser(line, line_no)
    subject = parser.parse_term(as_object=False)
    predicate = parser.parse_term(as_object=False)
    if not isinstance(predicate, IRI):
        raise parser.error("predicate must be an IRI")
    obj = parser.parse_term(as_object=True)
    parser.expect_dot()
    return make_triple(subject, predicate, obj)


def parse(source: Union[str, TextIO]) -> Iterator[Triple]:
    """Parse N-Triples from a string or text stream, yielding triples.

    >>> list(parse('<http://a> <http://p> "x" .'))
    [Triple(subject=IRI(value='http://a'), ...)]
    """
    stream: TextIO
    if isinstance(source, str):
        stream = io.StringIO(source)
    else:
        stream = source
    for line_no, line in enumerate(stream, start=1):
        triple = parse_line(line, line_no)
        if triple is not None:
            yield triple


def parse_file(path: str) -> Iterator[Triple]:
    """Parse an N-Triples file from disk (UTF-8), streaming."""
    with open(path, "r", encoding="utf-8") as handle:
        yield from parse(handle)


def serialize(triples: Iterable[Triple]) -> str:
    """Serialize triples to an N-Triples document string."""
    return "".join(t.n3() + "\n" for t in triples)


def write_file(triples: Iterable[Triple], path: str) -> int:
    """Write triples to an N-Triples file; returns the statement count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for triple in triples:
            handle.write(triple.n3())
            handle.write("\n")
            count += 1
    return count
