"""W3C vocabularies used by the rule sets: RDF, RDFS, OWL, XSD.

Every constant is an :class:`repro.rdf.terms.IRI`.  The names mirror the
local names of the specs (``RDFS.subClassOf`` etc.) so rule definitions in
:mod:`repro.rules.table5` read like the paper's Table 5.
"""

from __future__ import annotations

from .terms import IRI

_RDF_NS = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
_RDFS_NS = "http://www.w3.org/2000/01/rdf-schema#"
_OWL_NS = "http://www.w3.org/2002/07/owl#"
_XSD_NS = "http://www.w3.org/2001/XMLSchema#"


class _Namespace:
    """A vocabulary namespace; attribute access mints IRIs lazily.

    ``ns.term`` and ``ns["term"]`` both return ``IRI(prefix + "term")``.
    Known terms are also set eagerly as class attributes in the concrete
    namespaces below so they are discoverable and typo-safe.
    """

    def __init__(self, prefix: str):
        self._prefix = prefix

    @property
    def prefix(self) -> str:
        """The namespace IRI prefix string."""
        return self._prefix

    def term(self, local: str) -> IRI:
        """Mint the IRI for a local name under this namespace."""
        return IRI(self._prefix + local)

    def __getitem__(self, local: str) -> IRI:
        return self.term(local)


class _RDF(_Namespace):
    type: IRI
    Property: IRI
    langString: IRI
    first: IRI
    rest: IRI
    nil: IRI

    def __init__(self) -> None:
        super().__init__(_RDF_NS)
        self.type = self.term("type")
        self.Property = self.term("Property")
        self.langString = self.term("langString")
        self.first = self.term("first")
        self.rest = self.term("rest")
        self.nil = self.term("nil")


class _RDFS(_Namespace):
    subClassOf: IRI
    subPropertyOf: IRI
    domain: IRI
    range: IRI
    member: IRI
    label: IRI
    comment: IRI
    seeAlso: IRI
    isDefinedBy: IRI
    Resource: IRI
    Class: IRI
    Literal: IRI
    Datatype: IRI
    ContainerMembershipProperty: IRI

    def __init__(self) -> None:
        super().__init__(_RDFS_NS)
        self.subClassOf = self.term("subClassOf")
        self.subPropertyOf = self.term("subPropertyOf")
        self.domain = self.term("domain")
        self.range = self.term("range")
        self.member = self.term("member")
        self.label = self.term("label")
        self.comment = self.term("comment")
        self.seeAlso = self.term("seeAlso")
        self.isDefinedBy = self.term("isDefinedBy")
        self.Resource = self.term("Resource")
        self.Class = self.term("Class")
        self.Literal = self.term("Literal")
        self.Datatype = self.term("Datatype")
        self.ContainerMembershipProperty = self.term(
            "ContainerMembershipProperty"
        )


class _OWL(_Namespace):
    sameAs: IRI
    equivalentClass: IRI
    equivalentProperty: IRI
    inverseOf: IRI
    TransitiveProperty: IRI
    SymmetricProperty: IRI
    FunctionalProperty: IRI
    InverseFunctionalProperty: IRI
    Class: IRI
    DatatypeProperty: IRI
    ObjectProperty: IRI
    Thing: IRI
    Nothing: IRI

    def __init__(self) -> None:
        super().__init__(_OWL_NS)
        self.sameAs = self.term("sameAs")
        self.equivalentClass = self.term("equivalentClass")
        self.equivalentProperty = self.term("equivalentProperty")
        self.inverseOf = self.term("inverseOf")
        self.TransitiveProperty = self.term("TransitiveProperty")
        self.SymmetricProperty = self.term("SymmetricProperty")
        self.FunctionalProperty = self.term("FunctionalProperty")
        self.InverseFunctionalProperty = self.term("InverseFunctionalProperty")
        self.Class = self.term("Class")
        self.DatatypeProperty = self.term("DatatypeProperty")
        self.ObjectProperty = self.term("ObjectProperty")
        self.Thing = self.term("Thing")
        self.Nothing = self.term("Nothing")


class _XSD(_Namespace):
    string: IRI
    integer: IRI
    decimal: IRI
    double: IRI
    boolean: IRI
    dateTime: IRI

    def __init__(self) -> None:
        super().__init__(_XSD_NS)
        self.string = self.term("string")
        self.integer = self.term("integer")
        self.decimal = self.term("decimal")
        self.double = self.term("double")
        self.boolean = self.term("boolean")
        self.dateTime = self.term("dateTime")


RDF = _RDF()
RDFS = _RDFS()
OWL = _OWL()
XSD = _XSD()

#: Schema properties whose subjects/objects denote *properties*.  The
#: dictionary promotes these terms to the dense property id space at load
#: time (see DESIGN.md §6 "Property promotion").
PROPERTY_POSITION_PREDICATES = {
    RDFS.subPropertyOf: ("subject", "object"),
    OWL.equivalentProperty: ("subject", "object"),
    OWL.inverseOf: ("subject", "object"),
    RDFS.domain: ("subject",),
    RDFS.range: ("subject",),
}

#: Objects of rdf:type that mark the *subject* as a property.
PROPERTY_MARKING_TYPES = {
    RDF.Property,
    OWL.TransitiveProperty,
    OWL.SymmetricProperty,
    OWL.FunctionalProperty,
    OWL.InverseFunctionalProperty,
    OWL.DatatypeProperty,
    OWL.ObjectProperty,
    RDFS.ContainerMembershipProperty,
}
