"""A small in-memory graph of *decoded* triples.

This is a convenience container for examples, tests and golden oracles —
the engines themselves work on dictionary-encoded integer stores
(:mod:`repro.store`).  It offers set semantics and simple pattern
matching, mirroring what a user of a triple store's API would expect.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Set

from .terms import IRI, Term, Triple


class Graph:
    """A set of triples with ⟨s, p, o⟩ pattern matching.

    Maintains three hash indexes (by subject, predicate, object) so that
    single-position lookups are O(matches).  This is intentionally the
    "obvious" Python structure — the point of the paper is that the
    engines should *not* run on something like this.
    """

    def __init__(self, triples: Optional[Iterable[Triple]] = None):
        self._triples: Set[Triple] = set()
        self._by_subject: dict = {}
        self._by_predicate: dict = {}
        self._by_object: dict = {}
        if triples is not None:
            for triple in triples:
                self.add(triple)

    def add(self, triple: Triple) -> bool:
        """Add a triple; returns True if it was not already present."""
        if triple in self._triples:
            return False
        self._triples.add(triple)
        self._by_subject.setdefault(triple.subject, set()).add(triple)
        self._by_predicate.setdefault(triple.predicate, set()).add(triple)
        self._by_object.setdefault(triple.object, set()).add(triple)
        return True

    def update(self, triples: Iterable[Triple]) -> int:
        """Add many triples; returns how many were new."""
        added = 0
        for triple in triples:
            if self.add(triple):
                added += 1
        return added

    def discard(self, triple: Triple) -> bool:
        """Remove a triple if present; returns True if it was removed."""
        if triple not in self._triples:
            return False
        self._triples.discard(triple)
        self._by_subject[triple.subject].discard(triple)
        self._by_predicate[triple.predicate].discard(triple)
        self._by_object[triple.object].discard(triple)
        return True

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Graph):
            return self._triples == other._triples
        if isinstance(other, (set, frozenset)):
            return self._triples == other
        return NotImplemented

    def __hash__(self):  # pragma: no cover - graphs are mutable
        raise TypeError("Graph is unhashable")

    def triples(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[IRI] = None,
        obj: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Yield triples matching a pattern; ``None`` is a wildcard.

        The most selective bound position drives the scan.
        """
        candidates = None
        if subject is not None:
            candidates = self._by_subject.get(subject, set())
        if predicate is not None:
            bucket = self._by_predicate.get(predicate, set())
            candidates = bucket if candidates is None else candidates & bucket
        if obj is not None:
            bucket = self._by_object.get(obj, set())
            candidates = bucket if candidates is None else candidates & bucket
        if candidates is None:
            candidates = self._triples
        yield from candidates

    def subjects(self, predicate: IRI, obj: Term) -> Iterator[Term]:
        """Yield subjects s such that ⟨s, predicate, obj⟩ holds."""
        for triple in self.triples(predicate=predicate, obj=obj):
            yield triple.subject

    def objects(self, subject: Term, predicate: IRI) -> Iterator[Term]:
        """Yield objects o such that ⟨subject, predicate, o⟩ holds."""
        for triple in self.triples(subject=subject, predicate=predicate):
            yield triple.object

    def copy(self) -> "Graph":
        """Shallow copy (terms are immutable, so this is safe)."""
        return Graph(self._triples)

    def as_set(self) -> Set[Triple]:
        """A snapshot set of the triples."""
        return set(self._triples)
