"""RDF substrate: terms, vocabularies, N-Triples I/O and a simple graph."""

from .graph import Graph
from .ntriples import (
    NTriplesError,
    parse,
    parse_file,
    parse_line,
    serialize,
    write_file,
)
from .turtle import TurtleError, parse_turtle, parse_turtle_file
from .terms import (
    BlankNode,
    IRI,
    Literal,
    SubjectTerm,
    Term,
    TermError,
    Triple,
    iri,
    make_triple,
)
from .vocabulary import OWL, RDF, RDFS, XSD

__all__ = [
    "BlankNode",
    "Graph",
    "IRI",
    "Literal",
    "NTriplesError",
    "OWL",
    "RDF",
    "RDFS",
    "SubjectTerm",
    "Term",
    "TermError",
    "TurtleError",
    "Triple",
    "XSD",
    "iri",
    "make_triple",
    "parse",
    "parse_file",
    "parse_line",
    "parse_turtle",
    "parse_turtle_file",
    "serialize",
    "write_file",
]
