"""RDF term model: IRIs, literals, blank nodes and triples.

The paper operates on dictionary-encoded 64-bit integers, but the public
API accepts and returns *decoded* RDF terms.  This module provides the
minimal, immutable term model shared by the parser, the dictionary and
the engines.

Terms are interned-friendly: they are hashable frozen objects whose
equality follows RDF 1.1 semantics (IRIs compare by string, literals by
lexical form + datatype + language tag, blank nodes by local label).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple, Union


@dataclass(frozen=True)
class IRI:
    """An IRI reference, stored as its full string (no namespace split).

    Terms are frozen dataclasses rather than NamedTuples so that
    equality is type-discriminating: ``IRI("a") != BlankNode("a")``.
    """

    value: str

    def n3(self) -> str:
        """Render in N-Triples syntax: ``<http://example.org/a>``."""
        return f"<{self.value}>"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class BlankNode:
    """A blank node with a document-scoped label (``_:b0``)."""

    label: str

    def n3(self) -> str:
        """Render in N-Triples syntax: ``_:b0``."""
        return f"_:{self.label}"

    def __str__(self) -> str:
        return f"_:{self.label}"


@dataclass(frozen=True)
class Literal:
    """An RDF literal: lexical form, optional datatype IRI, optional language.

    A literal carries *either* a language tag (then its datatype is
    rdf:langString per RDF 1.1) *or* a datatype IRI; plain literals get
    xsd:string.  Both fields default to ``None`` so that equality is
    purely structural.
    """

    lexical: str
    datatype: Union[str, None] = None
    language: Union[str, None] = None

    def n3(self) -> str:
        """Render in N-Triples syntax with escaping."""
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        if self.language:
            return f'"{escaped}"@{self.language}'
        if self.datatype and self.datatype != _XSD_STRING:
            return f'"{escaped}"^^<{self.datatype}>'
        return f'"{escaped}"'

    def __str__(self) -> str:
        return self.lexical


_XSD_STRING = "http://www.w3.org/2001/XMLSchema#string"

#: Any RDF term usable in a triple.
Term = Union[IRI, BlankNode, Literal]

#: Terms allowed in the subject position.
SubjectTerm = Union[IRI, BlankNode]


class Triple(NamedTuple):
    """An RDF triple ⟨subject, predicate, object⟩.

    Predicate must be an :class:`IRI`; the subject an IRI or blank node;
    the object any term.  Validation is performed by :func:`make_triple`
    rather than in the constructor so that internal fast paths can skip it.
    """

    subject: SubjectTerm
    predicate: IRI
    object: Term

    def n3(self) -> str:
        """Render as one N-Triples statement (without trailing newline)."""
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."


class TermError(ValueError):
    """Raised when a triple is built from ill-typed terms."""


def make_triple(subject: Term, predicate: Term, obj: Term) -> Triple:
    """Validate and build a :class:`Triple`.

    Raises
    ------
    TermError
        If the subject is a literal or the predicate is not an IRI.
    """
    if isinstance(subject, Literal):
        raise TermError(f"literal {subject!r} cannot be a subject")
    if not isinstance(predicate, IRI):
        raise TermError(f"predicate must be an IRI, got {predicate!r}")
    if not isinstance(obj, (IRI, BlankNode, Literal)):
        raise TermError(f"object must be an RDF term, got {obj!r}")
    return Triple(subject, predicate, obj)


def iri(value: str) -> IRI:
    """Shorthand constructor used pervasively in tests and examples."""
    return IRI(value)


def term_to_record(term: Term) -> list:
    """A JSON-serializable record for a term (see :func:`term_from_record`).

    The record is a small tagged list — ``["i", value]`` for IRIs,
    ``["b", label]`` for blank nodes, ``["l", lexical, datatype,
    language]`` for literals — used by the store persistence format.
    """
    if isinstance(term, IRI):
        return ["i", term.value]
    if isinstance(term, BlankNode):
        return ["b", term.label]
    if isinstance(term, Literal):
        return ["l", term.lexical, term.datatype, term.language]
    raise TermError(f"cannot serialize non-term {term!r}")


def term_from_record(record) -> Term:
    """Rebuild a term from a :func:`term_to_record` record."""
    kind = record[0]
    if kind == "i":
        return IRI(record[1])
    if kind == "b":
        return BlankNode(record[1])
    if kind == "l":
        return Literal(record[1], record[2], record[3])
    raise TermError(f"unknown term record kind {kind!r}")
