"""The vertically-partitioned triple store (paper §4.2–4.3).

A :class:`TripleStore` maps property ids to :class:`PropertyTable`\\ s.
With the dense numbering of :mod:`repro.dictionary` the property id of a
table is a simple index translation away from its position in the table
array — in this Python reproduction the translation feeds a dict keyed
by property id, which also gracefully accommodates the rare
non-promoted ids discussed in DESIGN.md §6.

The store exposes the three-store workflow of Algorithm 1:
``main`` and ``new`` are TripleStores, while the per-iteration
``inferred`` triples accumulate in an :class:`InferredBuffers` (raw
unsorted append-only buffers, one per property, mirroring the paper's
per-rule output tables).  All bulk passes (sort+dedup commits and the
Figure-5 merges) run on the store's kernel backend
(:mod:`repro.kernels`).
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..dictionary.encoding import EncodedTriple
from ..kernels import KernelBackend, resolve_backend
from .property_table import PairArray, PropertyTable


class InferredBuffers:
    """Per-property unsorted output buffers for one rule-firing round.

    Rules emit raw ⟨s, o⟩ pairs here; the buffers get sorted and
    deduplicated once per iteration (Figure 5, first step).  Scalar
    ``emit`` calls append to a per-property tail array; bulk ``extend``
    calls keep a *reference* to the chunk instead of copying it (tables
    never mutate their committed arrays in place, so aliasing is safe)
    — the chunks are concatenated by the consuming backend right before
    the sort.

    Chunk boundaries follow whatever the emitting rule handed in; on
    the compressed backend a committed-table chunk stays in its
    delta-encoded block form until the consuming ``concat``, which
    decodes block-by-block — chunk boundaries therefore align with
    compression blocks and no full int64 copy is staged here.
    """

    __slots__ = ("_tails", "_chunks")

    def __init__(self) -> None:
        self._tails: Dict[int, PairArray] = {}
        self._chunks: Dict[int, List] = {}

    def emit(self, property_id: int, subject: int, obj: int) -> None:
        """Append one inferred ⟨s, o⟩ pair for a property."""
        tail = self._tails.get(property_id)
        if tail is None:
            tail = array("q")
            self._tails[property_id] = tail
        tail.append(subject)
        tail.append(obj)

    def extend(self, property_id: int, flat_pairs) -> None:
        """Append many raw pairs at once (zero-copy chunk reference)."""
        if not len(flat_pairs):
            return
        chunks = self._chunks.get(property_id)
        if chunks is None:
            chunks = []
            self._chunks[property_id] = chunks
        chunks.append(flat_pairs)

    def absorb(self, other: "InferredBuffers") -> None:
        """Adopt another buffer set's contents as chunk references.

        The parallel scheduler gives every rule a private buffer and
        absorbs them in deterministic rule order; ``other`` must not be
        mutated afterwards (its tail arrays are aliased, not copied).
        """
        for property_id, chunks in other.chunk_items():
            own = self._chunks.get(property_id)
            if own is None:
                own = []
                self._chunks[property_id] = own
            own.extend(chunks)

    def chunk_items(self) -> Iterator[Tuple[int, List]]:
        """(property_id, [raw chunks…]) for every touched property."""
        for property_id in sorted(self._tails.keys() | self._chunks.keys()):
            chunks: List = []
            tail = self._tails.get(property_id)
            if tail is not None and len(tail):
                chunks.append(tail)
            chunks.extend(self._chunks.get(property_id, ()))
            if chunks:
                yield property_id, chunks

    def items(self) -> Iterator[Tuple[int, PairArray]]:
        """(property_id, concatenated raw pair buffer) per property.

        Compatibility view over :meth:`chunk_items` that materialises
        one flat ``array('q')`` per property.
        """
        for property_id, chunks in self.chunk_items():
            flat = array("q")
            for chunk in chunks:
                if isinstance(chunk, array) and chunk.typecode == "q":
                    flat.extend(chunk)
                else:
                    flat.extend(int(value) for value in chunk)
            yield property_id, flat

    def __len__(self) -> int:
        """Total number of raw (pre-dedup) pairs buffered."""
        total = sum(len(tail) for tail in self._tails.values())
        total += sum(
            len(chunk)
            for chunks in self._chunks.values()
            for chunk in chunks
        )
        return total // 2

    def __bool__(self) -> bool:
        return any(len(tail) for tail in self._tails.values()) or any(
            len(chunk)
            for chunks in self._chunks.values()
            for chunk in chunks
        )


class TripleStore:
    """Property-id → PropertyTable mapping with bulk loading and queries."""

    def __init__(
        self,
        *,
        algorithm: str = "auto",
        tracer=None,
        cache_os: bool = True,
        backend: Union[str, KernelBackend] = "auto",
    ):
        self._tables: Dict[int, PropertyTable] = {}
        self._algorithm = algorithm
        self._kernels = resolve_backend(backend, algorithm=algorithm)
        self.tracer = tracer
        self.cache_os = cache_os

    @property
    def kernels(self) -> KernelBackend:
        """The kernel backend this store executes on."""
        return self._kernels

    # ------------------------------------------------------------------
    # Table access
    # ------------------------------------------------------------------
    def table(self, property_id: int) -> Optional[PropertyTable]:
        """The table for a property, or ``None`` if it has no triples."""
        return self._tables.get(property_id)

    def get_or_create(self, property_id: int) -> PropertyTable:
        """The table for a property, creating an empty one if missing."""
        table = self._tables.get(property_id)
        if table is None:
            table = self._new_table(property_id)
            self._tables[property_id] = table
        return table

    def _new_table(self, property_id: int, pairs=None, *, presorted=False):
        return PropertyTable(
            pairs,
            algorithm=self._algorithm,
            tracer=self.tracer,
            trace_id=property_id,
            cache_os=self.cache_os,
            backend=self._kernels,
            presorted=presorted,
        )

    def property_ids(self) -> List[int]:
        """Ids of all non-empty properties."""
        return [pid for pid, table in self._tables.items() if table]

    def __contains__(self, encoded: EncodedTriple) -> bool:
        subject, property_id, obj = encoded
        table = self._tables.get(property_id)
        return bool(table) and table.contains(subject, obj)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def add_encoded(self, triples: Iterable[EncodedTriple]) -> None:
        """Bulk-load encoded triples: partition by property, sort, dedup."""
        staging: Dict[int, PairArray] = {}
        for subject, property_id, obj in triples:
            buffer = staging.get(property_id)
            if buffer is None:
                buffer = array("q")
                staging[property_id] = buffer
            buffer.append(subject)
            buffer.append(obj)
        for property_id, buffer in staging.items():
            self.add_pairs(property_id, buffer)

    def add_pairs(self, property_id: int, flat_pairs) -> None:
        """Bulk-load raw pairs for one property."""
        if not len(flat_pairs):
            return
        existing = self._tables.get(property_id)
        if existing is not None and existing:
            sorted_pairs = self._kernels.sort_pairs(
                flat_pairs, dedup=True, algorithm=self._algorithm
            )
            existing.merge(sorted_pairs)
        else:
            self._tables[property_id] = self._new_table(
                property_id, flat_pairs
            )

    def load_table(
        self, property_id: int, flat_pairs, *, presorted: bool = True
    ) -> None:
        """Install one property table from committed flat pair data.

        With ``presorted=True`` (the default) the data must already be
        sorted on ⟨s, o⟩ and duplicate-free — the invariant the
        persistence format guarantees — so loading is O(read) with no
        re-sort.  Replaces any existing table for the property.
        """
        if not len(flat_pairs):
            self._tables.pop(property_id, None)
            return
        self._tables[property_id] = self._new_table(
            property_id, flat_pairs, presorted=presorted
        )

    def attach_shared_table(self, property_id: int, flat_view) -> None:
        """Install one table over an externally-owned committed view.

        ``flat_view`` must already be sorted-unique on ⟨s, o⟩ — the
        invariant every committed pair array satisfies — and is adopted
        *without* copy or re-sort (the view may be a
        ``kernels.from_buffer`` alias of a shared-memory segment, which
        is what the process-parallel workers hand in).  The caller owns
        the backing buffer's lifetime; this store must be treated as
        read-only while attached.
        """
        if not len(flat_view):
            self._tables.pop(property_id, None)
            return
        table = self._new_table(property_id)
        table._pairs = flat_view
        self._tables[property_id] = table

    def table_arrays(self) -> Iterator[Tuple[int, PairArray]]:
        """(property_id, committed flat ⟨s, o⟩ array) per non-empty
        property, in ascending property-id order (deterministic for
        serialization)."""
        for property_id in sorted(self._tables):
            table = self._tables[property_id]
            if table:
                yield property_id, table.pairs

    def share_view(self) -> "TripleStore":
        """A zero-copy read view over the current committed arrays.

        The returned store's tables *alias* this store's pair arrays
        (and any materialised ⟨o, s⟩ caches).  This is safe because
        committed arrays are never mutated in place — every merge
        replaces a table's array wholesale — so later writes to this
        store leave the view frozen at the current state: copy-on-write
        snapshot semantics for free.  The view must only be read.
        """
        view = TripleStore(
            algorithm=self._algorithm,
            tracer=None,
            cache_os=self.cache_os,
            backend=self._kernels,
        )
        for property_id, table in self._tables.items():
            if not table:
                continue
            shared = view._new_table(property_id, table.pairs, presorted=True)
            if table.has_os_cache:
                # Share the committed ⟨o, s⟩ permutation too; the owner
                # invalidates by *replacing* it, never by mutating.
                shared._os_cache = table._os_cache
            view._tables[property_id] = shared
        return view

    # ------------------------------------------------------------------
    # Figure-5 iteration update
    # ------------------------------------------------------------------
    def merge_inferred(self, inferred: InferredBuffers) -> "TripleStore":
        """Apply the per-iteration update; returns the ``new`` store.

        For every property with inferred pairs: sort + dedup the raw
        buffer, merge it into this (main) store, and collect the pairs
        that were genuinely new into the returned delta store.
        """
        new_store = TripleStore(
            algorithm=self._algorithm,
            tracer=self.tracer,
            cache_os=self.cache_os,
            backend=self._kernels,
        )
        for property_id, chunks in inferred.chunk_items():
            flat = self._kernels.concat(chunks)
            sorted_pairs = self._kernels.sort_pairs(
                flat, dedup=True, algorithm=self._algorithm
            )
            table = self.get_or_create(property_id)
            new_pairs = table.merge(sorted_pairs)
            if len(new_pairs):
                new_store._tables[property_id] = new_store._new_table(
                    property_id, new_pairs, presorted=True
                )
        return new_store

    # ------------------------------------------------------------------
    # Inspection / queries
    # ------------------------------------------------------------------
    @property
    def n_triples(self) -> int:
        """Total number of stored triples."""
        return sum(table.n_pairs for table in self._tables.values())

    def __len__(self) -> int:
        return self.n_triples

    def __bool__(self) -> bool:
        return any(table for table in self._tables.values())

    def triples(self) -> Iterator[EncodedTriple]:
        """Iterate every (s, p, o), grouped by property."""
        for property_id, table in self._tables.items():
            for subject, obj in table.iter_pairs():
                yield (subject, property_id, obj)

    def query(
        self,
        subject: Optional[int] = None,
        property_id: Optional[int] = None,
        obj: Optional[int] = None,
    ) -> Iterator[EncodedTriple]:
        """Pattern query with ``None`` wildcards.

        Bound-property queries use binary search on the sorted table (or
        its ⟨o, s⟩ view); unbound-property queries scan all tables.
        """
        if property_id is not None:
            tables = [(property_id, self._tables.get(property_id))]
        else:
            tables = list(self._tables.items())
        for pid, table in tables:
            if table is None or not table:
                continue
            if subject is not None and obj is not None:
                if table.contains(subject, obj):
                    yield (subject, pid, obj)
            elif subject is not None:
                for o in table.objects_of(subject):
                    yield (subject, pid, o)
            elif obj is not None:
                for s in table.subjects_of(obj):
                    yield (s, pid, obj)
            else:
                for s, o in table.iter_pairs():
                    yield (s, pid, o)

    def as_set(self) -> set:
        """Snapshot as a set of (s, p, o) tuples (tests)."""
        return set(self.triples())

    def copy(self) -> "TripleStore":
        """Deep copy of tables (pair arrays are copied)."""
        out = TripleStore(
            algorithm=self._algorithm,
            tracer=self.tracer,
            cache_os=self.cache_os,
            backend=self._kernels,
        )
        for property_id, table in self._tables.items():
            out._tables[property_id] = out._new_table(
                property_id,
                self._kernels.copy_flat(table.pairs),
                presorted=True,
            )
        return out

    def memory_bytes(self, seen: Optional[set] = None) -> int:
        """Total bytes held by all pair arrays and o-s caches.

        ``seen`` (an identity set, shared across a walk of several
        stores/snapshots) makes the figure *resident* bytes: arrays and
        compressed blocks shared between versions are counted once.
        """
        if seen is None:
            seen = set()
        return sum(
            table.memory_bytes(seen) for table in self._tables.values()
        )

    def drop_os_caches(self) -> int:
        """Release every cached ⟨o, s⟩ view (the paper's memory valve);
        returns the number of caches dropped."""
        dropped = 0
        for table in self._tables.values():
            if table.has_os_cache:
                table.drop_os_cache()
                dropped += 1
        return dropped

    def stats(self) -> Dict[str, int]:
        """Basic size statistics (used by benchmarks and examples)."""
        tables = [t for t in self._tables.values() if t]
        return {
            "n_properties": len(tables),
            "n_triples": self.n_triples,
            "largest_table": max((t.n_pairs for t in tables), default=0),
            "os_caches": sum(1 for t in tables if t.has_os_cache),
            "memory_bytes": self.memory_bytes(),
        }
