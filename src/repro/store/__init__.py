"""Vertical-partitioning triple store (paper §4.2–4.3)."""

from .property_table import PairArray, PropertyTable, pairs_as_tuples
from .triple_store import InferredBuffers, TripleStore

__all__ = [
    "InferredBuffers",
    "PairArray",
    "PropertyTable",
    "TripleStore",
    "pairs_as_tuples",
]
