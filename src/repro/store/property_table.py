"""Property tables: the vertical-partitioning storage unit (paper §4.2).

One :class:`PropertyTable` holds every ⟨subject, object⟩ pair of a single
property as a flat dynamic array of 64-bit integers (even index =
subject, odd index = object), kept **sorted on ⟨s, o⟩ and duplicate-free**
between iterations.  A second array sorted on ⟨o, s⟩ is computed lazily
when a rule needs an object-keyed merge join, cached, and invalidated
whenever new pairs are merged in (paper: "The cached ⟨o,s⟩ sorted index
is computed lazily upon need").

The Figure-5 update step lives here as :meth:`PropertyTable.merge`: the
already sorted+deduplicated inferred pairs are merged with the main
pairs in one linear pass that simultaneously produces the updated main
table and the ``new`` table (inferred pairs that were not already known).
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Optional, Tuple, Union

from ..sorting.dispatch import sort_pairs

PairArray = array


def pairs_as_tuples(flat: PairArray) -> List[Tuple[int, int]]:
    """Debug/test helper: flat layout → list of (first, second) tuples."""
    return list(zip(flat[0::2], flat[1::2]))


class PropertyTable:
    """Sorted, duplicate-free ⟨s, o⟩ pairs of one property.

    Parameters
    ----------
    pairs:
        Optional initial flat pair data (need not be sorted; it is
        committed through the sorting dispatcher).
    algorithm:
        Sorting backend forwarded to :func:`repro.sorting.sort_pairs`
        ('auto' applies the paper's operating-range policy).
    tracer:
        Optional :class:`repro.memsim.tracer.Tracer`; when set, the
        table reports its sequential scans and writes so the memory
        simulator can replay them (see DESIGN.md, Figures 7–8).
    """

    __slots__ = (
        "_pairs",
        "_os_cache",
        "_algorithm",
        "tracer",
        "_trace_id",
        "cache_os",
    )

    def __init__(
        self,
        pairs: Optional[Union[PairArray, List[int]]] = None,
        *,
        algorithm: str = "auto",
        tracer=None,
        trace_id: int = 0,
        cache_os: bool = True,
    ):
        self._algorithm = algorithm
        self.tracer = tracer
        self._trace_id = trace_id
        self.cache_os = cache_os
        self._os_cache: Optional[PairArray] = None
        if pairs is None or not len(pairs):
            self._pairs = array("q")
        else:
            self._pairs, _ = sort_pairs(pairs, dedup=True, algorithm=algorithm)
            self._trace_sort(len(self._pairs) // 2)

    # ------------------------------------------------------------------
    # Tracing (one call per table-level operation; memsim expands these
    # into element-level address streams)
    # ------------------------------------------------------------------
    def _trace_sort(self, n_pairs: int) -> None:
        if self.tracer is not None and n_pairs:
            self.tracer.sequential_scan(("table", self._trace_id), n_pairs * 16)

    def _trace_scan(self, n_pairs: int) -> None:
        if self.tracer is not None and n_pairs:
            self.tracer.sequential_scan(("table", self._trace_id), n_pairs * 16)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def pairs(self) -> PairArray:
        """The committed flat ⟨s, o⟩ array (do not mutate)."""
        return self._pairs

    @property
    def n_pairs(self) -> int:
        """Number of ⟨s, o⟩ pairs stored."""
        return len(self._pairs) // 2

    def __len__(self) -> int:
        return self.n_pairs

    def __bool__(self) -> bool:
        return bool(self._pairs)

    def os_pairs(self) -> PairArray:
        """The ⟨o, s⟩-sorted view (object at even indices), lazily cached.

        The view is a *permutation* of the table with components swapped
        — the paper stores it as a cached second array that may be
        dropped under memory pressure (:meth:`drop_os_cache`).  With
        ``cache_os=False`` (the ablation configuration) the view is
        recomputed on every call.
        """
        if self._os_cache is not None:
            return self._os_cache
        swapped = array("q", bytes(8 * len(self._pairs)))
        swapped[0::2] = self._pairs[1::2]
        swapped[1::2] = self._pairs[0::2]
        view, _ = sort_pairs(swapped, dedup=False, algorithm=self._algorithm)
        self._trace_sort(self.n_pairs)
        if self.cache_os:
            self._os_cache = view
        return view

    @property
    def has_os_cache(self) -> bool:
        """Whether the ⟨o, s⟩ view is currently materialised."""
        return self._os_cache is not None

    def drop_os_cache(self) -> None:
        """Release the cached ⟨o, s⟩ view (memory-pressure valve)."""
        self._os_cache = None

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def contains(self, subject: int, obj: int) -> bool:
        """Binary search for one ⟨s, o⟩ pair."""
        pairs = self._pairs
        low = 0
        high = len(pairs) // 2 - 1
        while low <= high:
            mid = (low + high) // 2
            mid_s = pairs[2 * mid]
            mid_o = pairs[2 * mid + 1]
            if (mid_s, mid_o) < (subject, obj):
                low = mid + 1
            elif (mid_s, mid_o) > (subject, obj):
                high = mid - 1
            else:
                return True
        return False

    def subject_slice(self, subject: int) -> Tuple[int, int]:
        """Pair-index range [start, end) of rows with this subject."""
        return _key_slice(self._pairs, subject)

    def objects_of(self, subject: int) -> List[int]:
        """All objects paired with ``subject`` (sorted)."""
        start, end = self.subject_slice(subject)
        return [self._pairs[2 * i + 1] for i in range(start, end)]

    def subjects_of(self, obj: int) -> List[int]:
        """All subjects paired with ``obj`` (sorted; uses the o-s view)."""
        view = self.os_pairs()
        start, end = _key_slice(view, obj)
        return [view[2 * i + 1] for i in range(start, end)]

    def iter_pairs(self) -> Iterator[Tuple[int, int]]:
        """Iterate ⟨s, o⟩ tuples in sorted order."""
        pairs = self._pairs
        for i in range(0, len(pairs), 2):
            yield pairs[i], pairs[i + 1]

    def distinct_subjects(self) -> List[int]:
        """Sorted distinct subjects."""
        out: List[int] = []
        previous = None
        for i in range(0, len(self._pairs), 2):
            subject = self._pairs[i]
            if subject != previous:
                out.append(subject)
                previous = subject
        return out

    def distinct_objects(self) -> List[int]:
        """Sorted distinct objects (uses the o-s view)."""
        view = self.os_pairs()
        out: List[int] = []
        previous = None
        for i in range(0, len(view), 2):
            obj = view[i]
            if obj != previous:
                out.append(obj)
                previous = obj
        return out

    # ------------------------------------------------------------------
    # Figure-5 update
    # ------------------------------------------------------------------
    def merge(self, inferred_sorted: PairArray) -> PairArray:
        """Merge sorted+deduplicated inferred pairs; return the new ones.

        One linear pass implements both steps of Figure 5: ``main`` is
        replaced by ``main ∪ inferred`` (still sorted-unique) and the
        returned array holds exactly ``inferred ∖ main`` — the pairs
        that feed the next iteration.  The ⟨o, s⟩ cache is invalidated
        when anything new arrived.
        """
        main = self._pairs
        if not len(inferred_sorted):
            return array("q")
        if not len(main):
            self._pairs = array("q", inferred_sorted)
            self._os_cache = None
            self._trace_scan(len(inferred_sorted) // 2)
            return array("q", inferred_sorted)

        merged = array("q")
        new = array("q")
        i = 0
        j = 0
        len_main = len(main)
        len_inf = len(inferred_sorted)
        while i < len_main and j < len_inf:
            main_key = (main[i], main[i + 1])
            inf_key = (inferred_sorted[j], inferred_sorted[j + 1])
            if main_key < inf_key:
                merged.append(main_key[0])
                merged.append(main_key[1])
                i += 2
            elif main_key > inf_key:
                merged.append(inf_key[0])
                merged.append(inf_key[1])
                new.append(inf_key[0])
                new.append(inf_key[1])
                j += 2
            else:  # duplicate: keep once, not new
                merged.append(main_key[0])
                merged.append(main_key[1])
                i += 2
                j += 2
        if i < len_main:
            merged.extend(main[i:])
        if j < len_inf:
            merged.extend(inferred_sorted[j:])
            new.extend(inferred_sorted[j:])

        self._trace_scan((len_main + len_inf) // 2)
        self._pairs = merged
        if len(new):
            self._os_cache = None
        return new

    def as_set(self) -> set:
        """Snapshot of the pairs as a set of tuples (tests)."""
        return set(self.iter_pairs())

    def memory_bytes(self) -> int:
        """Bytes held by the pair array (+ the o-s cache if present).

        The fixed-length 64-bit encoding makes this exact: 16 bytes per
        pair per array — the figure the paper's scalability discussion
        (chains > 25,000 exhausting 16 GB) is about.
        """
        total = 8 * len(self._pairs)
        if self._os_cache is not None:
            total += 8 * len(self._os_cache)
        return total


def _key_slice(flat: PairArray, key: int) -> Tuple[int, int]:
    """[start, end) pair-index range of rows whose even-component == key."""
    n_pairs = len(flat) // 2
    # Lower bound.
    low, high = 0, n_pairs
    while low < high:
        mid = (low + high) // 2
        if flat[2 * mid] < key:
            low = mid + 1
        else:
            high = mid
    start = low
    # Upper bound.
    high = n_pairs
    while low < high:
        mid = (low + high) // 2
        if flat[2 * mid] <= key:
            low = mid + 1
        else:
            high = mid
    return start, low
