"""Property tables: the vertical-partitioning storage unit (paper §4.2).

One :class:`PropertyTable` holds every ⟨subject, object⟩ pair of a single
property as a flat dynamic array of 64-bit integers (even index =
subject, odd index = object), kept **sorted on ⟨s, o⟩ and duplicate-free**
between iterations.  A second array sorted on ⟨o, s⟩ is computed lazily
when a rule needs an object-keyed merge join, cached, and invalidated
whenever new pairs are merged in (paper: "The cached ⟨o,s⟩ sorted index
is computed lazily upon need").

The Figure-5 update step lives here as :meth:`PropertyTable.merge`: the
already sorted+deduplicated inferred pairs are merged with the main
pairs in one linear pass that simultaneously produces the updated main
table and the ``new`` table (inferred pairs that were not already known).

Every pass over the pair data — commit sort, the Figure-5 merge, the
⟨o, s⟩ view — executes on a pluggable :class:`repro.kernels.KernelBackend`
(pure-Python reference loops or vectorized NumPy), so the table's flat
array is whatever type the backend works on natively.
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Optional, Tuple, Union

from ..kernels import KernelBackend, resolve_backend

PairArray = array


def pairs_as_tuples(flat) -> List[Tuple[int, int]]:
    """Debug/test helper: flat layout → list of (first, second) tuples."""
    return list(zip(flat[0::2], flat[1::2]))


class PropertyTable:
    """Sorted, duplicate-free ⟨s, o⟩ pairs of one property.

    Parameters
    ----------
    pairs:
        Optional initial flat pair data (need not be sorted; it is
        committed through the backend's sort kernel).
    algorithm:
        Scalar sorting backend forwarded to the pure-Python kernels
        ('auto' applies the paper's operating-range policy; forcing one
        also pins backend='auto' to the pure-Python kernels).
    tracer:
        Optional :class:`repro.memsim.tracer.Tracer`; when set, the
        table reports its sequential scans and writes so the memory
        simulator can replay them (see DESIGN.md, Figures 7–8).
    backend:
        Kernel backend name ('auto', 'python', 'numpy') or a
        :class:`~repro.kernels.KernelBackend` instance.
    presorted:
        The initial ``pairs`` are already sorted-unique in the
        backend's native representation; skip the commit sort (used for
        delta tables built from Figure-5 merge output).
    """

    __slots__ = (
        "_pairs",
        "_os_cache",
        "_algorithm",
        "_kernels",
        "tracer",
        "_trace_id",
        "cache_os",
    )

    def __init__(
        self,
        pairs: Optional[Union[PairArray, List[int]]] = None,
        *,
        algorithm: str = "auto",
        tracer=None,
        trace_id: int = 0,
        cache_os: bool = True,
        backend: Union[str, KernelBackend] = "auto",
        presorted: bool = False,
    ):
        self._algorithm = algorithm
        self._kernels = resolve_backend(backend, algorithm=algorithm)
        self.tracer = tracer
        self._trace_id = trace_id
        self.cache_os = cache_os
        self._os_cache = None
        if pairs is None or not len(pairs):
            self._pairs = self._kernels.empty()
        elif presorted:
            self._pairs = self._kernels.asarray(pairs)
        else:
            self._pairs = self._kernels.sort_pairs(
                pairs, dedup=True, algorithm=algorithm
            )
            self._trace_sort(len(self._pairs) // 2)

    @property
    def kernels(self) -> KernelBackend:
        """The kernel backend this table executes on."""
        return self._kernels

    # ------------------------------------------------------------------
    # Tracing (one call per table-level operation; memsim expands these
    # into element-level address streams)
    # ------------------------------------------------------------------
    def _trace_sort(self, n_pairs: int) -> None:
        if self.tracer is not None and n_pairs:
            self.tracer.sequential_scan(("table", self._trace_id), n_pairs * 16)

    def _trace_scan(self, n_pairs: int) -> None:
        if self.tracer is not None and n_pairs:
            self.tracer.sequential_scan(("table", self._trace_id), n_pairs * 16)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def pairs(self):
        """The committed flat ⟨s, o⟩ array (do not mutate)."""
        return self._pairs

    @property
    def n_pairs(self) -> int:
        """Number of ⟨s, o⟩ pairs stored."""
        return len(self._pairs) // 2

    def __len__(self) -> int:
        return self.n_pairs

    def __bool__(self) -> bool:
        return len(self._pairs) > 0

    def os_pairs(self):
        """The ⟨o, s⟩-sorted view (object at even indices), lazily cached.

        The view is a *permutation* of the table with components swapped
        — the paper stores it as a cached second array that may be
        dropped under memory pressure (:meth:`drop_os_cache`).  With
        ``cache_os=False`` (the ablation configuration) the view is
        recomputed on every call.
        """
        if self._os_cache is not None:
            return self._os_cache
        view = self._kernels.os_view(self._pairs, algorithm=self._algorithm)
        self._trace_sort(self.n_pairs)
        if self.cache_os:
            self._os_cache = view
        return view

    @property
    def has_os_cache(self) -> bool:
        """Whether the ⟨o, s⟩ view is currently materialised."""
        return self._os_cache is not None

    def drop_os_cache(self) -> None:
        """Release the cached ⟨o, s⟩ view (memory-pressure valve)."""
        self._os_cache = None

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def contains(self, subject: int, obj: int) -> bool:
        """Binary search for one ⟨s, o⟩ pair."""
        pairs = self._pairs
        low = 0
        high = len(pairs) // 2 - 1
        while low <= high:
            mid = (low + high) // 2
            mid_s = pairs[2 * mid]
            mid_o = pairs[2 * mid + 1]
            if (mid_s, mid_o) < (subject, obj):
                low = mid + 1
            elif (mid_s, mid_o) > (subject, obj):
                high = mid - 1
            else:
                return True
        return False

    def subject_slice(self, subject: int) -> Tuple[int, int]:
        """Pair-index range [start, end) of rows with this subject."""
        return self._kernels.key_slice(self._pairs, subject)

    def objects_of(self, subject: int) -> List[int]:
        """All objects paired with ``subject`` (sorted)."""
        start, end = self.subject_slice(subject)
        return [self._pairs[2 * i + 1] for i in range(start, end)]

    def subjects_of(self, obj: int) -> List[int]:
        """All subjects paired with ``obj`` (sorted; uses the o-s view)."""
        view = self.os_pairs()
        start, end = self._kernels.key_slice(view, obj)
        return [view[2 * i + 1] for i in range(start, end)]

    def iter_pairs(self) -> Iterator[Tuple[int, int]]:
        """Iterate ⟨s, o⟩ tuples in sorted order."""
        # tolist() exists on both array('q') and ndarray and converts
        # to plain ints in one pass — much faster than element access.
        flat = self._pairs.tolist()
        return zip(flat[0::2], flat[1::2])

    def distinct_subjects(self) -> List[int]:
        """Sorted distinct subjects."""
        return list(self._kernels.distinct_evens(self._pairs))

    def distinct_objects(self) -> List[int]:
        """Sorted distinct objects (uses the o-s view)."""
        return list(self._kernels.distinct_evens(self.os_pairs()))

    # ------------------------------------------------------------------
    # Figure-5 update
    # ------------------------------------------------------------------
    def merge(self, inferred_sorted):
        """Merge sorted+deduplicated inferred pairs; return the new ones.

        One linear pass implements both steps of Figure 5: ``main`` is
        replaced by ``main ∪ inferred`` (still sorted-unique) and the
        returned array holds exactly ``inferred ∖ main`` — the pairs
        that feed the next iteration.  The ⟨o, s⟩ cache is invalidated
        when anything new arrived.
        """
        if not len(inferred_sorted):
            return self._kernels.empty()
        merged, new = self._kernels.merge_new(self._pairs, inferred_sorted)
        self._trace_scan((len(self._pairs) + len(inferred_sorted)) // 2)
        self._pairs = merged
        if len(new):
            # The cached ⟨o, s⟩ permutation no longer covers the table.
            self._os_cache = None
        return new

    def as_set(self) -> set:
        """Snapshot of the pairs as a set of tuples (tests)."""
        return set(self.iter_pairs())

    def memory_bytes(self, seen: Optional[set] = None) -> int:
        """Bytes held by the pair array (+ the o-s cache if present).

        Backend-aware: the flat backends report the exact fixed-length
        encoding (16 bytes per pair per array — the figure the paper's
        scalability discussion is about), the compressed backend its
        encoded block bytes.  ``seen`` deduplicates storage shared with
        other tables/versions by identity (snapshot aliasing, shared
        compressed runs); pass one set across a whole store walk.
        """
        total = self._kernels.flat_nbytes(self._pairs, seen)
        if self._os_cache is not None:
            total += self._kernels.flat_nbytes(self._os_cache, seen)
        return total
