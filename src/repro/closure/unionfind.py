"""Disjoint-set (UNION-FIND) with path compression and union by rank.

Used by the closure pipeline (paper §4.1) to split the schema graph into
connected components before dense renumbering, and by the same-as
machinery for equivalence classes.  Works over arbitrary hashable items.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List


class UnionFind:
    """Classic disjoint-set forest; items are added lazily on first use."""

    def __init__(self, items: Iterable[Hashable] = ()):
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        self._count = 0
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        """Register ``item`` as a singleton set if unseen."""
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0
            self._count += 1

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        """Number of registered items (not sets)."""
        return len(self._parent)

    @property
    def n_sets(self) -> int:
        """Current number of disjoint sets."""
        return self._count

    def find(self, item: Hashable) -> Hashable:
        """Representative of ``item``'s set (two-pass path compression)."""
        parent = self._parent
        if item not in parent:
            self.add(item)
            return item
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the sets of ``a`` and ``b``; returns the new root."""
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return root_a
        rank = self._rank
        if rank[root_a] < rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if rank[root_a] == rank[root_b]:
            rank[root_a] += 1
        self._count -= 1
        return root_a

    def same_set(self, a: Hashable, b: Hashable) -> bool:
        """True iff ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def groups(self) -> Dict[Hashable, List[Hashable]]:
        """Mapping root → members, in insertion order within each group."""
        out: Dict[Hashable, List[Hashable]] = {}
        for item in self._parent:
            out.setdefault(self.find(item), []).append(item)
        return out
