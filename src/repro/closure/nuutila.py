"""Nuutila-style transitive closure with interval reachable sets (§4.1).

The paper computes transitivity closures *outside* the fixed-point rule
loop, with the algorithm from Nuutila's thesis as implemented by Cotton
(stixar-graphlib): detect strongly connected components, build the
quotient (condensation) graph, walk it in reverse topological order and
accumulate reachable sets as unions of the successors' sets, stored
compactly as :class:`repro.closure.intervals.IntervalSet`.

Pipeline of :func:`transitive_closure_pairs`:

1. map arbitrary integer node ids to dense local ids (first-seen order);
2. iterative Tarjan SCC — components are emitted sinks-first, i.e. in
   reverse topological order of the condensation;
3. renumber nodes in emission order ("closure ids"), so each component
   occupies one contiguous id interval and sink-ward reachable sets
   coalesce into few intervals (Cotton's density trick);
4. one pass over components in emission order unions successor sets;
5. emit the closed edge list, mapping closure ids back to the input ids.

A component reaches itself iff it is non-trivial (size > 1) or carries a
self-loop, which yields the ⟨x, x⟩ pairs required by the semantics of
transitive properties over cycles.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Sequence, Tuple

from .intervals import IntervalSet

Edge = Tuple[int, int]


def _dense_node_map(edges: Sequence[Edge]) -> Tuple[Dict[int, int], List[int]]:
    """First-seen dense mapping: node id → local id, and its inverse."""
    to_local: Dict[int, int] = {}
    to_original: List[int] = []
    for source, target in edges:
        if source not in to_local:
            to_local[source] = len(to_original)
            to_original.append(source)
        if target not in to_local:
            to_local[target] = len(to_original)
            to_original.append(target)
    return to_local, to_original


def _build_adjacency(
    n_nodes: int, edges: Sequence[Edge], to_local: Dict[int, int]
) -> List[List[int]]:
    """Deduplicated adjacency lists over local ids."""
    seen = set()
    adjacency: List[List[int]] = [[] for _ in range(n_nodes)]
    for source, target in edges:
        key = (source, target)
        if key in seen:
            continue
        seen.add(key)
        adjacency[to_local[source]].append(to_local[target])
    return adjacency


def strongly_connected_components(
    adjacency: List[List[int]],
) -> List[List[int]]:
    """Iterative Tarjan SCC; components are emitted sinks-first.

    The emission order is the reverse topological order of the
    condensation, which is exactly what the interval-union pass needs.
    """
    n_nodes = len(adjacency)
    index_of = [-1] * n_nodes
    lowlink = [0] * n_nodes
    on_stack = [False] * n_nodes
    stack: List[int] = []
    components: List[List[int]] = []
    counter = 0

    for root in range(n_nodes):
        if index_of[root] != -1:
            continue
        # Explicit DFS stack of (node, iterator position).
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, child_pos = work[-1]
            if child_pos == 0:
                index_of[node] = counter
                lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            children = adjacency[node]
            while child_pos < len(children):
                child = children[child_pos]
                child_pos += 1
                if index_of[child] == -1:
                    work[-1] = (node, child_pos)
                    work.append((child, 0))
                    advanced = True
                    break
                if on_stack[child] and index_of[child] < lowlink[node]:
                    lowlink[node] = index_of[child]
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
    return components


class ReachIndex:
    """Dense closure-id numbering plus per-node interval reach sets.

    The reusable core of :func:`transitive_closure_pairs` (steps 1–4 of
    the module pipeline), kept around instead of flattened into an edge
    list.  Each input node gets a *closure id* — contiguous per SCC, in
    sinks-first emission order — and each SCC an :class:`IntervalSet` of
    the closure ids it reaches, so

    ``target reachable from source  ⟺  closure_id(target) ∈ reach(source)``

    with reachability meaning "via at least one edge" (a node reaches
    itself iff it lies on a cycle or carries a self-loop, matching the
    transitive-property semantics).  The ``closure_id_of`` /
    ``original_of_closure`` tables are the remap between the caller's id
    space (e.g. dictionary ids) and the interval-friendly closure ids;
    ``repro.litemat`` builds its hierarchy encoding directly on this
    index.
    """

    __slots__ = (
        "closure_id_of",
        "original_of_closure",
        "component_intervals",
        "component_reach",
        "_component_of_closure",
    )

    def __init__(
        self,
        closure_id_of: Dict[int, int],
        original_of_closure: List[int],
        component_intervals: List[Tuple[int, int]],
        component_reach: List[IntervalSet],
        component_of_closure: List[int],
    ):
        self.closure_id_of = closure_id_of
        self.original_of_closure = original_of_closure
        self.component_intervals = component_intervals
        self.component_reach = component_reach
        self._component_of_closure = component_of_closure

    @property
    def n_nodes(self) -> int:
        return len(self.original_of_closure)

    def __contains__(self, node: int) -> bool:
        return node in self.closure_id_of

    def nodes(self):
        """Original node ids, in closure-id order."""
        return iter(self.original_of_closure)

    def reach_of(self, node: int):
        """The node's reach as an IntervalSet of closure ids.

        ``None`` for nodes the graph never mentioned (their reach is
        empty).  All members of one SCC share the same set object.
        """
        cid = self.closure_id_of.get(node)
        if cid is None:
            return None
        return self.component_reach[self._component_of_closure[cid]]

    def reaches(self, source: int, target: int) -> bool:
        """Whether ``target`` is reachable from ``source`` (≥ 1 edge)."""
        target_cid = self.closure_id_of.get(target)
        if target_cid is None:
            return False
        reachable = self.reach_of(source)
        return reachable is not None and target_cid in reachable

    def reachable_nodes(self, node: int) -> List[int]:
        """Original ids reachable from ``node``, in closure-id order."""
        reachable = self.reach_of(node)
        if reachable is None:
            return []
        originals = self.original_of_closure
        return [originals[cid] for cid in reachable]

    def components(self):
        """Yield ``(member_closure_ids, reach)`` in emission order."""
        for comp_index, (low, high) in enumerate(self.component_intervals):
            yield range(low, high + 1), self.component_reach[comp_index]

    def n_reach_pairs(self) -> int:
        """Size of the closed edge relation this index encodes."""
        total = 0
        for members, reachable in self.components():
            count = sum(
                high - low + 1 for low, high in reachable.intervals()
            )
            total += len(members) * count
        return total

    def n_intervals(self) -> int:
        """Total intervals across the per-component reach sets."""
        return sum(r.n_intervals for r in self.component_reach)


def build_reach_index(edges: Iterable[Edge]) -> ReachIndex:
    """Run steps 1–4 of the closure pipeline and keep the index.

    Accepts arbitrary 64-bit integer node ids; cycles and duplicate
    edges are fine.  An empty edge list yields an empty index.
    """
    edge_list = list(edges)
    to_local, to_original = _dense_node_map(edge_list)
    n_nodes = len(to_original)
    adjacency = _build_adjacency(n_nodes, edge_list, to_local)
    has_self_loop = [False] * n_nodes
    for node, children in enumerate(adjacency):
        if node in children:
            has_self_loop[node] = True

    components = strongly_connected_components(adjacency)

    # Closure ids: contiguous per component, in emission (sinks-first)
    # order — Cotton's dense renumbering.
    component_of = [0] * n_nodes
    closure_id = [0] * n_nodes
    component_interval: List[Tuple[int, int]] = []
    next_id = 0
    for comp_index, members in enumerate(components):
        base = next_id
        for member in members:
            component_of[member] = comp_index
            closure_id[member] = next_id
            next_id += 1
        component_interval.append((base, next_id - 1))

    original_of_closure = [0] * n_nodes
    component_of_closure = [0] * n_nodes
    for node in range(n_nodes):
        original_of_closure[closure_id[node]] = to_original[node]
        component_of_closure[closure_id[node]] = component_of[node]

    # Reverse-topological interval-union pass.
    reach: List[IntervalSet] = []
    for comp_index, members in enumerate(components):
        reachable = IntervalSet()
        successor_components = set()
        loops = False
        for member in members:
            if has_self_loop[member]:
                loops = True
            for child in adjacency[member]:
                child_comp = component_of[child]
                if child_comp != comp_index:
                    successor_components.add(child_comp)
        for child_comp in successor_components:
            low, high = component_interval[child_comp]
            reachable.union_update(IntervalSet.single(low, high))
            reachable.union_update(reach[child_comp])
        if len(members) > 1 or loops:
            low, high = component_interval[comp_index]
            reachable.union_update(IntervalSet.single(low, high))
        reach.append(reachable)

    closure_id_of = {
        to_original[node]: closure_id[node] for node in range(n_nodes)
    }
    return ReachIndex(
        closure_id_of,
        original_of_closure,
        component_interval,
        reach,
        component_of_closure,
    )


def transitive_closure_pairs(
    edges: Iterable[Edge],
    *,
    include_input: bool = True,
) -> array:
    """Closed edge set of a digraph, as a flat ⟨s, o⟩ pair array.

    Parameters
    ----------
    edges:
        Directed edges over arbitrary (64-bit) integer node ids; cycles
        and duplicates are fine.
    include_input:
        When True (default) the result is the full closure including the
        input edges; when False, input edges that are *not* re-derived
        are still included (the closure is a superset of the input by
        definition) — the flag exists so callers can request only the
        derivable pairs minus the originals.

    Returns
    -------
    array('q')
        Flat pair array, one ⟨source, target⟩ per closed edge, grouped
        by component emission order (callers sort as needed).
    """
    edge_list = list(edges)
    out = array("q")
    if not edge_list:
        return out

    index = build_reach_index(edge_list)
    originals = index.original_of_closure

    # Emit the closed pairs, mapping ids back.
    original_inputs = None
    if not include_input:
        original_inputs = set(edge_list)
    for members, reachable in index.components():
        if not reachable:
            continue
        targets = [originals[value] for value in reachable]
        for member in members:
            source = originals[member]
            for target in targets:
                if original_inputs is not None and (
                    source,
                    target,
                ) in original_inputs:
                    continue
                out.append(source)
                out.append(target)
    return out


def transitive_closure(edges: Iterable[Edge]) -> set:
    """Convenience wrapper: the closure as a set of (source, target)."""
    flat = transitive_closure_pairs(edges)
    return set(zip(flat[0::2], flat[1::2]))
