"""Component split + dense renumbering around Nuutila's closure (§4.1).

The paper reduces graph sparsity before the interval-based closure by
splitting the schema graph into (weakly) connected components with
UNION-FIND, renumbering nodes densely inside each component, and only
then applying Nuutila's algorithm.  The closure of each component is
appended to the output independently — which also makes the step
trivially parallelisable (the paper runs it per property).

:func:`closed_pairs` is the entry point used by the engine's
transitivity pre-pass.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Tuple

from .nuutila import transitive_closure_pairs
from .unionfind import UnionFind

Edge = Tuple[int, int]


def connected_component_edges(edges: List[Edge]) -> List[List[Edge]]:
    """Partition edges by weakly-connected component (UNION-FIND)."""
    finder = UnionFind()
    for source, target in edges:
        finder.union(source, target)
    buckets: Dict[object, List[Edge]] = {}
    for edge in edges:
        buckets.setdefault(finder.find(edge[0]), []).append(edge)
    return list(buckets.values())


def closed_pairs(
    edges: Iterable[Edge],
    *,
    split_components: bool = True,
) -> array:
    """Full transitive closure as a flat pair array.

    Parameters
    ----------
    edges:
        Directed edges over integer node ids.
    split_components:
        Apply the paper's UNION-FIND component split before closing
        (``False`` runs Nuutila over the whole graph at once; results
        are identical — kept for the ablation benchmark).
    """
    edge_list = list(edges)
    if not edge_list:
        return array("q")
    if not split_components:
        return transitive_closure_pairs(edge_list)
    out = array("q")
    for component in connected_component_edges(edge_list):
        out.extend(transitive_closure_pairs(component))
    return out


def symmetric_transitive_closure_pairs(edges: Iterable[Edge]) -> array:
    """Closure for symmetric-transitive properties (owl:sameAs, §4.1).

    "To compute the transitivity closure on the symmetric property, we
    first add, for each triple, its symmetric value and then we apply
    the standard closure."  The result materialises every ⟨x, y⟩ within
    an equivalence class, including the reflexive pairs that arise from
    x ~ y ~ x.
    """
    doubled: List[Edge] = []
    for source, target in edges:
        doubled.append((source, target))
        doubled.append((target, source))
    return closed_pairs(doubled)
