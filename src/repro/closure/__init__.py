"""Transitive-closure subsystem (paper §4.1)."""

from .components import (
    closed_pairs,
    connected_component_edges,
    symmetric_transitive_closure_pairs,
)
from .intervals import IntervalSet
from .nuutila import (
    ReachIndex,
    build_reach_index,
    strongly_connected_components,
    transitive_closure,
    transitive_closure_pairs,
)
from .unionfind import UnionFind

__all__ = [
    "IntervalSet",
    "ReachIndex",
    "UnionFind",
    "build_reach_index",
    "closed_pairs",
    "connected_component_edges",
    "strongly_connected_components",
    "symmetric_transitive_closure_pairs",
    "transitive_closure",
    "transitive_closure_pairs",
]
