"""Interval sets: compact reachable-set representation (paper §4.1).

Cotton's implementation of Nuutila's algorithm stores reachable sets as
*sets of intervals* over densely-numbered nodes — compact, cache-friendly
and mergeable in linear time.  With the reverse-topological dense
numbering applied by :mod:`repro.closure.nuutila`, reachable sets
coalesce into few intervals, keeping them far below the quadratic
explicit-set size.

An :class:`IntervalSet` is an ordered list of disjoint, non-adjacent,
inclusive ``[lo, hi]`` intervals.  The hot operation is
:meth:`IntervalSet.union_update`, a single linear merge pass.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple


class IntervalSet:
    """Sorted disjoint inclusive integer intervals with set semantics."""

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Tuple[int, int]] = ()):
        self._intervals: List[Tuple[int, int]] = []
        for low, high in intervals:
            self.add_interval(low, high)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def single(cls, low: int, high: int) -> "IntervalSet":
        """An interval set holding exactly ``[low, high]``."""
        if high < low:
            raise ValueError(f"empty interval [{low}, {high}]")
        out = cls()
        out._intervals.append((low, high))
        return out

    @classmethod
    def from_values(cls, values: Iterable[int]) -> "IntervalSet":
        """Build from arbitrary values, coalescing adjacent runs."""
        out = cls()
        for value in sorted(set(values)):
            out.add(value)
        return out

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, value: int) -> None:
        """Insert one value (coalesces with neighbours)."""
        self.add_interval(value, value)

    def add_interval(self, low: int, high: int) -> None:
        """Insert an inclusive interval, keeping the invariants."""
        if high < low:
            raise ValueError(f"empty interval [{low}, {high}]")
        self.union_update(IntervalSet.single(low, high))

    def union_update(self, other: "IntervalSet") -> None:
        """In-place union with ``other`` — one linear merge pass.

        This is the closure pipeline's hot loop; it mirrors the
        branch-light merging of the reference implementation.
        """
        mine = self._intervals
        theirs = other._intervals
        if not theirs:
            return
        if not mine:
            self._intervals = theirs[:]
            return
        merged: List[Tuple[int, int]] = []
        i = j = 0
        len_mine = len(mine)
        len_theirs = len(theirs)
        # Pick the next interval by start point, then coalesce into the
        # tail of `merged` whenever it overlaps or is adjacent.
        while i < len_mine or j < len_theirs:
            if j >= len_theirs or (i < len_mine and mine[i][0] <= theirs[j][0]):
                current = mine[i]
                i += 1
            else:
                current = theirs[j]
                j += 1
            if merged and current[0] <= merged[-1][1] + 1:
                if current[1] > merged[-1][1]:
                    merged[-1] = (merged[-1][0], current[1])
            else:
                merged.append(current)
        self._intervals = merged

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, value: int) -> bool:
        intervals = self._intervals
        low = 0
        high = len(intervals) - 1
        while low <= high:
            mid = (low + high) // 2
            lo, hi = intervals[mid]
            if value < lo:
                high = mid - 1
            elif value > hi:
                low = mid + 1
            else:
                return True
        return False

    def __len__(self) -> int:
        """Number of *values* covered (cardinality, not interval count)."""
        return sum(high - low + 1 for low, high in self._intervals)

    def __iter__(self) -> Iterator[int]:
        """Iterate every covered value in ascending order."""
        for low, high in self._intervals:
            yield from range(low, high + 1)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IntervalSet):
            return self._intervals == other._intervals
        return NotImplemented

    def __hash__(self):  # pragma: no cover - interval sets are mutable
        raise TypeError("IntervalSet is unhashable")

    def __repr__(self) -> str:
        parts = ", ".join(f"[{lo}, {hi}]" for lo, hi in self._intervals)
        return f"IntervalSet({parts})"

    @property
    def n_intervals(self) -> int:
        """Number of stored intervals (the compactness measure)."""
        return len(self._intervals)

    def intervals(self) -> List[Tuple[int, int]]:
        """Snapshot of the interval list."""
        return list(self._intervals)

    def copy(self) -> "IntervalSet":
        """Independent copy."""
        out = IntervalSet()
        out._intervals = self._intervals[:]
        return out
