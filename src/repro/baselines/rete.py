"""ReteEngine: OWLIM/Jena-like RETE pattern network.

Rules are compiled into chains of pattern (alpha) nodes with inter-node
(beta) join memories; facts entering working memory propagate through
the network, extending partial-match *tokens* until a production fires
and asserts the rule heads.  Inference is event-driven — there are no
passes — but every join walks node memories through object references:
the pointer-chasing, random-access behaviour the paper attributes to
graph/RETE reasoners ("accessing data from a graph structure requires
random memory accesses").

Alpha nodes are not shared between rules (each rule owns its chain);
sharing is an optimization of full RETE implementations that does not
change the fixed point.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, List, Set, Tuple

from .base import BaselineReasoner, BaselineStats, EncodedTriple
from .datalog import DatalogRule, match_atom, substitute

TokenKey = Tuple[Tuple[str, int], ...]


class _Chain:
    """One compiled rule: per-position alpha memories + token memories."""

    __slots__ = ("rule", "alpha", "tokens", "token_keys")

    def __init__(self, rule: DatalogRule):
        self.rule = rule
        n = len(rule.body)
        self.alpha: List[List[EncodedTriple]] = [[] for _ in range(n)]
        self.tokens: List[List[Dict[str, int]]] = [[] for _ in range(n)]
        self.token_keys: List[Set[TokenKey]] = [set() for _ in range(n)]


def _token_key(bindings: Dict[str, int]) -> TokenKey:
    return tuple(sorted(bindings.items()))


class ReteEngine(BaselineReasoner):
    """Event-driven RETE forward chaining."""

    engine_name = "rete"

    def __init__(self, ruleset="rdfs-default", *, tracer=None):
        super().__init__(ruleset, tracer=tracer)
        self._chains: List[_Chain] = []
        self._queue: deque = deque()
        self._enqueued: Set[EncodedTriple] = set()
        self._tokens_created = 0
        self._fires = 0
        self._duplicate_fires = 0

    # ------------------------------------------------------------------
    # Network propagation
    # ------------------------------------------------------------------
    def _fire(self, chain: _Chain, bindings: Dict[str, int]) -> None:
        rule = chain.rule
        for var_a, var_b in rule.not_equal:
            if bindings[var_a] == bindings[var_b]:
                return
        for head in rule.heads:
            ground = substitute(head, bindings)
            fact = (ground.s, ground.p, ground.o)
            self._fires += 1
            if fact in self.facts or fact in self._enqueued:
                self._duplicate_fires += 1
                continue
            self._enqueued.add(fact)
            self._queue.append(fact)

    def _add_token(
        self, chain: _Chain, level: int, bindings: Dict[str, int]
    ) -> None:
        key = _token_key(bindings)
        if key in chain.token_keys[level]:
            return
        chain.token_keys[level].add(key)
        chain.tokens[level].append(bindings)
        self._tokens_created += 1
        if self.tracer is not None:
            self.tracer.alloc("rete-token", 104)  # token object + key tuple
            self.tracer.pointer_chase("rete-token", 1)
        if level == len(chain.rule.body) - 1:
            self._fire(chain, bindings)
            return
        next_atom = chain.rule.body[level + 1]
        alpha = chain.alpha[level + 1]
        if self.tracer is not None and alpha:
            # Left-activation walks the alpha memory's WM entries.
            self.tracer.pointer_chase("rete-alpha", len(alpha))
        for fact in list(alpha):
            extended = match_atom(next_atom, fact, bindings)
            if extended is not None:
                self._add_token(chain, level + 1, extended)

    def _activate(self, fact: EncodedTriple) -> None:
        """Right-activation: route a new WM fact through every chain."""
        for chain in self._chains:
            body = chain.rule.body
            for position, atom in enumerate(body):
                initial = match_atom(atom, fact, {})
                if initial is None:
                    continue  # constants (or intra-atom repeats) mismatch
                chain.alpha[position].append(fact)
                if self.tracer is not None:
                    self.tracer.alloc("rete-alpha", 80)  # WM entry + slot
                    self.tracer.pointer_chase("rete-alpha", 1)
                if position == 0:
                    self._add_token(chain, 0, initial)
                    continue
                previous_tokens = chain.tokens[position - 1]
                if self.tracer is not None and previous_tokens:
                    # Right-activation walks the beta (token) memory.
                    self.tracer.pointer_chase(
                        "rete-token", len(previous_tokens)
                    )
                for token in list(previous_tokens):
                    extended = match_atom(atom, fact, token)
                    if extended is not None:
                        self._add_token(chain, position, extended)

    # ------------------------------------------------------------------
    # Fixed point
    # ------------------------------------------------------------------
    def materialize(self, *, timeout_seconds=None) -> BaselineStats:
        """Build the network, feed every fact, drain the agenda."""
        started = time.perf_counter()
        deadline = None if timeout_seconds is None else started + timeout_seconds
        n_input = len(self.facts)
        self._chains = [_Chain(rule) for rule in self.rules]
        self._queue = deque(sorted(self.facts))
        self._enqueued = set()
        activated: Set[EncodedTriple] = set()
        processed = 0
        while self._queue:
            fact = self._queue.popleft()
            self._enqueued.discard(fact)
            if fact in activated:
                continue
            processed += 1
            if processed % 512 == 0:
                self._check_deadline(deadline, self.engine_name)
            activated.add(fact)
            self.facts.add(fact)
            self._activate(fact)
        return self._finish_stats(
            started,
            n_input,
            iterations=1,
            duplicates=self._duplicate_fires,
            tokens=self._tokens_created,
            fires=self._fires,
        )
